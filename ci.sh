#!/usr/bin/env bash
# The checks CI runs, runnable locally: formatting, lints, tier-1 build
# and tests. Everything is offline — the workspace vendors its few
# dependencies as path crates.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== cargo bench --no-run"
cargo bench --no-run

echo "ci.sh: all checks passed"
