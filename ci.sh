#!/usr/bin/env bash
# The checks CI runs, runnable locally: formatting, lints, tier-1 build
# and tests. Everything is offline — the workspace vendors its few
# dependencies as path crates.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== cargo bench --no-run"
cargo bench --no-run

echo "== harness binning smoke (fused apparent cost <= per-op)"
# Exits non-zero if the fused arm's lockstep apparent in situ cost
# exceeds the per-op reference, or if the fused counters are off
# (allreduces != 1/step, kernels/downloads != 1 per (system, block)).
cargo run --release -p bench --bin harness -- binning \
    --bodies 512 --steps 4 --resolution 32 --out /tmp/ci_binning

echo "== harness chaos smoke (fault injection + recovery)"
# The harness hard-asserts the recovery claims itself (retry recovers
# every injected fault with bit-identical results, skip_step drops
# exactly one step and finishes); the grep re-checks the written report
# so a silently-empty JSON also fails CI.
cargo run --release -p bench --bin harness -- chaos \
    --seed 7 --out /tmp/ci_chaos
grep -q '"arm": "retry".*"faults_recovered": 4.*"faults_aborted": 0.*"bit_identical_to_baseline": true' \
    /tmp/ci_chaos/BENCH_chaos.json
grep -q '"arm": "skip_step".*"faults_skipped": 1.*"faults_aborted": 0' \
    /tmp/ci_chaos/BENCH_chaos.json

echo "== harness snapshot smoke (CoW delta snapshots)"
# The harness hard-asserts the deterministic snapshot claims itself
# (delta/cow results bit-identical to the deep reference, cow
# eager-copies nothing and its fault traffic never exceeds deep's; the
# scheduling-sensitive >=70% byte reduction only warns); the greps
# re-check the written report: deep never shares or faults, cow shares
# every capture, eager-copies nothing, and stays bit-identical.
cargo run --release -p bench --bin harness -- snapshot \
    --bodies 512 --steps 6 --out /tmp/ci_snapshot
grep -Eq '"mode": "deep".*"arrays_shared": 0, .*"cow_faults": 0' \
    /tmp/ci_snapshot/BENCH_snapshot.json
grep -Eq '"mode": "delta".*"bit_identical_to_deep": true' \
    /tmp/ci_snapshot/BENCH_snapshot.json
grep -Eq '"mode": "cow".*"arrays_shared": [1-9][0-9]*, "arrays_copied": 0, .*"bit_identical_to_deep": true' \
    /tmp/ci_snapshot/BENCH_snapshot.json

echo "== harness dag smoke (work-stealing dataflow execution)"
# The harness hard-asserts the dag claims itself (every arm bit-identical
# to the inline engine, the dag arm beating the async-fused arm on both
# total wall time and apparent cost); the grep re-checks the written
# report for the scheduler evidence — a nonzero steal count and zero
# aborted tasks on the dag arm.
cargo run --release -p bench --bin harness -- dag \
    --steps 6 --out /tmp/ci_dag
grep -Eq '"arm": "dag/deep".*"steals": [1-9][0-9]*.*"faults_aborted": 0.*"bit_identical_to_inline": true' \
    /tmp/ci_dag/BENCH_dag.json

echo "== harness scale smoke (hierarchical vs flat collectives)"
# The harness hard-asserts the scale claims itself (bit identity at
# every rank count, fewer inter-node messages on every multi-node
# point, a modeled-total win at the largest count, and the fused
# suite's 1-allreduce-per-step invariant on the tiered path); the greps
# re-check the written report — every point bit-identical, the 16-rank
# multi-node points beating flat on inter-node traffic, and the check
# arm's counters populated.
cargo run --release -p bench --bin harness -- scale \
    --rank-counts 4,16 --out /tmp/ci_scale
grep -q '"bit_identical": true' /tmp/ci_scale/BENCH_scale.json
! grep -q '"bit_identical": false' /tmp/ci_scale/BENCH_scale.json
grep -Eq '"ranks": 16.*"hier_fewer_inter_messages": true' \
    /tmp/ci_scale/BENCH_scale.json
grep -q '"fused_one_allreduce_per_step": true, "tier_counters_populated": true' \
    /tmp/ci_scale/BENCH_scale.json

echo "== harness layout smoke (AoS/SoA/AoSoA layout-polymorphic data model)"
# The harness hard-asserts the layout claims itself (every arm
# bit-identical to the scalar reference, the lane-vectorized AoSoA arm
# beating scalar on the host, zero-copy host fetches vs charged device
# packs, and both placements' autopicks within 5% of the best static
# layout); the greps re-check the written report so a silently-empty
# JSON also fails CI.
cargo run --release -p bench --bin harness -- layout \
    --steps 6 --out /tmp/ci_layout
grep -q '"all_bit_identical": true' /tmp/ci_layout/BENCH_layout.json
! grep -q '"bit_identical_to_scalar": false' /tmp/ci_layout/BENCH_layout.json
grep -q '"aosoa_beats_scalar_host": true' /tmp/ci_layout/BENCH_layout.json
grep -q '"autopick_within_tolerance": true' /tmp/ci_layout/BENCH_layout.json
grep -Eq '"placement": "host", "layout": "aosoa8", .*"relayout_bytes": 0' \
    /tmp/ci_layout/BENCH_layout.json
grep -Eq '"placement": "device0", "layout": "aos", .*"relayout_bytes": [1-9][0-9]*' \
    /tmp/ci_layout/BENCH_layout.json

echo "== harness adaptive smoke (closed-loop placement & autotuning)"
# The harness hard-asserts the adaptive claims itself (the steady
# adaptive arm starts from the worst static configuration and settles
# within the step bound at a steady-state apparent cost within 10% of
# the best static arm; the drift adaptive arm beats every static arm
# end-to-end; every arm bit-identical; zero aborted dispatches); the
# greps re-check the written report so a silently-empty JSON also
# fails CI.
cargo run --release -p bench --bin harness -- adaptive \
    --out /tmp/ci_adaptive
grep -q '"converged_within_tolerance": true' /tmp/ci_adaptive/BENCH_adaptive.json
grep -q '"drift_adaptive_beats_all_statics": true' /tmp/ci_adaptive/BENCH_adaptive.json
grep -q '"all_bit_identical": true' /tmp/ci_adaptive/BENCH_adaptive.json
grep -q '"zero_aborts": true' /tmp/ci_adaptive/BENCH_adaptive.json
! grep -q '"aborted": [1-9]' /tmp/ci_adaptive/BENCH_adaptive.json

echo "== harness serve smoke (zero-copy fan-out + steering)"
# The harness hard-asserts the serving claims itself (bytes serialized
# per step identical across session counts, zero missed frames for
# block-policy fast clients, binned results independent of the
# audience, steered run bit-identical to its direct-reconfiguration
# replay); the greps re-check the written report so a silently-empty
# JSON also fails CI.
cargo run --release -p bench --bin harness -- serve \
    --sessions 16,64 --out /tmp/ci_serve
grep -q '"flat_bytes_across_sessions": true' /tmp/ci_serve/BENCH_serve.json
grep -q '"zero_fast_drops": true' /tmp/ci_serve/BENCH_serve.json
grep -q '"results_identical_across_arms": true' /tmp/ci_serve/BENCH_serve.json
grep -q '"steering_bit_identical": true' /tmp/ci_serve/BENCH_serve.json
grep -Eq '"steers_applied": [1-9]' /tmp/ci_serve/BENCH_serve.json

echo "== documented results present"
# Every BENCH_*.json a doc references must exist in results/ — a
# documented experiment whose committed report is missing is a doc bug
# (this is how BENCH_binning/BENCH_snapshot/BENCH_chaos went missing).
for f in $(grep -ohE 'BENCH_[a-z0-9_]+\.json' EXPERIMENTS.md README.md | sort -u); do
    if [ ! -f "results/$f" ]; then
        echo "FAIL: $f is referenced by the docs but missing from results/"
        exit 1
    fi
done

echo "ci.sh: all checks passed"
