//! Quickstart: couple a toy simulation to an in situ analysis through
//! the SENSEI bridge in ~100 lines.
//!
//! Run with: `cargo run --example quickstart`
//!
//! The flow is the one every SENSEI-instrumented code follows:
//! 1. build the heterogeneous node and the communicator,
//! 2. attach analysis back-ends to a [`sensei::Bridge`],
//! 3. each iteration: advance the simulation, call `bridge.execute`,
//! 4. `bridge.finalize` and read the profiler.

use std::sync::Arc;
use std::time::Duration;

use binning::{BinOp, BinningAnalysis, BinningSpec, ResultSink, VarOp};
use devsim::{NodeConfig, SimNode};
use minimpi::World;
use parking_lot::Mutex;
use sensei::{
    BackendControls, Bridge, DataAdaptor, DeviceSpec, EngineRegistry, MeshMetadata, Result,
};
use svtk::{Allocator, DataObject, HamrDataArray, HamrStream, StreamMode, TableData};

/// A miniature "simulation": particles on a circle that spin each step.
struct SpinningRing {
    node: Arc<SimNode>,
    angle: f64,
    n: usize,
    step: u64,
}

impl DataAdaptor for SpinningRing {
    fn num_meshes(&self) -> usize {
        1
    }
    fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
        Ok(MeshMetadata { name: "bodies".into(), arrays: vec![] })
    }
    fn mesh(&self, _name: &str) -> Result<DataObject> {
        // Publish x, y, mass columns; a real simulation would hand out
        // zero-copy handles to device memory (see the nbody example).
        let mut xs = Vec::with_capacity(self.n);
        let mut ys = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let theta = self.angle + i as f64 / self.n as f64 * std::f64::consts::TAU;
            xs.push(theta.cos());
            ys.push(theta.sin());
        }
        let mass = vec![1.0; self.n];
        let mut table = TableData::new();
        for (name, data) in [("x", &xs), ("y", &ys), ("mass", &mass)] {
            let col = HamrDataArray::<f64>::from_slice(
                name,
                self.node.clone(),
                data,
                1,
                Allocator::Malloc,
                None,
                HamrStream::default_stream(),
                StreamMode::Sync,
            )
            .map_err(sensei::Error::Hamr)?;
            table.set_column(col.as_array_ref());
        }
        Ok(DataObject::Table(table))
    }
    fn time(&self) -> f64 {
        self.angle
    }
    fn time_step(&self) -> u64 {
        self.step
    }
}

fn main() {
    // 2 MPI ranks (threads) on a node with 2 simulated devices.
    let results: ResultSink = Arc::new(Mutex::new(Vec::new()));
    let sink = results.clone();

    World::new(2).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));

        // An in situ back-end: histogram + mass sum on a 8x8 mesh over
        // (x, y), running on an automatically selected device.
        let spec = BinningSpec::new(
            "bodies",
            ("x", "y"),
            8,
            vec![
                VarOp { var: String::new(), op: BinOp::Count },
                VarOp { var: "mass".into(), op: BinOp::Sum },
            ],
        );
        let analysis = BinningAnalysis::new(spec)
            .with_sink(sink.clone())
            .with_controls(BackendControls { device: DeviceSpec::Auto, ..Default::default() });

        // `Bridge::new(node)` is the usual constructor; spelling out the
        // engine registry shows where execution methods are pluggable —
        // "lockstep" resolves to the inline engine, "asynchronous" to the
        // threaded one, and `EngineRegistry::register` can add more.
        let mut bridge = Bridge::with_engines(node.clone(), EngineRegistry::with_defaults());
        bridge.add_analysis(Box::new(analysis), &comm).unwrap();

        // The simulation loop: rank r owns half of the ring.
        let mut sim = SpinningRing { node, angle: comm.rank() as f64, n: 512, step: 0 };
        for step in 0..5 {
            sim.step = step;
            sim.angle += 0.1; // "solve"
            bridge.execute(&sim, &comm, Duration::from_millis(1)).unwrap();
        }
        let profiler = bridge.finalize(&comm).unwrap();
        if comm.rank() == 0 {
            let s = profiler.summary();
            println!(
                "ran {} iterations; mean in situ cost {:.3} ms/iteration",
                s.iterations,
                s.mean_insitu.as_secs_f64() * 1e3
            );
        }
    });

    let results = results.lock();
    let last = results.last().expect("at least one result");
    let count = last.array("count").unwrap();
    let mass = last.array("sum_mass").unwrap();
    println!(
        "step {}: {} particles binned over both ranks, total mass {}",
        last.step,
        count.iter().sum::<f64>(),
        mass.iter().sum::<f64>()
    );
    assert_eq!(count.iter().sum::<f64>(), 1024.0, "2 ranks x 512 particles");
    println!("quickstart OK");
}
