//! The paper's full pipeline at example scale: Newton++ coupled through
//! SENSEI to in situ data binning, with zero-copy device-resident data.
//!
//! Run with: `cargo run --release --example nbody_insitu`
//!
//! Reproduces the Figure 1 pipeline: an n-body run initialized from
//! uniform random distributions with a massive body at the origin, data
//! binning of the sum of mass in the x-y plane every iteration, energy
//! diagnostics, and a VTK dump of the final state.

use std::sync::Arc;

use binning::{BinOp, BinningAnalysis, BinningSpec, ResultSink, VarOp};
use devsim::{NodeConfig, SimNode};
use minimpi::World;
use newtonpp::energy::{kinetic_energy, potential_energy};
use newtonpp::{forces::Gravity, ic::UniformIc, IcKind, Newton, NewtonAdaptor, NewtonConfig};
use parking_lot::Mutex;
use sensei::{BackendControls, Bridge, DeviceSpec, ExecutionMethod, OverflowPolicy};

fn main() {
    const RANKS: usize = 2;
    const BODIES: usize = 2000;
    const STEPS: u64 = 25;

    let results: ResultSink = Arc::new(Mutex::new(Vec::new()));
    let sink = results.clone();
    let node = SimNode::new(NodeConfig::fast_test(RANKS));
    let node2 = node.clone();

    let energies: Vec<(f64, f64)> = World::new(RANKS).run(move |comm| {
        let cfg = NewtonConfig {
            ic: IcKind::Uniform(UniformIc {
                n: BODIES,
                seed: 7,
                half_width: 1.0,
                mass_range: (0.5, 1.5),
                velocity_scale: 0.1,
                central_mass: 500.0,
            }),
            dt: 2e-4,
            grav: Gravity { g: 1.0, eps: 0.1 },
            x_extent: (-2.0, 2.0),
            repartition_every: Some(10),
        };
        let mut sim = Newton::new(node2.clone(), &comm, comm.rank(), cfg).expect("init");

        // In situ: asynchronous binning of mass onto a 64x64 x-y mesh,
        // placed on the same device as the simulation. The worker's
        // snapshot queue holds at most 8 iterations; a submit into a full
        // queue blocks the simulation until the worker catches up
        // (`OverflowPolicy::DropOldest` would shed load instead).
        let spec = BinningSpec::new(
            "bodies",
            ("x", "y"),
            64,
            vec![
                VarOp { var: "mass".into(), op: BinOp::Sum },
                VarOp { var: String::new(), op: BinOp::Count },
            ],
        );
        let analysis =
            BinningAnalysis::new(spec).with_sink(sink.clone()).with_controls(BackendControls {
                execution: ExecutionMethod::Asynchronous,
                device: DeviceSpec::Auto,
                queue_depth: 8,
                overflow: OverflowPolicy::Block,
                ..Default::default()
            });
        let mut bridge = Bridge::new(node2.clone());
        bridge.add_analysis(Box::new(analysis), &comm).expect("attach");

        // Energy before.
        let before = sim.download().expect("download");
        let e0 = comm.allreduce(
            kinetic_energy(&before) + potential_energy(&before, &cfg.grav) / comm.size() as f64,
            |a, b| a + b,
        );

        for _ in 0..STEPS {
            let solver = sim.step(&comm).expect("step");
            let adaptor = NewtonAdaptor::new(&sim);
            bridge.execute(&adaptor, &comm, solver).expect("in situ");
        }
        let profiler = bridge.finalize(&comm).expect("finalize");

        // Energy after (potential needs the global set; approximate with
        // the per-rank slab + cross terms omitted for the demo printout).
        let after = sim.download().expect("download");
        let e1 = comm.allreduce(
            kinetic_energy(&after) + potential_energy(&after, &cfg.grav) / comm.size() as f64,
            |a, b| a + b,
        );
        if comm.rank() == 0 {
            let s = profiler.summary();
            println!(
                "rank 0: {} iterations, mean solver {:.2} ms, apparent in situ {:.2} ms",
                s.iterations,
                s.mean_solver.as_secs_f64() * 1e3,
                s.mean_insitu.as_secs_f64() * 1e3
            );
            for b in profiler.backend_breakdown() {
                println!(
                    "    {:<16} {:>3} dispatches, mean apparent {:.3} ms",
                    b.backend,
                    b.dispatches,
                    b.mean_apparent.as_secs_f64() * 1e3
                );
            }
            // Dump the final local state for post hoc visualization.
            let out = std::env::temp_dir().join("nbody_final.vtk");
            newtonpp::io::write_vtk_file(&out, "newton++ final state", &after).expect("vtk");
            println!("wrote {}", out.display());
        }
        (e0, e1)
    });

    let results = results.lock();
    println!("collected {} in situ results", results.len());
    let last = results.last().expect("results recorded");
    let mass: f64 = last.array("sum_mass").unwrap().iter().sum();
    let count: f64 = last.array("count").unwrap().iter().sum();
    println!(
        "final binning (step {}): {} bodies on the mesh, total mass {:.1}",
        last.step, count, mass
    );
    println!(
        "local-energy drift per rank: {:?}",
        energies
            .iter()
            .map(|(a, b)| format!("{:.2}%", ((b - a) / a.abs() * 100.0)))
            .collect::<Vec<_>>()
    );
    assert_eq!(results.len() as u64, STEPS, "one result per iteration");
    assert_eq!(count as usize, BODIES);
    println!("nbody_insitu OK");
}
