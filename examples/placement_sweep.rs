//! The paper's evaluation question at example scale: "given a fixed
//! number of compute nodes, each with multiple accelerators and CPU
//! cores, what is the most effective way to utilize the available
//! resources for in situ processing?"
//!
//! Run with: `cargo run --release --example placement_sweep`
//!
//! Sweeps the four in situ placements × two execution methods of Table 1
//! and prints the Figure 2/Figure 3 quantities (use the `harness` binary
//! in `crates/bench` for the full-scale version with CSV output).

use bench::{ascii_bars, ascii_stack, run_case, CaseConfig};
use sensei::{ExecutionMethod, Placement};

fn main() {
    let base = CaseConfig {
        bodies: 1024,
        steps: 4,
        resolution: 32,
        instances: 3,
        ..CaseConfig::small(Placement::Host, ExecutionMethod::Lockstep)
    };
    println!(
        "sweeping 4 placements x 2 execution methods ({} bodies, {} steps, {} binning instances)\n",
        base.bodies, base.steps, base.instances
    );

    let mut results = Vec::new();
    for case in CaseConfig::matrix(&base) {
        eprint!("  {} / {} ... ", case.placement.label(), case.execution.name());
        let out = run_case(&case);
        eprintln!("{:.3?}", out.total);
        results.push(out);
    }

    let bars: Vec<(String, std::time::Duration)> = results
        .iter()
        .map(|r| {
            (format!("{:<20} {}", r.config.placement.label(), r.config.execution.name()), r.total)
        })
        .collect();
    println!("\n{}", ascii_bars("total run time (cf. paper Figure 2)", &bars, 44));

    let stacks: Vec<(String, std::time::Duration, std::time::Duration)> = results
        .iter()
        .map(|r| {
            (
                format!("{:<20} {}", r.config.placement.label(), r.config.execution.name()),
                r.mean_solver,
                r.mean_insitu,
            )
        })
        .collect();
    println!("{}", ascii_stack("per-iteration breakdown (cf. paper Figure 3)", &stacks, 44));

    // The headline finding: asynchronous execution reduces total run time
    // across placements, despite slowing the solver down.
    let mut async_wins = 0;
    for placement in Placement::paper_placements() {
        let get = |m| {
            results
                .iter()
                .find(|r| r.config.placement == placement && r.config.execution == m)
                .unwrap()
        };
        if get(ExecutionMethod::Asynchronous).total < get(ExecutionMethod::Lockstep).total {
            async_wins += 1;
        }
    }
    println!("asynchronous execution reduced total run time in {async_wins}/4 placements");
    println!("placement_sweep OK");
}
