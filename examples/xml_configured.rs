//! Run-time configuration: select and place analysis back-ends from
//! SENSEI's XML without recompiling — the mechanism the paper's runs use
//! ("orchestrated by SENSEI using its XML configuration feature", §4.3).
//!
//! Run with: `cargo run --example xml_configured`

use std::sync::Arc;

use binning::ResultSink;
use devsim::{NodeConfig, SimNode};
use minimpi::World;
use newtonpp::{forces::Gravity, ic::UniformIc, IcKind, Newton, NewtonAdaptor, NewtonConfig};
use parking_lot::Mutex;
use sensei::{AnalysisRegistry, Bridge, ConfigurableAnalysis, CreateContext};

/// The same shape as the configurations in the paper's reproducibility
/// appendix: several data-binning instances with different coordinate
/// systems, execution methods, and placements, plus a disabled entry.
const CONFIG: &str = r#"<?xml version="1.0"?>
<sensei>
  <!-- spatial binning, asynchronous, automatic device selection -->
  <analysis type="data_binning" enabled="1" mode="asynchronous" device="-2">
    <axes>x,y</axes>
    <operations>count(),sum(mass),avg(speed)</operations>
    <resolution x="32" y="32"/>
  </analysis>

  <!-- velocity-space binning, lockstep, pinned to the host -->
  <analysis type="data_binning" enabled="1" mode="lockstep" device="-1">
    <axes>vx,vy</axes>
    <operations>count(),max(ke)</operations>
    <resolution x="16" y="16"/>
  </analysis>

  <!-- switched off without touching code -->
  <analysis type="data_binning" enabled="0">
    <axes>x,z</axes>
    <operations>count()</operations>
  </analysis>
</sensei>"#;

fn main() {
    let results: ResultSink = Arc::new(Mutex::new(Vec::new()));
    let sink = results.clone();

    World::new(2).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));

        // Parse once, instantiate through the registry on every rank.
        let mut registry = AnalysisRegistry::new();
        binning::register(&mut registry);
        let config = ConfigurableAnalysis::from_xml(CONFIG).expect("parse config");
        let ctx = CreateContext { node: node.clone(), rank: comm.rank(), size: comm.size() };
        let backends = config.instantiate(&registry, &ctx).expect("instantiate");
        if comm.rank() == 0 {
            println!(
                "configured {} of {} analyses (registry knows: {:?})",
                backends.len(),
                config.configs().len(),
                registry.type_names()
            );
            for b in &backends {
                println!(
                    "  {}: {} on {:?}",
                    b.name(),
                    b.controls().execution.name(),
                    b.controls().device
                );
            }
        }

        let mut bridge = Bridge::new(node.clone());
        for b in backends {
            bridge.add_analysis(b, &comm).expect("attach");
        }

        let cfg = NewtonConfig {
            ic: IcKind::Uniform(UniformIc { n: 500, seed: 3, ..Default::default() }),
            dt: 1e-4,
            grav: Gravity { g: 1.0, eps: 0.1 },
            x_extent: (-2.0, 2.0),
            repartition_every: None,
        };
        let mut sim = Newton::new(node, &comm, comm.rank(), cfg).expect("init");

        // Wire the first back-end's sink manually is not possible through
        // XML (sinks are programmatic); this example just runs the
        // configured pipeline and reports through the profiler.
        let _ = &sink;
        for _ in 0..3 {
            let solver = sim.step(&comm).expect("step");
            let adaptor = NewtonAdaptor::new(&sim);
            bridge.execute(&adaptor, &comm, solver).expect("execute");
        }
        let profiler = bridge.finalize(&comm).expect("finalize");
        if comm.rank() == 0 {
            println!("ran {} steps through the XML-configured pipeline", profiler.records().len());
        }
    });
    println!("xml_configured OK");
}
