//! PM interoperability and zero-copy transfer: a faithful walk through
//! the paper's Listings 1–4.
//!
//! Run with: `cargo run --example pm_interop`
//!
//! * Listing 1 — a simulation allocates and initializes device memory
//!   with the **OpenMP** PM, then wraps it zero-copy in an HDA with
//!   coordinated life-cycle management.
//! * Listing 2/3 — library *libA* (written in the **CUDA** PM) adds two
//!   arrays on device 1, obtaining views through the location- and
//!   PM-agnostic access API: data already on the target device is used
//!   in place, anything else is moved automatically.
//! * Listing 4 — library *libB* (host-only code) writes the result to
//!   disk through `GetHostAccessible`.

use std::sync::Arc;

use devsim::{KernelCost, NodeConfig, SimNode};
use svtk::{Allocator, DataArray, HamrDataArray, HamrDoubleArray, HamrStream, Pm, StreamMode};

/// Listing 3: a library function in *libA* that adds two arrays using
/// the CUDA PM on device `dev`.
fn lib_a_add(
    dev: usize,
    a1: &HamrDoubleArray,
    a2: &HamrDoubleArray,
) -> hamr::Result<Arc<HamrDoubleArray>> {
    let node = a1.buffer().node().clone();
    // Use this stream for the calculation.
    let stream = node.device(dev)?.create_stream();

    // Get views of the incoming data on the device we will use; any
    // host-device or inter-device movement, or PM interoperability
    // transformations, happen automatically and invisibly here.
    let sp_a1 = a1.cuda_accessible(dev)?;
    let sp_a2 = a2.cuda_accessible(dev)?;
    println!(
        "  libA: a1 {} (pm converted: {}), a2 {}",
        if sp_a1.is_direct() { "in place" } else { "moved" },
        sp_a1.pm_converted(),
        if sp_a2.is_direct() { "in place" } else { "moved" },
    );

    // Allocate space for the result with the stream-ordered allocator.
    let n = a1.num_tuples();
    let a3 = HamrDataArray::<f64>::new(
        "sum",
        node,
        n,
        1,
        Allocator::CudaAsync,
        Some(dev),
        HamrStream::new(stream.clone()),
        StreamMode::Async,
    )?;
    // Direct access to the result since we know it is in place.
    let p_a3 = a3.data();

    // Make sure the data in flight, if it was moved, has arrived.
    a1.synchronize()?;
    a2.synchronize()?;

    // Do the calculation.
    let (p1, p2) = (sp_a1.cells().clone(), sp_a2.cells().clone());
    stream
        .launch("add", KernelCost::flops(n as f64), move |scope| {
            let (v1, v2, v3) = (p1.f64_view(scope)?, p2.f64_view(scope)?, p_a3.f64_view(scope)?);
            for i in 0..v3.len() {
                v3.set(i, v1.get(i) + v2.get(i));
            }
            Ok(())
        })
        .map_err(hamr::Error::Device)?;
    Ok(a3)
}

/// Listing 4: a library function in *libB* (host-only C++) that writes an
/// array to disk.
fn lib_b_write(path: &std::path::Path, a: &HamrDoubleArray) -> hamr::Result<()> {
    // Get a view of the data on the host...
    let sp = a.host_accessible()?;
    // ...make sure the data, if moved, has arrived...
    a.synchronize()?;
    // ...and send it to the file.
    let values = sp.to_vec()?;
    let text: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    std::fs::write(path, text.join(" ")).expect("write output");
    Ok(())
}

fn main() {
    // A node with three devices (Listing 2 uses devices 1 and 2).
    let node = SimNode::new(NodeConfig::fast_test(3));
    let n = 400;

    // Listing 2, line 2: one HDA on the host...
    let a0 = HamrDataArray::<f64>::new_init(
        "a0",
        node.clone(),
        n,
        1,
        1.0,
        Allocator::Malloc,
        None,
        HamrStream::default_stream(),
        StreamMode::Sync,
    )
    .unwrap();

    // Listing 1: the simulation allocates device memory with OpenMP
    // target offload, initializes it on the device...
    let dev1 = node.device(1).unwrap();
    let sim_mem = dev1.alloc_f64(n).unwrap(); // omp_target_alloc
    let stream = dev1.create_stream();
    let c = sim_mem.clone();
    stream
        .launch("init", KernelCost::flops(n as f64), move |scope| {
            // #pragma omp target teams distribute parallel for
            let v = c.f64_view(scope)?;
            for i in 0..v.len() {
                v.set(i, -2.75); // (the paper's listing uses -3.14)
            }
            Ok(())
        })
        .unwrap();
    stream.synchronize().unwrap();
    // ...and passes it to SENSEI zero-copy, with shared life-cycle
    // management (the shared pointer of Listing 1).
    let a1 = HamrDataArray::<f64>::adopt(
        "simData",
        node.clone(),
        sim_mem.clone(),
        1,
        Allocator::OpenMp,
        HamrStream::new(stream),
        StreamMode::Sync,
    )
    .unwrap();
    assert!(a1.data().same_allocation(&sim_mem), "zero-copy: same memory");
    println!("Listing 1: adopted OpenMP device memory zero-copy (pm = {:?})", a1.pm());
    // The simulation can drop its handle; the HDA keeps the memory alive.
    drop(sim_mem);

    // Listing 2, line 13: pass both arrays into libA, which computes on
    // device 2 with CUDA. a0 moves host->device, a1 moves device 1 ->
    // device 2; both movements are automatic.
    let before = node.stats();
    let sum = lib_a_add(2, &a0, &a1).unwrap();
    let after = node.stats();
    println!(
        "  libA data movement: {} h2d, {} d2d (automatic)",
        after.copies_h2d - before.copies_h2d,
        after.copies_d2d - before.copies_d2d
    );

    // Same call with data already on device 2: everything is in place.
    let a2_on_dev2 = HamrDataArray::<f64>::new_init(
        "b",
        node.clone(),
        n,
        1,
        0.5,
        Allocator::Cuda,
        Some(2),
        HamrStream::default_stream(),
        StreamMode::Sync,
    )
    .unwrap();
    let before = node.stats();
    let sum2 = lib_a_add(2, &sum, &a2_on_dev2).unwrap();
    let after = node.stats();
    assert_eq!(before.total_copies(), after.total_copies(), "all in place: zero copies");

    // Listing 2, lines 15-17: write libA's result to disk with libB.
    let path = std::env::temp_dir().join("pm_interop_sum.txt");
    lib_b_write(&path, &sum2).unwrap();
    let content = std::fs::read_to_string(&path).unwrap();
    let first: f64 = content.split_whitespace().next().unwrap().parse().unwrap();
    assert!((first - (1.0 + -2.75 + 0.5)).abs() < 1e-12);
    println!("Listing 4: libB wrote {} values; first = {first}", n);
    std::fs::remove_file(&path).ok();

    // The interoperability matrix: each PM's view of the same array.
    println!("\naccess matrix for OpenMP-managed data on device 1:");
    let probe = HamrDataArray::<f64>::new_init(
        "probe",
        node.clone(),
        4,
        1,
        7.0,
        Allocator::OpenMp,
        Some(1),
        HamrStream::default_stream(),
        StreamMode::Sync,
    )
    .unwrap();
    for (pm, dev) in [(Pm::OpenMp, 1), (Pm::Cuda, 1), (Pm::Hip, 1), (Pm::Cuda, 0)] {
        let view = probe.device_accessible(dev, pm).unwrap();
        probe.synchronize().unwrap();
        println!(
            "  {:>6} on device {dev}: {} {}",
            pm.name(),
            if view.is_direct() { "zero-copy" } else { "moved   " },
            if view.pm_converted() { "(cross-PM grant)" } else { "" }
        );
    }
    let host_view = probe.host_accessible().unwrap();
    probe.synchronize().unwrap();
    println!("    host            : {}", if host_view.is_direct() { "zero-copy" } else { "moved" });
    println!("\npm_interop OK");
}
