//! In-transit processing: the simulation's ranks forward data to
//! dedicated analysis ranks instead of analyzing in place.
//!
//! Run with: `cargo run --release --example in_transit`
//!
//! This is the off-node counterpart of the paper's placement question:
//! rather than borrowing the simulation's host cores or devices, the
//! analysis gets its own ranks and the data is shipped M-to-N. The same
//! back-ends run unchanged.

use std::sync::Arc;

use binning::{BinOp, BinningAnalysis, BinningSpec, ResultSink, VarOp};
use devsim::{NodeConfig, SimNode};
use minimpi::World;
use newtonpp::{forces::Gravity, ic::UniformIc, IcKind, Newton, NewtonAdaptor, NewtonConfig};
use parking_lot::Mutex;
use sensei::intransit::{self, Role, TransitSender};
use sensei::{BackendControls, Bridge, DeviceSpec};

const SIM_RANKS: usize = 3;
const ANALYSIS_RANKS: usize = 1;
const STEPS: u64 = 8;

fn main() {
    let results: ResultSink = Arc::new(Mutex::new(Vec::new()));
    let sink = results.clone();

    World::new(SIM_RANKS + ANALYSIS_RANKS).run(move |world| {
        let node = SimNode::new(NodeConfig::fast_test(SIM_RANKS.max(2)));
        // A duplicate of the world carries the transit traffic, keeping it
        // off the simulation's own tag space.
        let transit_comm = world.dup();

        match intransit::partition(&world, ANALYSIS_RANKS) {
            Role::Simulation(sim_comm) => {
                let cfg = NewtonConfig {
                    ic: IcKind::Uniform(UniformIc {
                        n: 1500,
                        seed: 5,
                        half_width: 1.0,
                        mass_range: (0.5, 1.5),
                        velocity_scale: 0.1,
                        central_mass: 300.0,
                    }),
                    dt: 1e-4,
                    grav: Gravity { g: 1.0, eps: 0.05 },
                    x_extent: (-2.0, 2.0),
                    repartition_every: None,
                };
                let mut sim =
                    Newton::new(node.clone(), &sim_comm, sim_comm.rank() % node.num_devices(), cfg)
                        .expect("init");
                // The forwarder is attached like any analysis back-end.
                let sender = TransitSender::new(transit_comm, "bodies", ANALYSIS_RANKS);
                let mut bridge = Bridge::new(node);
                bridge.add_analysis(Box::new(sender), &sim_comm).expect("attach sender");
                for _ in 0..STEPS {
                    let t = sim.step(&sim_comm).expect("step");
                    bridge.execute(&NewtonAdaptor::new(&sim), &sim_comm, t).expect("forward");
                }
                let profiler = bridge.finalize(&sim_comm).expect("finalize");
                if sim_comm.rank() == 0 {
                    println!(
                        "simulation: {} steps forwarded, apparent transit cost {:.2} ms/iter",
                        profiler.records().len(),
                        profiler.summary().mean_insitu.as_secs_f64() * 1e3
                    );
                }
            }
            Role::Analysis(analysis_comm) => {
                // The analysis endpoint runs the ordinary binning back-end
                // against whatever arrives.
                let mut spec = BinningSpec::new(
                    "bodies",
                    ("x", "y"),
                    32,
                    vec![
                        VarOp { var: String::new(), op: BinOp::Count },
                        VarOp { var: "mass".into(), op: BinOp::Sum },
                    ],
                );
                spec.bounds = Some(([-1.5, 1.5], [-1.5, 1.5]));
                let analysis = BinningAnalysis::new(spec).with_sink(sink.clone()).with_controls(
                    BackendControls { device: DeviceSpec::Host, ..Default::default() },
                );
                let steps = intransit::serve_analysis(
                    &transit_comm,
                    &analysis_comm,
                    &node,
                    "bodies",
                    vec![Box::new(analysis)],
                )
                .expect("serve");
                println!("analysis rank {}: processed {steps} steps", analysis_comm.rank());
            }
        }
    });

    let results = results.lock();
    assert_eq!(results.len() as u64, STEPS);
    let last = results.last().unwrap();
    println!(
        "final step {}: {} bodies binned, total mass {:.1}",
        last.step,
        last.array("count").unwrap().iter().sum::<f64>(),
        last.array("sum_mass").unwrap().iter().sum::<f64>()
    );
    println!("in_transit OK");
}
