//! The oscillators miniapp coupled to the generic back-ends: grid
//! (ImageData) meshes flowing through the same SENSEI mediation paths as
//! Newton++'s particle tables.
//!
//! Run with: `cargo run --example oscillators_insitu`

use std::sync::Arc;

use analyses::{DescriptiveStats, Histogram};
use devsim::{NodeConfig, SimNode};
use minimpi::World;
use oscillators::{Oscillator, OscillatorsAdaptor, OscillatorsConfig, OscillatorsSim};
use parking_lot::Mutex;
use sensei::{BackendControls, Bridge, DeviceSpec, ExecutionMethod, OverflowPolicy};

/// The `.osc` source configuration (SENSEI's miniapp file format).
const SOURCES: &str = "\
# kind     x    y    z    radius omega zeta amplitude
periodic   0.30 0.50 0.50 0.15   9.0   0    1.0
damped     0.70 0.60 0.40 0.20   6.0   0.1  2.0
decay      0.50 0.20 0.60 0.25   0.8   0    1.5
";

fn main() {
    let oscillators = Oscillator::parse_file(SOURCES).expect("parse .osc");
    println!("loaded {} oscillator sources", oscillators.len());

    let stats_sink = Arc::new(Mutex::new(Vec::new()));
    let hist_sink = Arc::new(Mutex::new(Vec::new()));
    let (s2, h2) = (stats_sink.clone(), hist_sink.clone());

    World::new(2).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let cfg = OscillatorsConfig {
            oscillators: oscillators.clone(),
            cells: [32, 32, 16],
            bounds: ([0.0; 3], [1.0, 1.0, 0.5]),
            dt: 0.05,
        };
        let mut sim = OscillatorsSim::new(node.clone(), &comm, comm.rank(), cfg).expect("init");

        let mut bridge = Bridge::new(node);
        // Field statistics every step, asynchronously: the worker keeps a
        // bounded snapshot queue (4 deep here) and the bridge blocks the
        // simulation when it is full, so a slow back-end exerts
        // backpressure instead of buffering unboundedly.
        bridge
            .add_analysis(
                Box::new(
                    DescriptiveStats::new(vec!["data".into()]).with_sink(s2.clone()).with_controls(
                        BackendControls {
                            execution: ExecutionMethod::Asynchronous,
                            queue_depth: 4,
                            overflow: OverflowPolicy::Block,
                            ..Default::default()
                        },
                    ),
                ),
                &comm,
            )
            .expect("attach stats");
        // Field histogram on the device where each block lives.
        bridge
            .add_analysis(
                Box::new(Histogram::new("data", 24).with_sink(h2.clone()).with_controls(
                    BackendControls { device: DeviceSpec::Auto, ..Default::default() },
                )),
                &comm,
            )
            .expect("attach histogram");

        for _ in 0..10 {
            let solver = sim.step(&comm).expect("step");
            let adaptor = OscillatorsAdaptor::new(&sim);
            bridge.execute(&adaptor, &comm, solver).expect("in situ");
        }
        let profiler = bridge.finalize(&comm).expect("finalize");
        if comm.rank() == 0 {
            println!("ran {} iterations", profiler.records().len());
        }
    });

    let stats = stats_sink.lock();
    println!("\nfield statistics over time:");
    for s in stats.iter().step_by(3) {
        println!(
            "  step {:>2}: mean {:+.4}  min {:+.4}  max {:+.4}  std {:.4}  ({} points)",
            s.step, s.mean, s.min, s.max, s.std, s.count
        );
    }
    let hists = hist_sink.lock();
    let last = hists.last().expect("histogram recorded");
    println!(
        "\nfinal field histogram ({} values in [{:.3}, {:.3}]):",
        last.total(),
        last.range.0,
        last.range.1
    );
    let max = *last.counts.iter().max().unwrap();
    for (i, &c) in last.counts.iter().enumerate() {
        let bar = "#".repeat((c * 40 / max.max(1)) as usize);
        println!("  bin {i:>2}: {c:>6} |{bar}");
    }
    assert_eq!(stats.len(), 10);
    println!("\noscillators_insitu OK");
}
