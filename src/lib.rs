//! # sensei-insitu — SENSEI extensions for heterogeneous architectures
//!
//! A Rust reproduction of *"Extensions to the SENSEI In situ Framework
//! for Heterogeneous Architectures"* (Loring, Weber, Bethel, Mahoney;
//! SC-W 2023). This facade crate re-exports the workspace's public API;
//! see `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.
//!
//! The layers, bottom up:
//!
//! * [`minimpi`] — in-process MPI (ranks are threads);
//! * [`devsim`] — the simulated heterogeneous node (devices, streams,
//!   events, kernels, transfers, virtual-time cost model);
//! * [`hamr`] — the heterogeneous memory resource (PM-aware allocators,
//!   zero-copy adoption, location/PM-agnostic access);
//! * [`svtk`] — the SENSEI data model (`HamrDataArray`, tables, meshes);
//! * [`xmlcfg`] — run-time XML configuration;
//! * [`sensei`] — the framework core with the paper's execution-model
//!   extensions (lockstep/asynchronous, placement, Eq. 1);
//! * [`newtonpp`] — the Newton++ n-body simulation;
//! * [`binning`] — the in situ data-binning analysis;
//! * [`analyses`] — further back-ends (histogram, descriptive stats,
//!   autocorrelation, particle writer);
//! * `bench` — the experiment harness for Table 1 and Figures 1–3.
//!
//! ## Quickstart
//!
//! ```
//! use devsim::{NodeConfig, SimNode};
//! use svtk::{Allocator, HamrDataArray, HamrStream, StreamMode};
//!
//! // A node with two simulated accelerators.
//! let node = SimNode::new(NodeConfig::fast_test(2));
//!
//! // A heterogeneous data array on device 0...
//! let a = HamrDataArray::<f64>::from_slice(
//!     "a", node.clone(), &[1.0, 2.0, 3.0], 1,
//!     Allocator::Cuda, Some(0),
//!     HamrStream::default_stream(), StreamMode::Sync,
//! ).unwrap();
//!
//! // ...accessible anywhere through one API: in place on device 0,
//! // moved automatically to the host.
//! assert!(a.cuda_accessible(0).unwrap().is_direct());
//! let host_view = a.host_accessible().unwrap();
//! a.synchronize().unwrap();
//! assert_eq!(host_view.to_vec().unwrap(), vec![1.0, 2.0, 3.0]);
//! ```

pub use ::bench;
pub use analyses;
pub use binning;
pub use devsim;
pub use hamr;
pub use minimpi;
pub use newtonpp;
pub use oscillators;
pub use sensei;
pub use svtk;
pub use xmlcfg;
