//! End-to-end in-transit processing: simulation ranks forward their data
//! to dedicated analysis ranks, where the same back-ends that run in
//! situ run unchanged — and produce identical results.

use std::sync::Arc;

use binning::{BinOp, BinningAnalysis, BinningSpec, ResultSink, VarOp};
use devsim::{NodeConfig, SimNode};
use minimpi::World;
use newtonpp::{forces::Gravity, ic::UniformIc, IcKind, Newton, NewtonAdaptor, NewtonConfig};
use parking_lot::Mutex;
use sensei::intransit::{self, Role, TransitSender};
use sensei::{AnalysisAdaptor, BackendControls, Bridge, DeviceSpec};

const BODIES: usize = 240;
const STEPS: u64 = 3;

fn newton_cfg() -> NewtonConfig {
    NewtonConfig {
        ic: IcKind::Uniform(UniformIc {
            n: BODIES,
            seed: 77,
            half_width: 1.0,
            mass_range: (0.5, 1.5),
            velocity_scale: 0.1,
            central_mass: 40.0,
        }),
        dt: 1e-4,
        grav: Gravity { g: 1.0, eps: 0.05 },
        x_extent: (-2.0, 2.0),
        repartition_every: None,
    }
}

fn spec() -> BinningSpec {
    let mut s = BinningSpec::new(
        "bodies",
        ("x", "y"),
        8,
        vec![
            VarOp { var: String::new(), op: BinOp::Count },
            VarOp { var: "mass".into(), op: BinOp::Sum },
        ],
    );
    s.bounds = Some(([-1.5, 1.5], [-1.5, 1.5]));
    s
}

/// Run the simulation on `sim_ranks` ranks with in situ binning (the
/// reference results).
fn run_in_situ(sim_ranks: usize) -> Vec<binning::BinnedResult> {
    let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
    let sink2 = sink.clone();
    World::new(sim_ranks).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let mut sim = Newton::new(node.clone(), &comm, comm.rank() % 2, newton_cfg()).unwrap();
        let analysis = BinningAnalysis::new(spec())
            .with_sink(sink2.clone())
            .with_controls(BackendControls { device: DeviceSpec::Host, ..Default::default() });
        let mut bridge = Bridge::new(node);
        bridge.add_analysis(Box::new(analysis), &comm).unwrap();
        for _ in 0..STEPS {
            let t = sim.step(&comm).unwrap();
            bridge.execute(&NewtonAdaptor::new(&sim), &comm, t).unwrap();
        }
        bridge.finalize(&comm).unwrap();
    });
    let r = sink.lock().clone();
    r
}

/// Run the same simulation with `sim_ranks` producers forwarding to
/// `analysis_ranks` in-transit consumers running the same binning.
fn run_in_transit(sim_ranks: usize, analysis_ranks: usize) -> Vec<binning::BinnedResult> {
    let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
    let sink2 = sink.clone();
    World::new(sim_ranks + analysis_ranks).run(move |world| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let transit_comm = world.dup();
        match intransit::partition(&world, analysis_ranks) {
            Role::Simulation(sim_comm) => {
                let mut sim =
                    Newton::new(node.clone(), &sim_comm, sim_comm.rank() % 2, newton_cfg())
                        .unwrap();
                let sender = TransitSender::new(transit_comm, "bodies", analysis_ranks);
                let mut bridge = Bridge::new(node);
                bridge.add_analysis(Box::new(sender), &sim_comm).unwrap();
                for _ in 0..STEPS {
                    let t = sim.step(&sim_comm).unwrap();
                    bridge.execute(&NewtonAdaptor::new(&sim), &sim_comm, t).unwrap();
                }
                bridge.finalize(&sim_comm).unwrap();
            }
            Role::Analysis(analysis_comm) => {
                let analysis = BinningAnalysis::new(spec()).with_sink(sink2.clone()).with_controls(
                    BackendControls { device: DeviceSpec::Host, ..Default::default() },
                );
                let steps = intransit::serve_analysis(
                    &transit_comm,
                    &analysis_comm,
                    &node,
                    "bodies",
                    vec![Box::new(analysis)],
                )
                .unwrap();
                assert_eq!(steps, STEPS);
            }
        }
    });
    let r = sink.lock().clone();
    r
}

#[test]
fn in_transit_matches_in_situ_exactly() {
    let in_situ = run_in_situ(2);
    // 2 producers -> 1 consumer.
    let transit = run_in_transit(2, 1);
    assert_eq!(in_situ.len(), transit.len());
    for (a, b) in in_situ.iter().zip(&transit) {
        assert_eq!(a.step, b.step);
        for name in ["count", "sum_mass"] {
            assert_eq!(
                a.array(name).unwrap(),
                b.array(name).unwrap(),
                "array {name} at step {}",
                a.step
            );
        }
    }
}

#[test]
fn m_to_n_with_multiple_consumers() {
    // 4 producers -> 2 consumers; the analysis group reduces across its
    // own communicator, so results are still global and identical.
    let in_situ = run_in_situ(4);
    let transit = run_in_transit(4, 2);
    assert_eq!(in_situ.len(), transit.len());
    for (a, b) in in_situ.iter().zip(&transit) {
        for name in ["count", "sum_mass"] {
            assert_eq!(a.array(name).unwrap(), b.array(name).unwrap());
        }
        assert_eq!(a.array("count").unwrap().iter().sum::<f64>() as usize, BODIES);
    }
}

#[test]
fn sender_honours_frequency() {
    // Producers forward every 2nd step only; consumers see ceil(3/2)+...
    let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
    let sink2 = sink.clone();
    World::new(3).run(move |world| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let transit_comm = world.dup();
        match intransit::partition(&world, 1) {
            Role::Simulation(sim_comm) => {
                let mut sim =
                    Newton::new(node.clone(), &sim_comm, sim_comm.rank() % 2, newton_cfg())
                        .unwrap();
                let mut sender = TransitSender::new(transit_comm, "bodies", 1);
                sender.controls_mut().frequency = 2;
                let mut bridge = Bridge::new(node);
                bridge.add_analysis(Box::new(sender), &sim_comm).unwrap();
                for _ in 0..4 {
                    let t = sim.step(&sim_comm).unwrap();
                    bridge.execute(&NewtonAdaptor::new(&sim), &sim_comm, t).unwrap();
                }
                bridge.finalize(&sim_comm).unwrap();
            }
            Role::Analysis(analysis_comm) => {
                let analysis = BinningAnalysis::new(spec()).with_sink(sink2.clone()).with_controls(
                    BackendControls { device: DeviceSpec::Host, ..Default::default() },
                );
                let steps = intransit::serve_analysis(
                    &transit_comm,
                    &analysis_comm,
                    &node,
                    "bodies",
                    vec![Box::new(analysis)],
                )
                .unwrap();
                assert_eq!(steps, 2, "steps 2 and 4 only");
            }
        }
    });
    assert_eq!(sink.lock().len(), 2);
}
