//! The memory-footprint motivation of §2: "data transfers between the
//! simulation and back end data consumer are ideally made in place, or
//! zero-copy, whenever they can be, in order to avoid the increased
//! memory footprint and data movement overheads associated with making a
//! deep copy."
//!
//! These tests measure actual device memory while the coupling runs:
//! lockstep + same-device placement adds (almost) nothing on top of the
//! simulation's own footprint; the asynchronous method pays one deep
//! copy of the published arrays per in-flight snapshot.

use std::sync::Arc;

use devsim::{NodeConfig, SimNode};
use minimpi::World;
use sensei::{DataAdaptor, SnapshotAdaptor};
use svtk::{Allocator, DataObject, HamrDataArray, HamrStream, StreamMode, TableData};

const N: usize = 4096;
const COLUMNS: usize = 4;

struct Sim {
    table: TableData,
    step: u64,
}

impl Sim {
    fn new(node: Arc<SimNode>) -> Self {
        let mut table = TableData::new();
        for name in ["a", "b", "c", "d"] {
            let data: Vec<f64> = (0..N).map(|i| i as f64).collect();
            let col = HamrDataArray::<f64>::from_slice(
                name,
                node.clone(),
                &data,
                1,
                Allocator::OpenMp,
                Some(0),
                HamrStream::default_stream(),
                StreamMode::Sync,
            )
            .unwrap();
            table.set_column(col.as_array_ref());
        }
        Sim { table, step: 0 }
    }
}

impl DataAdaptor for Sim {
    fn num_meshes(&self) -> usize {
        1
    }
    fn mesh_metadata(&self, _i: usize) -> sensei::Result<sensei::MeshMetadata> {
        Ok(sensei::MeshMetadata { name: "bodies".into(), arrays: vec![] })
    }
    fn mesh(&self, _name: &str) -> sensei::Result<DataObject> {
        Ok(DataObject::Table(self.table.clone()))
    }
    fn time(&self) -> f64 {
        0.0
    }
    fn time_step(&self) -> u64 {
        self.step
    }
}

const SIM_BYTES: usize = N * COLUMNS * 8;

#[test]
fn zero_copy_coupling_adds_no_device_memory() {
    World::new(1).run(|_comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sim = Sim::new(node.clone());
        let dev = node.device(0).unwrap();
        assert_eq!(dev.used_bytes(), SIM_BYTES, "simulation footprint");

        // A lockstep consumer accessing the table in place: handing out
        // the mesh and taking same-device views allocates nothing.
        let mesh = sim.mesh("bodies").unwrap();
        let table = mesh.as_table().unwrap();
        let views: Vec<_> = table
            .columns()
            .iter()
            .map(|c| svtk::downcast::<f64>(c).unwrap().cuda_accessible(0).unwrap())
            .collect();
        assert!(views.iter().all(|v| v.is_direct()));
        assert_eq!(dev.used_bytes(), SIM_BYTES, "zero-copy access must not increase the footprint");
    });
}

#[test]
fn async_snapshot_doubles_the_published_footprint_until_dropped() {
    World::new(1).run(|_comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sim = Sim::new(node.clone());
        let dev = node.device(0).unwrap();
        let before = dev.used_bytes();

        // The asynchronous method's deep copy: one extra copy of every
        // published array while the snapshot is alive...
        let snapshot = SnapshotAdaptor::capture(&sim).unwrap();
        assert_eq!(dev.used_bytes(), before + SIM_BYTES, "deep copy doubles the published data");
        // ...released as soon as the in situ thread is done with it.
        drop(snapshot);
        assert_eq!(dev.used_bytes(), before, "snapshot memory returned");
    });
}

#[test]
fn mismatched_placement_pays_temporaries_that_views_release() {
    World::new(1).run(|_comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let sim = Sim::new(node.clone());
        let dev1 = node.device(1).unwrap();
        assert_eq!(dev1.used_bytes(), 0);

        // Accessing device-0 data from device 1 allocates temporaries...
        let mesh = sim.mesh("bodies").unwrap();
        let table = mesh.as_table().unwrap();
        let views: Vec<_> = table
            .columns()
            .iter()
            .map(|c| svtk::downcast::<f64>(c).unwrap().cuda_accessible(1).unwrap())
            .collect();
        assert!(views.iter().all(|v| !v.is_direct()));
        assert_eq!(dev1.used_bytes(), SIM_BYTES, "one temporary per column");

        // ...which the shared-pointer semantics release with the views.
        drop(views);
        assert_eq!(dev1.used_bytes(), 0, "temporaries freed when views drop");
    });
}

#[test]
fn partial_snapshot_pays_only_for_the_requested_arrays() {
    World::new(1).run(|_comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sim = Sim::new(node.clone());
        let dev = node.device(0).unwrap();
        let before = dev.used_bytes();

        // A back-end that declares it reads only `a` and `c` gets a
        // snapshot holding exactly those two columns: half the copy, half
        // the footprint of a full deep copy.
        let req = sensei::DataRequirements::none().with_arrays(
            "bodies",
            svtk::FieldAssociation::Point,
            ["a", "c"],
        );
        let snapshot = SnapshotAdaptor::capture_with(&sim, &req).unwrap();
        let copied = dev.used_bytes() - before;
        assert_eq!(copied, 2 * N * 8, "partial snapshot copies exactly the two requested columns");
        assert!(copied < SIM_BYTES, "strictly fewer bytes than a full snapshot");

        let mesh = snapshot.mesh("bodies").unwrap();
        let table = mesh.as_table().unwrap();
        assert_eq!(table.columns().len(), 2);
        assert!(table.column("a").is_some() && table.column("c").is_some());
        assert!(table.column("b").is_none() && table.column("d").is_none());

        drop(mesh);
        drop(snapshot);
        assert_eq!(dev.used_bytes(), before, "partial snapshot memory returned");
    });
}
