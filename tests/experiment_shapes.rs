//! The qualitative findings of the paper's §4.4, asserted on live runs of
//! the experiment harness (scaled down, with the virtual-time model on).
//!
//! These are *shape* assertions with wide margins — the quantities are
//! wall-clock measurements of a modeled system, so exact values vary,
//! but the orderings the paper reports must hold.

use std::sync::Mutex;

use bench::{run_case, CaseConfig};
use sensei::{ExecutionMethod, Placement};

/// The assertions compare wall-clock measurements, so the tests in this
/// binary must not run concurrently with each other — each spawns a
/// multi-rank simulation and they would contend for cores.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn cfg(placement: Placement, execution: ExecutionMethod) -> CaseConfig {
    CaseConfig {
        bodies: 1024,
        // Enough steps that warm-up costs (first-touch raw allocations
        // before the pool is hot) amortize out of the per-iteration means.
        steps: 8,
        resolution: 32,
        instances: 3,
        // In debug builds the unmodeled real closure time is an order of
        // magnitude larger than in release; scale the modeled time up so
        // it still dominates and the shapes stay measurable.
        time_scale: if cfg!(debug_assertions) { 5.0 } else { 1.0 },
        ..CaseConfig::small(placement, execution)
    }
}

#[test]
fn async_apparent_insitu_cost_is_far_below_lockstep() {
    let _serial = serial();
    // §4.4: "The apparent time spent in in situ processing when
    // asynchronous execution was used was very small ... This makes it
    // look like in situ is effectively free."
    for placement in [Placement::SameDevice, Placement::Host] {
        let lock = run_case(&cfg(placement, ExecutionMethod::Lockstep));
        let asyn = run_case(&cfg(placement, ExecutionMethod::Asynchronous));
        assert!(
            asyn.mean_insitu.as_secs_f64() < lock.mean_insitu.as_secs_f64() / 3.0,
            "{}: async apparent {:?} should be << lockstep {:?}",
            placement.label(),
            asyn.mean_insitu,
            lock.mean_insitu
        );
        let bound = if cfg!(debug_assertions) { 0.100 } else { 0.020 };
        assert!(
            asyn.mean_insitu.as_secs_f64() < bound,
            "{}: async apparent cost {:?} should be far below the lockstep cost",
            placement.label(),
            asyn.mean_insitu
        );
    }
}

#[test]
fn async_reduces_total_runtime_for_dedicated_placements() {
    let _serial = serial();
    // §4.4: "across all placements, executing in situ asynchronously is
    // beneficial and reduced the total run time". We assert it on the
    // dedicated placements, where the margin is widest and the check is
    // robust to scheduler noise.
    for placement in [Placement::DedicatedDevices(1), Placement::DedicatedDevices(2)] {
        let lock = run_case(&cfg(placement, ExecutionMethod::Lockstep));
        let asyn = run_case(&cfg(placement, ExecutionMethod::Asynchronous));
        assert!(
            asyn.total < lock.total,
            "{}: async {:?} should beat lockstep {:?}",
            placement.label(),
            asyn.total,
            lock.total
        );
    }
}

#[test]
fn dedicated_device_placement_is_slower_than_shared_placements() {
    let _serial = serial();
    // §4.4: "The placements assigning one or two dedicated devices for in
    // situ processing made use of a reduced total number of MPI ranks ...
    // The reduced levels of concurrency led to longer run times."
    let same = run_case(&cfg(Placement::SameDevice, ExecutionMethod::Lockstep));
    let dedicated = run_case(&cfg(Placement::DedicatedDevices(1), ExecutionMethod::Lockstep));
    assert!(
        dedicated.total.as_secs_f64() > same.total.as_secs_f64() * 1.2,
        "1 dedicated device {:?} should be clearly slower than same-device {:?}",
        dedicated.total,
        same.total
    );
    // And it uses fewer ranks, as Table 1 records.
    assert_eq!(same.ranks, 4);
    assert_eq!(dedicated.ranks, 3);
}

#[test]
fn async_apparent_insitu_shape_holds_with_the_pool_disabled() {
    let _serial = serial();
    // The caching pool is a performance layer, not a semantics layer:
    // the paper's headline ordering must hold whether or not buffer
    // requests are served from the pool's free lists.
    for pool in [true, false] {
        let mk = |execution| CaseConfig { pool, ..cfg(Placement::SameDevice, execution) };
        let lock = run_case(&mk(ExecutionMethod::Lockstep));
        let asyn = run_case(&mk(ExecutionMethod::Asynchronous));
        assert!(
            asyn.mean_insitu.as_secs_f64() < lock.mean_insitu.as_secs_f64() / 3.0,
            "pool={pool}: async apparent {:?} should be << lockstep {:?}",
            asyn.mean_insitu,
            lock.mean_insitu
        );
    }
}

#[test]
fn async_execution_slows_the_solver_down() {
    let _serial = serial();
    // §4.4: "comparing the solver time between the lockstep and
    // asynchronous cases ... the solver was slowed down across all
    // placements when the in situ was executed asynchronously." Asserted
    // on the host placement where contention is structural (in situ
    // occupies the host slots the solver's exchange phase needs). Run at
    // the full 9-instance workload: with only 3 instances the host slots
    // are mostly idle and the slowdown drowns in scheduler noise.
    let full = |execution| CaseConfig {
        time_scale: cfg(Placement::Host, execution).time_scale,
        ..CaseConfig::small(Placement::Host, execution)
    };
    let lock = run_case(&full(ExecutionMethod::Lockstep));
    let asyn = run_case(&full(ExecutionMethod::Asynchronous));
    assert!(
        asyn.mean_solver > lock.mean_solver,
        "async solver {:?} should exceed lockstep solver {:?}",
        asyn.mean_solver,
        lock.mean_solver
    );
}
