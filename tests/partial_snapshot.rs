//! Requirements-driven partial snapshots: an asynchronous back-end that
//! declares the arrays it reads gets a snapshot with only those arrays —
//! strictly fewer bytes deep-copied — and produces results bit-identical
//! to a run whose snapshots copy everything the simulation publishes.

use std::sync::Arc;

use parking_lot::Mutex;
use std::time::Duration;

use devsim::{NodeConfig, SimNode};
use minimpi::World;
use sensei::{
    AnalysisAdaptor, BackendControls, Bridge, DataAdaptor, DataRequirements, DeviceSpec,
    ExecContext, ExecutionMethod, MeshMetadata, OverflowPolicy, Result, SnapshotAdaptor,
};
use svtk::{Allocator, DataObject, HamrDataArray, HamrStream, StreamMode, TableData};

use binning::{BinnedResult, BinningAnalysis, BinningSpec, VarOp};

const N: usize = 512;
/// Two axis columns, one operand, two columns the binning never reads.
const COLUMNS: [&str; 5] = ["x", "y", "mass", "unused_a", "unused_b"];

/// A deterministic table that changes every step.
struct Sim {
    table: TableData,
    step: u64,
}

impl Sim {
    fn at_step(node: Arc<SimNode>, step: u64) -> Self {
        let mut table = TableData::new();
        for (c, name) in COLUMNS.iter().enumerate() {
            let data: Vec<f64> =
                (0..N).map(|i| ((i * (c + 1)) as f64 * 0.125).sin() + step as f64).collect();
            let col = HamrDataArray::<f64>::from_slice(
                *name,
                node.clone(),
                &data,
                1,
                Allocator::OpenMp,
                Some(0),
                HamrStream::default_stream(),
                StreamMode::Sync,
            )
            .unwrap();
            table.set_column(col.as_array_ref());
        }
        Sim { table, step }
    }
}

impl DataAdaptor for Sim {
    fn num_meshes(&self) -> usize {
        1
    }
    fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
        Ok(MeshMetadata { name: "bodies".into(), arrays: vec![] })
    }
    fn mesh(&self, _name: &str) -> Result<DataObject> {
        Ok(DataObject::Table(self.table.clone()))
    }
    fn time(&self) -> f64 {
        self.step as f64
    }
    fn time_step(&self) -> u64 {
        self.step
    }
}

/// Wraps a back-end, overriding its requirements with "copy everything" —
/// the pre-partial-snapshot behaviour, used as the reference run.
struct ForceFullCopy(BinningAnalysis);

impl AnalysisAdaptor for ForceFullCopy {
    fn name(&self) -> &str {
        "force_full_copy"
    }
    fn controls(&self) -> &BackendControls {
        self.0.controls()
    }
    fn controls_mut(&mut self) -> &mut BackendControls {
        self.0.controls_mut()
    }
    fn required_arrays(&self) -> DataRequirements {
        DataRequirements::All
    }
    fn execute(&mut self, data: &dyn DataAdaptor, ctx: &ExecContext<'_>) -> Result<bool> {
        self.0.execute(data, ctx)
    }
    fn finalize(&mut self, ctx: &ExecContext<'_>) -> Result<()> {
        self.0.finalize(ctx)
    }
}

fn spec() -> BinningSpec {
    BinningSpec::new(
        "bodies",
        ("x", "y"),
        8,
        vec![VarOp::parse("count()").unwrap(), VarOp::parse("sum(mass)").unwrap()],
    )
}

fn async_controls() -> BackendControls {
    BackendControls {
        execution: ExecutionMethod::Asynchronous,
        device: DeviceSpec::Host,
        queue_depth: 4,
        overflow: OverflowPolicy::Block,
        ..Default::default()
    }
}

/// Run `steps` iterations with the back-end `make` builds; return its
/// results.
fn run(
    make: impl Fn() -> Box<dyn AnalysisAdaptor> + Send + Sync,
    steps: u64,
    sink: Arc<Mutex<Vec<BinnedResult>>>,
) -> Vec<BinnedResult> {
    World::new(1).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(make(), &comm).expect("attach");
        for step in 0..steps {
            let sim = Sim::at_step(node.clone(), step);
            bridge.execute(&sim, &comm, Duration::ZERO).expect("execute");
        }
        bridge.finalize(&comm).expect("finalize");
    });
    let results = sink.lock().clone();
    results
}

#[test]
fn subset_run_is_bit_identical_to_full_copy_run() {
    let steps = 3;

    // Sanity: the back-end's declaration really is a subset.
    assert!(matches!(BinningAnalysis::new(spec()).required_arrays(), DataRequirements::Subset(_)));

    let subset_sink: Arc<Mutex<Vec<BinnedResult>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = subset_sink.clone();
    let subset_results = run(
        move || {
            Box::new(
                BinningAnalysis::new(spec())
                    .with_sink(sink.clone())
                    .with_controls(async_controls()),
            )
        },
        steps,
        subset_sink,
    );

    let full_sink: Arc<Mutex<Vec<BinnedResult>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = full_sink.clone();
    let full_results = run(
        move || {
            Box::new(ForceFullCopy(
                BinningAnalysis::new(spec())
                    .with_sink(sink.clone())
                    .with_controls(async_controls()),
            ))
        },
        steps,
        full_sink,
    );

    assert_eq!(subset_results.len(), steps as usize);
    assert_eq!(full_results.len(), steps as usize);
    for (s, f) in subset_results.iter().zip(&full_results) {
        assert_eq!(s.step, f.step);
        assert_eq!(s.arrays.len(), f.arrays.len());
        for ((sn, sv), (fn_, fv)) in s.arrays.iter().zip(&f.arrays) {
            assert_eq!(sn, fn_);
            assert_eq!(sv.len(), fv.len());
            for (i, (a, b)) in sv.iter().zip(fv).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "step {} array '{}' bin {}: subset {} != full {}",
                    s.step,
                    sn,
                    i,
                    a,
                    b
                );
            }
        }
    }
}

#[test]
fn subset_snapshot_copies_strictly_fewer_bytes() {
    World::new(1).run(|_comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sim = Sim::at_step(node.clone(), 0);
        let dev = node.device(0).unwrap();
        let before = dev.used_bytes();

        let full = SnapshotAdaptor::capture(&sim).unwrap();
        let full_bytes = dev.used_bytes() - before;
        drop(full);

        let req = BinningAnalysis::new(spec()).required_arrays();
        let partial = SnapshotAdaptor::capture_with(&sim, &req).unwrap();
        let partial_bytes = dev.used_bytes() - before;
        drop(partial);

        assert_eq!(full_bytes, COLUMNS.len() * N * 8, "full copy duplicates every column");
        assert_eq!(partial_bytes, 3 * N * 8, "subset copies x, y, mass only");
        assert!(partial_bytes < full_bytes, "strictly fewer bytes than the full deep copy");
        assert_eq!(dev.used_bytes(), before);
    });
}
