//! The caching pool's headline behaviours, end to end through the full
//! stack (devsim → hamr → svtk → sensei snapshots → binning back-ends):
//!
//! 1. The asynchronous 90-op binning workload reaches a steady state in
//!    which no raw allocations happen at all — every buffer request is
//!    served from the pool's free lists.
//! 2. Snapshot capture is bit-identical with the pool on and off: the
//!    pool is a performance layer, never a semantics layer.
//! 3. Repeated snapshot captures reuse pooled blocks deterministically.

use std::sync::Arc;

use devsim::{NodeConfig, PoolConfig, SimNode};
use minimpi::{Comm, World};
use newtonpp::{forces::Gravity, ic::UniformIc, IcKind, Newton, NewtonAdaptor, NewtonConfig};
use sensei::{BackendControls, Bridge, DataAdaptor, DeviceSpec, ExecutionMethod, SnapshotAdaptor};

fn newton_cfg(bodies: usize) -> NewtonConfig {
    NewtonConfig {
        ic: IcKind::Uniform(UniformIc {
            n: bodies,
            seed: 7,
            half_width: 1.0,
            mass_range: (0.5, 1.5),
            velocity_scale: 0.1,
            central_mass: bodies as f64,
        }),
        dt: 1e-4,
        grav: Gravity { g: 1.0, eps: 0.05 },
        x_extent: (-2.0, 2.0),
        repartition_every: None,
    }
}

fn new_sim(node: Arc<SimNode>, comm: &Comm) -> Newton {
    Newton::new(node, comm, 0, newton_cfg(64)).expect("init simulation")
}

/// One full bridge lifecycle: attach the paper's 9 binning instances
/// (10 variable reductions each = 90 ops) asynchronously on device 0,
/// run `steps` iterations, finalize (which drains the workers, so the
/// node is quiescent when this returns).
fn run_phase(node: Arc<SimNode>, steps: u64) {
    World::new(1).run(move |comm| {
        let mut sim = new_sim(node.clone(), &comm);
        let controls = BackendControls {
            execution: ExecutionMethod::Asynchronous,
            device: DeviceSpec::Explicit(0),
            ..Default::default()
        };
        let mut bridge = Bridge::new(node.clone());
        for spec in bench::paper_binning_specs(16) {
            let analysis = binning::BinningAnalysis::new(spec).with_controls(controls);
            bridge.add_analysis(Box::new(analysis), &comm).expect("attach analysis");
        }
        for _ in 0..steps {
            let solver = sim.step(&comm).expect("solver step");
            let adaptor = NewtonAdaptor::new(&sim);
            bridge.execute(&adaptor, &comm, solver).expect("in situ execute");
        }
        bridge.finalize(&comm).expect("finalize");
    });
}

/// With pooling on (the default), the asynchronous 90-op binning case
/// performs zero raw allocations in steady state.
///
/// The pool's cached working set grows monotonically toward the
/// workload's peak concurrent demand (nothing is trimmed here), but how
/// fast it gets there depends on thread scheduling — a phase only grows
/// the cache by the overlap it happened to exhibit. So warm-up phases
/// repeat until *three consecutive* phases add no raw allocations: the
/// pool then covers the demand of every schedule the workload produces.
/// The budget is generous because convergence is guaranteed but its
/// speed is not: each non-clean phase strictly grows the inventory
/// toward the workload's (finite) peak demand, and the loop exits as
/// soon as the streak is reached — typically within six phases.
#[test]
fn async_binning_reaches_zero_raw_alloc_steady_state() {
    let node = SimNode::new(NodeConfig::fast_test(1));
    let mut prev = node.pool_stats_total().raw_allocs;
    let mut clean_streak = 0;
    for _ in 0..40 {
        run_phase(node.clone(), 3);
        let now = node.pool_stats_total().raw_allocs;
        clean_streak = if now == prev { clean_streak + 1 } else { 0 };
        prev = now;
        if clean_streak == 3 {
            break;
        }
    }
    assert_eq!(
        clean_streak, 3,
        "pool never reached a zero-raw-allocation steady state within 40 phases"
    );
    let total = node.pool_stats_total();
    assert!(total.hits > total.misses, "steady state should be hit-dominated");
}

/// Deep-copy the simulation's published state and pull every f64 column
/// back to the host, as raw bit patterns.
fn capture_columns(pool: bool) -> Vec<(String, Vec<u64>)> {
    let node = SimNode::new(NodeConfig::fast_test(1));
    if !pool {
        node.pool().configure(PoolConfig::disabled());
    }
    World::new(1)
        .run(move |comm| {
            let mut sim = new_sim(node.clone(), &comm);
            for _ in 0..3 {
                sim.step(&comm).expect("solver step");
            }
            let adaptor = NewtonAdaptor::new(&sim);
            let snap = SnapshotAdaptor::capture(&adaptor).expect("capture");
            let mut out = Vec::new();
            for i in 0..snap.num_meshes() {
                let md = snap.mesh_metadata(i).expect("metadata");
                let obj = snap.mesh(&md.name).expect("mesh");
                let Some(table) = obj.as_table() else { continue };
                for col in table.columns() {
                    let Some(arr) = col.as_any().downcast_ref::<svtk::HamrDataArray<f64>>() else {
                        continue;
                    };
                    let bits = arr.to_vec().expect("to_vec").iter().map(|v| v.to_bits()).collect();
                    out.push((col.name().to_string(), bits));
                }
            }
            out
        })
        .pop()
        .expect("one rank")
}

#[test]
fn snapshot_capture_is_bit_identical_pool_on_and_off() {
    let on = capture_columns(true);
    let off = capture_columns(false);
    assert!(!on.is_empty(), "the simulation publishes f64 columns");
    assert_eq!(on.len(), off.len());
    for ((name_on, bits_on), (name_off, bits_off)) in on.iter().zip(&off) {
        assert_eq!(name_on, name_off);
        assert_eq!(bits_on, bits_off, "column '{name_on}' differs between pool modes");
    }
}

#[test]
fn repeated_snapshot_capture_reuses_pooled_blocks() {
    let node = SimNode::new(NodeConfig::fast_test(1));
    let stats_node = node.clone();
    let (raw_delta, hit_delta) = World::new(1)
        .run(move |comm| {
            let mut sim = new_sim(node.clone(), &comm);
            sim.step(&comm).expect("solver step");
            let adaptor = NewtonAdaptor::new(&sim);
            // Warm-up capture populates the pool; capture synchronizes,
            // so dropping it leaves every block ready for reuse.
            drop(SnapshotAdaptor::capture(&adaptor).expect("warm-up capture"));
            let warm = node.pool_stats_total();
            let snap = SnapshotAdaptor::capture(&adaptor).expect("second capture");
            let after = node.pool_stats_total();
            drop(snap);
            (after.raw_allocs - warm.raw_allocs, after.hits - warm.hits)
        })
        .pop()
        .expect("one rank");
    assert_eq!(raw_delta, 0, "the second capture must be served entirely from the pool");
    assert!(hit_delta > 0, "the second capture reuses the warm-up capture's blocks");
    assert!(stats_node.pool_stats_total().bytes_served_from_cache > 0);
}
