//! Failure injection across crate boundaries: errors raised deep in the
//! substrate must surface through the mediation layer, not hang or
//! silently corrupt. Includes the asynchronous backpressure paths: a full
//! bounded queue under each overflow policy, and worker errors/panics
//! surfacing from both `execute` and `finalize`.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use devsim::{DeviceParams, NodeConfig, SimNode};
use minimpi::World;
use sensei::{
    AnalysisAdaptor, AnalysisRegistry, BackendControls, Bridge, ConfigurableAnalysis,
    CreateContext, DataAdaptor, DeviceSpec, Error, ExecContext, ExecutionMethod, MeshMetadata,
    OverflowPolicy, Result,
};
use svtk::{Allocator, DataObject, HamrDataArray, HamrStream, StreamMode, TableData};

use binning::{BinningAnalysis, BinningSpec, VarOp};

/// A table with columns `x, y, mass` on the host.
struct Tiny {
    table: TableData,
}

impl Tiny {
    fn new(node: Arc<SimNode>) -> Self {
        let mut table = TableData::new();
        for name in ["x", "y", "mass"] {
            let a = HamrDataArray::<f64>::from_slice(
                name,
                node.clone(),
                &[0.5, 0.25],
                1,
                Allocator::Malloc,
                None,
                HamrStream::default_stream(),
                StreamMode::Sync,
            )
            .unwrap();
            table.set_column(a.as_array_ref());
        }
        Tiny { table }
    }
}

impl DataAdaptor for Tiny {
    fn num_meshes(&self) -> usize {
        1
    }
    fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
        Ok(MeshMetadata { name: "bodies".into(), arrays: vec![] })
    }
    fn mesh(&self, name: &str) -> Result<DataObject> {
        if name == "bodies" {
            Ok(DataObject::Table(self.table.clone()))
        } else {
            Err(Error::NoSuchMesh { name: name.into() })
        }
    }
    fn time(&self) -> f64 {
        0.0
    }
    fn time_step(&self) -> u64 {
        0
    }
}

#[test]
fn missing_variable_surfaces_as_no_such_array() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let spec = BinningSpec::new(
            "bodies",
            ("x", "y"),
            4,
            vec![VarOp::parse("sum(not_a_column)").unwrap()],
        );
        let analysis = BinningAnalysis::new(spec)
            .with_controls(BackendControls { device: DeviceSpec::Host, ..Default::default() });
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(analysis), &comm).unwrap();
        let sim = Tiny::new(node);
        let err = bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap_err();
        assert!(matches!(err, Error::NoSuchArray { .. }), "got {err:?}");
    });
}

#[test]
fn missing_mesh_surfaces_as_no_such_mesh() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let spec =
            BinningSpec::new("wrong_mesh", ("x", "y"), 4, vec![VarOp::parse("count()").unwrap()]);
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(BinningAnalysis::new(spec)), &comm).unwrap();
        let sim = Tiny::new(node);
        let err = bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap_err();
        assert!(matches!(err, Error::NoSuchMesh { .. }), "got {err:?}");
    });
}

#[test]
fn device_oom_propagates_through_the_stack() {
    World::new(1).run(|comm| {
        // A device too small for the binning scratch allocations.
        let node = SimNode::new(NodeConfig {
            num_devices: 1,
            device: DeviceParams { memory_bytes: 64, ..DeviceParams::default() },
            time_scale: 0.0,
            ..NodeConfig::default()
        });
        let spec =
            BinningSpec::new("bodies", ("x", "y"), 64, vec![VarOp::parse("count()").unwrap()]);
        let analysis = BinningAnalysis::new(spec).with_controls(BackendControls {
            device: DeviceSpec::Explicit(0),
            ..Default::default()
        });
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(analysis), &comm).unwrap();
        let sim = Tiny::new(node);
        let err = bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap_err();
        match err {
            Error::Device(devsim::Error::OutOfMemory { .. }) => {}
            Error::Hamr(hamr::Error::Device(devsim::Error::OutOfMemory { .. })) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    });
}

#[test]
fn execute_after_finalize_is_rejected() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let mut bridge = Bridge::new(node.clone());
        let spec =
            BinningSpec::new("bodies", ("x", "y"), 4, vec![VarOp::parse("count()").unwrap()]);
        bridge.add_analysis(Box::new(BinningAnalysis::new(spec)), &comm).unwrap();
        let sim = Tiny::new(node);
        bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap();
        // finalize consumes the bridge; attaching afterwards is a compile
        // error by construction, which is the strongest rejection. The
        // runtime check covers the internal flag path.
        let profiler = bridge.finalize(&comm).unwrap();
        assert_eq!(profiler.records().len(), 1);
    });
}

#[test]
fn bad_xml_configurations_error_cleanly() {
    let reg = {
        let mut r = AnalysisRegistry::new();
        binning::register(&mut r);
        r
    };
    let node = SimNode::new(NodeConfig::fast_test(1));
    let ctx = CreateContext { node, rank: 0, size: 1 };

    // Unknown back-end type.
    let cfg = ConfigurableAnalysis::from_xml(r#"<sensei><analysis type="warp_drive"/></sensei>"#)
        .unwrap();
    assert!(matches!(cfg.instantiate(&reg, &ctx), Err(Error::UnknownAnalysisType { .. })));

    // Back-end specific validation failure (no axes).
    let cfg = ConfigurableAnalysis::from_xml(
        r#"<sensei><analysis type="data_binning"><operations>count()</operations></analysis></sensei>"#,
    )
    .unwrap();
    assert!(matches!(cfg.instantiate(&reg, &ctx), Err(Error::Config(_))));

    // Malformed document.
    assert!(ConfigurableAnalysis::from_xml("<sensei><analysis").is_err());
}

#[test]
fn mismatched_column_type_is_reported() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        // A table whose `mass` column is i32, not double.
        let mut table = TableData::new();
        for name in ["x", "y"] {
            let a = HamrDataArray::<f64>::from_slice(
                name,
                node.clone(),
                &[0.5],
                1,
                Allocator::Malloc,
                None,
                HamrStream::default_stream(),
                StreamMode::Sync,
            )
            .unwrap();
            table.set_column(a.as_array_ref());
        }
        let bad = HamrDataArray::<i32>::from_slice(
            "mass",
            node.clone(),
            &[1],
            1,
            Allocator::Malloc,
            None,
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();
        table.set_column(bad.as_array_ref());

        struct Holder {
            table: TableData,
        }
        impl DataAdaptor for Holder {
            fn num_meshes(&self) -> usize {
                1
            }
            fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
                Ok(MeshMetadata { name: "bodies".into(), arrays: vec![] })
            }
            fn mesh(&self, _n: &str) -> Result<DataObject> {
                Ok(DataObject::Table(self.table.clone()))
            }
            fn time(&self) -> f64 {
                0.0
            }
            fn time_step(&self) -> u64 {
                0
            }
        }

        let spec =
            BinningSpec::new("bodies", ("x", "y"), 4, vec![VarOp::parse("sum(mass)").unwrap()]);
        let analysis = BinningAnalysis::new(spec)
            .with_controls(BackendControls { device: DeviceSpec::Host, ..Default::default() });
        let mut bridge = Bridge::new(node);
        bridge.add_analysis(Box::new(analysis), &comm).unwrap();
        let err = bridge.execute(&Holder { table }, &comm, std::time::Duration::ZERO).unwrap_err();
        assert!(matches!(err, Error::Analysis(_)), "got {err:?}");
    });
}

// ---------------------------------------------------------------------------
// Asynchronous backpressure and worker-failure injection.
// ---------------------------------------------------------------------------

/// A one-way latch both sides can wait on with a timeout.
#[derive(Default)]
struct Latch {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    /// Wait until opened; false on timeout.
    fn wait_for(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut open = self.open.lock().unwrap();
        while !*open {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            let (guard, _) = self.cv.wait_timeout(open, left).unwrap();
            open = guard;
        }
        true
    }
}

/// `Tiny` with a settable time step, so queued snapshots are tellable
/// apart.
struct Stepped {
    inner: Tiny,
    step: u64,
}

impl DataAdaptor for Stepped {
    fn num_meshes(&self) -> usize {
        self.inner.num_meshes()
    }
    fn mesh_metadata(&self, i: usize) -> Result<MeshMetadata> {
        self.inner.mesh_metadata(i)
    }
    fn mesh(&self, name: &str) -> Result<DataObject> {
        self.inner.mesh(name)
    }
    fn time(&self) -> f64 {
        self.step as f64
    }
    fn time_step(&self) -> u64 {
        self.step
    }
}

/// An asynchronous back-end whose worker blocks on `release` (opened once
/// by the test) and records the snapshot steps it processed. While the
/// worker sits on the first snapshot the test can fill the bounded queue
/// deterministically.
struct Gated {
    controls: BackendControls,
    started: Arc<Latch>,
    release: Arc<Latch>,
    processed: Arc<Mutex<Vec<u64>>>,
}

impl AnalysisAdaptor for Gated {
    fn name(&self) -> &str {
        "gated"
    }
    fn controls(&self) -> &BackendControls {
        &self.controls
    }
    fn controls_mut(&mut self) -> &mut BackendControls {
        &mut self.controls
    }
    fn execute(&mut self, data: &dyn DataAdaptor, _ctx: &ExecContext<'_>) -> Result<bool> {
        self.processed.lock().unwrap().push(data.time_step());
        self.started.open();
        assert!(self.release.wait_for(Duration::from_secs(30)), "test never released worker");
        Ok(true)
    }
}

fn async_controls(queue_depth: usize, overflow: OverflowPolicy) -> BackendControls {
    BackendControls {
        execution: ExecutionMethod::Asynchronous,
        device: DeviceSpec::Host,
        queue_depth,
        overflow,
        ..Default::default()
    }
}

struct GatedSetup {
    started: Arc<Latch>,
    release: Arc<Latch>,
    processed: Arc<Mutex<Vec<u64>>>,
}

fn gated(queue_depth: usize, overflow: OverflowPolicy) -> (Gated, GatedSetup) {
    let setup = GatedSetup {
        started: Arc::new(Latch::default()),
        release: Arc::new(Latch::default()),
        processed: Arc::new(Mutex::new(Vec::new())),
    };
    let adaptor = Gated {
        controls: async_controls(queue_depth, overflow),
        started: setup.started.clone(),
        release: setup.release.clone(),
        processed: setup.processed.clone(),
    };
    (adaptor, setup)
}

#[test]
fn full_queue_with_error_policy_fails_the_submit() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let (adaptor, setup) = gated(2, OverflowPolicy::Error);
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(adaptor), &comm).unwrap();

        let mut sim = Stepped { inner: Tiny::new(node), step: 0 };
        bridge.execute(&sim, &comm, Duration::ZERO).unwrap();
        assert!(setup.started.wait_for(Duration::from_secs(10)), "worker never started");

        // Worker holds snapshot 0; these two fill the depth-2 queue.
        for step in [1, 2] {
            sim.step = step;
            bridge.execute(&sim, &comm, Duration::ZERO).unwrap();
        }
        sim.step = 3;
        let err = bridge.execute(&sim, &comm, Duration::ZERO).unwrap_err();
        assert!(matches!(err, Error::Analysis(_)), "got {err:?}");
        assert!(err.to_string().contains("full"), "got {err}");

        setup.release.open();
        bridge.finalize(&comm).unwrap();
        assert_eq!(*setup.processed.lock().unwrap(), vec![0, 1, 2], "step 3 was rejected");
    });
}

#[test]
fn full_queue_with_drop_oldest_policy_evicts_the_oldest_snapshot() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let (adaptor, setup) = gated(2, OverflowPolicy::DropOldest);
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(adaptor), &comm).unwrap();

        let mut sim = Stepped { inner: Tiny::new(node), step: 0 };
        bridge.execute(&sim, &comm, Duration::ZERO).unwrap();
        assert!(setup.started.wait_for(Duration::from_secs(10)), "worker never started");

        // Queue fills with snapshots 1 and 2; snapshot 3 evicts 1.
        for step in [1, 2, 3] {
            sim.step = step;
            bridge.execute(&sim, &comm, Duration::ZERO).unwrap();
        }

        setup.release.open();
        bridge.finalize(&comm).unwrap();
        assert_eq!(
            *setup.processed.lock().unwrap(),
            vec![0, 2, 3],
            "the oldest queued snapshot was dropped, the rest kept their order"
        );
    });
}

#[test]
fn full_queue_with_block_policy_waits_for_space() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let (adaptor, setup) = gated(1, OverflowPolicy::Block);
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(adaptor), &comm).unwrap();

        let mut sim = Stepped { inner: Tiny::new(node), step: 0 };
        bridge.execute(&sim, &comm, Duration::ZERO).unwrap();
        assert!(setup.started.wait_for(Duration::from_secs(10)), "worker never started");

        // Worker holds snapshot 0 and the depth-1 queue holds snapshot 1.
        sim.step = 1;
        bridge.execute(&sim, &comm, Duration::ZERO).unwrap();

        // Snapshot 2 must block until the worker (released from another
        // thread after a delay) dequeues snapshot 1.
        let hold = Duration::from_millis(150);
        let release = setup.release.clone();
        let opener = std::thread::spawn(move || {
            std::thread::sleep(hold);
            release.open();
        });
        let t0 = Instant::now();
        sim.step = 2;
        bridge.execute(&sim, &comm, Duration::ZERO).unwrap();
        assert!(
            t0.elapsed() >= hold / 2,
            "submit returned after {:?}; it should have blocked on the full queue",
            t0.elapsed()
        );
        opener.join().unwrap();

        bridge.finalize(&comm).unwrap();
        assert_eq!(*setup.processed.lock().unwrap(), vec![0, 1, 2], "nothing was dropped");
    });
}

/// An asynchronous back-end whose worker fails on its first snapshot.
struct Exploding {
    controls: BackendControls,
    by_panic: bool,
}

impl AnalysisAdaptor for Exploding {
    fn name(&self) -> &str {
        "exploding"
    }
    fn controls(&self) -> &BackendControls {
        &self.controls
    }
    fn controls_mut(&mut self) -> &mut BackendControls {
        &mut self.controls
    }
    fn execute(&mut self, _data: &dyn DataAdaptor, _ctx: &ExecContext<'_>) -> Result<bool> {
        if self.by_panic {
            panic!("injected worker panic");
        }
        Err(Error::Analysis("injected worker failure".into()))
    }
}

#[test]
fn worker_error_surfaces_from_finalize() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let adaptor =
            Exploding { controls: async_controls(4, OverflowPolicy::Block), by_panic: false };
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(adaptor), &comm).unwrap();

        let sim = Stepped { inner: Tiny::new(node), step: 0 };
        bridge.execute(&sim, &comm, Duration::ZERO).unwrap();
        let err = bridge.finalize(&comm).unwrap_err();
        assert!(matches!(err, Error::Analysis(_)), "got {err:?}");
        assert!(err.to_string().contains("injected worker failure"), "got {err}");
    });
}

#[test]
fn worker_panic_surfaces_from_finalize() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let adaptor =
            Exploding { controls: async_controls(4, OverflowPolicy::Block), by_panic: true };
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(adaptor), &comm).unwrap();

        let sim = Stepped { inner: Tiny::new(node), step: 0 };
        bridge.execute(&sim, &comm, Duration::ZERO).unwrap();
        let err = bridge.finalize(&comm).unwrap_err();
        assert!(matches!(err, Error::Analysis(_)), "got {err:?}");
        assert!(err.to_string().contains("panicked"), "got {err}");
    });
}

#[test]
fn worker_death_surfaces_from_a_later_execute() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let adaptor =
            Exploding { controls: async_controls(4, OverflowPolicy::Block), by_panic: false };
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(adaptor), &comm).unwrap();

        let mut sim = Stepped { inner: Tiny::new(node), step: 0 };
        bridge.execute(&sim, &comm, Duration::ZERO).unwrap();

        // The worker dies on snapshot 0; a subsequent submit must fail
        // with the worker's error rather than queueing into the void.
        let deadline = Instant::now() + Duration::from_secs(10);
        let err = loop {
            std::thread::sleep(Duration::from_millis(5));
            sim.step += 1;
            match bridge.execute(&sim, &comm, Duration::ZERO) {
                Ok(_) => assert!(Instant::now() < deadline, "worker death never surfaced"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, Error::Analysis(_)), "got {err:?}");
        assert!(err.to_string().contains("injected worker failure"), "got {err}");
    });
}
