//! Failure injection across crate boundaries: errors raised deep in the
//! substrate must surface through the mediation layer, not hang or
//! silently corrupt.

use std::sync::Arc;

use devsim::{DeviceParams, NodeConfig, SimNode};
use minimpi::World;
use sensei::{
    AnalysisRegistry, BackendControls, Bridge, ConfigurableAnalysis, CreateContext, DataAdaptor,
    DeviceSpec, Error, MeshMetadata, Result,
};
use svtk::{Allocator, DataObject, HamrDataArray, HamrStream, StreamMode, TableData};

use binning::{BinningAnalysis, BinningSpec, VarOp};

/// A table with columns `x, y, mass` on the host.
struct Tiny {
    table: TableData,
}

impl Tiny {
    fn new(node: Arc<SimNode>) -> Self {
        let mut table = TableData::new();
        for name in ["x", "y", "mass"] {
            let a = HamrDataArray::<f64>::from_slice(
                name,
                node.clone(),
                &[0.5, 0.25],
                1,
                Allocator::Malloc,
                None,
                HamrStream::default_stream(),
                StreamMode::Sync,
            )
            .unwrap();
            table.set_column(a.as_array_ref());
        }
        Tiny { table }
    }
}

impl DataAdaptor for Tiny {
    fn num_meshes(&self) -> usize {
        1
    }
    fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
        Ok(MeshMetadata { name: "bodies".into(), arrays: vec![] })
    }
    fn mesh(&self, name: &str) -> Result<DataObject> {
        if name == "bodies" {
            Ok(DataObject::Table(self.table.clone()))
        } else {
            Err(Error::NoSuchMesh { name: name.into() })
        }
    }
    fn time(&self) -> f64 {
        0.0
    }
    fn time_step(&self) -> u64 {
        0
    }
}

#[test]
fn missing_variable_surfaces_as_no_such_array() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let spec = BinningSpec::new(
            "bodies",
            ("x", "y"),
            4,
            vec![VarOp::parse("sum(not_a_column)").unwrap()],
        );
        let analysis = BinningAnalysis::new(spec)
            .with_controls(BackendControls { device: DeviceSpec::Host, ..Default::default() });
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(analysis), &comm).unwrap();
        let sim = Tiny::new(node);
        let err = bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap_err();
        assert!(matches!(err, Error::NoSuchArray { .. }), "got {err:?}");
    });
}

#[test]
fn missing_mesh_surfaces_as_no_such_mesh() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let spec =
            BinningSpec::new("wrong_mesh", ("x", "y"), 4, vec![VarOp::parse("count()").unwrap()]);
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(BinningAnalysis::new(spec)), &comm).unwrap();
        let sim = Tiny::new(node);
        let err = bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap_err();
        assert!(matches!(err, Error::NoSuchMesh { .. }), "got {err:?}");
    });
}

#[test]
fn device_oom_propagates_through_the_stack() {
    World::new(1).run(|comm| {
        // A device too small for the binning scratch allocations.
        let node = SimNode::new(NodeConfig {
            num_devices: 1,
            device: DeviceParams { memory_bytes: 64, ..DeviceParams::default() },
            time_scale: 0.0,
            ..NodeConfig::default()
        });
        let spec =
            BinningSpec::new("bodies", ("x", "y"), 64, vec![VarOp::parse("count()").unwrap()]);
        let analysis = BinningAnalysis::new(spec).with_controls(BackendControls {
            device: DeviceSpec::Explicit(0),
            ..Default::default()
        });
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(analysis), &comm).unwrap();
        let sim = Tiny::new(node);
        let err = bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap_err();
        match err {
            Error::Device(devsim::Error::OutOfMemory { .. }) => {}
            Error::Hamr(hamr::Error::Device(devsim::Error::OutOfMemory { .. })) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    });
}

#[test]
fn execute_after_finalize_is_rejected() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let mut bridge = Bridge::new(node.clone());
        let spec = BinningSpec::new("bodies", ("x", "y"), 4, vec![VarOp::parse("count()").unwrap()]);
        bridge.add_analysis(Box::new(BinningAnalysis::new(spec)), &comm).unwrap();
        let sim = Tiny::new(node);
        bridge.execute(&sim, &comm, std::time::Duration::ZERO).unwrap();
        // finalize consumes the bridge; attaching afterwards is a compile
        // error by construction, which is the strongest rejection. The
        // runtime check covers the internal flag path.
        let profiler = bridge.finalize(&comm).unwrap();
        assert_eq!(profiler.records().len(), 1);
    });
}

#[test]
fn bad_xml_configurations_error_cleanly() {
    let reg = {
        let mut r = AnalysisRegistry::new();
        binning::register(&mut r);
        r
    };
    let node = SimNode::new(NodeConfig::fast_test(1));
    let ctx = CreateContext { node, rank: 0, size: 1 };

    // Unknown back-end type.
    let cfg = ConfigurableAnalysis::from_xml(
        r#"<sensei><analysis type="warp_drive"/></sensei>"#,
    )
    .unwrap();
    assert!(matches!(
        cfg.instantiate(&reg, &ctx),
        Err(Error::UnknownAnalysisType { .. })
    ));

    // Back-end specific validation failure (no axes).
    let cfg = ConfigurableAnalysis::from_xml(
        r#"<sensei><analysis type="data_binning"><operations>count()</operations></analysis></sensei>"#,
    )
    .unwrap();
    assert!(matches!(cfg.instantiate(&reg, &ctx), Err(Error::Config(_))));

    // Malformed document.
    assert!(ConfigurableAnalysis::from_xml("<sensei><analysis").is_err());
}

#[test]
fn mismatched_column_type_is_reported() {
    World::new(1).run(|comm| {
        let node = SimNode::new(NodeConfig::fast_test(1));
        // A table whose `mass` column is i32, not double.
        let mut table = TableData::new();
        for name in ["x", "y"] {
            let a = HamrDataArray::<f64>::from_slice(
                name,
                node.clone(),
                &[0.5],
                1,
                Allocator::Malloc,
                None,
                HamrStream::default_stream(),
                StreamMode::Sync,
            )
            .unwrap();
            table.set_column(a.as_array_ref());
        }
        let bad = HamrDataArray::<i32>::from_slice(
            "mass",
            node.clone(),
            &[1],
            1,
            Allocator::Malloc,
            None,
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();
        table.set_column(bad.as_array_ref());

        struct Holder {
            table: TableData,
        }
        impl DataAdaptor for Holder {
            fn num_meshes(&self) -> usize {
                1
            }
            fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
                Ok(MeshMetadata { name: "bodies".into(), arrays: vec![] })
            }
            fn mesh(&self, _n: &str) -> Result<DataObject> {
                Ok(DataObject::Table(self.table.clone()))
            }
            fn time(&self) -> f64 {
                0.0
            }
            fn time_step(&self) -> u64 {
                0
            }
        }

        let spec =
            BinningSpec::new("bodies", ("x", "y"), 4, vec![VarOp::parse("sum(mass)").unwrap()]);
        let analysis = BinningAnalysis::new(spec)
            .with_controls(BackendControls { device: DeviceSpec::Host, ..Default::default() });
        let mut bridge = Bridge::new(node);
        bridge.add_analysis(Box::new(analysis), &comm).unwrap();
        let err = bridge
            .execute(&Holder { table }, &comm, std::time::Duration::ZERO)
            .unwrap_err();
        assert!(matches!(err, Error::Analysis(_)), "got {err:?}");
    });
}
