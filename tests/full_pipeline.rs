//! End-to-end integration: Newton++ → SENSEI bridge → data binning,
//! across ranks, placements, and execution methods, checked for physical
//! and numerical consistency.

use std::sync::Arc;

use binning::{BinOp, BinningAnalysis, BinningSpec, ResultSink, VarOp};
use devsim::{NodeConfig, SimNode};
use minimpi::World;
use newtonpp::{forces::Gravity, ic::UniformIc, IcKind, Newton, NewtonAdaptor, NewtonConfig};
use parking_lot::Mutex;
use sensei::{BackendControls, Bridge, DeviceSpec, ExecutionMethod};

const BODIES: usize = 256;
const STEPS: u64 = 4;

fn newton_cfg() -> NewtonConfig {
    NewtonConfig {
        ic: IcKind::Uniform(UniformIc {
            n: BODIES,
            seed: 99,
            half_width: 1.0,
            mass_range: (0.5, 1.5),
            velocity_scale: 0.1,
            central_mass: 50.0,
        }),
        dt: 1e-4,
        grav: Gravity { g: 1.0, eps: 0.05 },
        x_extent: (-2.0, 2.0),
        repartition_every: None,
    }
}

fn mass_spec() -> BinningSpec {
    BinningSpec::new(
        "bodies",
        ("x", "y"),
        16,
        vec![
            VarOp { var: String::new(), op: BinOp::Count },
            VarOp { var: "mass".into(), op: BinOp::Sum },
            VarOp { var: "ke".into(), op: BinOp::Sum },
        ],
    )
}

/// Run the full pipeline and return the per-step results (recorded on
/// rank 0 by the sink).
fn run_pipeline(
    ranks: usize,
    execution: ExecutionMethod,
    device: DeviceSpec,
) -> Vec<binning::BinnedResult> {
    let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
    let sink2 = sink.clone();
    World::new(ranks).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(ranks.max(2)));
        let mut sim = Newton::new(node.clone(), &comm, comm.rank(), newton_cfg()).unwrap();
        let analysis = BinningAnalysis::new(mass_spec())
            .with_sink(sink2.clone())
            .with_controls(BackendControls { execution, device, ..Default::default() });
        let mut bridge = Bridge::new(node);
        bridge.add_analysis(Box::new(analysis), &comm).unwrap();
        for _ in 0..STEPS {
            let solver = sim.step(&comm).unwrap();
            let adaptor = NewtonAdaptor::new(&sim);
            bridge.execute(&adaptor, &comm, solver).unwrap();
        }
        bridge.finalize(&comm).unwrap();
    });
    let out = sink.lock().clone();
    out
}

#[test]
fn binning_conserves_bodies_and_mass_every_step() {
    let results = run_pipeline(3, ExecutionMethod::Lockstep, DeviceSpec::Auto);
    assert_eq!(results.len() as u64, STEPS);
    let mass0: f64 = results[0].array("sum_mass").unwrap().iter().sum();
    for (i, r) in results.iter().enumerate() {
        let count: f64 = r.array("count").unwrap().iter().sum();
        assert_eq!(count as usize, BODIES, "step {i}: all bodies binned (auto bounds)");
        let mass: f64 = r.array("sum_mass").unwrap().iter().sum();
        assert!((mass - mass0).abs() < 1e-9, "step {i}: mass conserved in binning");
        let ke: f64 = r.array("sum_ke").unwrap().iter().sum();
        assert!(ke > 0.0, "step {i}: kinetic energy positive");
    }
}

#[test]
fn async_results_equal_lockstep_results() {
    // The asynchronous method operates on deep-copied snapshots; the
    // numbers it produces must be identical to lockstep's.
    let lock = run_pipeline(2, ExecutionMethod::Lockstep, DeviceSpec::Auto);
    let asyn = run_pipeline(2, ExecutionMethod::Asynchronous, DeviceSpec::Auto);
    assert_eq!(lock.len(), asyn.len());
    for (l, a) in lock.iter().zip(&asyn) {
        assert_eq!(l.step, a.step);
        for name in ["count", "sum_mass", "sum_ke"] {
            let lv = l.array(name).unwrap();
            let av = a.array(name).unwrap();
            assert_eq!(lv, av, "step {}: '{name}' must match bit-for-bit", l.step);
        }
    }
}

#[test]
fn host_and_device_placements_agree() {
    let host = run_pipeline(2, ExecutionMethod::Lockstep, DeviceSpec::Host);
    let dev = run_pipeline(2, ExecutionMethod::Lockstep, DeviceSpec::Auto);
    for (h, d) in host.iter().zip(&dev) {
        for name in ["count", "sum_mass"] {
            let hv = h.array(name).unwrap();
            let dv = d.array(name).unwrap();
            for (i, (a, b)) in hv.iter().zip(dv).enumerate() {
                assert!((a - b).abs() < 1e-9, "step {} bin {i}: host {a} vs device {b}", h.step);
            }
        }
    }
}

#[test]
fn single_rank_pipeline_works() {
    let results = run_pipeline(1, ExecutionMethod::Asynchronous, DeviceSpec::Explicit(0));
    assert_eq!(results.len() as u64, STEPS);
    assert_eq!(results[0].array("count").unwrap().iter().sum::<f64>() as usize, BODIES);
}

#[test]
fn repartitioning_and_in_situ_compose() {
    let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
    let sink2 = sink.clone();
    World::new(2).run(move |comm| {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let mut cfg = newton_cfg();
        cfg.repartition_every = Some(2);
        let mut sim = Newton::new(node.clone(), &comm, comm.rank(), cfg).unwrap();
        let analysis = BinningAnalysis::new(mass_spec()).with_sink(sink2.clone());
        let mut bridge = Bridge::new(node);
        bridge.add_analysis(Box::new(analysis), &comm).unwrap();
        for _ in 0..STEPS {
            let solver = sim.step(&comm).unwrap();
            let adaptor = NewtonAdaptor::new(&sim);
            bridge.execute(&adaptor, &comm, solver).unwrap();
        }
        bridge.finalize(&comm).unwrap();
    });
    let results = sink.lock();
    for r in results.iter() {
        assert_eq!(
            r.array("count").unwrap().iter().sum::<f64>() as usize,
            BODIES,
            "bodies survive migration"
        );
    }
}
