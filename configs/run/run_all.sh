#!/usr/bin/env bash
# Reproduce every experiment (the analog of the paper's SLURM batch
# scripts, Appendix A). Run from the repository root.
set -euo pipefail

OUT=${OUT:-results}
mkdir -p "$OUT"

echo "== Table 1: the experiment matrix =="
cargo run --release -p bench --bin harness -- table1

echo
echo "== Figures 2 and 3: the 8-case placement/execution sweep =="
cargo run --release -p bench --bin harness -- figure2 --out "$OUT"

echo
echo "== Figure 1: n-body + mass-sum binning in the x-y and x-z planes =="
cargo run --release -p bench --bin figure1 -- --out "$OUT/figure1"

echo
echo "== The paper's 90-operation XML workload, both execution methods =="
cargo run --release -p bench --bin harness -- run-config configs/sensei_xml/binning_90ops_lockstep.xml --steps 5
cargo run --release -p bench --bin harness -- run-config configs/sensei_xml/binning_90ops_async.xml --steps 5
cargo run --release -p bench --bin harness -- run-config configs/sensei_xml/binning_90ops_fused.xml --steps 5

echo
echo "== Criterion micro/ablation benchmarks =="
cargo bench --workspace

echo
echo "All experiment outputs are under $OUT/ and target/criterion/."
