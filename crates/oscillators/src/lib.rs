//! # oscillators — the SENSEI miniapp
//!
//! SENSEI's canonical demonstration simulation: a set of oscillator
//! sources (periodic, damped, or decaying) evaluated over a uniform
//! Cartesian grid that is block-decomposed across MPI ranks. Next to
//! Newton++'s tabular data, this miniapp exercises the *mesh* side of the
//! data model: each rank publishes its block of the global grid as
//! `svtk::ImageData` inside a `svtk::MultiBlock`, with the field array
//! adopted zero-copy from device memory.
//!
//! ```
//! use minimpi::World;
//! use devsim::{NodeConfig, SimNode};
//! use oscillators::{Oscillator, OscillatorsConfig, OscillatorsSim};
//!
//! let sums = World::new(2).run(|comm| {
//!     let node = SimNode::new(NodeConfig::fast_test(2));
//!     let cfg = OscillatorsConfig {
//!         oscillators: vec![Oscillator::periodic([0.5, 0.5, 0.0], 0.3, 6.0, 1.0)],
//!         ..OscillatorsConfig::small()
//!     };
//!     let mut sim = OscillatorsSim::new(node, &comm, comm.rank(), cfg).unwrap();
//!     sim.step(&comm).unwrap();
//!     sim.local_field().unwrap().iter().sum::<f64>()
//! });
//! assert!(sums.iter().all(|s| s.is_finite()));
//! ```

mod model;
mod sim;

pub use model::{Oscillator, OscillatorKind};
pub use sim::{OscillatorsAdaptor, OscillatorsConfig, OscillatorsSim};
