//! The block-decomposed, device-offloaded field evaluation and its
//! SENSEI data adaptor.

use std::sync::Arc;

use devsim::{CellBuffer, KernelCost, SimNode, Stream};
use hamr::{Allocator, HamrStream, StreamMode};
use minimpi::Comm;
use sensei::{ArrayMetadata, DataAdaptor, Error, MeshMetadata, Result};
use svtk::{DataObject, FieldAssociation, HamrDataArray, ImageData, MultiBlock};

use crate::model::Oscillator;

/// Configuration of the miniapp.
#[derive(Debug, Clone, PartialEq)]
pub struct OscillatorsConfig {
    /// The oscillator sources.
    pub oscillators: Vec<Oscillator>,
    /// Global grid cells per axis.
    pub cells: [usize; 3],
    /// Domain bounds.
    pub bounds: ([f64; 3], [f64; 3]),
    /// Time step.
    pub dt: f64,
}

impl OscillatorsConfig {
    /// A small default: one damped source on a 16³ unit grid.
    pub fn small() -> Self {
        OscillatorsConfig {
            oscillators: vec![Oscillator::damped([0.5, 0.5, 0.5], 0.25, 6.0, 0.1, 1.0)],
            cells: [16, 16, 16],
            bounds: ([0.0; 3], [1.0; 3]),
            dt: 0.01,
        }
    }
}

/// One rank's slab of the global grid (split along x, in cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Extent {
    /// First owned cell index along x.
    x0: usize,
    /// One past the last owned cell index along x.
    x1: usize,
}

fn slab(cells_x: usize, rank: usize, size: usize) -> Extent {
    let base = cells_x / size;
    let rem = cells_x % size;
    let x0 = rank * base + rank.min(rem);
    let width = base + usize::from(rank < rem);
    Extent { x0, x1: x0 + width }
}

/// The oscillators simulation on one rank.
///
/// The field is point-centered on the rank's block of the global grid
/// and lives in device memory; every step one kernel re-evaluates it at
/// the new time (cost `O(points × oscillators)`).
pub struct OscillatorsSim {
    node: Arc<SimNode>,
    device: usize,
    stream: Arc<Stream>,
    cfg: OscillatorsConfig,
    extent: Extent,
    ranks: usize,
    rank: usize,
    field: CellBuffer,
    time: f64,
    step: u64,
}

impl OscillatorsSim {
    /// Set up the rank's block and evaluate the field at `t = 0`.
    pub fn new(
        node: Arc<SimNode>,
        comm: &Comm,
        device: usize,
        cfg: OscillatorsConfig,
    ) -> Result<OscillatorsSim> {
        assert!(
            cfg.cells[0] >= comm.size(),
            "need at least one x-slab of cells per rank ({} cells, {} ranks)",
            cfg.cells[0],
            comm.size()
        );
        let extent = slab(cfg.cells[0], comm.rank(), comm.size());
        let stream = node.device(device)?.create_stream();
        // Point-centered block: local x-points = local cells + 1 (blocks
        // share their boundary points, as VTK extents do).
        let n = Self::local_points_of(&cfg, extent);
        let field = node.device(device)?.alloc_f64(n)?;
        let mut sim = OscillatorsSim {
            node,
            device,
            stream,
            cfg,
            extent,
            ranks: comm.size(),
            rank: comm.rank(),
            field,
            time: 0.0,
            step: 0,
        };
        sim.evaluate()?;
        Ok(sim)
    }

    fn local_points_of(cfg: &OscillatorsConfig, e: Extent) -> usize {
        (e.x1 - e.x0 + 1) * (cfg.cells[1] + 1) * (cfg.cells[2] + 1)
    }

    /// Number of field points this rank owns.
    pub fn local_points(&self) -> usize {
        Self::local_points_of(&self.cfg, self.extent)
    }

    /// Grid spacing per axis.
    pub fn spacing(&self) -> [f64; 3] {
        let (lo, hi) = self.cfg.bounds;
        [
            (hi[0] - lo[0]) / self.cfg.cells[0] as f64,
            (hi[1] - lo[1]) / self.cfg.cells[1] as f64,
            (hi[2] - lo[2]) / self.cfg.cells[2] as f64,
        ]
    }

    /// Re-evaluate the field on the device at the current time.
    fn evaluate(&mut self) -> Result<()> {
        let n = self.local_points();
        let oscillators = self.cfg.oscillators.clone();
        let spacing = self.spacing();
        let origin = [
            self.cfg.bounds.0[0] + spacing[0] * self.extent.x0 as f64,
            self.cfg.bounds.0[1],
            self.cfg.bounds.0[2],
        ];
        let nx = self.extent.x1 - self.extent.x0 + 1;
        let ny = self.cfg.cells[1] + 1;
        let t = self.time;
        let field = self.field.clone();
        let cost =
            KernelCost { flops: 25.0 * n as f64 * oscillators.len() as f64, bytes: 8.0 * n as f64 };
        self.stream
            .launch("oscillators_eval", cost, move |scope| {
                let f = field.f64_view(scope)?;
                for idx in 0..f.len() {
                    let i = idx % nx;
                    let j = (idx / nx) % ny;
                    let k = idx / (nx * ny);
                    let p = [
                        origin[0] + spacing[0] * i as f64,
                        origin[1] + spacing[1] * j as f64,
                        origin[2] + spacing[2] * k as f64,
                    ];
                    let mut v = 0.0;
                    for o in &oscillators {
                        v += o.evaluate(p, t);
                    }
                    f.set(idx, v);
                }
                Ok(())
            })
            .map_err(Error::Device)
    }

    /// Advance one step: bump the clock and re-evaluate. Returns the
    /// solver wall time.
    pub fn step(&mut self, _comm: &Comm) -> Result<std::time::Duration> {
        let t0 = std::time::Instant::now();
        self.time += self.cfg.dt;
        self.step += 1;
        self.evaluate()?;
        self.stream.synchronize().map_err(Error::Device)?;
        Ok(t0.elapsed())
    }

    /// Download the local field to the host (diagnostics and tests).
    pub fn local_field(&self) -> Result<Vec<f64>> {
        let host = self.node.host_alloc_f64(self.field.len());
        self.stream.copy(&self.field, &host).map_err(Error::Device)?;
        self.stream.synchronize().map_err(Error::Device)?;
        Ok(host.host_f64_ro().map_err(Error::Device)?.to_vec())
    }

    /// The local block as `ImageData` with the field adopted zero-copy.
    fn local_block(&self) -> Result<ImageData> {
        let spacing = self.spacing();
        let (lo, _) = self.cfg.bounds;
        let local_cells = [self.extent.x1 - self.extent.x0, self.cfg.cells[1], self.cfg.cells[2]];
        let block_lo = [lo[0] + spacing[0] * self.extent.x0 as f64, lo[1], lo[2]];
        let block_hi = [
            lo[0] + spacing[0] * self.extent.x1 as f64,
            lo[1] + spacing[1] * self.cfg.cells[1] as f64,
            lo[2] + spacing[2] * self.cfg.cells[2] as f64,
        ];
        let mut img = ImageData::from_bounds(local_cells, block_lo, block_hi);
        let arr = HamrDataArray::<f64>::adopt(
            "data",
            self.node.clone(),
            self.field.clone(),
            1,
            Allocator::OpenMp,
            HamrStream::new(self.stream.clone()),
            StreamMode::Async,
        )?;
        img.data_mut(FieldAssociation::Point).set_array(arr.as_array_ref());
        Ok(img)
    }

    /// Current simulated time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Completed steps.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The device this rank's block lives on.
    pub fn device(&self) -> usize {
        self.device
    }

    /// The node.
    pub fn node(&self) -> &Arc<SimNode> {
        &self.node
    }
}

/// SENSEI data adaptor: publishes the block-decomposed grid as the mesh
/// `mesh` (a [`MultiBlock`] with one block per rank; this rank's block is
/// populated, others are empty).
pub struct OscillatorsAdaptor<'a> {
    sim: &'a OscillatorsSim,
}

impl<'a> OscillatorsAdaptor<'a> {
    /// Wrap the simulation.
    pub fn new(sim: &'a OscillatorsSim) -> Self {
        OscillatorsAdaptor { sim }
    }
}

impl DataAdaptor for OscillatorsAdaptor<'_> {
    fn num_meshes(&self) -> usize {
        1
    }

    fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
        Ok(MeshMetadata {
            name: "mesh".into(),
            arrays: vec![ArrayMetadata {
                name: "data".into(),
                association: FieldAssociation::Point,
                components: 1,
                type_name: "double",
                device: Some(self.sim.device),
            }],
        })
    }

    fn mesh(&self, name: &str) -> Result<DataObject> {
        if name != "mesh" {
            return Err(Error::NoSuchMesh { name: name.to_string() });
        }
        let mut mb = MultiBlock::new(self.sim.ranks);
        mb.set_block(self.sim.rank, DataObject::Image(self.sim.local_block()?));
        Ok(DataObject::Multi(mb))
    }

    fn time(&self) -> f64 {
        self.sim.time
    }

    fn time_step(&self) -> u64 {
        self.sim.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devsim::NodeConfig;
    use minimpi::World;

    fn cfg() -> OscillatorsConfig {
        OscillatorsConfig {
            oscillators: vec![
                Oscillator::periodic([0.5, 0.5, 0.5], 0.2, 6.0, 1.0),
                Oscillator::decay([0.1, 0.1, 0.1], 0.3, 0.5, 2.0),
            ],
            cells: [12, 8, 4],
            bounds: ([0.0; 3], [1.2, 0.8, 0.4]),
            dt: 0.05,
        }
    }

    /// Host reference field evaluation over the rank's block.
    fn reference_field(cfg: &OscillatorsConfig, e: Extent, t: f64) -> Vec<f64> {
        let sx = (cfg.bounds.1[0] - cfg.bounds.0[0]) / cfg.cells[0] as f64;
        let sy = (cfg.bounds.1[1] - cfg.bounds.0[1]) / cfg.cells[1] as f64;
        let sz = (cfg.bounds.1[2] - cfg.bounds.0[2]) / cfg.cells[2] as f64;
        let (nx, ny, nz) = (e.x1 - e.x0 + 1, cfg.cells[1] + 1, cfg.cells[2] + 1);
        let mut out = Vec::with_capacity(nx * ny * nz);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let p = [
                        cfg.bounds.0[0] + sx * (e.x0 + i) as f64,
                        cfg.bounds.0[1] + sy * j as f64,
                        cfg.bounds.0[2] + sz * k as f64,
                    ];
                    out.push(cfg.oscillators.iter().map(|o| o.evaluate(p, t)).sum());
                }
            }
        }
        out
    }

    #[test]
    fn slabs_tile_the_x_axis() {
        for (cells, ranks) in [(12, 3), (13, 3), (7, 2), (5, 5)] {
            let mut covered = 0;
            for r in 0..ranks {
                let e = slab(cells, r, ranks);
                assert_eq!(e.x0, covered, "contiguous");
                assert!(e.x1 > e.x0, "nonempty");
                covered = e.x1;
            }
            assert_eq!(covered, cells);
        }
    }

    #[test]
    fn device_field_matches_reference() {
        let results = World::new(3).run(|comm| {
            let node = SimNode::new(NodeConfig::fast_test(3));
            let mut sim = OscillatorsSim::new(node, &comm, comm.rank(), cfg()).unwrap();
            sim.step(&comm).unwrap();
            sim.step(&comm).unwrap();
            (sim.local_field().unwrap(), sim.extent, sim.time())
        });
        let c = cfg();
        for (field, extent, t) in results {
            let expect = reference_field(&c, extent, t);
            assert_eq!(field.len(), expect.len());
            for (a, b) in field.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-12, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn adaptor_publishes_one_populated_block_per_rank() {
        World::new(2).run(|comm| {
            let node = SimNode::new(NodeConfig::fast_test(2));
            let sim = OscillatorsSim::new(node, &comm, comm.rank(), cfg()).unwrap();
            let adaptor = OscillatorsAdaptor::new(&sim);
            let mesh = adaptor.mesh("mesh").unwrap();
            let mb = mesh.as_multi().unwrap();
            assert_eq!(mb.num_blocks(), 2);
            assert_eq!(mb.num_local_blocks(), 1);
            let (idx, block) = mb.local_blocks().next().unwrap();
            assert_eq!(idx, comm.rank());
            let img = block.as_image().unwrap();
            let arr = img.data(FieldAssociation::Point).array("data").unwrap();
            assert_eq!(arr.num_tuples(), sim.local_points());
            // Zero-copy: the published array aliases the device field.
            let typed = svtk::downcast::<f64>(arr).unwrap();
            assert!(typed.data().same_allocation(&sim.field));
            assert!(adaptor.mesh("bogus").is_err());
        });
    }

    #[test]
    fn blocks_share_boundary_points_consistently() {
        // The field value at a shared block boundary must be identical on
        // both owning ranks (same world coordinates, same sources).
        let results = World::new(2).run(|comm| {
            let node = SimNode::new(NodeConfig::fast_test(2));
            let sim = OscillatorsSim::new(node, &comm, comm.rank(), cfg()).unwrap();
            let field = sim.local_field().unwrap();
            let nx = sim.extent.x1 - sim.extent.x0 + 1;
            // The x-line at (j=0, k=0): rank 0's last point and rank 1's
            // first point are the same world point.
            if comm.rank() == 0 {
                field[nx - 1]
            } else {
                field[0]
            }
        });
        assert!((results[0] - results[1]).abs() < 1e-15);
    }

    #[test]
    fn time_advances_with_steps() {
        World::new(1).run(|comm| {
            let node = SimNode::new(NodeConfig::fast_test(1));
            let mut sim = OscillatorsSim::new(node, &comm, 0, cfg()).unwrap();
            assert_eq!(sim.step_count(), 0);
            assert_eq!(sim.time(), 0.0);
            sim.step(&comm).unwrap();
            assert_eq!(sim.step_count(), 1);
            assert!((sim.time() - 0.05).abs() < 1e-15);
        });
    }

    #[test]
    #[should_panic(expected = "at least one x-slab")]
    fn too_many_ranks_rejected() {
        World::new(4).run(|comm| {
            let node = SimNode::new(NodeConfig::fast_test(4));
            let mut c = cfg();
            c.cells = [2, 4, 4];
            let _ = OscillatorsSim::new(node, &comm, comm.rank(), c);
        });
    }
}
