//! Oscillator sources and their field contributions.

/// The temporal behaviour of a source (the miniapp's three kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OscillatorKind {
    /// `sin(ω t)` — steady oscillation.
    Periodic,
    /// `exp(-ζ ω t) sin(ω √(1-ζ²) t)` — damped oscillation.
    Damped,
    /// `exp(-ω t)` — pure decay.
    Decay,
}

impl OscillatorKind {
    /// The spelling used in `.osc` files.
    pub fn name(&self) -> &'static str {
        match self {
            OscillatorKind::Periodic => "periodic",
            OscillatorKind::Damped => "damped",
            OscillatorKind::Decay => "decay",
        }
    }

    /// Parse the `.osc` spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "periodic" => Some(OscillatorKind::Periodic),
            "damped" => Some(OscillatorKind::Damped),
            "decay" => Some(OscillatorKind::Decay),
            _ => None,
        }
    }
}

/// One oscillator source: a Gaussian spatial envelope around `center`
/// modulated by a temporal term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Oscillator {
    /// Temporal behaviour.
    pub kind: OscillatorKind,
    /// Source position.
    pub center: [f64; 3],
    /// Envelope radius (the Gaussian's sigma).
    pub radius: f64,
    /// Angular frequency ω (decay rate for [`OscillatorKind::Decay`]).
    pub omega: f64,
    /// Damping ratio ζ in `[0, 1)` (damped kind only).
    pub zeta: f64,
    /// Amplitude.
    pub amplitude: f64,
}

impl Oscillator {
    /// A periodic source.
    pub fn periodic(center: [f64; 3], radius: f64, omega: f64, amplitude: f64) -> Self {
        Oscillator { kind: OscillatorKind::Periodic, center, radius, omega, zeta: 0.0, amplitude }
    }

    /// A damped source.
    pub fn damped(center: [f64; 3], radius: f64, omega: f64, zeta: f64, amplitude: f64) -> Self {
        assert!((0.0..1.0).contains(&zeta), "damping ratio must be in [0, 1)");
        Oscillator { kind: OscillatorKind::Damped, center, radius, omega, zeta, amplitude }
    }

    /// A decaying source.
    pub fn decay(center: [f64; 3], radius: f64, omega: f64, amplitude: f64) -> Self {
        Oscillator { kind: OscillatorKind::Decay, center, radius, omega, zeta: 0.0, amplitude }
    }

    /// The temporal factor at time `t`.
    #[inline]
    pub fn temporal(&self, t: f64) -> f64 {
        match self.kind {
            OscillatorKind::Periodic => (self.omega * t).sin(),
            OscillatorKind::Damped => {
                let wd = self.omega * (1.0 - self.zeta * self.zeta).sqrt();
                (-self.zeta * self.omega * t).exp() * (wd * t).sin()
            }
            OscillatorKind::Decay => (-self.omega * t).exp(),
        }
    }

    /// The field contribution at point `p` and time `t`:
    /// `A · exp(-|p-c|² / 2r²) · temporal(t)`.
    #[inline]
    pub fn evaluate(&self, p: [f64; 3], t: f64) -> f64 {
        let dx = p[0] - self.center[0];
        let dy = p[1] - self.center[1];
        let dz = p[2] - self.center[2];
        let d2 = dx * dx + dy * dy + dz * dz;
        let envelope = (-d2 / (2.0 * self.radius * self.radius)).exp();
        self.amplitude * envelope * self.temporal(t)
    }

    /// Parse one `.osc` line: `kind x y z radius omega zeta [amplitude]`.
    /// Empty lines and `#` comments yield `None`.
    pub fn parse_line(line: &str) -> Result<Option<Oscillator>, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() < 7 {
            return Err(format!(
                "expected 'kind x y z radius omega zeta [amplitude]', got '{line}'"
            ));
        }
        let kind = OscillatorKind::parse(parts[0])
            .ok_or_else(|| format!("unknown oscillator kind '{}'", parts[0]))?;
        let num = |s: &str| s.parse::<f64>().map_err(|_| format!("bad number '{s}' in '{line}'"));
        let (x, y, z) = (num(parts[1])?, num(parts[2])?, num(parts[3])?);
        let radius = num(parts[4])?;
        let omega = num(parts[5])?;
        let zeta = num(parts[6])?;
        let amplitude = if parts.len() > 7 { num(parts[7])? } else { 1.0 };
        if radius <= 0.0 {
            return Err(format!("radius must be positive in '{line}'"));
        }
        if kind == OscillatorKind::Damped && !(0.0..1.0).contains(&zeta) {
            return Err(format!("damping ratio must be in [0, 1) in '{line}'"));
        }
        Ok(Some(Oscillator { kind, center: [x, y, z], radius, omega, zeta, amplitude }))
    }

    /// Parse a whole `.osc` document.
    pub fn parse_file(text: &str) -> Result<Vec<Oscillator>, String> {
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            match Self::parse_line(line) {
                Ok(Some(o)) => out.push(o),
                Ok(None) => {}
                Err(e) => return Err(format!("line {}: {e}", i + 1)),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_oscillates_with_known_period() {
        let o = Oscillator::periodic([0.0; 3], 1.0, std::f64::consts::TAU, 2.0);
        // At the center the envelope is 1: value = 2 sin(2π t).
        assert!(o.evaluate([0.0; 3], 0.0).abs() < 1e-12);
        assert!((o.evaluate([0.0; 3], 0.25) - 2.0).abs() < 1e-12);
        assert!((o.evaluate([0.0; 3], 0.75) + 2.0).abs() < 1e-12);
        assert!(o.evaluate([0.0; 3], 1.0).abs() < 1e-9);
    }

    #[test]
    fn envelope_decays_with_distance() {
        let o = Oscillator::decay([0.0; 3], 0.5, 0.0, 1.0);
        // omega = 0 -> temporal factor 1: pure spatial Gaussian.
        let at = |d: f64| o.evaluate([d, 0.0, 0.0], 0.0);
        assert!((at(0.0) - 1.0).abs() < 1e-12);
        assert!(at(0.5) < at(0.25));
        assert!((at(0.5) - (-0.5f64).exp()).abs() < 1e-12, "one sigma: e^-1/2");
        assert!(at(5.0) < 1e-10);
    }

    #[test]
    fn damped_amplitude_shrinks_over_periods() {
        let o = Oscillator::damped([0.0; 3], 1.0, 10.0, 0.2, 1.0);
        let early: f64 = (0..100).map(|i| o.temporal(i as f64 * 0.01).abs()).fold(0.0, f64::max);
        let late: f64 =
            (0..100).map(|i| o.temporal(2.0 + i as f64 * 0.01).abs()).fold(0.0, f64::max);
        assert!(late < early * 0.1, "late {late} vs early {early}");
    }

    #[test]
    fn decay_is_monotone() {
        let o = Oscillator::decay([0.0; 3], 1.0, 2.0, 1.0);
        let mut prev = f64::INFINITY;
        for i in 0..10 {
            let v = o.temporal(i as f64 * 0.3);
            assert!(v < prev && v > 0.0);
            prev = v;
        }
    }

    #[test]
    fn osc_file_roundtrip() {
        let text = "\
# SENSEI oscillators configuration
periodic  0.5 0.5 0.5   0.2  6.28 0
damped    0.2 0.8 0.1   0.1  12.0 0.1  2.5

decay     0.0 0.0 0.0   0.4  1.0  0
";
        let oscs = Oscillator::parse_file(text).unwrap();
        assert_eq!(oscs.len(), 3);
        assert_eq!(oscs[0].kind, OscillatorKind::Periodic);
        assert_eq!(oscs[1].kind, OscillatorKind::Damped);
        assert_eq!(oscs[1].amplitude, 2.5);
        assert_eq!(oscs[2].kind, OscillatorKind::Decay);
        assert_eq!(oscs[2].radius, 0.4);
    }

    #[test]
    fn bad_osc_lines_error_with_position() {
        for bad in [
            "wobbly 0 0 0 1 1 0",
            "periodic 0 0 0 1 1",
            "periodic 0 0 zero 1 1 0",
            "periodic 0 0 0 -1 1 0",
            "damped 0 0 0 1 1 1.5",
        ] {
            assert!(Oscillator::parse_line(bad).is_err(), "should reject: {bad}");
        }
        let err = Oscillator::parse_file("periodic 0 0 0 1 1 0\njunk").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in [OscillatorKind::Periodic, OscillatorKind::Damped, OscillatorKind::Decay] {
            assert_eq!(OscillatorKind::parse(k.name()), Some(k));
        }
    }
}
