//! A local stand-in for the `criterion` crate (the build environment has
//! no crates.io access). Provides the API surface the workspace's bench
//! targets use — groups, `bench_function` / `bench_with_input`,
//! `iter` / `iter_custom`, throughput annotation — with a simple
//! mean/min/max report instead of criterion's statistical machinery.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup { _parent: self, sample_size: 10, throughput: None }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_bench(&id.to_string(), 10, None, f);
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (criterion's statistical sample
    /// count; here simply the number of timed runs).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a per-iteration workload size
    /// so the report shows a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_bench(&id.to_string(), self.sample_size, self.throughput, f);
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_bench(&id.to_string(), self.sample_size, self.throughput, |b| f(b, input));
    }

    /// End the group.
    pub fn finish(self) {}
}

/// A benchmark identifier with a parameter component.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { full: format!("{name}/{parameter}") }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// Per-iteration workload size for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to the benchmark closure to time the measured region.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, one sample per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        self.samples.push(t0.elapsed());
    }

    /// Let the closure time itself: it receives an iteration count and
    /// returns the measured duration for that many iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let d = f(1);
        self.samples.push(d);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher { samples: Vec::with_capacity(samples) };
    for _ in 0..samples {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("{id:<44} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().expect("non-empty");
    let max = *b.samples.iter().max().expect("non-empty");
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.1} MiB/s", n as f64 / mean.as_secs_f64() / (1 << 20) as f64)
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.2} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
        }
        None => String::new(),
    };
    println!("{id:<44} mean {:>12.3?}  min {:>12.3?}  max {:>12.3?}{rate}", mean, min, max);
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0;
        group.bench_function("f", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("g", 4), &4usize, |b, &n| {
            b.iter_custom(|iters| Duration::from_nanos(iters * n as u64))
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("name", 32).to_string(), "name/32");
    }
}
