//! A local stand-in for the `rand` crate (the build environment has no
//! crates.io access). Provides a seedable xoshiro256** generator behind
//! the slice of the rand 0.9 API the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::random_range` over half-open
//! numeric ranges.
//!
//! Deterministic for a given seed, which is all the initial-condition
//! generators and tests rely on; statistical quality is xoshiro-grade,
//! not cryptographic.

use std::ops::Range;

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling API (the subset of `rand::Rng` in use).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open).
    fn random_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// A uniform sample of the type's full "unit" domain: `[0, 1)` for
    /// floats.
    fn random<T: SampleUnit>(&mut self) -> T {
        T::sample_unit(self)
    }
}

/// Types samplable from a half-open range.
pub trait SampleRange: Copy + PartialOrd {
    /// Uniform sample in `[range.start, range.end)`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Types with a canonical unit domain.
pub trait SampleUnit {
    /// Uniform sample of the unit domain.
    fn sample_unit<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleRange for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "random_range needs a non-empty range");
        let unit = f64::sample_unit(rng);
        range.start + unit * (range.end - range.start)
    }
}

impl SampleRange for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "random_range needs a non-empty range");
        let unit = f64::sample_unit(rng) as f32;
        range.start + unit * (range.end - range.start)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "random_range needs a non-empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is negligible for the spans used here
                // (tiny compared to 2^64).
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUnit for f64 {
    fn sample_unit<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as the xoshiro authors
            // recommend, so nearby seeds give unrelated streams.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.random_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.random_range(-3i64..4);
            assert!((-3..4).contains(&v));
        }
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| rng.random::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
