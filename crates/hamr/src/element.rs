//! Element types storable in HAMR buffers.
//!
//! The simulated device memory is an array of 64-bit cells; every
//! supported element type defines a lossless round-trip through a cell.
//! Narrow types are widened (one element per cell) — a simulator
//! simplification documented in DESIGN.md; capacity accounting still uses
//! the *logical* element size so memory-footprint experiments stay honest.

/// A scalar type that HAMR buffers can manage.
pub trait Element: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    /// C++-style type name (used by the data model for diagnostics).
    const TYPE_NAME: &'static str;

    /// Logical size in bytes (what a real implementation would allocate).
    const LOGICAL_SIZE: usize;

    /// Encode into a 64-bit cell.
    fn to_cell(self) -> u64;

    /// Decode from a 64-bit cell.
    fn from_cell(cell: u64) -> Self;

    /// The additive identity, used by fills and reductions.
    fn zero() -> Self;
}

impl Element for f64 {
    const TYPE_NAME: &'static str = "double";
    const LOGICAL_SIZE: usize = 8;
    fn to_cell(self) -> u64 {
        self.to_bits()
    }
    fn from_cell(cell: u64) -> Self {
        f64::from_bits(cell)
    }
    fn zero() -> Self {
        0.0
    }
}

impl Element for f32 {
    const TYPE_NAME: &'static str = "float";
    const LOGICAL_SIZE: usize = 4;
    fn to_cell(self) -> u64 {
        self.to_bits() as u64
    }
    fn from_cell(cell: u64) -> Self {
        f32::from_bits(cell as u32)
    }
    fn zero() -> Self {
        0.0
    }
}

impl Element for i64 {
    const TYPE_NAME: &'static str = "long long";
    const LOGICAL_SIZE: usize = 8;
    fn to_cell(self) -> u64 {
        self as u64
    }
    fn from_cell(cell: u64) -> Self {
        cell as i64
    }
    fn zero() -> Self {
        0
    }
}

impl Element for i32 {
    const TYPE_NAME: &'static str = "int";
    const LOGICAL_SIZE: usize = 4;
    fn to_cell(self) -> u64 {
        self as i64 as u64
    }
    fn from_cell(cell: u64) -> Self {
        cell as i64 as i32
    }
    fn zero() -> Self {
        0
    }
}

impl Element for u64 {
    const TYPE_NAME: &'static str = "unsigned long long";
    const LOGICAL_SIZE: usize = 8;
    fn to_cell(self) -> u64 {
        self
    }
    fn from_cell(cell: u64) -> Self {
        cell
    }
    fn zero() -> Self {
        0
    }
}

impl Element for u32 {
    const TYPE_NAME: &'static str = "unsigned int";
    const LOGICAL_SIZE: usize = 4;
    fn to_cell(self) -> u64 {
        self as u64
    }
    fn from_cell(cell: u64) -> Self {
        cell as u32
    }
    fn zero() -> Self {
        0
    }
}

impl Element for u8 {
    const TYPE_NAME: &'static str = "unsigned char";
    const LOGICAL_SIZE: usize = 1;
    fn to_cell(self) -> u64 {
        self as u64
    }
    fn from_cell(cell: u64) -> Self {
        cell as u8
    }
    fn zero() -> Self {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Element>(v: T) {
        assert_eq!(T::from_cell(v.to_cell()), v);
    }

    #[test]
    fn f64_roundtrips_including_special_values() {
        for v in [0.0, -0.0, 1.5, -3.25e300, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE] {
            roundtrip(v);
        }
        assert!(f64::from_cell(f64::NAN.to_cell()).is_nan());
    }

    #[test]
    fn f32_roundtrips() {
        for v in [0.0f32, -1.25, 3.4e38, f32::INFINITY] {
            roundtrip(v);
        }
    }

    #[test]
    fn signed_integers_preserve_sign() {
        roundtrip(-1i64);
        roundtrip(i64::MIN);
        roundtrip(i64::MAX);
        roundtrip(-1i32);
        roundtrip(i32::MIN);
        roundtrip(i32::MAX);
    }

    #[test]
    fn unsigned_integers_roundtrip() {
        roundtrip(u64::MAX);
        roundtrip(u32::MAX);
        roundtrip(255u8);
    }

    #[test]
    fn logical_sizes_match_c_types() {
        assert_eq!(f64::LOGICAL_SIZE, 8);
        assert_eq!(f32::LOGICAL_SIZE, 4);
        assert_eq!(i32::LOGICAL_SIZE, 4);
        assert_eq!(u8::LOGICAL_SIZE, 1);
    }

    #[test]
    fn type_names_match_vtk_spellings() {
        assert_eq!(f64::TYPE_NAME, "double");
        assert_eq!(i32::TYPE_NAME, "int");
        assert_eq!(u8::TYPE_NAME, "unsigned char");
    }
}
