//! Location- and PM-agnostic access views.

use std::marker::PhantomData;

use devsim::{CellBuffer, HostU64View, MemSpace};

use crate::element::Element;
use crate::error::{Error, Result};
use crate::layout::{LayoutMap, Mapping};

/// A read view of a buffer's data in the place the caller asked for.
///
/// Returned by [`crate::HamrBuffer::host_accessible`] and
/// [`crate::HamrBuffer::device_accessible`]. When the data was already
/// accessible where requested the view is **direct** (zero-copy); when it
/// was not, the view owns an automatically managed **temporary** that the
/// data was moved into, released when the view drops — the role the
/// returned `std::shared_ptr` plays in the C++ implementation.
///
/// Views of a layout-grouped buffer carry the group's [`LayoutMap`]:
/// [`AccessView::get`], [`AccessView::to_vec`] and [`AccessView::iter`]
/// translate logical indices through it, so access code is identical for
/// every physical layout. [`AccessView::cells`] hands out the raw backing
/// block and is only meaningful for unmapped views — it debug-asserts on
/// a mapped view so a non-scalar layout can never silently misread.
///
/// In asynchronous stream mode the movement may still be in flight when
/// the view is returned; call [`crate::HamrBuffer::synchronize`] before
/// consuming the data, as the paper's Listings 3 and 4 do.
pub struct AccessView<T: Element> {
    cells: CellBuffer,
    direct: bool,
    pm_converted: bool,
    map: Option<LayoutMap>,
    /// Cells gathered through an in-flight relayout to materialize this
    /// view (0 when access needed no layout change).
    relayout_cells: usize,
    _marker: PhantomData<T>,
}

impl<T: Element> AccessView<T> {
    pub(crate) fn new(cells: CellBuffer, direct: bool, pm_converted: bool) -> Self {
        AccessView {
            cells,
            direct,
            pm_converted,
            map: None,
            relayout_cells: 0,
            _marker: PhantomData,
        }
    }

    /// A view whose element addresses go through `map` (grouped buffers
    /// granted in place).
    pub(crate) fn new_mapped(cells: CellBuffer, direct: bool, map: LayoutMap) -> Self {
        AccessView {
            cells,
            direct,
            pm_converted: false,
            map: Some(map),
            relayout_cells: 0,
            _marker: PhantomData,
        }
    }

    pub(crate) fn with_relayout(mut self, cells: usize) -> Self {
        self.relayout_cells = cells;
        self
    }

    /// Number of elements visible through the view.
    pub fn len(&self) -> usize {
        match &self.map {
            Some(m) => m.len(),
            None => self.cells.len(),
        }
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when access was granted in place (zero-copy); false when a
    /// temporary was allocated and the data moved.
    pub fn is_direct(&self) -> bool {
        self.direct
    }

    /// True when the grant crossed programming models (e.g. OpenMP-managed
    /// data accessed from CUDA) — the interoperability path of §2.
    pub fn pm_converted(&self) -> bool {
        self.pm_converted
    }

    /// The layout map the view's element addresses go through, if the
    /// viewed buffer is part of a layout group granted in place.
    pub fn layout_map(&self) -> Option<LayoutMap> {
        self.map
    }

    /// Cells that were gathered through an in-flight relayout to
    /// materialize this view; 0 when the grant needed no layout change.
    /// Multiply by the element size to charge relayout bytes.
    pub fn relayout_cells(&self) -> usize {
        self.relayout_cells
    }

    /// The underlying cells, for handing to kernels (device views) or the
    /// transfer engine. Only meaningful for unmapped (scalar-layout)
    /// views: raw cell `i` of a mapped view is *not* element `i`.
    pub fn cells(&self) -> &CellBuffer {
        debug_assert!(
            self.map.is_none(),
            "raw cell access to a layout-mapped view ({} layout): go through get()/iter()",
            self.map.map(|m| m.layout().name()).unwrap_or_default()
        );
        &self.cells
    }

    /// Where the viewed data lives.
    pub fn space(&self) -> MemSpace {
        self.cells.space()
    }

    /// Read element `i` — host-resident views only.
    pub fn get(&self, i: usize) -> Result<T> {
        if i >= self.len() {
            return Err(Error::IndexOutOfBounds { index: i, len: self.len() });
        }
        let v = self.cells.host_u64_ro()?;
        let pi = match &self.map {
            Some(m) => m.index(i),
            None => i,
        };
        Ok(T::from_cell(v.get(pi)))
    }

    /// A stride-aware iterator over the elements in logical order —
    /// host-resident views only. This is the layout-safe way to walk a
    /// view sequentially regardless of the physical arrangement.
    pub fn iter(&self) -> Result<AccessIter<T>> {
        let view = self.cells.host_u64_ro()?;
        Ok(AccessIter { view, map: self.map, i: 0, len: self.len(), _marker: PhantomData })
    }

    /// Copy the elements out in logical order — host-resident views only.
    pub fn to_vec(&self) -> Result<Vec<T>> {
        Ok(self.iter()?.collect())
    }
}

/// Iterator returned by [`AccessView::iter`]: walks elements in logical
/// order, translating through the view's layout map when present.
pub struct AccessIter<T: Element> {
    view: HostU64View,
    map: Option<LayoutMap>,
    i: usize,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: Element> Iterator for AccessIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.i >= self.len {
            return None;
        }
        let pi = match &self.map {
            Some(m) => m.index(self.i),
            None => self.i,
        };
        self.i += 1;
        Some(T::from_cell(self.view.get(pi)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.len - self.i;
        (rem, Some(rem))
    }
}

impl<T: Element> ExactSizeIterator for AccessIter<T> {}

impl<T: Element> std::fmt::Debug for AccessView<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessView")
            .field("len", &self.len())
            .field("space", &self.space())
            .field("direct", &self.direct)
            .field("pm_converted", &self.pm_converted)
            .field("layout", &self.map.map(|m| m.layout().name()))
            .finish()
    }
}
