//! Location- and PM-agnostic access views.

use std::marker::PhantomData;

use devsim::{CellBuffer, MemSpace};

use crate::element::Element;
use crate::error::{Error, Result};

/// A read view of a buffer's data in the place the caller asked for.
///
/// Returned by [`crate::HamrBuffer::host_accessible`] and
/// [`crate::HamrBuffer::device_accessible`]. When the data was already
/// accessible where requested the view is **direct** (zero-copy); when it
/// was not, the view owns an automatically managed **temporary** that the
/// data was moved into, released when the view drops — the role the
/// returned `std::shared_ptr` plays in the C++ implementation.
///
/// In asynchronous stream mode the movement may still be in flight when
/// the view is returned; call [`crate::HamrBuffer::synchronize`] before
/// consuming the data, as the paper's Listings 3 and 4 do.
pub struct AccessView<T: Element> {
    cells: CellBuffer,
    direct: bool,
    pm_converted: bool,
    _marker: PhantomData<T>,
}

impl<T: Element> AccessView<T> {
    pub(crate) fn new(cells: CellBuffer, direct: bool, pm_converted: bool) -> Self {
        AccessView { cells, direct, pm_converted, _marker: PhantomData }
    }

    /// Number of elements visible through the view.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// True when access was granted in place (zero-copy); false when a
    /// temporary was allocated and the data moved.
    pub fn is_direct(&self) -> bool {
        self.direct
    }

    /// True when the grant crossed programming models (e.g. OpenMP-managed
    /// data accessed from CUDA) — the interoperability path of §2.
    pub fn pm_converted(&self) -> bool {
        self.pm_converted
    }

    /// The underlying cells, for handing to kernels (device views) or the
    /// transfer engine.
    pub fn cells(&self) -> &CellBuffer {
        &self.cells
    }

    /// Where the viewed data lives.
    pub fn space(&self) -> MemSpace {
        self.cells.space()
    }

    /// Read element `i` — host-resident views only.
    pub fn get(&self, i: usize) -> Result<T> {
        if i >= self.len() {
            return Err(Error::IndexOutOfBounds { index: i, len: self.len() });
        }
        let v = self.cells.host_u64_ro()?;
        Ok(T::from_cell(v.get(i)))
    }

    /// Copy the elements out — host-resident views only.
    pub fn to_vec(&self) -> Result<Vec<T>> {
        let v = self.cells.host_u64_ro()?;
        Ok((0..v.len()).map(|i| T::from_cell(v.get(i))).collect())
    }
}

impl<T: Element> std::fmt::Debug for AccessView<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessView")
            .field("len", &self.len())
            .field("space", &self.space())
            .field("direct", &self.direct)
            .field("pm_converted", &self.pm_converted)
            .finish()
    }
}
