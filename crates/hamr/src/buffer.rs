//! The HAMR buffer: a typed array with host/device memory management.

use std::marker::PhantomData;
use std::sync::Arc;

use devsim::{CellBuffer, KernelCost, PinStats, SimNode};
use parking_lot::RwLock;

use crate::access::AccessView;
use crate::allocator::{Allocator, Pm};
use crate::element::Element;
use crate::error::{Error, Result};
use crate::layout::{Layout, LayoutMap, Mapping};
use crate::stream::{HamrStream, StreamMode};

struct State {
    cells: CellBuffer,
    /// Current residency: `None` = host, `Some(d)` = device `d`.
    device: Option<usize>,
    /// `Some` when this buffer is one field of a layout group: `cells` is
    /// the group's shared interleaved block and element addresses go
    /// through the map. Cleared when a placement move packs the field
    /// back to a dense run.
    map: Option<LayoutMap>,
}

/// A typed array managed by the heterogeneous memory resource.
///
/// This is the Rust counterpart of the storage inside
/// `svtkHAMRDataArray`: it knows which [`Allocator`] (and therefore which
/// PM) owns the memory, where the data currently resides, which
/// [`HamrStream`] orders its operations, and whether operations are
/// synchronous or asynchronous ([`StreamMode`]).
pub struct HamrBuffer<T: Element> {
    node: Arc<SimNode>,
    state: RwLock<State>,
    len: usize,
    allocator: Allocator,
    stream: HamrStream,
    mode: StreamMode,
    _marker: PhantomData<T>,
}

impl<T: Element> HamrBuffer<T> {
    /// Allocate a zero-initialized buffer of `len` elements.
    ///
    /// `device` selects the target device for device allocators (the C++
    /// API uses the *currently active* device; an explicit parameter is
    /// the Rust-idiomatic spelling of the same control). Asynchronous
    /// allocators require an explicit `stream`, as in the paper.
    pub fn new(
        node: Arc<SimNode>,
        len: usize,
        allocator: Allocator,
        device: Option<usize>,
        stream: HamrStream,
        mode: StreamMode,
    ) -> Result<Self> {
        if allocator.is_stream_ordered() && stream.is_default() {
            return Err(Error::AsyncNeedsStream { allocator: allocator.name() });
        }
        let (cells, resident) = match (allocator.is_device(), device) {
            (true, Some(d)) if allocator.is_unified() => {
                // Universally addressable memory: homed on the device but
                // directly accessible everywhere.
                (node.device(d)?.alloc_unified(len)?, Some(d))
            }
            (true, Some(d)) if allocator.is_stream_ordered() => {
                // cudaMallocAsync-class allocators allocate *on the
                // stream*: the pool may immediately recycle a block whose
                // last use was on that same stream.
                let s = stream.resolve(&node, d)?;
                (node.device(d)?.alloc_cells_on_stream(len, &s)?, Some(d))
            }
            (true, Some(d)) => (node.device(d)?.alloc_cells(len)?, Some(d)),
            (true, None) => {
                return Err(Error::PlacementMismatch {
                    allocator: allocator.name(),
                    wanted_device: false,
                })
            }
            (false, None) => (node.try_host_alloc_f64(len)?, None),
            (false, Some(_)) => {
                return Err(Error::PlacementMismatch {
                    allocator: allocator.name(),
                    wanted_device: true,
                })
            }
        };
        Ok(HamrBuffer {
            node,
            state: RwLock::new(State { cells, device: resident, map: None }),
            len,
            allocator,
            stream,
            mode,
            _marker: PhantomData,
        })
    }

    /// Allocate and fill every element with `value`. Device fills run as a
    /// kernel on the buffer's stream; in [`StreamMode::Async`] the fill
    /// may still be in flight when this returns.
    pub fn new_init(
        node: Arc<SimNode>,
        len: usize,
        value: T,
        allocator: Allocator,
        device: Option<usize>,
        stream: HamrStream,
        mode: StreamMode,
    ) -> Result<Self> {
        let buf = Self::new(node, len, allocator, device, stream, mode)?;
        buf.fill(value)?;
        Ok(buf)
    }

    /// Allocate and initialize from host data (deep copy).
    pub fn from_slice(
        node: Arc<SimNode>,
        data: &[T],
        allocator: Allocator,
        device: Option<usize>,
        stream: HamrStream,
        mode: StreamMode,
    ) -> Result<Self> {
        let buf = Self::new(node.clone(), data.len(), allocator, device, stream, mode)?;
        {
            let state = buf.state.read();
            match state.device {
                None => {
                    let v = state.cells.host_u64()?;
                    for (i, x) in data.iter().enumerate() {
                        v.set(i, x.to_cell());
                    }
                }
                Some(d) => {
                    // Stage on the host, then an ordered h2d copy.
                    let staging = node.try_host_alloc_f64(data.len())?;
                    let v = staging.host_u64()?;
                    for (i, x) in data.iter().enumerate() {
                        v.set(i, x.to_cell());
                    }
                    let stream = buf.stream.resolve(&node, d)?;
                    stream.copy(&staging, &state.cells)?;
                    if buf.mode == StreamMode::Sync {
                        stream.synchronize()?;
                    }
                }
            }
        }
        Ok(buf)
    }

    /// Zero-copy adoption of externally allocated memory (the paper's
    /// Listing 1): wrap `cells` without copying. The adopted memory's
    /// life cycle is shared — it is freed when the last holder (simulation
    /// or HAMR) drops its handle. `allocator` records which PM allocated
    /// the memory so later accesses know how to interoperate with it.
    pub fn adopt(
        node: Arc<SimNode>,
        cells: CellBuffer,
        allocator: Allocator,
        stream: HamrStream,
        mode: StreamMode,
    ) -> Result<Self> {
        if allocator.is_stream_ordered() && stream.is_default() {
            return Err(Error::AsyncNeedsStream { allocator: allocator.name() });
        }
        let device = cells.space().device();
        if allocator.is_device() != device.is_some() {
            return Err(Error::PlacementMismatch {
                allocator: allocator.name(),
                wanted_device: device.is_some(),
            });
        }
        let len = cells.len();
        Ok(HamrBuffer {
            node,
            state: RwLock::new(State { cells, device, map: None }),
            len,
            allocator,
            stream,
            mode,
            _marker: PhantomData,
        })
    }

    /// Wrap one field of a layout group: `cells` is the group's shared
    /// interleaved host block (typically from the stream-ordered pool) and
    /// `map` addresses this field's elements inside it. Zero-copy, like
    /// [`HamrBuffer::adopt`] — all fields of a group alias one allocation,
    /// so they share its life cycle, write generation, and CoW tracking.
    pub fn from_group(
        node: Arc<SimNode>,
        cells: CellBuffer,
        map: LayoutMap,
        allocator: Allocator,
        stream: HamrStream,
        mode: StreamMode,
    ) -> Result<Self> {
        if cells.space().device().is_some() || allocator.is_device() {
            return Err(Error::PlacementMismatch {
                allocator: allocator.name(),
                wanted_device: false,
            });
        }
        if cells.len() != map.block_cells() {
            return Err(Error::Layout(format!(
                "group block holds {} cells, map addresses {}",
                cells.len(),
                map.block_cells()
            )));
        }
        let len = map.len();
        Ok(HamrBuffer {
            node,
            state: RwLock::new(State { cells, device: None, map: Some(map) }),
            len,
            allocator,
            stream,
            mode,
            _marker: PhantomData,
        })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The allocator that owns the memory.
    pub fn allocator(&self) -> Allocator {
        self.allocator
    }

    /// The programming model managing the memory.
    pub fn pm(&self) -> Pm {
        self.allocator.pm()
    }

    /// Current residency: `None` = host, `Some(d)` = device `d`.
    pub fn device(&self) -> Option<usize> {
        self.state.read().device
    }

    /// The stream ordering this buffer's operations.
    pub fn stream(&self) -> &HamrStream {
        &self.stream
    }

    /// The synchronization mode.
    pub fn mode(&self) -> StreamMode {
        self.mode
    }

    /// The node this buffer lives on.
    pub fn node(&self) -> &Arc<SimNode> {
        &self.node
    }

    /// Direct access to the managed cells — the `GetData()` fast path used
    /// when the caller knows location and PM (Listing 3, line 24). For a
    /// grouped buffer this is the group's whole interleaved block; go
    /// through [`HamrBuffer::layout_map`] to address this field's elements.
    pub fn data(&self) -> CellBuffer {
        self.state.read().cells.clone()
    }

    /// The physical layout of this buffer's storage: the group's layout
    /// when the buffer is one field of a layout group, [`Layout::Scalar`]
    /// otherwise.
    pub fn layout(&self) -> Layout {
        self.state.read().map.map(|m| m.layout()).unwrap_or(Layout::Scalar)
    }

    /// The layout map of this buffer's field inside its group, if grouped.
    pub fn layout_map(&self) -> Option<LayoutMap> {
        self.state.read().map
    }

    /// The write generation of the managed allocation: bumped by every
    /// mutable access (host write views, kernel views, copies landing
    /// here). The counter lives on the allocation itself, so it survives
    /// adoption into new wrappers — re-adopting the same simulation
    /// memory each step observes one continuous generation sequence.
    pub fn write_generation(&self) -> u64 {
        self.state.read().cells.generation()
    }

    /// Process-unique identity of the managed allocation. Together with
    /// [`write_generation`](Self::write_generation) this lets a consumer
    /// decide "same data I already copied" vs "new or modified data".
    pub fn allocation_id(&self) -> u64 {
        self.state.read().cells.alloc_id()
    }

    /// A zero-copy copy-on-write share of this buffer, pinned to its
    /// current contents.
    ///
    /// The returned buffer aliases the same cells until the owner writes
    /// again; the first such write lazily materializes a pre-write copy
    /// (reported into `stats`) that the share's reads route to from then
    /// on. The share's operations are ordered on `stream` — typically a
    /// dedicated snapshot copy stream — so consumers fetching through it
    /// never serialize on the owner's compute stream.
    pub fn cow_share(&self, stats: &Arc<PinStats>, stream: HamrStream) -> HamrBuffer<T> {
        let state = self.state.read();
        HamrBuffer {
            node: self.node.clone(),
            state: RwLock::new(State {
                cells: state.cells.cow_pinned(stats),
                device: state.device,
                map: state.map,
            }),
            len: self.len,
            allocator: self.allocator,
            stream,
            mode: self.mode,
            _marker: PhantomData,
        }
    }

    /// Deactivate the CoW pin this buffer holds (if any): the holder
    /// promises not to read through it again, so the owner's later writes
    /// skip the lazy fault copy.
    pub fn release_cow(&self) {
        self.state.read().cells.release_pin();
    }

    /// Wait until all in-flight operations on this buffer's stream have
    /// completed (the paper's `Synchronize()`).
    pub fn synchronize(&self) -> Result<()> {
        match self.stream.get() {
            Some(s) => s.synchronize().map_err(Error::from),
            None => {
                // Default-stream buffers synchronize their device's default
                // stream; host-resident buffers have nothing in flight.
                if let Some(d) = self.device() {
                    self.node.device(d)?.default_stream().synchronize()?;
                }
                Ok(())
            }
        }
    }

    /// Fill every element with `value` (host write or device kernel,
    /// ordered on the buffer's stream).
    pub fn fill(&self, value: T) -> Result<()> {
        let state = self.state.read();
        match state.device {
            None => {
                let v = state.cells.host_u64()?;
                let cell = value.to_cell();
                match &state.map {
                    // Grouped: touch only this field's cells in the block.
                    Some(m) => {
                        for i in 0..m.len() {
                            v.set(m.index(i), cell);
                        }
                    }
                    None => {
                        for i in 0..v.len() {
                            v.set(i, cell);
                        }
                    }
                }
                Ok(())
            }
            Some(d) => {
                let stream = self.stream.resolve(&self.node, d)?;
                let cells = state.cells.clone();
                let cell = value.to_cell();
                stream.launch(
                    "hamr_fill",
                    KernelCost::bytes((self.len * 8) as f64),
                    move |scope| {
                        let v = cells.u64_view(scope)?;
                        for i in 0..v.len() {
                            v.set(i, cell);
                        }
                        Ok(())
                    },
                )?;
                if self.mode == StreamMode::Sync {
                    stream.synchronize()?;
                }
                Ok(())
            }
        }
    }

    /// A view of the data accessible from host code (`GetHostAccessible`).
    ///
    /// Zero-copy when the data is host-resident; otherwise the data is
    /// moved into a temporary host allocation (ordered on the buffer's
    /// stream; synchronize first in async mode).
    pub fn host_accessible(&self) -> Result<AccessView<T>> {
        let state = self.state.read();
        // Host memory and universally addressable memory are granted in
        // place; only plain device memory moves. Grouped buffers are
        // granted in place *with their map*: the view translates element
        // addresses, so callers are layout-agnostic.
        if state.cells.space().host_accessible() {
            return Ok(match state.map {
                Some(m) => AccessView::new_mapped(state.cells.clone(), true, m),
                None => AccessView::new(state.cells.clone(), true, false),
            });
        }
        match state.device {
            None => Ok(AccessView::new(state.cells.clone(), true, false)),
            Some(d) => {
                let temp = self.node.try_host_alloc_f64(self.len)?;
                let stream = self.stream.resolve(&self.node, d)?;
                stream.copy(&state.cells, &temp)?;
                if self.mode == StreamMode::Sync {
                    stream.synchronize()?;
                }
                Ok(AccessView::new(temp, false, false))
            }
        }
    }

    /// A view of the data accessible from `pm` code on `device`
    /// (`GetDeviceAccessible` / `GetCUDAAccessible` / ...).
    ///
    /// Zero-copy when the data already resides on `device` — including
    /// when `pm` differs from the managing PM, in which case the grant is
    /// flagged [`AccessView::pm_converted`]. Otherwise a temporary is
    /// allocated on `device` and the data moved (h2d or d2d).
    pub fn device_accessible(&self, device: usize, pm: Pm) -> Result<AccessView<T>> {
        let state = self.state.read();
        let pm_converted = pm != self.allocator.pm();
        // Universally addressable memory is in place on every device.
        if state.cells.space().device_accessible(device) {
            return Ok(AccessView::new(state.cells.clone(), true, pm_converted));
        }
        match state.device {
            Some(d) if d == device => Ok(AccessView::new(state.cells.clone(), true, pm_converted)),
            Some(d) => {
                // Inter-device move, ordered on the source device's stream.
                // The temporary is allocated on that stream too, so the
                // pool can recycle a same-stream block without waiting.
                let stream = self.stream.resolve(&self.node, d)?;
                let temp = self.node.device(device)?.alloc_cells_on_stream(self.len, &stream)?;
                stream.copy(&state.cells, &temp)?;
                if self.mode == StreamMode::Sync {
                    stream.synchronize()?;
                }
                Ok(AccessView::new(temp, false, pm_converted))
            }
            None => {
                // Host-to-device move, ordered on the target's stream.
                // A grouped field relayouts in flight: the upload cannot
                // carry the interleaved block, so the field is packed to a
                // dense host staging run (a charged host pass — the
                // AoS→SoA pack of the LLAMA-style move) and the dense run
                // is what crosses the link, exactly the way access
                // temporaries are already materialized.
                let stream = self.stream.resolve(&self.node, device)?;
                let temp = self.node.device(device)?.alloc_cells_on_stream(self.len, &stream)?;
                let (src, relayouted) = match state.map {
                    Some(m) => (self.pack_dense(&state.cells, &m)?, self.len),
                    None => (state.cells.clone(), 0),
                };
                stream.copy(&src, &temp)?;
                if self.mode == StreamMode::Sync {
                    stream.synchronize()?;
                }
                Ok(AccessView::new(temp, false, pm_converted).with_relayout(relayouted))
            }
        }
    }

    /// Gather one grouped field into a dense host staging allocation,
    /// charged as a host pass (`hamr_relayout_pack`): the in-flight
    /// relayout half of a placement move.
    fn pack_dense(&self, block: &CellBuffer, map: &LayoutMap) -> Result<CellBuffer> {
        let staging = self.node.try_host_alloc_f64(map.len())?;
        let src = block.clone();
        let dst = staging.clone();
        let m = *map;
        self.node.host().run(
            "hamr_relayout_pack",
            KernelCost::bytes((2 * m.len() * 8) as f64),
            move || -> Result<()> {
                let s = src.host_u64_ro()?;
                let d = dst.host_u64()?;
                for i in 0..m.len() {
                    d.set(i, s.get(m.index(i)));
                }
                Ok(())
            },
        )?;
        Ok(staging)
    }

    /// Sugar: a CUDA-PM view on `device` (`GetCUDAAccessible`).
    pub fn cuda_accessible(&self, device: usize) -> Result<AccessView<T>> {
        self.device_accessible(device, Pm::Cuda)
    }

    /// Sugar: a HIP-PM view on `device`.
    pub fn hip_accessible(&self, device: usize) -> Result<AccessView<T>> {
        self.device_accessible(device, Pm::Hip)
    }

    /// Sugar: an OpenMP-offload view on `device`.
    pub fn openmp_accessible(&self, device: usize) -> Result<AccessView<T>> {
        self.device_accessible(device, Pm::OpenMp)
    }

    /// Sugar: a SYCL view on `device`.
    pub fn sycl_accessible(&self, device: usize) -> Result<AccessView<T>> {
        self.device_accessible(device, Pm::Sycl)
    }

    /// Sugar: a Kokkos view on `device`.
    pub fn kokkos_accessible(&self, device: usize) -> Result<AccessView<T>> {
        self.device_accessible(device, Pm::Kokkos)
    }

    /// Move the managed data itself (not a temporary) to `target`
    /// (`None` = host). Subsequent direct accesses see the new location;
    /// previously handed-out views keep the old allocation alive.
    pub fn move_to(&self, target: Option<usize>) -> Result<()> {
        let mut state = self.state.write();
        if state.device == target {
            return Ok(());
        }
        // Order the move on a stream touching whichever device is involved;
        // both sides on the host means there is nothing to move.
        let Some(stream_dev) = state.device.or(target) else {
            return Ok(());
        };
        let stream = self.stream.resolve(&self.node, stream_dev)?;
        let new_cells = match target {
            None => self.node.try_host_alloc_f64(self.len)?,
            Some(d) => self.node.device(d)?.alloc_cells_on_stream(self.len, &stream)?,
        };
        // A grouped field packs to a dense run in flight; the canonical
        // storage after the move is dense scalar and leaves the group.
        let src = match state.map {
            Some(m) => self.pack_dense(&state.cells, &m)?,
            None => state.cells.clone(),
        };
        stream.copy(&src, &new_cells)?;
        stream.synchronize()?; // moves are always completed (they swap the canonical storage)
        state.cells = new_cells;
        state.device = target;
        state.map = None;
        Ok(())
    }

    /// Copy the data out to a host `Vec`, synchronizing as needed.
    pub fn to_vec(&self) -> Result<Vec<T>> {
        let view = self.host_accessible()?;
        self.synchronize()?;
        view.to_vec()
    }
}

impl<T: Element> std::fmt::Debug for HamrBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HamrBuffer")
            .field("type", &T::TYPE_NAME)
            .field("len", &self.len)
            .field("allocator", &self.allocator.name())
            .field("device", &self.device())
            .field("mode", &self.mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devsim::{MemSpace, NodeConfig};

    fn node(n: usize) -> Arc<SimNode> {
        SimNode::new(NodeConfig::fast_test(n))
    }

    fn dbuf(node: &Arc<SimNode>, dev: usize, data: &[f64]) -> HamrBuffer<f64> {
        HamrBuffer::from_slice(
            node.clone(),
            data,
            Allocator::Cuda,
            Some(dev),
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap()
    }

    #[test]
    fn host_allocators_allocate_on_host() {
        let n = node(1);
        for alloc in [Allocator::Malloc, Allocator::New, Allocator::CudaHostPinned] {
            let b: HamrBuffer<f64> = HamrBuffer::new(
                n.clone(),
                8,
                alloc,
                None,
                HamrStream::default_stream(),
                StreamMode::Sync,
            )
            .unwrap();
            assert_eq!(b.device(), None);
            assert_eq!(b.len(), 8);
            assert!(b.host_accessible().unwrap().is_direct());
        }
    }

    #[test]
    fn device_allocators_allocate_on_device() {
        let n = node(2);
        for alloc in [Allocator::Cuda, Allocator::CudaUva, Allocator::Hip, Allocator::OpenMp] {
            let b: HamrBuffer<f64> = HamrBuffer::new(
                n.clone(),
                8,
                alloc,
                Some(1),
                HamrStream::default_stream(),
                StreamMode::Sync,
            )
            .unwrap();
            assert_eq!(b.device(), Some(1));
            assert_eq!(b.pm(), alloc.pm());
        }
    }

    #[test]
    fn async_allocator_requires_stream() {
        let n = node(1);
        let err = HamrBuffer::<f64>::new(
            n.clone(),
            8,
            Allocator::CudaAsync,
            Some(0),
            HamrStream::default_stream(),
            StreamMode::Async,
        )
        .unwrap_err();
        assert!(matches!(err, Error::AsyncNeedsStream { .. }));

        let s = HamrStream::new(n.device(0).unwrap().create_stream());
        HamrBuffer::<f64>::new(n, 8, Allocator::CudaAsync, Some(0), s, StreamMode::Async).unwrap();
    }

    #[test]
    fn placement_mismatches_are_rejected() {
        let n = node(1);
        // Device allocator without a device.
        assert!(matches!(
            HamrBuffer::<f64>::new(
                n.clone(),
                4,
                Allocator::Cuda,
                None,
                HamrStream::default_stream(),
                StreamMode::Sync
            ),
            Err(Error::PlacementMismatch { .. })
        ));
        // Host allocator with a device.
        assert!(matches!(
            HamrBuffer::<f64>::new(
                n,
                4,
                Allocator::Malloc,
                Some(0),
                HamrStream::default_stream(),
                StreamMode::Sync
            ),
            Err(Error::PlacementMismatch { .. })
        ));
    }

    #[test]
    fn from_slice_roundtrips_through_device() {
        let n = node(1);
        let data = [1.5, -2.0, 3.25, 0.0];
        let b = dbuf(&n, 0, &data);
        assert_eq!(b.to_vec().unwrap(), data);
    }

    #[test]
    fn new_init_fills_on_device_and_host() {
        let n = node(1);
        let d: HamrBuffer<f64> = HamrBuffer::new_init(
            n.clone(),
            5,
            7.5,
            Allocator::Cuda,
            Some(0),
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();
        assert_eq!(d.to_vec().unwrap(), vec![7.5; 5]);
        let h: HamrBuffer<i32> = HamrBuffer::new_init(
            n,
            3,
            -9,
            Allocator::Malloc,
            None,
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();
        assert_eq!(h.to_vec().unwrap(), vec![-9; 3]);
    }

    #[test]
    fn host_access_of_host_data_is_zero_copy() {
        let n = node(1);
        let b: HamrBuffer<f64> = HamrBuffer::from_slice(
            n.clone(),
            &[1.0, 2.0],
            Allocator::Malloc,
            None,
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();
        let before = n.stats();
        let v = b.host_accessible().unwrap();
        assert!(v.is_direct());
        assert_eq!(v.to_vec().unwrap(), vec![1.0, 2.0]);
        let after = n.stats();
        assert_eq!(before.total_copies(), after.total_copies(), "no copy for in-place access");
    }

    #[test]
    fn host_access_of_device_data_moves_into_temporary() {
        let n = node(1);
        let b = dbuf(&n, 0, &[4.0, 5.0]);
        let before = n.stats();
        let v = b.host_accessible().unwrap();
        b.synchronize().unwrap();
        assert!(!v.is_direct());
        assert_eq!(v.to_vec().unwrap(), vec![4.0, 5.0]);
        assert_eq!(n.stats().copies_d2h, before.copies_d2h + 1);
    }

    #[test]
    fn same_device_access_is_zero_copy_even_across_pms() {
        let n = node(1);
        // OpenMP-allocated data accessed from CUDA on the same device:
        // the paper's central interoperability scenario.
        let b: HamrBuffer<f64> = HamrBuffer::from_slice(
            n.clone(),
            &[9.0],
            Allocator::OpenMp,
            Some(0),
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();
        let before = n.stats();
        let v = b.cuda_accessible(0).unwrap();
        assert!(v.is_direct());
        assert!(v.pm_converted());
        assert!(v.cells().same_allocation(&b.data()));
        assert_eq!(n.stats().total_copies(), before.total_copies());
    }

    #[test]
    fn cross_device_access_moves_d2d() {
        let n = node(3);
        let b = dbuf(&n, 1, &[1.0, 2.0, 3.0]);
        let before = n.stats();
        let v = b.cuda_accessible(2).unwrap();
        b.synchronize().unwrap();
        assert!(!v.is_direct());
        assert_eq!(v.space(), MemSpace::Device(2));
        assert_eq!(n.stats().copies_d2d, before.copies_d2d + 1);
        // The managed buffer itself has not moved.
        assert_eq!(b.device(), Some(1));
    }

    #[test]
    fn host_to_device_access_moves_h2d() {
        let n = node(2);
        let b: HamrBuffer<f64> = HamrBuffer::from_slice(
            n.clone(),
            &[6.0, 7.0],
            Allocator::New,
            None,
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();
        let v = b.device_accessible(1, Pm::Hip).unwrap();
        assert!(!v.is_direct());
        assert!(v.pm_converted());
        assert_eq!(v.space(), MemSpace::Device(1));
        assert_eq!(n.stats().copies_h2d, 1);
    }

    #[test]
    fn adopt_is_zero_copy_with_shared_lifecycle() {
        let n = node(1);
        let dev = n.device(0).unwrap();
        // "Simulation" allocates and initializes device memory...
        let sim_mem = dev.alloc_f64(4).unwrap();
        let stream = dev.create_stream();
        let c = sim_mem.clone();
        stream
            .launch("init", KernelCost::ZERO, move |scope| {
                let v = c.f64_view(scope)?;
                for i in 0..v.len() {
                    v.set(i, -2.75);
                }
                Ok(())
            })
            .unwrap();
        stream.synchronize().unwrap();
        let used_before_adopt = dev.used_bytes();

        // ...and passes it to HAMR zero-copy (Listing 1).
        let b: HamrBuffer<f64> = HamrBuffer::adopt(
            n.clone(),
            sim_mem.clone(),
            Allocator::OpenMp,
            HamrStream::new(stream),
            StreamMode::Sync,
        )
        .unwrap();
        assert_eq!(dev.used_bytes(), used_before_adopt, "no new allocation");
        assert!(b.data().same_allocation(&sim_mem));
        assert_eq!(b.to_vec().unwrap(), vec![-2.75; 4]);

        // The simulation drops its handle; memory stays alive for HAMR.
        drop(sim_mem);
        assert_eq!(b.to_vec().unwrap(), vec![-2.75; 4]);
        // HAMR drops the last handle; the device memory is released.
        drop(b);
        assert_eq!(dev.used_bytes(), 0);
    }

    #[test]
    fn adopt_rejects_mismatched_allocator() {
        let n = node(1);
        let host_cells = n.host_alloc_f64(2);
        assert!(matches!(
            HamrBuffer::<f64>::adopt(
                n.clone(),
                host_cells,
                Allocator::Cuda,
                HamrStream::default_stream(),
                StreamMode::Sync
            ),
            Err(Error::PlacementMismatch { .. })
        ));
        let dev_cells = n.device(0).unwrap().alloc_f64(2).unwrap();
        assert!(matches!(
            HamrBuffer::<f64>::adopt(
                n,
                dev_cells,
                Allocator::Malloc,
                HamrStream::default_stream(),
                StreamMode::Sync
            ),
            Err(Error::PlacementMismatch { .. })
        ));
    }

    #[test]
    fn move_to_changes_residency() {
        let n = node(2);
        let b = dbuf(&n, 0, &[1.0, 2.0]);
        b.move_to(None).unwrap();
        assert_eq!(b.device(), None);
        assert!(b.host_accessible().unwrap().is_direct());
        assert_eq!(b.to_vec().unwrap(), vec![1.0, 2.0]);
        b.move_to(Some(1)).unwrap();
        assert_eq!(b.device(), Some(1));
        assert_eq!(b.to_vec().unwrap(), vec![1.0, 2.0]);
        // Moving to the current location is a no-op.
        let copies = n.stats().total_copies();
        b.move_to(Some(1)).unwrap();
        assert_eq!(n.stats().total_copies(), copies);
    }

    #[test]
    fn async_mode_requires_explicit_synchronize() {
        let n = node(1);
        let stream = HamrStream::new(n.device(0).unwrap().create_stream());
        let b: HamrBuffer<f64> = HamrBuffer::from_slice(
            n.clone(),
            &[0.5; 1000],
            Allocator::CudaAsync,
            Some(0),
            stream,
            StreamMode::Async,
        )
        .unwrap();
        // The access view may be in flight; after synchronize it is valid.
        let v = b.host_accessible().unwrap();
        b.synchronize().unwrap();
        assert_eq!(v.to_vec().unwrap(), vec![0.5; 1000]);
    }

    #[test]
    fn typed_buffers_roundtrip() {
        let n = node(1);
        let ints: HamrBuffer<i64> = HamrBuffer::from_slice(
            n.clone(),
            &[-5, 0, 7],
            Allocator::Cuda,
            Some(0),
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();
        assert_eq!(ints.to_vec().unwrap(), vec![-5, 0, 7]);
        let bytes: HamrBuffer<u8> = HamrBuffer::from_slice(
            n,
            &[1, 2, 255],
            Allocator::Malloc,
            None,
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();
        assert_eq!(bytes.to_vec().unwrap(), vec![1, 2, 255]);
    }

    #[test]
    fn view_temporary_is_released_on_drop() {
        let n = node(2);
        let b = dbuf(&n, 0, &[1.0; 100]);
        let dev1 = n.device(1).unwrap();
        let before = dev1.used_bytes();
        let v = b.cuda_accessible(1).unwrap();
        b.synchronize().unwrap();
        assert!(dev1.used_bytes() > before, "temporary allocated on device 1");
        drop(v);
        assert_eq!(dev1.used_bytes(), before, "temporary released with the view");
    }

    #[test]
    fn uva_memory_is_accessible_everywhere_in_place() {
        let n = node(2);
        let b: HamrBuffer<f64> = HamrBuffer::from_slice(
            n.clone(),
            &[1.0, 2.0],
            Allocator::CudaUva,
            Some(0),
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();
        let before = n.stats();
        // Host access: direct, no transfer.
        let hv = b.host_accessible().unwrap();
        assert!(hv.is_direct());
        assert_eq!(hv.to_vec().unwrap(), vec![1.0, 2.0]);
        // Access from the *other* device: also direct.
        let dv = b.device_accessible(1, Pm::Cuda).unwrap();
        assert!(dv.is_direct());
        assert_eq!(n.stats().total_copies(), before.total_copies(), "UVA never copies");
        // Capacity is charged to the home device and released on drop.
        assert!(n.device(0).unwrap().used_bytes() > 0);
        drop((b, hv, dv));
        assert_eq!(n.device(0).unwrap().used_bytes(), 0);
    }

    /// A two-field AoSoA(2) group over the host pool: returns the shared
    /// block and the two field buffers.
    fn grouped_pair(
        n: &Arc<SimNode>,
        xs: &[f64],
        ys: &[f64],
        layout: crate::Layout,
    ) -> (CellBuffer, HamrBuffer<f64>, HamrBuffer<f64>) {
        use crate::layout::Mapping;
        let count = xs.len();
        let block = n.try_host_alloc_f64(layout.block_cells(count, 2)).unwrap();
        let mx = crate::LayoutMap::new(layout, count, 2, 0);
        let my = crate::LayoutMap::new(layout, count, 2, 1);
        {
            let v = block.host_u64().unwrap();
            for i in 0..count {
                v.set(mx.index(i), xs[i].to_cell());
                v.set(my.index(i), ys[i].to_cell());
            }
        }
        let bx = HamrBuffer::from_group(
            n.clone(),
            block.clone(),
            mx,
            Allocator::Malloc,
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();
        let by = HamrBuffer::from_group(
            n.clone(),
            block.clone(),
            my,
            Allocator::Malloc,
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();
        (block, bx, by)
    }

    #[test]
    fn grouped_fields_read_logically_through_the_map() {
        let n = node(1);
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [-1.0, -2.0, -3.0, -4.0, -5.0];
        for layout in [
            crate::Layout::AoS,
            crate::Layout::SoA,
            crate::Layout::AoSoA { lane_width: 2 },
            crate::Layout::AoSoA { lane_width: 8 },
        ] {
            let (block, bx, by) = grouped_pair(&n, &xs, &ys, layout);
            assert_eq!(bx.len(), 5);
            assert_eq!(bx.layout(), layout);
            let vx = bx.host_accessible().unwrap();
            assert!(vx.is_direct(), "grouped host access is zero-copy");
            assert_eq!(vx.to_vec().unwrap(), xs);
            assert_eq!(by.to_vec().unwrap(), ys);
            // Both fields alias the one block allocation.
            assert!(bx.data().same_allocation(&block));
            assert!(by.data().same_allocation(&block));
        }
    }

    #[test]
    fn grouped_upload_relayouts_in_flight() {
        let n = node(1);
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [10.0, 20.0, 30.0, 40.0, 50.0];
        let (_block, bx, _by) = grouped_pair(&n, &xs, &ys, crate::Layout::AoSoA { lane_width: 4 });
        let before = n.stats();
        let v = bx.cuda_accessible(0).unwrap();
        bx.synchronize().unwrap();
        // The dense pack crossed the link, not the interleaved block.
        assert!(!v.is_direct());
        assert_eq!(v.len(), 5);
        assert_eq!(v.relayout_cells(), 5, "upload gathered the field in flight");
        assert!(v.layout_map().is_none(), "device view is dense");
        assert_eq!(n.stats().copies_h2d, before.copies_h2d + 1);
    }

    #[test]
    fn grouped_move_to_device_packs_and_leaves_the_group() {
        let n = node(1);
        let xs = [7.0, 8.0, 9.0];
        let ys = [70.0, 80.0, 90.0];
        let (_block, bx, by) = grouped_pair(&n, &xs, &ys, crate::Layout::AoS);
        bx.move_to(Some(0)).unwrap();
        assert_eq!(bx.device(), Some(0));
        assert_eq!(bx.layout(), crate::Layout::Scalar, "moved field is dense");
        assert_eq!(bx.to_vec().unwrap(), xs);
        // The sibling field still reads through the shared block.
        assert_eq!(by.to_vec().unwrap(), ys);
    }

    #[test]
    fn grouped_cow_share_keeps_the_mapping() {
        let n = node(1);
        let xs = [1.5, 2.5, 3.5];
        let ys = [0.25, 0.5, 0.75];
        let (_block, bx, _by) = grouped_pair(&n, &xs, &ys, crate::Layout::SoA);
        let stats = PinStats::new_shared();
        let share = bx.cow_share(&stats, HamrStream::default_stream());
        assert_eq!(share.layout(), crate::Layout::SoA);
        assert_eq!(share.to_vec().unwrap(), xs, "share reads through the map");
        // Owner writes; the pinned share must keep the old values.
        bx.fill(0.0).unwrap();
        assert_eq!(share.to_vec().unwrap(), xs);
        assert_eq!(bx.to_vec().unwrap(), vec![0.0; 3]);
    }

    #[test]
    fn grouped_fill_touches_only_its_field() {
        let n = node(1);
        let xs = [1.0, 2.0, 3.0];
        let ys = [4.0, 5.0, 6.0];
        let (_block, bx, by) = grouped_pair(&n, &xs, &ys, crate::Layout::AoSoA { lane_width: 2 });
        bx.fill(9.0).unwrap();
        assert_eq!(bx.to_vec().unwrap(), vec![9.0; 3]);
        assert_eq!(by.to_vec().unwrap(), ys, "sibling field untouched");
    }

    #[test]
    fn from_group_rejects_wrong_block_size() {
        let n = node(1);
        let block = n.try_host_alloc_f64(4).unwrap();
        let map = crate::LayoutMap::new(crate::Layout::AoS, 4, 2, 0); // needs 8 cells
        assert!(HamrBuffer::<f64>::from_group(
            n,
            block,
            map,
            Allocator::Malloc,
            HamrStream::default_stream(),
            StreamMode::Sync
        )
        .is_err());
    }

    #[test]
    fn index_out_of_bounds_is_reported() {
        let n = node(1);
        let b: HamrBuffer<f64> = HamrBuffer::from_slice(
            n,
            &[1.0],
            Allocator::Malloc,
            None,
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();
        let v = b.host_accessible().unwrap();
        assert_eq!(v.get(0).unwrap(), 1.0);
        assert!(matches!(v.get(1), Err(Error::IndexOutOfBounds { index: 1, len: 1 })));
    }
}
