//! `svtkStream` / `svtkStreamMode`: PM-stream abstraction and
//! synchronization behaviour.

use std::sync::Arc;

use devsim::{SimNode, Stream};

/// Synchronization behaviour of buffer operations (`svtkStreamMode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamMode {
    /// Operations complete before the API call returns.
    #[default]
    Sync,
    /// Operations are enqueued and the call returns immediately; the user
    /// inserts synchronization points ([`crate::HamrBuffer::synchronize`])
    /// as needed. Enables overlap of allocation, movement, and compute.
    Async,
}

/// An abstraction over PM-native streams (`svtkStream`).
///
/// In the C++ implementation this type interconverts with `cudaStream_t`,
/// `hipStream_t`, etc. Here every PM is backed by the simulated runtime,
/// so the conversion target is [`devsim::Stream`]; `From`/`Into` provide
/// the same interchangeability.
#[derive(Clone, Default)]
pub struct HamrStream {
    inner: Option<Arc<Stream>>,
}

impl HamrStream {
    /// The PM's default stream (resolved per device at use time).
    pub fn default_stream() -> Self {
        HamrStream { inner: None }
    }

    /// Wrap an explicit stream.
    pub fn new(stream: Arc<Stream>) -> Self {
        HamrStream { inner: Some(stream) }
    }

    /// True when this is the default stream marker.
    pub fn is_default(&self) -> bool {
        self.inner.is_none()
    }

    /// The underlying stream, if explicit.
    pub fn get(&self) -> Option<&Arc<Stream>> {
        self.inner.as_ref()
    }

    /// Resolve to a concrete stream for work on `device` (falling back to
    /// that device's default stream). An out-of-range `device` is reported
    /// as a typed error, not a panic: callers sit on analysis paths that a
    /// recovery policy may want to retry or skip.
    pub fn resolve(&self, node: &SimNode, device: usize) -> crate::Result<Arc<Stream>> {
        match &self.inner {
            Some(s) => Ok(s.clone()),
            None => Ok(node.device(device)?.default_stream()),
        }
    }

    /// Block until all work submitted to this stream has completed.
    /// No-op for the default-stream marker (each device's default stream
    /// is synchronized through the owning buffer instead).
    pub fn synchronize(&self) -> crate::Result<()> {
        if let Some(s) = &self.inner {
            s.synchronize()?;
        }
        Ok(())
    }
}

impl From<Arc<Stream>> for HamrStream {
    fn from(s: Arc<Stream>) -> Self {
        HamrStream::new(s)
    }
}

impl std::fmt::Debug for HamrStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(s) => write!(f, "HamrStream(device {})", s.device()),
            None => write!(f, "HamrStream(default)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devsim::NodeConfig;

    #[test]
    fn default_marker_resolves_to_device_default_stream() {
        let node = SimNode::new(NodeConfig::fast_test(2));
        let s = HamrStream::default_stream();
        assert!(s.is_default());
        let r0 = s.resolve(&node, 0).unwrap();
        let r1 = s.resolve(&node, 1).unwrap();
        assert_eq!(r0.device(), 0);
        assert_eq!(r1.device(), 1);
        // Resolving twice yields the same cached default stream.
        assert!(Arc::ptr_eq(&r0, &s.resolve(&node, 0).unwrap()));
        // An out-of-range device is a typed error, not a panic.
        assert!(s.resolve(&node, 99).is_err());
    }

    #[test]
    fn explicit_stream_roundtrips_through_conversions() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let raw = node.device(0).unwrap().create_stream();
        let s: HamrStream = raw.clone().into();
        assert!(!s.is_default());
        assert!(Arc::ptr_eq(s.get().unwrap(), &raw));
        assert!(Arc::ptr_eq(&s.resolve(&node, 0).unwrap(), &raw));
    }

    #[test]
    fn synchronize_on_default_marker_is_ok() {
        HamrStream::default_stream().synchronize().unwrap();
    }
}
