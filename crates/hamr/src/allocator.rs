//! Programming models and their allocators (the paper's `svtkAllocator`).

/// A programming model (PM) whose runtime can own memory and execute code.
///
/// The paper's extensions mediate between codes written in *different* PMs
/// (its evaluation couples an OpenMP-offload simulation to a CUDA
/// analysis). In this reproduction every PM maps onto the same simulated
/// runtime, but the PM is tracked end-to-end so that cross-PM access is
/// observable and the interoperability paths are exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pm {
    /// Plain host C++/Rust.
    Host,
    /// NVIDIA CUDA.
    Cuda,
    /// AMD HIP.
    Hip,
    /// OpenMP target offload.
    OpenMp,
    /// SYCL (the paper's planned future extension, implemented here).
    Sycl,
    /// Kokkos (third-party portability layer; future work in the paper).
    Kokkos,
}

impl Pm {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Pm::Host => "host",
            Pm::Cuda => "cuda",
            Pm::Hip => "hip",
            Pm::OpenMp => "openmp",
            Pm::Sycl => "sycl",
            Pm::Kokkos => "kokkos",
        }
    }
}

/// The allocator used to obtain (and later release) a buffer's memory —
/// a direct transcription of the paper's `svtkAllocator` enumeration.
///
/// The CUDA and HIP allocators come in synchronous and asynchronous
/// variants, a universally addressable (UVA) variant, and a page-locked
/// host variant, matching §2 "Initialization".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Allocator {
    /// Host memory via `malloc`.
    Malloc,
    /// Host memory via C++ `new`.
    New,
    /// `cudaMalloc`: device memory, synchronous.
    Cuda,
    /// `cudaMallocAsync`: device memory, stream-ordered.
    CudaAsync,
    /// `cudaMallocManaged`: universally addressable memory.
    CudaUva,
    /// `cudaMallocHost`: page-locked host memory.
    CudaHostPinned,
    /// `hipMalloc`: device memory, synchronous.
    Hip,
    /// `hipMallocAsync`: device memory, stream-ordered.
    HipAsync,
    /// `omp_target_alloc`: device memory through OpenMP offload.
    OpenMp,
    /// `sycl::malloc_device`: device memory through SYCL.
    SyclDevice,
    /// `sycl::malloc_shared`: universally addressable SYCL memory.
    SyclShared,
    /// `Kokkos::kokkos_malloc` in the default device memory space.
    Kokkos,
}

impl Allocator {
    /// The programming model this allocator belongs to.
    pub fn pm(&self) -> Pm {
        match self {
            Allocator::Malloc | Allocator::New => Pm::Host,
            Allocator::Cuda
            | Allocator::CudaAsync
            | Allocator::CudaUva
            | Allocator::CudaHostPinned => Pm::Cuda,
            Allocator::Hip | Allocator::HipAsync => Pm::Hip,
            Allocator::OpenMp => Pm::OpenMp,
            Allocator::SyclDevice | Allocator::SyclShared => Pm::Sycl,
            Allocator::Kokkos => Pm::Kokkos,
        }
    }

    /// True when the allocation lives in device memory.
    ///
    /// UVA memory is managed: we place it on the device (migration on
    /// access is modeled by the access API's temporaries). Page-locked
    /// allocations are host memory.
    pub fn is_device(&self) -> bool {
        matches!(
            self,
            Allocator::Cuda
                | Allocator::CudaAsync
                | Allocator::CudaUva
                | Allocator::Hip
                | Allocator::HipAsync
                | Allocator::OpenMp
                | Allocator::SyclDevice
                | Allocator::SyclShared
                | Allocator::Kokkos
        )
    }

    /// True when the allocation is universally addressable (managed):
    /// accessible in place from the host and every device.
    pub fn is_unified(&self) -> bool {
        matches!(self, Allocator::CudaUva | Allocator::SyclShared)
    }

    /// True when allocation/deallocation are stream-ordered and require a
    /// stream at initialization.
    pub fn is_stream_ordered(&self) -> bool {
        matches!(self, Allocator::CudaAsync | Allocator::HipAsync)
    }

    /// Human-readable name, matching the C++ enum spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Allocator::Malloc => "malloc",
            Allocator::New => "new",
            Allocator::Cuda => "cuda",
            Allocator::CudaAsync => "cuda_async",
            Allocator::CudaUva => "cuda_uva",
            Allocator::CudaHostPinned => "cuda_host_pinned",
            Allocator::Hip => "hip",
            Allocator::HipAsync => "hip_async",
            Allocator::OpenMp => "openmp",
            Allocator::SyclDevice => "sycl_device",
            Allocator::SyclShared => "sycl_shared",
            Allocator::Kokkos => "kokkos",
        }
    }

    /// All allocator variants (useful for exhaustive tests/benches).
    pub const ALL: [Allocator; 12] = [
        Allocator::Malloc,
        Allocator::New,
        Allocator::Cuda,
        Allocator::CudaAsync,
        Allocator::CudaUva,
        Allocator::CudaHostPinned,
        Allocator::Hip,
        Allocator::HipAsync,
        Allocator::OpenMp,
        Allocator::SyclDevice,
        Allocator::SyclShared,
        Allocator::Kokkos,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pm_classification() {
        assert_eq!(Allocator::Malloc.pm(), Pm::Host);
        assert_eq!(Allocator::New.pm(), Pm::Host);
        assert_eq!(Allocator::Cuda.pm(), Pm::Cuda);
        assert_eq!(Allocator::CudaHostPinned.pm(), Pm::Cuda);
        assert_eq!(Allocator::HipAsync.pm(), Pm::Hip);
        assert_eq!(Allocator::OpenMp.pm(), Pm::OpenMp);
        assert_eq!(Allocator::SyclDevice.pm(), Pm::Sycl);
        assert_eq!(Allocator::SyclShared.pm(), Pm::Sycl);
        assert_eq!(Allocator::Kokkos.pm(), Pm::Kokkos);
    }

    #[test]
    fn unified_classification() {
        assert!(Allocator::CudaUva.is_unified());
        assert!(Allocator::SyclShared.is_unified());
        assert!(!Allocator::Cuda.is_unified());
        assert!(!Allocator::SyclDevice.is_unified());
    }

    #[test]
    fn device_residency() {
        assert!(!Allocator::Malloc.is_device());
        assert!(!Allocator::New.is_device());
        assert!(!Allocator::CudaHostPinned.is_device());
        assert!(Allocator::Cuda.is_device());
        assert!(Allocator::CudaUva.is_device());
        assert!(Allocator::OpenMp.is_device());
    }

    #[test]
    fn stream_ordering() {
        assert!(Allocator::CudaAsync.is_stream_ordered());
        assert!(Allocator::HipAsync.is_stream_ordered());
        assert!(!Allocator::Cuda.is_stream_ordered());
        assert!(!Allocator::OpenMp.is_stream_ordered());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Allocator::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Allocator::ALL.len());
    }
}
