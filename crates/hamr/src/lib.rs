//! # hamr — the Heterogeneous Accelerator Memory Resource
//!
//! A Rust reimplementation of the HAMR library the SENSEI heterogeneous
//! extensions build on (Loring, *HAMR*, 2022; SC-W 2023 §2). It provides
//! the four capabilities the paper's data-model extensions need:
//!
//! 1. **PM-aware allocation** — [`Allocator`] enumerates the allocator of
//!    every supported programming model (malloc/new on the host; CUDA
//!    sync/async/UVA/pinned; HIP sync/async; OpenMP target offload), and
//!    [`HamrBuffer::new`] allocates through the simulated runtime of the
//!    matching PM.
//! 2. **Stream-ordered, optionally asynchronous operation** —
//!    [`HamrStream`] abstracts PM streams; [`StreamMode`] selects whether
//!    buffer operations complete before returning ([`StreamMode::Sync`]) or
//!    are merely enqueued ([`StreamMode::Async`], requiring an explicit
//!    [`HamrBuffer::synchronize`]).
//! 3. **Zero-copy adoption** — [`HamrBuffer::adopt`] wraps externally
//!    allocated memory (the simulation's own buffers) without copying,
//!    with shared life-cycle management (dropping the last handle frees
//!    the allocation).
//! 4. **Location- and PM-agnostic access** — [`HamrBuffer::host_accessible`]
//!    and [`HamrBuffer::device_accessible`] return a view of the data in
//!    the requested place and PM: direct (zero-copy) when the data is
//!    already accessible there, otherwise backed by an automatically
//!    managed temporary that is released when the view drops.

mod access;
mod allocator;
mod buffer;
mod element;
mod error;
mod layout;
mod stream;

pub use access::{AccessIter, AccessView};
pub use allocator::{Allocator, Pm};
pub use buffer::HamrBuffer;
pub use element::Element;
pub use error::{Error, Result};
pub use layout::{Layout, LayoutMap, Mapping};
pub use stream::{HamrStream, StreamMode};

/// Convenience alias for the most common buffer type in the data model.
pub type DoubleBuffer = HamrBuffer<f64>;
