//! Layout-polymorphic element mappings (LLAMA-style).
//!
//! A [`Layout`] names a physical arrangement of a *group* of same-length
//! fields inside one backing allocation; a [`LayoutMap`] is the concrete
//! [`Mapping`] from a field's logical element index to the cell index in
//! that allocation. Access code addresses elements logically through
//! [`crate::AccessView`] and never sees the physical arrangement, so the
//! layout can be chosen per (table, placement) — the central claim of the
//! LLAMA papers — while analyses stay unchanged.
//!
//! Supported mappings for a group of `fields` columns of `n` elements:
//!
//! * [`Layout::Scalar`] — the degenerate one-field-per-allocation layout
//!   every buffer had before grouping existed: `index(i) = i`.
//! * [`Layout::AoS`] — array of structures, rows contiguous:
//!   `index(i) = i * fields + field`.
//! * [`Layout::SoA`] — structure of arrays, fields contiguous:
//!   `index(i) = field * n + i`.
//! * [`Layout::AoSoA`] — array of structures of arrays with `lane_width`
//!   elements per lane block: `index(i) = (i / L) * (fields * L) +
//!   field * L + (i % L)`. The block count is padded up to a whole number
//!   of lanes so a ragged tail still has a home; padding cells are never
//!   addressed by any in-range index.

use std::fmt;

/// A physical data layout for a group of equal-length fields.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Layout {
    /// One dense allocation per field (the pre-grouping default).
    #[default]
    Scalar,
    /// Array of structures: all fields of element `i` are adjacent.
    AoS,
    /// Structure of arrays: each field is a dense run inside the block.
    SoA,
    /// Array of structures of arrays: `lane_width`-element lanes per
    /// field, interleaved block by block — the vectorization-friendly
    /// middle ground.
    AoSoA {
        /// Elements per lane; must be at least 1.
        lane_width: usize,
    },
}

impl Layout {
    /// Canonical short name: `scalar`, `aos`, `soa`, `aosoa<L>`.
    pub fn name(&self) -> String {
        match self {
            Layout::Scalar => "scalar".into(),
            Layout::AoS => "aos".into(),
            Layout::SoA => "soa".into(),
            Layout::AoSoA { lane_width } => format!("aosoa{lane_width}"),
        }
    }

    /// Parse a name produced by [`Layout::name`] (also accepts a bare
    /// `aosoa`, defaulting the lane width to 8).
    pub fn parse(s: &str) -> Option<Layout> {
        match s {
            "scalar" => Some(Layout::Scalar),
            "aos" => Some(Layout::AoS),
            "soa" => Some(Layout::SoA),
            "aosoa" => Some(Layout::AoSoA { lane_width: 8 }),
            other => {
                let lanes = other.strip_prefix("aosoa")?;
                let lane_width: usize = lanes.parse().ok()?;
                (lane_width >= 1).then_some(Layout::AoSoA { lane_width })
            }
        }
    }

    /// The lane width the layout vectorizes over (1 when it does not).
    pub fn lane_width(&self) -> usize {
        match self {
            Layout::AoSoA { lane_width } => (*lane_width).max(1),
            _ => 1,
        }
    }

    /// Total cells one backing block needs for `fields` columns of `n`
    /// elements — including AoSoA lane padding.
    pub fn block_cells(&self, n: usize, fields: usize) -> usize {
        match self {
            Layout::Scalar => n * fields,
            Layout::AoS | Layout::SoA => n * fields,
            Layout::AoSoA { lane_width } => {
                let lanes = (*lane_width).max(1);
                n.div_ceil(lanes) * lanes * fields
            }
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A mapping from a logical element index to a physical cell index.
pub trait Mapping {
    /// Physical cell index of logical element `i`. `i` must be less than
    /// [`Mapping::len`].
    fn index(&self, i: usize) -> usize;
    /// Number of logical elements addressed by the mapping.
    fn len(&self) -> usize;
    /// True when the mapping addresses no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The concrete mapping of one field of a grouped block: which layout,
/// how many elements and fields the group has, and which field this map
/// addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayoutMap {
    layout: Layout,
    n: usize,
    fields: usize,
    field: usize,
}

impl LayoutMap {
    /// The map of field `field` in a group of `fields` columns of `n`
    /// elements arranged as `layout`.
    ///
    /// # Panics
    /// When `field >= fields` or an AoSoA lane width is zero.
    pub fn new(layout: Layout, n: usize, fields: usize, field: usize) -> Self {
        assert!(field < fields, "field {field} out of range for {fields}-field group");
        if let Layout::AoSoA { lane_width } = layout {
            assert!(lane_width >= 1, "AoSoA lane width must be at least 1");
        }
        LayoutMap { layout, n, fields, field }
    }

    /// The group's layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Number of fields in the group.
    pub fn fields(&self) -> usize {
        self.fields
    }

    /// This map's field index inside the group.
    pub fn field(&self) -> usize {
        self.field
    }

    /// Total cells of the group's backing block (with padding).
    pub fn block_cells(&self) -> usize {
        self.layout.block_cells(self.n, self.fields)
    }

    /// True when logical indices are physical indices (`index(i) == i`),
    /// i.e. the field is a dense prefix-aligned run.
    pub fn is_identity(&self) -> bool {
        match self.layout {
            Layout::Scalar => true,
            Layout::SoA => self.field == 0,
            Layout::AoS | Layout::AoSoA { .. } => self.fields == 1 && self.layout.lane_width() <= 1,
        }
    }
}

impl Mapping for LayoutMap {
    #[inline]
    fn index(&self, i: usize) -> usize {
        debug_assert!(i < self.n, "element {i} out of range for {}-element map", self.n);
        match self.layout {
            Layout::Scalar => i,
            Layout::AoS => i * self.fields + self.field,
            Layout::SoA => self.field * self.n + i,
            Layout::AoSoA { lane_width } => {
                let lanes = lane_width.max(1);
                (i / lanes) * (self.fields * lanes) + self.field * lanes + (i % lanes)
            }
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addresses(map: &LayoutMap) -> Vec<usize> {
        (0..map.len()).map(|i| map.index(i)).collect()
    }

    #[test]
    fn scalar_is_identity() {
        let m = LayoutMap::new(Layout::Scalar, 5, 1, 0);
        assert_eq!(addresses(&m), vec![0, 1, 2, 3, 4]);
        assert!(m.is_identity());
        assert_eq!(m.block_cells(), 5);
    }

    #[test]
    fn aos_interleaves_rows() {
        // 3 elements × 2 fields: [x0 y0 x1 y1 x2 y2]
        let x = LayoutMap::new(Layout::AoS, 3, 2, 0);
        let y = LayoutMap::new(Layout::AoS, 3, 2, 1);
        assert_eq!(addresses(&x), vec![0, 2, 4]);
        assert_eq!(addresses(&y), vec![1, 3, 5]);
        assert_eq!(x.block_cells(), 6);
    }

    #[test]
    fn soa_runs_fields_densely() {
        // 3 elements × 2 fields: [x0 x1 x2 y0 y1 y2]
        let x = LayoutMap::new(Layout::SoA, 3, 2, 0);
        let y = LayoutMap::new(Layout::SoA, 3, 2, 1);
        assert_eq!(addresses(&x), vec![0, 1, 2]);
        assert_eq!(addresses(&y), vec![3, 4, 5]);
        assert!(x.is_identity());
        assert!(!y.is_identity());
    }

    #[test]
    fn aosoa_blocks_lanes_with_ragged_tail() {
        // 5 elements × 2 fields × lane 2:
        // block 0: [x0 x1 y0 y1]  block 1: [x2 x3 y2 y3]  block 2: [x4 _ y4 _]
        let lay = Layout::AoSoA { lane_width: 2 };
        let x = LayoutMap::new(lay, 5, 2, 0);
        let y = LayoutMap::new(lay, 5, 2, 1);
        assert_eq!(addresses(&x), vec![0, 1, 4, 5, 8]);
        assert_eq!(addresses(&y), vec![2, 3, 6, 7, 10]);
        assert_eq!(x.block_cells(), 12, "padded to a whole lane");
    }

    #[test]
    fn mapped_addresses_are_unique_and_in_bounds() {
        for layout in [
            Layout::AoS,
            Layout::SoA,
            Layout::AoSoA { lane_width: 4 },
            Layout::AoSoA { lane_width: 8 },
        ] {
            let (n, fields) = (13, 3); // non-divisible count forces a ragged tail
            let mut seen = std::collections::HashSet::new();
            for f in 0..fields {
                let m = LayoutMap::new(layout, n, fields, f);
                for i in 0..n {
                    let a = m.index(i);
                    assert!(a < m.block_cells(), "{layout:?} addressed past the block");
                    assert!(seen.insert(a), "{layout:?} aliased cell {a}");
                }
            }
        }
    }

    #[test]
    fn names_roundtrip() {
        for layout in [
            Layout::Scalar,
            Layout::AoS,
            Layout::SoA,
            Layout::AoSoA { lane_width: 1 },
            Layout::AoSoA { lane_width: 4 },
            Layout::AoSoA { lane_width: 8 },
        ] {
            assert_eq!(Layout::parse(&layout.name()), Some(layout));
        }
        assert_eq!(Layout::parse("aosoa"), Some(Layout::AoSoA { lane_width: 8 }));
        assert_eq!(Layout::parse("nope"), None);
        assert_eq!(Layout::parse("aosoa0"), None);
    }
}
