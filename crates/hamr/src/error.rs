//! Error type for HAMR operations.

use std::fmt;

/// Result alias for hamr operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by HAMR buffers and views.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The underlying simulated runtime failed (OOM, bad device, ...).
    Device(devsim::Error),
    /// An async allocator was selected without providing a stream.
    AsyncNeedsStream { allocator: &'static str },
    /// A host allocator was paired with a device placement or vice versa.
    PlacementMismatch { allocator: &'static str, wanted_device: bool },
    /// An element index was out of bounds.
    IndexOutOfBounds { index: usize, len: usize },
    /// A layout group was malformed (block size mismatch, missing or
    /// mistyped field, ...).
    Layout(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Device(e) => write!(f, "device runtime error: {e}"),
            Error::AsyncNeedsStream { allocator } => {
                write!(f, "allocator {allocator} is asynchronous and requires a stream")
            }
            Error::PlacementMismatch { allocator, wanted_device } => {
                if *wanted_device {
                    write!(
                        f,
                        "allocator {allocator} allocates host memory but a device was requested"
                    )
                } else {
                    write!(
                        f,
                        "allocator {allocator} allocates device memory but no device was given"
                    )
                }
            }
            Error::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for buffer of length {len}")
            }
            Error::Layout(msg) => write!(f, "layout group error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<devsim::Error> for Error {
    fn from(e: devsim::Error) -> Self {
        Error::Device(e)
    }
}
