//! Property tests on the memory resource: any data, any allocator, any
//! access path — the bytes always survive.

use std::sync::Arc;

use devsim::{NodeConfig, SimNode};
use hamr::{Allocator, HamrBuffer, HamrStream, Pm, StreamMode};
use proptest::prelude::*;

fn node() -> Arc<SimNode> {
    SimNode::new(NodeConfig::fast_test(2))
}

fn allocator_strategy() -> impl Strategy<Value = Allocator> {
    proptest::sample::select(Allocator::ALL.to_vec())
}

fn finite_f64() -> impl Strategy<Value = f64> {
    // Any bit pattern except NaN (NaN breaks equality comparison, not the
    // storage; NaN round-tripping is covered by unit tests).
    proptest::num::f64::ANY.prop_filter("finite or inf", |v| !v.is_nan())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// from_slice -> to_vec is the identity for every allocator.
    #[test]
    fn roundtrip_through_any_allocator(
        data in proptest::collection::vec(finite_f64(), 0..64),
        alloc in allocator_strategy(),
    ) {
        let n = node();
        let device = if alloc.is_device() { Some(0) } else { None };
        let stream = if alloc.is_stream_ordered() {
            HamrStream::new(n.device(0).unwrap().create_stream())
        } else {
            HamrStream::default_stream()
        };
        let buf = HamrBuffer::<f64>::from_slice(n, &data, alloc, device, stream, StreamMode::Sync)
            .unwrap();
        prop_assert_eq!(buf.to_vec().unwrap(), data);
    }

    /// The data read through *any* access path equals the managed data.
    #[test]
    fn every_access_path_sees_the_same_bytes(
        data in proptest::collection::vec(finite_f64(), 1..48),
        target_dev in 0usize..2,
        pm in proptest::sample::select(vec![Pm::Cuda, Pm::Hip, Pm::OpenMp, Pm::Sycl, Pm::Kokkos]),
    ) {
        let n = node();
        let buf = HamrBuffer::<f64>::from_slice(
            n.clone(), &data, Allocator::OpenMp, Some(0),
            HamrStream::default_stream(), StreamMode::Sync,
        ).unwrap();

        // Host path.
        let hv = buf.host_accessible().unwrap();
        buf.synchronize().unwrap();
        prop_assert_eq!(hv.to_vec().unwrap(), data.clone());

        // Device path: move (or not) to `target_dev` under any PM, then
        // read back through a stream copy.
        let dv = buf.device_accessible(target_dev, pm).unwrap();
        buf.synchronize().unwrap();
        prop_assert_eq!(dv.is_direct(), target_dev == 0);
        let host = n.host_alloc_f64(data.len());
        let stream = n.device(target_dev).unwrap().default_stream();
        stream.copy(dv.cells(), &host).unwrap();
        stream.synchronize().unwrap();
        prop_assert_eq!(host.host_f64().unwrap().to_vec(), data);
    }

    /// Zero-copy invariant: same-device access never allocates or copies,
    /// regardless of the requesting PM.
    #[test]
    fn same_device_access_is_always_free(
        len in 1usize..64,
        pm in proptest::sample::select(vec![Pm::Cuda, Pm::Hip, Pm::OpenMp, Pm::Sycl, Pm::Kokkos]),
    ) {
        let n = node();
        let buf = HamrBuffer::<f64>::new_init(
            n.clone(), len, 1.5, Allocator::Cuda, Some(1),
            HamrStream::default_stream(), StreamMode::Sync,
        ).unwrap();
        let copies_before = n.stats().total_copies();
        let used_before = n.device(1).unwrap().used_bytes();
        let view = buf.device_accessible(1, pm).unwrap();
        prop_assert!(view.is_direct());
        prop_assert_eq!(n.stats().total_copies(), copies_before);
        prop_assert_eq!(n.device(1).unwrap().used_bytes(), used_before);
    }

    /// Dropping an `AccessView` returns its temporary block to the
    /// caching pool: live usage falls back to the baseline, and the next
    /// same-shape access is served from cache instead of allocating.
    #[test]
    fn accessview_drop_returns_the_temporary_to_the_pool(
        data in proptest::collection::vec(finite_f64(), 1..96),
        pm in proptest::sample::select(vec![Pm::Cuda, Pm::Hip, Pm::OpenMp]),
    ) {
        let n = node();
        let buf = HamrBuffer::<f64>::from_slice(
            n.clone(), &data, Allocator::Malloc, None,
            HamrStream::default_stream(), StreamMode::Sync,
        ).unwrap();

        // First cross-space access materializes a device temporary.
        let dev = n.device(0).unwrap();
        let used_baseline = dev.used_bytes();
        let view = buf.device_accessible(0, pm).unwrap();
        prop_assert!(!view.is_direct());
        prop_assert!(dev.used_bytes() > used_baseline);

        drop(view);
        prop_assert_eq!(dev.used_bytes(), used_baseline, "the temp is no longer live");
        let after_drop = dev.pool_stats();
        prop_assert!(after_drop.cached_bytes > 0, "the temp went to the free list, not free()");

        // The next identical access is a pool hit, not an allocation.
        let view2 = buf.device_accessible(0, pm).unwrap();
        let s = dev.pool_stats();
        prop_assert_eq!(s.raw_allocs, after_drop.raw_allocs);
        prop_assert_eq!(s.hits, after_drop.hits + 1);
        drop(view2);
    }

    /// move_to round trips preserve content through arbitrary residency
    /// sequences.
    #[test]
    fn residency_walks_preserve_content(
        data in proptest::collection::vec(finite_f64(), 1..32),
        walk in proptest::collection::vec(proptest::option::of(0usize..2), 1..5),
    ) {
        let n = node();
        let buf = HamrBuffer::<f64>::from_slice(
            n, &data, Allocator::Malloc, None,
            HamrStream::default_stream(), StreamMode::Sync,
        ).unwrap();
        for target in walk {
            buf.move_to(target).unwrap();
            prop_assert_eq!(buf.device(), target);
            prop_assert_eq!(buf.to_vec().unwrap(), data.clone());
        }
    }
}
