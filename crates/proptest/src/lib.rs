//! A local stand-in for the `proptest` crate (the build environment has
//! no crates.io access).
//!
//! Implements the strategy-combinator API surface the workspace's
//! property tests use — ranges, tuples, `collection::vec`, `option::of`,
//! `sample::select`, regex-literal string strategies, `prop_map` /
//! `prop_filter` / `prop_recursive`, `any::<T>()` — driven by a
//! deterministic per-case RNG. Differences from real proptest: no
//! shrinking (a failing case panics with the generated inputs fixed by
//! the deterministic seed, so it reproduces exactly), and `prop_assert*`
//! are plain `assert*`.

pub mod test_runner;

pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};

/// Run-time configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test body runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len` and elements
    /// from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector strategy: each value is a fresh vector of `element`
    /// samples with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "vec length range must be non-empty");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.below(self.len.end - self.len.start) + self.len.start;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`, `None` about a quarter of the
    /// time.
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// An `Option` strategy over `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Sampling strategies (`proptest::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing uniformly from a fixed set of values.
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// A strategy selecting uniformly from `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select needs at least one item");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len())].clone()
        }
    }
}

/// Numeric strategies (`proptest::num::f64::ANY`).
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy over every `f64` bit pattern: finite values of all
        /// magnitudes, infinities, NaNs, signed zeros.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// Any `f64`, including non-finite values.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                // Mix raw bit patterns (hits NaN/inf/denormals) with
                // moderate-magnitude values so both paths are exercised.
                match rng.below(4) {
                    0 => f64::from_bits(rng.next_u64()),
                    1 => {
                        let m = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                        (m - 0.5) * 2e6
                    }
                    2 => {
                        let m = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                        (m - 0.5) * 2.0
                    }
                    _ => [0.0, -0.0, 1.0, -1.0, f64::INFINITY, f64::NEG_INFINITY, f64::MAX]
                        [rng.below(7)],
                }
            }
        }
    }
}

/// `prop_assert!`: plain `assert!` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// `prop_assume!`: skip the rest of this case when the assumption fails.
/// The stand-in simply `continue`s to the next case (it expands inside
/// the per-case loop of [`proptest!`]).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// The `proptest!` block macro: declares `#[test]` functions whose
/// arguments are drawn from strategies, run for `ProptestConfig::cases`
/// deterministic cases each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case as u64);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}
