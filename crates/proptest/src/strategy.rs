//! The [`Strategy`] trait, combinators, and base strategy impls.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `pred` holds (retrying generation).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred, reason }
    }

    /// Build recursive structures: `recurse` receives the strategy for
    /// the previous depth level and returns the strategy for one level
    /// deeper. `depth` bounds recursion; the size hints are accepted for
    /// API compatibility but unused.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(current).boxed();
            let l = leaf.clone();
            // A leaf 1 time in 4 at every level varies the actual depth.
            current = BoxedStrategy::new(move |rng: &mut TestRng| {
                if rng.below(4) == 0 {
                    l.generate(rng)
                } else {
                    branch.generate(rng)
                }
            });
        }
        current
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy::new(move |rng: &mut TestRng| inner.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { gen: self.gen.clone() }
    }
}

impl<T> BoxedStrategy<T> {
    pub(crate) fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates in a row", self.reason);
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- ranges ----------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range must be non-empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range must be non-empty");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

// ---- tuples ----------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

// ---- any::<T>() ------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over every value of `T` (see [`any`]).
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(PhantomData<T>);

/// The canonical strategy for `T`: any representable value.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

// ---- regex-literal string strategies ---------------------------------

/// `&str` literals act as regex strategies over a small, commonly used
/// subset: literal characters, character classes (`[a-z0-9_]`, `[ -~]`),
/// the `\PC` printable-character escape, and quantifiers `{n}`, `{m,n}`,
/// `*`, `+`, `?`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min_reps + rng.below(atom.max_reps - atom.min_reps + 1);
            for _ in 0..n {
                out.push(atom.class.sample(rng));
            }
        }
        out
    }
}

/// Inclusive character ranges a class can draw from.
#[derive(Debug, Clone)]
struct CharClass {
    ranges: Vec<(char, char)>,
}

impl CharClass {
    fn single(c: char) -> Self {
        CharClass { ranges: vec![(c, c)] }
    }

    /// `\PC`: any non-control character. Printable ASCII plus a few
    /// multi-byte characters so UTF-8 handling gets exercised.
    fn printable() -> Self {
        CharClass { ranges: vec![(' ', '~'), ('\u{00e9}', '\u{00ea}'), ('\u{03b1}', '\u{03b4}')] }
    }

    fn sample(&self, rng: &mut TestRng) -> char {
        let total: u32 = self.ranges.iter().map(|&(lo, hi)| hi as u32 - lo as u32 + 1).sum();
        let mut pick = rng.below(total as usize) as u32;
        for &(lo, hi) in &self.ranges {
            let span = hi as u32 - lo as u32 + 1;
            if pick < span {
                return char::from_u32(lo as u32 + pick).expect("in-range scalar");
            }
            pick -= span;
        }
        unreachable!("pick < total");
    }
}

#[derive(Debug, Clone)]
struct Atom {
    class: CharClass,
    min_reps: usize,
    max_reps: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let class = match chars[i] {
            '[' => {
                let end = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated class in '{pattern}'"));
                let class = parse_class(&chars[i + 1..end], pattern);
                i = end + 1;
                class
            }
            '\\' => {
                let next =
                    *chars.get(i + 1).unwrap_or_else(|| panic!("dangling \\ in '{pattern}'"));
                if next == 'P' || next == 'p' {
                    // \PC / \pC style category escape: treat as printable.
                    i += 3;
                    CharClass::printable()
                } else {
                    i += 2;
                    CharClass::single(next)
                }
            }
            '.' => {
                i += 1;
                CharClass::printable()
            }
            c => {
                i += 1;
                CharClass::single(c)
            }
        };
        // Optional quantifier.
        let (min_reps, max_reps) = match chars.get(i) {
            Some('{') => {
                let end = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated quantifier in '{pattern}'"));
                let body: String = chars[i + 1..end].iter().collect();
                i = end + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        atoms.push(Atom { class, min_reps, max_reps });
    }
    atoms
}

fn parse_class(body: &[char], pattern: &str) -> CharClass {
    assert!(!body.is_empty(), "empty class in '{pattern}'");
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let lo = body[i];
        if i + 2 < body.len() && body[i + 1] == '-' {
            let hi = body[i + 2];
            assert!(lo <= hi, "inverted range in '{pattern}'");
            ranges.push((lo, hi));
            i += 3;
        } else if i + 2 == body.len() && body[i + 1] == '-' {
            // Trailing '-' is a literal.
            ranges.push((lo, lo));
            ranges.push(('-', '-'));
            i += 2;
        } else {
            ranges.push((lo, lo));
            i += 1;
        }
    }
    CharClass { ranges }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case(11)
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (0usize..3).generate(&mut r);
            assert!(v < 3);
            let (a, b) = ((0u8..3), (-5i64..6)).generate(&mut r);
            assert!(a < 3);
            assert!((-5..6).contains(&b));
            let f = (0.25f64..0.75).generate(&mut r);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn map_filter_and_just() {
        let mut r = rng();
        let s = (0usize..10).prop_map(|v| v * 2).prop_filter("even >= 4", |&v| v >= 4);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && v >= 4);
        }
        assert_eq!(Just(7).generate(&mut r), 7);
    }

    #[test]
    fn regex_literals_match_their_own_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let name = "[a-z][a-z0-9_]{0,8}".generate(&mut r);
            assert!(!name.is_empty() && name.len() <= 9);
            assert!(name.chars().next().unwrap().is_ascii_lowercase());
            assert!(name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

            let printable = "\\PC{0,64}".generate(&mut r);
            assert!(printable.chars().count() <= 64);
            assert!(printable.chars().all(|c| !c.is_control()));

            let ascii = "[ -~]{0,12}".generate(&mut r);
            assert!(ascii.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn vec_option_select_any() {
        let mut r = rng();
        for _ in 0..100 {
            let v = crate::collection::vec(0usize..5, 1..4).generate(&mut r);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
            let o = crate::option::of(0usize..5).generate(&mut r);
            assert!(o.is_none() || o.unwrap() < 5);
            let s = crate::sample::select(vec!["a", "b"]).generate(&mut r);
            assert!(s == "a" || s == "b");
            let _: u64 = any::<u64>().generate(&mut r);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        fn leaves_in_range(t: &Tree) -> bool {
            match t {
                Tree::Leaf(v) => *v < 10,
                Tree::Node(cs) => cs.iter().all(leaves_in_range),
            }
        }
        let strat = (0u8..10).prop_map(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut r = rng();
        for _ in 0..100 {
            let t = strat.generate(&mut r);
            assert!(depth(&t) <= 4);
            assert!(leaves_in_range(&t));
        }
    }
}
