//! The deterministic RNG driving case generation.

/// A self-contained xoshiro256** generator. Each test case gets its own
/// instance seeded from the case index, so failures reproduce exactly on
/// re-run without recording anything.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// The generator for case `case` of a test.
    pub fn for_case(case: u64) -> Self {
        // SplitMix64 expansion of the case index.
        let mut x = case.wrapping_mul(0x2545F4914F6CDD1D) ^ 0xA076_1D64_78BD_642F;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Modulo bias is negligible against 2^64 for test-sized ranges.
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case(3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case(3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r4 = TestRng::for_case(4);
        assert_ne!(a[0], r4.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::for_case(0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
