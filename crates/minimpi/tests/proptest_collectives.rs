//! Property tests: every collective agrees with its sequential
//! definition for arbitrary inputs and communicator sizes.

use minimpi::World;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn allreduce_equals_sequential_fold(
        values in proptest::collection::vec(-1000i64..1000, 1..6),
    ) {
        let n = values.len();
        let v2 = values.clone();
        let got = World::new(n).run(move |c| c.allreduce(v2[c.rank()], |a, b| a + b));
        let expect: i64 = values.iter().sum();
        prop_assert!(got.into_iter().all(|g| g == expect));
    }

    #[test]
    fn reduce_respects_rank_order_for_noncommutative_ops(
        words in proptest::collection::vec("[a-z]{1,4}", 1..5),
        root in 0usize..5,
    ) {
        let n = words.len();
        let root = root % n;
        let w2 = words.clone();
        let got = World::new(n).run(move |c| {
            c.reduce(root, w2[c.rank()].clone(), |a, b| a + &b).unwrap()
        });
        let expect: String = words.concat();
        prop_assert_eq!(got[root].clone(), Some(expect));
    }

    #[test]
    fn allgather_returns_rank_ordered_values(
        values in proptest::collection::vec(any::<u32>(), 1..6),
    ) {
        let n = values.len();
        let v2 = values.clone();
        let got = World::new(n).run(move |c| c.allgather(v2[c.rank()]));
        prop_assert!(got.into_iter().all(|g| g == values));
    }

    #[test]
    fn alltoall_is_a_transpose(
        n in 1usize..5,
        seed in any::<u32>(),
    ) {
        let got = World::new(n).run(move |c| {
            let outgoing: Vec<u64> = (0..n)
                .map(|d| seed as u64 ^ (c.rank() as u64 * 1000 + d as u64))
                .collect();
            c.alltoall(outgoing).unwrap()
        });
        for (r, incoming) in got.iter().enumerate() {
            for (j, &v) in incoming.iter().enumerate() {
                prop_assert_eq!(v, seed as u64 ^ (j as u64 * 1000 + r as u64));
            }
        }
    }

    #[test]
    fn scan_is_the_inclusive_prefix(
        values in proptest::collection::vec(-100i64..100, 1..6),
    ) {
        let n = values.len();
        let v2 = values.clone();
        let got = World::new(n).run(move |c| c.scan(v2[c.rank()], |a, b| a + b).unwrap());
        let mut acc = 0;
        for (r, g) in got.into_iter().enumerate() {
            acc += values[r];
            prop_assert_eq!(g, acc);
        }
    }

    #[test]
    fn split_partitions_exactly(
        colors in proptest::collection::vec(0u64..3, 1..6),
    ) {
        let n = colors.len();
        let c2 = colors.clone();
        let got = World::new(n).run(move |c| {
            let sub = c.split(c2[c.rank()], c.rank() as u64);
            (sub.rank(), sub.size())
        });
        // Group sizes must match the color multiset; ranks within each
        // group must be 0..size.
        for color in 0..3u64 {
            let members: Vec<usize> =
                (0..n).filter(|&r| colors[r] == color).collect();
            let mut subranks: Vec<usize> =
                members.iter().map(|&r| got[r].0).collect();
            subranks.sort_unstable();
            prop_assert_eq!(subranks, (0..members.len()).collect::<Vec<_>>());
            for &r in &members {
                prop_assert_eq!(got[r].1, members.len());
            }
        }
    }
}
