//! Stress and interleaving tests: heavy concurrent traffic across many
//! communicators, the pattern the asynchronous execution method creates
//! (every async back-end owns a duplicate communicator whose collectives
//! run on in situ worker threads, interleaved with the simulation's).

use minimpi::World;

#[test]
fn concurrent_collectives_on_duplicate_communicators() {
    // Each rank spawns a worker thread per duplicate; all duplicates run
    // allreduces concurrently with the parent's own traffic.
    const DUPS: usize = 4;
    const ROUNDS: usize = 25;
    let results = World::new(3).run(|comm| {
        let dups: Vec<_> = (0..DUPS).map(|_| comm.dup()).collect();
        let mut sums = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (d, dup) in dups.into_iter().enumerate() {
                handles.push(scope.spawn(move || {
                    let mut acc = 0u64;
                    for round in 0..ROUNDS {
                        let v = (dup.rank() + d * round) as u64;
                        acc = acc.wrapping_add(dup.allreduce(v, |a, b| a + b));
                    }
                    acc
                }));
            }
            // The "simulation" keeps using the parent concurrently.
            for _ in 0..ROUNDS {
                comm.barrier();
                let _ = comm.allgather(comm.rank());
            }
            for h in handles {
                sums.push(h.join().unwrap());
            }
        });
        sums
    });
    // Every rank's worker d must have computed the same sequence of
    // global sums: sum over ranks of (rank + d*round).
    for d in 0..DUPS {
        let expect: u64 =
            (0..ROUNDS).map(|round| (0..3).map(|r| (r + d * round) as u64).sum::<u64>()).sum();
        for rank_result in &results {
            assert_eq!(rank_result[d], expect, "duplicate {d}");
        }
    }
}

#[test]
fn heavy_tag_interleaving_preserves_per_tag_fifo() {
    const MSGS: usize = 200;
    const TAGS: u64 = 5;
    let ok = World::new(2).run(|comm| {
        if comm.rank() == 0 {
            // Interleave sends across tags.
            for i in 0..MSGS {
                let tag = (i as u64) % TAGS;
                comm.send(1, tag, (tag, i)).unwrap();
            }
            true
        } else {
            // Blocking receives per tag: within a tag, sequence numbers
            // must arrive in send order even though sends interleaved.
            let per_tag = MSGS / TAGS as usize;
            let mut all_in_order = true;
            for tag in 0..TAGS {
                let mut last = -1i64;
                for _ in 0..per_tag {
                    let (t, i): (u64, usize) = comm.recv(0, tag).unwrap();
                    all_in_order &= t == tag && i as i64 > last;
                    last = i as i64;
                }
            }
            all_in_order
        }
    });
    assert!(ok.iter().all(|&b| b));
}

#[test]
fn many_ranks_allreduce_scales() {
    // 16 rank-threads, vector payloads.
    let got = World::new(16).run(|comm| {
        let local = vec![comm.rank() as f64; 256];
        comm.allreduce(local, minimpi::ops::vec_sum)
    });
    let expect = (0..16).sum::<usize>() as f64;
    for v in got {
        assert!(v.iter().all(|&x| x == expect));
    }
}

#[test]
fn nested_splits_compose() {
    // Split twice: world -> parity groups -> halves of each group.
    let got = World::new(8).run(|comm| {
        let parity = comm.split((comm.rank() % 2) as u64, comm.rank() as u64);
        let quarter = parity.split((parity.rank() / 2) as u64, parity.rank() as u64);
        let sum = quarter.allreduce(comm.rank(), |a, b| a + b);
        (quarter.size(), sum)
    });
    // Groups: {0,2},{4,6},{1,3},{5,7} -> sums 2, 10, 4, 12.
    assert_eq!(got[0], (2, 2));
    assert_eq!(got[2], (2, 2));
    assert_eq!(got[4], (2, 10));
    assert_eq!(got[6], (2, 10));
    assert_eq!(got[1], (2, 4));
    assert_eq!(got[3], (2, 4));
    assert_eq!(got[5], (2, 12));
    assert_eq!(got[7], (2, 12));
}
