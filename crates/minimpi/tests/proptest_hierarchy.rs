//! Property tests for the tiered collective path: for any rank count,
//! node grouping, segment layout, and segment op, the hierarchical
//! algorithms must produce bit-identical results to the flat baseline —
//! including when a leader-tier collective is delayed by fault injection.

use std::sync::Arc;
use std::time::Duration;

use devsim::fault::{self, site};
use devsim::{FaultConfig, FaultInjector, FaultRule};
use minimpi::{CollectiveMode, Segment, SegmentOp, Topology, World};
use proptest::prelude::*;

/// Run the same packed-allreduce workload under both collective modes on
/// an arbitrary topology and return the per-rank result bits.
fn packed_bits(
    node_of: &[usize],
    data: &[Vec<f64>],
    segments: &[Segment],
    mode: CollectiveMode,
) -> Vec<Vec<u64>> {
    let n = node_of.len();
    let data = data.to_vec();
    let segments = segments.to_vec();
    World::new(n)
        .with_topology(Topology::from_nodes(node_of.to_vec()))
        .with_collective_mode(mode)
        .run(move |c| {
            let out = c.allreduce_packed(data[c.rank()].clone(), &segments).unwrap();
            assert_eq!(c.allreduce_count(), 1, "one packed round regardless of mode");
            out.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
        })
}

fn segment_strategy() -> impl Strategy<Value = Vec<Segment>> {
    proptest::collection::vec(
        (proptest::sample::select(vec![SegmentOp::Sum, SegmentOp::Min, SegmentOp::Max]), 1usize..5),
        1..5,
    )
    .prop_map(|segs| segs.into_iter().map(|(op, len)| Segment::new(op, len)).collect())
}

/// Values that expose any re-parenthesisation of f64 sums: mixed
/// magnitudes so addition is far from associative, including exact
/// cancellation pairs and NaN for the Min/Max identities.
fn value_strategy() -> impl Strategy<Value = f64> {
    proptest::sample::select(vec![0.1, -0.3, 1.0e15, -1.0e15, 3.5e-3, 1234.5, -7.25, f64::NAN])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hierarchical_packed_allreduce_matches_flat_bitwise(
        node_of in proptest::collection::vec(0usize..4, 1..9),
        segments in segment_strategy(),
        seed_values in proptest::collection::vec(value_strategy(), 32..33),
    ) {
        let n = node_of.len();
        let len: usize = segments.iter().map(|s| s.len).sum();
        // Per-rank buffers drawn deterministically from the value pool.
        let data: Vec<Vec<f64>> = (0..n)
            .map(|r| (0..len).map(|i| seed_values[(r * 7 + i) % seed_values.len()]).collect())
            .collect();
        let flat = packed_bits(&node_of, &data, &segments, CollectiveMode::Flat);
        let hier = packed_bits(&node_of, &data, &segments, CollectiveMode::Hierarchical);
        prop_assert_eq!(&flat, &hier);
        // And every rank agrees with every other rank within a mode.
        for bits in &hier {
            prop_assert_eq!(bits, &hier[0]);
        }
    }

    #[test]
    fn hierarchical_generic_allreduce_matches_flat(
        node_of in proptest::collection::vec(0usize..3, 1..8),
    ) {
        // String concatenation is non-commutative and non-associative in
        // the bytes it produces only if the merge *order* changes; both
        // modes must realise the same canonical order.
        let n = node_of.len();
        let run = |mode| {
            World::new(n)
                .with_topology(Topology::from_nodes(node_of.clone()))
                .with_collective_mode(mode)
                .run(|c| c.allreduce(format!("[{}]", c.rank()), |a, b| a + &b))
        };
        prop_assert_eq!(run(CollectiveMode::Flat), run(CollectiveMode::Hierarchical));
    }

    #[test]
    fn delayed_leader_tier_collective_stays_bit_identical(
        ranks_per_node in 1usize..4,
        n in 2usize..9,
        slow_rank in 0usize..9,
        seed in 0u64..64,
    ) {
        // A chaos-style hook delays collectives on one rank — including
        // the leader-tier collective the hierarchy introduces (hooks are
        // inherited by the internal tier sub-communicators). The delayed
        // run must still produce the flat path's exact bits.
        let slow_rank = slow_rank % n;
        let topo = Topology::from_nodes((0..n).map(|r| r / ranks_per_node).collect());
        let payload: Vec<f64> = (0..6).map(|i| 1.0e15 * (i as f64) - 0.3).collect();
        let segs = [Segment::new(SegmentOp::Sum, 4), Segment::new(SegmentOp::Min, 2)];

        let flat = World::new(n)
            .with_topology(topo.clone())
            .with_collective_mode(CollectiveMode::Flat)
            .run(|c| {
                let mut v = payload.clone();
                v[0] += c.rank() as f64;
                c.allreduce_packed(v, &segs).unwrap()
            });

        let injector = FaultInjector::new();
        injector.configure(FaultConfig::seeded(seed).with_rule(
            FaultRule::delay(site::MPI_COLLECTIVE, Duration::from_micros(200))
                .for_rank(slow_rank)
                .with_max_injections(3),
        ));
        let inj2 = injector.clone();
        let hier = World::new(n).with_topology(topo).run(move |c| {
            let _armed = fault::arm(c.rank());
            let inj = inj2.clone();
            c.set_collective_hook(Arc::new(move |_| {
                let _ = inj.check(site::MPI_COLLECTIVE);
            }));
            let mut v = payload.clone();
            v[0] += c.rank() as f64;
            c.allreduce_packed(v, &segs).unwrap()
        });

        let fb: Vec<Vec<u64>> =
            flat.iter().map(|v| v.iter().map(|x| x.to_bits()).collect()).collect();
        let hb: Vec<Vec<u64>> =
            hier.iter().map(|v| v.iter().map(|x| x.to_bits()).collect()).collect();
        prop_assert_eq!(fb, hb);
        // The slow rank's hook observes at least the parent collective
        // slot (and the tier slots on multi-node runs), so the
        // always-firing delay rule must actually have injected.
        prop_assert!(injector.stats().injected_delays > 0);
    }
}
