//! The simulated node topology and per-tier traffic accounting.
//!
//! A [`Topology`] groups a communicator's ranks into *nodes*, mirroring a
//! real cluster where ranks on one node exchange over shared memory or an
//! NVLink-class fabric while ranks on different nodes cross the cluster
//! interconnect. Every message a [`crate::Comm`] sends is charged against
//! one of the two tiers using [`devsim::NetworkParams`], and the
//! hierarchical collectives use the grouping to route node-local traffic
//! over the cheap tier (see `collectives.rs`).
//!
//! The default topology is a single node containing every rank, which
//! degenerates to the historical flat behaviour: all traffic is
//! intra-node and the hierarchical collective paths are skipped entirely.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How collectives route their traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectiveMode {
    /// The historical flat algorithms (all-to-root + broadcast), kept as
    /// the A/B baseline. Results are bit-identical to `Hierarchical`
    /// because both realise the topology's canonical merge order.
    Flat,
    /// Tiered algorithms: node-local reduce, a binomial tree among node
    /// leaders over the inter-node tier, node-local broadcast.
    #[default]
    Hierarchical,
}

/// Ranks grouped into simulated nodes.
///
/// Node indices are dense (`0..num_nodes`) and each node's member list is
/// sorted ascending by rank; the *leader* of a node is its lowest rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// `node_of[rank]` — the node index each rank lives on.
    node_of: Vec<usize>,
    /// `nodes[node]` — member ranks, ascending.
    nodes: Vec<Vec<usize>>,
}

impl Topology {
    /// Every rank on one node: the flat default.
    pub fn single_node(size: usize) -> Self {
        Topology::from_nodes(vec![0; size])
    }

    /// Consecutive ranks grouped `ranks_per_node` at a time, the way
    /// `mpirun` fills nodes; the last node may be partial.
    ///
    /// # Panics
    /// Panics if `size == 0` or `ranks_per_node == 0`.
    pub fn grouped(size: usize, ranks_per_node: usize) -> Self {
        assert!(ranks_per_node > 0, "a node holds at least one rank");
        Topology::from_nodes((0..size).map(|r| r / ranks_per_node).collect())
    }

    /// Build from an explicit rank → node assignment. Node ids are
    /// normalised to dense indices in order of first appearance, so any
    /// labelling works.
    ///
    /// # Panics
    /// Panics if `node_of` is empty.
    pub fn from_nodes(node_of: Vec<usize>) -> Self {
        assert!(!node_of.is_empty(), "a topology needs at least one rank");
        let mut dense: Vec<usize> = Vec::new();
        let mut node_of_dense = Vec::with_capacity(node_of.len());
        for &raw in &node_of {
            let idx = match dense.iter().position(|&d| d == raw) {
                Some(i) => i,
                None => {
                    dense.push(raw);
                    dense.len() - 1
                }
            };
            node_of_dense.push(idx);
        }
        let mut nodes = vec![Vec::new(); dense.len()];
        for (rank, &n) in node_of_dense.iter().enumerate() {
            nodes[n].push(rank);
        }
        Topology { node_of: node_of_dense, nodes }
    }

    /// Number of ranks covered.
    pub fn size(&self) -> usize {
        self.node_of.len()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node index `rank` lives on.
    pub fn node_of(&self, rank: usize) -> usize {
        self.node_of[rank]
    }

    /// Member ranks of `node`, ascending.
    pub fn members(&self, node: usize) -> &[usize] {
        &self.nodes[node]
    }

    /// The leader (lowest rank) of `node`.
    pub fn leader(&self, node: usize) -> usize {
        self.nodes[node][0]
    }

    /// Whether `rank` is its node's leader.
    pub fn is_leader(&self, rank: usize) -> bool {
        self.leader(self.node_of(rank)) == rank
    }

    /// `rank`'s position within its node's member list.
    pub fn node_rank(&self, rank: usize) -> usize {
        self.members(self.node_of(rank))
            .iter()
            .position(|&r| r == rank)
            .expect("rank is a member of its own node")
    }

    /// Whether two ranks share a node (their traffic rides the cheap tier).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of[a] == self.node_of[b]
    }

    /// Whether every rank shares one node — the fast path that skips the
    /// inter-node tier entirely.
    pub fn is_single_node(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The topology induced on a sub-group: `parent_ranks[i]` is the
    /// parent rank that becomes rank `i` of the child. Used by
    /// `split`/`dup` so derived communicators preserve node membership.
    pub fn subset(&self, parent_ranks: &[usize]) -> Topology {
        Topology::from_nodes(parent_ranks.iter().map(|&r| self.node_of(r)).collect())
    }
}

/// Per-tier traffic counters, shared by a communicator handle and the
/// internal node-local/leader sub-communicators its hierarchical
/// collectives create (so a handle's stats cover the whole tiered
/// exchange). Atomics because the scheduler may drive a comm's collectives
/// from coordinator threads.
#[derive(Debug, Default)]
pub(crate) struct TierCounters {
    intra_messages: AtomicU64,
    intra_bytes: AtomicU64,
    intra_modeled_ns: AtomicU64,
    inter_messages: AtomicU64,
    inter_bytes: AtomicU64,
    inter_modeled_ns: AtomicU64,
}

impl TierCounters {
    pub fn record(&self, inter: bool, bytes: u64, modeled_ns: u64) {
        if inter {
            self.inter_messages.fetch_add(1, Ordering::Relaxed);
            self.inter_bytes.fetch_add(bytes, Ordering::Relaxed);
            self.inter_modeled_ns.fetch_add(modeled_ns, Ordering::Relaxed);
        } else {
            self.intra_messages.fetch_add(1, Ordering::Relaxed);
            self.intra_bytes.fetch_add(bytes, Ordering::Relaxed);
            self.intra_modeled_ns.fetch_add(modeled_ns, Ordering::Relaxed);
        }
    }

    pub fn snapshot(&self) -> TierSnapshot {
        TierSnapshot {
            intra_messages: self.intra_messages.load(Ordering::Relaxed),
            intra_bytes: self.intra_bytes.load(Ordering::Relaxed),
            intra_modeled_ns: self.intra_modeled_ns.load(Ordering::Relaxed),
            inter_messages: self.inter_messages.load(Ordering::Relaxed),
            inter_bytes: self.inter_bytes.load(Ordering::Relaxed),
            inter_modeled_ns: self.inter_modeled_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a communicator's per-tier traffic, from
/// [`crate::Comm::tier_stats`]. Message counts, payload bytes, and the
/// modeled network time (per [`devsim::NetworkParams`]) per tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierSnapshot {
    /// Messages between ranks sharing a node.
    pub intra_messages: u64,
    /// Payload bytes between ranks sharing a node.
    pub intra_bytes: u64,
    /// Modeled nanoseconds of intra-node network time (serialised).
    pub intra_modeled_ns: u64,
    /// Messages crossing nodes.
    pub inter_messages: u64,
    /// Payload bytes crossing nodes.
    pub inter_bytes: u64,
    /// Modeled nanoseconds of inter-node network time (serialised).
    pub inter_modeled_ns: u64,
}

impl TierSnapshot {
    /// Traffic recorded since `earlier` (a previous snapshot of the same
    /// communicator).
    pub fn delta_since(&self, earlier: &TierSnapshot) -> TierSnapshot {
        TierSnapshot {
            intra_messages: self.intra_messages - earlier.intra_messages,
            intra_bytes: self.intra_bytes - earlier.intra_bytes,
            intra_modeled_ns: self.intra_modeled_ns - earlier.intra_modeled_ns,
            inter_messages: self.inter_messages - earlier.inter_messages,
            inter_bytes: self.inter_bytes - earlier.inter_bytes,
            inter_modeled_ns: self.inter_modeled_ns - earlier.inter_modeled_ns,
        }
    }

    /// Fold another snapshot into this one (for cross-rank aggregation).
    pub fn accumulate(&mut self, other: &TierSnapshot) {
        self.intra_messages += other.intra_messages;
        self.intra_bytes += other.intra_bytes;
        self.intra_modeled_ns += other.intra_modeled_ns;
        self.inter_messages += other.inter_messages;
        self.inter_bytes += other.inter_bytes;
        self.inter_modeled_ns += other.inter_modeled_ns;
    }

    /// Total messages across both tiers.
    pub fn messages(&self) -> u64 {
        self.intra_messages + self.inter_messages
    }

    /// Total payload bytes across both tiers.
    pub fn bytes(&self) -> u64 {
        self.intra_bytes + self.inter_bytes
    }

    /// Total modeled network time across both tiers (serialised: every
    /// message charged end-to-end, a deterministic upper bound).
    pub fn modeled(&self) -> Duration {
        Duration::from_nanos(self.intra_modeled_ns + self.inter_modeled_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_fills_nodes_in_order() {
        let t = Topology::grouped(10, 4);
        assert_eq!(t.size(), 10);
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.members(0), &[0, 1, 2, 3]);
        assert_eq!(t.members(2), &[8, 9]);
        assert_eq!(t.leader(1), 4);
        assert!(t.is_leader(8));
        assert!(!t.is_leader(9));
        assert_eq!(t.node_rank(6), 2);
        assert!(t.same_node(4, 7));
        assert!(!t.same_node(3, 4));
        assert!(!t.is_single_node());
    }

    #[test]
    fn single_node_is_flat() {
        let t = Topology::single_node(5);
        assert!(t.is_single_node());
        assert_eq!(t.num_nodes(), 1);
        assert!(t.same_node(0, 4));
        assert_eq!(t.node_rank(3), 3);
    }

    #[test]
    fn from_nodes_normalises_sparse_labels() {
        let t = Topology::from_nodes(vec![7, 2, 7, 9]);
        assert_eq!(t.num_nodes(), 3);
        // Dense ids in order of first appearance: 7 -> 0, 2 -> 1, 9 -> 2.
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(1), 1);
        assert_eq!(t.node_of(2), 0);
        assert_eq!(t.node_of(3), 2);
        assert_eq!(t.members(0), &[0, 2]);
    }

    #[test]
    fn subset_preserves_node_membership() {
        let t = Topology::grouped(8, 4);
        // Child ranks 0..3 map to parent ranks 1, 3, 4, 6.
        let s = t.subset(&[1, 3, 4, 6]);
        assert_eq!(s.size(), 4);
        assert_eq!(s.num_nodes(), 2);
        assert!(s.same_node(0, 1)); // parents 1, 3 share node 0
        assert!(s.same_node(2, 3)); // parents 4, 6 share node 1
        assert!(!s.same_node(1, 2));
        assert_eq!(s.leader(1), 2);
    }

    #[test]
    fn tier_snapshot_delta_and_accumulate() {
        let c = TierCounters::default();
        c.record(false, 100, 10);
        let early = c.snapshot();
        c.record(true, 200, 20);
        c.record(true, 50, 5);
        let late = c.snapshot();
        let d = late.delta_since(&early);
        assert_eq!(d.intra_messages, 0);
        assert_eq!(d.inter_messages, 2);
        assert_eq!(d.inter_bytes, 250);
        assert_eq!(d.messages(), 2);
        assert_eq!(d.bytes(), 250);
        assert_eq!(d.modeled(), Duration::from_nanos(25));
        let mut total = early;
        total.accumulate(&d);
        assert_eq!(total, late);
    }
}
