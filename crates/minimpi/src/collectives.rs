//! Collective operations over a [`Comm`].
//!
//! Every rank of the communicator must call each collective in the same
//! order (the standard MPI contract). Internally each collective claims a
//! fresh slice of the reserved tag space so that back-to-back collectives
//! and user point-to-point traffic can never cross-match.

use crate::comm::{Comm, COLLECTIVE_TAG_BASE};
use crate::error::{Error, Result};

/// Sub-tags within one collective's tag slice.
const SLOT_DATA: u64 = 0;
const SLOT_RESULT: u64 = 1;
const SLOTS_PER_COLLECTIVE: u64 = 4;

/// Element-wise merge semantics for one segment of a packed `f64`
/// collective (see [`Comm::allreduce_packed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise minimum; NaN elements lose to any finite value.
    Min,
    /// Element-wise maximum; NaN elements lose to any finite value.
    Max,
}

impl SegmentOp {
    fn merge(self, a: f64, b: f64) -> f64 {
        match self {
            SegmentOp::Sum => a + b,
            // `f64::min`/`max` are NaN-ignoring: if one side is NaN the
            // other wins, which is what empty-bin Min/Max identities need.
            SegmentOp::Min => a.min(b),
            SegmentOp::Max => a.max(b),
        }
    }
}

/// One segment of a packed collective: `len` consecutive elements merged
/// with `op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Merge semantics for this segment's elements.
    pub op: SegmentOp,
    /// Number of consecutive elements the segment covers.
    pub len: usize,
}

impl Segment {
    /// Convenience constructor.
    pub fn new(op: SegmentOp, len: usize) -> Self {
        Segment { op, len }
    }
}

impl Comm {
    /// Claim the tag slice for the next collective on this communicator,
    /// running the collective hook (slow-rank injection, tracing) first.
    fn next_coll_tag(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        self.notify_collective(seq);
        COLLECTIVE_TAG_BASE + seq * SLOTS_PER_COLLECTIVE
    }

    /// Broadcast `value` from `root` to every rank. Non-root ranks pass
    /// their own (ignored) `value`; all ranks return the root's value.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, value: T) -> Result<T> {
        let tag = self.next_coll_tag();
        if self.rank() == root {
            for dst in 0..self.size() {
                if dst != root {
                    self.coll_send(dst, tag + SLOT_DATA, value.clone());
                }
            }
            Ok(value)
        } else {
            self.coll_recv(root, tag + SLOT_DATA)
        }
    }

    /// Reduce every rank's `value` with `op` at `root`. Returns
    /// `Some(result)` on the root and `None` elsewhere. The fold is applied
    /// in rank order, so non-commutative `op`s behave deterministically.
    pub fn reduce<T, F>(&self, root: usize, value: T, op: F) -> Result<Option<T>>
    where
        T: Send + 'static,
        F: Fn(T, T) -> T,
    {
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let mut parts: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            parts[root] = Some(value);
            for (src, part) in parts.iter_mut().enumerate() {
                if src != root {
                    *part = Some(self.coll_recv(src, tag + SLOT_DATA)?);
                }
            }
            let mut acc: Option<T> = None;
            for part in parts.into_iter().flatten() {
                acc = Some(match acc {
                    None => part,
                    Some(a) => op(a, part),
                });
            }
            Ok(acc)
        } else {
            self.coll_send(root, tag + SLOT_DATA, value);
            Ok(None)
        }
    }

    /// Reduce with `op` and distribute the result to every rank.
    pub fn allreduce<T, F>(&self, value: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        self.allreduce_rounds.set(self.allreduce_rounds.get() + 1);
        if self.size() == 1 {
            // Single-rank communicators: the reduction of one value is the
            // value itself, so skip the reduce + bcast mailbox round-trip.
            // The round still counts (above) and still claims one
            // collective slot, so the hook (slow-rank injection, tracing)
            // observes it like any other collective.
            let _ = self.next_coll_tag();
            return value;
        }
        let reduced = self.reduce(0, value, op).expect("rank 0 is always valid");
        self.bcast(0, reduced)
            .expect("rank 0 is always valid")
            .expect("root always holds the reduced value")
    }

    /// One allreduce round over a packed `f64` buffer with per-segment
    /// merge semantics: `segments[i]` describes the op applied element-wise
    /// to the `i`-th run of consecutive elements. This is how N independent
    /// grid reductions collapse into a single communication round — the
    /// segment layout must be identical on every rank.
    ///
    /// Errors (before communicating) if the segment lengths do not sum to
    /// `data.len()`.
    pub fn allreduce_packed(&self, data: Vec<f64>, segments: &[Segment]) -> Result<Vec<f64>> {
        let expected: usize = segments.iter().map(|s| s.len).sum();
        if expected != data.len() {
            return Err(Error::LengthMismatch { expected, got: data.len() });
        }
        let segments = segments.to_vec();
        Ok(self.allreduce(data, move |mut a, b| {
            debug_assert_eq!(a.len(), b.len(), "packed buffers must agree across ranks");
            let mut base = 0;
            for seg in &segments {
                for i in base..base + seg.len {
                    a[i] = seg.op.merge(a[i], b[i]);
                }
                base += seg.len;
            }
            a
        }))
    }

    /// Gather every rank's `value` at `root`, in rank order.
    pub fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Result<Option<Vec<T>>> {
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(value);
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = Some(self.coll_recv(src, tag + SLOT_DATA)?);
                }
            }
            Ok(Some(out.into_iter().map(|v| v.expect("all ranks filled")).collect()))
        } else {
            self.coll_send(root, tag + SLOT_DATA, value);
            Ok(None)
        }
    }

    /// Gather every rank's `value` and hand the full rank-ordered vector to
    /// every rank.
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        let gathered = self.gather(0, value).expect("rank 0 is always valid");
        let tag = self.next_coll_tag();
        if self.rank() == 0 {
            let all = gathered.expect("root has the gathered vector");
            for dst in 1..self.size() {
                self.coll_send(dst, tag + SLOT_RESULT, all.clone());
            }
            all
        } else {
            self.coll_recv(0, tag + SLOT_RESULT).expect("root broadcasts to all")
        }
    }

    /// Personalized all-to-all: `values[i]` is delivered to rank `i`; the
    /// result's slot `j` holds what rank `j` sent to this rank.
    pub fn alltoall<T: Send + 'static>(&self, values: Vec<T>) -> Result<Vec<T>> {
        if values.len() != self.size() {
            return Err(Error::LengthMismatch { expected: self.size(), got: values.len() });
        }
        let tag = self.next_coll_tag();
        let mut own: Option<T> = None;
        for (dst, v) in values.into_iter().enumerate() {
            if dst == self.rank() {
                own = Some(v);
            } else {
                self.coll_send(dst, tag + SLOT_DATA, v);
            }
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == self.rank() {
                out.push(own.take().expect("own slot set above"));
            } else {
                out.push(self.coll_recv(src, tag + SLOT_DATA)?);
            }
        }
        Ok(out)
    }

    /// Variable-size personalized all-to-all over vectors, the primitive
    /// Newton++'s body repartitioning is built on.
    pub fn alltoallv<T: Send + 'static>(&self, values: Vec<Vec<T>>) -> Result<Vec<Vec<T>>> {
        self.alltoall(values)
    }

    /// Inclusive prefix reduction: rank `i` returns
    /// `op(...op(op(v0, v1), v2)..., vi)`.
    pub fn scan<T, F>(&self, value: T, op: F) -> Result<T>
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let tag = self.next_coll_tag();
        let acc = if self.rank() == 0 {
            value
        } else {
            let prev: T = self.coll_recv(self.rank() - 1, tag + SLOT_DATA)?;
            op(prev, value)
        };
        if self.rank() + 1 < self.size() {
            self.coll_send(self.rank() + 1, tag + SLOT_DATA, acc.clone());
        }
        Ok(acc)
    }

    /// Partition the communicator by `color`; ranks sharing a color form a
    /// new communicator, ordered by `(key, parent rank)`. Collective.
    pub fn split(&self, color: u64, key: u64) -> Comm {
        // Root collects (color, key) from everyone, forms the groups, and
        // reserves one fresh communicator id per group.
        let triples = self.gather(0, (color, key, self.rank())).expect("rank 0 is always valid");
        let assignment: Vec<(u64, usize, usize)> = if self.rank() == 0 {
            let mut triples = triples.expect("root gathered");
            triples.sort_unstable();
            let mut colors: Vec<u64> = triples.iter().map(|t| t.0).collect();
            colors.dedup();
            let base = self.shared().reserve_comm_ids(colors.len() as u64);
            // Per parent rank: (new comm id, new rank, new size).
            let mut out = vec![(0u64, 0usize, 0usize); self.size()];
            for (gi, &color) in colors.iter().enumerate() {
                let members: Vec<usize> =
                    triples.iter().filter(|t| t.0 == color).map(|t| t.2).collect();
                for (new_rank, &parent_rank) in members.iter().enumerate() {
                    out[parent_rank] = (base + gi as u64, new_rank, members.len());
                }
            }
            out
        } else {
            Vec::new()
        };
        let assignment = self.bcast(0, assignment).expect("rank 0 is always valid");
        let (id, new_rank, new_size) = assignment[self.rank()];
        self.make(id, new_rank, new_size)
    }

    /// Duplicate the communicator: same group, fresh id and tag space.
    /// Collective.
    pub fn dup(&self) -> Comm {
        let id = if self.rank() == 0 { self.shared().reserve_comm_ids(1) } else { 0 };
        let id = self.bcast(0, id).expect("rank 0 is always valid");
        self.make(id, self.rank(), self.size())
    }
}

#[cfg(test)]
mod tests {
    use crate::{Segment, SegmentOp, World};

    #[test]
    fn allreduce_packed_merges_per_segment() {
        let got = World::new(3).run(|c| {
            let r = c.rank() as f64;
            // [sum sum | min | max max]
            let data = vec![r, 10.0 * r, r, r, 100.0 - r];
            let segs = [
                Segment::new(SegmentOp::Sum, 2),
                Segment::new(SegmentOp::Min, 1),
                Segment::new(SegmentOp::Max, 2),
            ];
            c.allreduce_packed(data, &segs).unwrap()
        });
        for v in got {
            assert_eq!(v, vec![3.0, 30.0, 0.0, 2.0, 100.0]);
        }
    }

    #[test]
    fn allreduce_packed_min_max_ignore_nan() {
        let got = World::new(2).run(|c| {
            let data = if c.rank() == 0 { vec![f64::NAN, 5.0] } else { vec![2.0, f64::NAN] };
            let segs = [Segment::new(SegmentOp::Min, 1), Segment::new(SegmentOp::Max, 1)];
            c.allreduce_packed(data, &segs).unwrap()
        });
        for v in got {
            assert_eq!(v, vec![2.0, 5.0]);
        }
    }

    #[test]
    fn allreduce_packed_rejects_bad_segment_layout() {
        World::new(2).run(|c| {
            let segs = [Segment::new(SegmentOp::Sum, 3)];
            assert!(c.allreduce_packed(vec![1.0, 2.0], &segs).is_err());
            // The error fires before any communication, so both ranks stay
            // aligned without recovery.
            c.barrier();
        });
    }

    #[test]
    fn allreduce_counter_counts_packed_as_one_round() {
        let got = World::new(2).run(|c| {
            c.allreduce(1u64, |a, b| a + b);
            let segs = [Segment::new(SegmentOp::Sum, 2), Segment::new(SegmentOp::Min, 1)];
            c.allreduce_packed(vec![0.0; 3], &segs).unwrap();
            c.allreduce_count()
        });
        assert_eq!(got, vec![2, 2]);
    }

    #[test]
    fn single_rank_allreduce_short_circuits() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        World::new(1).run(|c| {
            // The hook still observes exactly one collective per round,
            // so sequencing/fault-injection semantics are preserved.
            let fired = Arc::new(AtomicU64::new(0));
            let f2 = fired.clone();
            c.set_collective_hook(Arc::new(move |_| {
                f2.fetch_add(1, Ordering::SeqCst);
            }));

            assert_eq!(c.allreduce(41i64, |a, b| a + b), 41);
            assert_eq!(c.allreduce_count(), 1);
            assert_eq!(fired.load(Ordering::SeqCst), 1);

            // Non-commutative op: the lone value passes through untouched.
            assert_eq!(c.allreduce("solo".to_string(), |a, b| a + &b), "solo");
            assert_eq!(c.allreduce_count(), 2);

            // Packed variant rides the same fast path — but validates the
            // segment layout first, without counting a round.
            let bad = [Segment::new(SegmentOp::Sum, 2)];
            assert!(c.allreduce_packed(vec![1.0], &bad).is_err());
            assert_eq!(c.allreduce_count(), 2);
            let segs = [Segment::new(SegmentOp::Sum, 1), Segment::new(SegmentOp::Min, 1)];
            assert_eq!(c.allreduce_packed(vec![3.0, 7.0], &segs).unwrap(), vec![3.0, 7.0]);
            assert_eq!(c.allreduce_count(), 3);
        });
    }

    #[test]
    fn bcast_from_each_root() {
        for root in 0..4 {
            let got = World::new(4).run(move |c| {
                let v = if c.rank() == root { 42 + root } else { 0 };
                c.bcast(root, v).unwrap()
            });
            assert_eq!(got, vec![42 + root; 4]);
        }
    }

    #[test]
    fn reduce_sum_matches_sequential() {
        let got = World::new(6).run(|c| c.reduce(2, c.rank() as i64 + 1, |a, b| a + b).unwrap());
        assert_eq!(got[2], Some(21));
        for (r, v) in got.iter().enumerate() {
            if r != 2 {
                assert_eq!(*v, None);
            }
        }
    }

    #[test]
    fn reduce_is_rank_ordered_for_noncommutative_op() {
        // String concatenation is non-commutative; rank order must hold.
        let got = World::new(4).run(|c| c.reduce(0, c.rank().to_string(), |a, b| a + &b).unwrap());
        assert_eq!(got[0].as_deref(), Some("0123"));
    }

    #[test]
    fn allreduce_min_and_max() {
        let vals = [5i64, -3, 9, 0];
        let mins = World::new(4).run(move |c| c.allreduce(vals[c.rank()], i64::min));
        assert_eq!(mins, vec![-3; 4]);
        let maxs = World::new(4).run(move |c| c.allreduce(vals[c.rank()], i64::max));
        assert_eq!(maxs, vec![9; 4]);
    }

    #[test]
    fn gather_orders_by_rank() {
        let got = World::new(5).run(|c| c.gather(1, c.rank() * 10).unwrap());
        assert_eq!(got[1], Some(vec![0, 10, 20, 30, 40]));
        assert_eq!(got[0], None);
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        let got = World::new(4).run(|c| c.allgather(format!("r{}", c.rank())));
        for v in got {
            assert_eq!(v, vec!["r0", "r1", "r2", "r3"]);
        }
    }

    #[test]
    fn alltoall_transposes() {
        let got = World::new(3).run(|c| {
            let outgoing: Vec<u32> = (0..3).map(|d| (c.rank() * 10 + d) as u32).collect();
            c.alltoall(outgoing).unwrap()
        });
        // rank r receives j*10 + r from each rank j
        for (r, incoming) in got.iter().enumerate() {
            let expect: Vec<u32> = (0..3).map(|j| (j * 10 + r) as u32).collect();
            assert_eq!(*incoming, expect);
        }
    }

    #[test]
    fn alltoallv_moves_variable_payloads() {
        let got = World::new(3).run(|c| {
            let outgoing: Vec<Vec<usize>> = (0..3).map(|d| vec![c.rank(); d]).collect();
            c.alltoallv(outgoing).unwrap()
        });
        for (r, incoming) in got.iter().enumerate() {
            for (j, part) in incoming.iter().enumerate() {
                assert_eq!(*part, vec![j; r]);
            }
        }
    }

    #[test]
    fn alltoall_length_mismatch_errors() {
        World::new(2).run(|c| {
            assert!(c.alltoall(vec![1, 2, 3]).is_err());
            // Recover the collective sequence so both ranks stay aligned.
            c.barrier();
        });
    }

    #[test]
    fn scan_inclusive_prefix_sum() {
        let got = World::new(5).run(|c| c.scan(c.rank() as i64 + 1, |a, b| a + b).unwrap());
        assert_eq!(got, vec![1, 3, 6, 10, 15]);
    }

    #[test]
    fn split_by_parity() {
        let got = World::new(6).run(|c| {
            let sub = c.split((c.rank() % 2) as u64, c.rank() as u64);
            // Sum of parent ranks within the sub-communicator.
            let s = sub.allreduce(c.rank(), |a, b| a + b);
            (sub.rank(), sub.size(), s)
        });
        // evens: 0,2,4 -> sum 6; odds: 1,3,5 -> sum 9
        assert_eq!(got[0], (0, 3, 6));
        assert_eq!(got[2], (1, 3, 6));
        assert_eq!(got[4], (2, 3, 6));
        assert_eq!(got[1], (0, 3, 9));
        assert_eq!(got[3], (1, 3, 9));
        assert_eq!(got[5], (2, 3, 9));
    }

    #[test]
    fn split_key_reorders_ranks() {
        let got = World::new(4).run(|c| {
            // Reverse order via descending keys.
            let sub = c.split(0, (c.size() - c.rank()) as u64);
            sub.rank()
        });
        assert_eq!(got, vec![3, 2, 1, 0]);
    }

    #[test]
    fn dup_isolates_tag_space() {
        let ok = World::new(2).run(|c| {
            let d = c.dup();
            if c.rank() == 0 {
                c.send(1, 5, 1u8).unwrap();
                d.send(1, 5, 2u8).unwrap();
                true
            } else {
                // Receive in the opposite order: messages must not cross
                // between the two communicators.
                let on_dup: u8 = d.recv(0, 5).unwrap();
                let on_parent: u8 = c.recv(0, 5).unwrap();
                on_dup == 2 && on_parent == 1
            }
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn back_to_back_collectives_do_not_cross_match() {
        let got = World::new(4).run(|c| {
            let a = c.allreduce(1u64, |a, b| a + b);
            let b = c.allreduce(10u64, |a, b| a + b);
            let g = c.allgather(c.rank());
            (a, b, g)
        });
        for (a, b, g) in got {
            assert_eq!(a, 4);
            assert_eq!(b, 40);
            assert_eq!(g, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let got = World::new(1).run(|c| {
            let a = c.allreduce(7, |a, b| a + b);
            let g = c.allgather(3u8);
            let s = c.scan(5, |a, b| a + b).unwrap();
            let t = c.alltoall(vec![9i32]).unwrap();
            (a, g, s, t)
        });
        assert_eq!(got[0], (7, vec![3u8], 5, vec![9i32]));
    }
}
