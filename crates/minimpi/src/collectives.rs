//! Collective operations over a [`Comm`].
//!
//! Every rank of the communicator must call each collective in the same
//! order (the standard MPI contract). Internally each collective claims a
//! fresh slice of the reserved tag space so that back-to-back collectives
//! and user point-to-point traffic can never cross-match.

use crate::comm::{Comm, COLLECTIVE_TAG_BASE};
use crate::error::{Error, Result};
use crate::topology::Topology;

/// Sub-tags within one collective's tag slice.
const SLOT_DATA: u64 = 0;
const SLOT_RESULT: u64 = 1;
const SLOTS_PER_COLLECTIVE: u64 = 4;

/// Fold rank-ordered per-rank contributions in the topology's *canonical
/// merge order*: each node's members left-to-right in rank order, then the
/// node partials combined pairwise along a binomial tree over node indices
/// (`gap = 1, 2, 4, …`; at each gap, partial `i` absorbs partial
/// `i + gap`). `None` entries act as absent contributions.
///
/// This one parenthesisation is realised *physically* by the hierarchical
/// path (node-local reduce → leader binomial tree) and *arithmetically* by
/// the flat path's root, which is what keeps the two bit-identical for
/// non-associative ops such as `f64` sums. With a single-node topology it
/// degenerates to a plain left fold in rank order — the historical flat
/// semantics.
fn canonical_combine<T, F>(mut parts: Vec<Option<T>>, topology: &Topology, op: &F) -> Option<T>
where
    F: Fn(T, T) -> T,
{
    debug_assert_eq!(parts.len(), topology.size());
    let merge = |a: Option<T>, b: Option<T>| match (a, b) {
        (Some(a), Some(b)) => Some(op(a, b)),
        (a, None) => a,
        (None, b) => b,
    };
    let mut partials: Vec<Option<T>> = Vec::with_capacity(topology.num_nodes());
    for node in 0..topology.num_nodes() {
        let mut acc: Option<T> = None;
        for &rank in topology.members(node) {
            acc = merge(acc, parts[rank].take());
        }
        partials.push(acc);
    }
    let m = partials.len();
    let mut gap = 1;
    while gap < m {
        let mut i = 0;
        while i + gap < m {
            let b = partials[i + gap].take();
            let a = partials[i].take();
            partials[i] = merge(a, b);
            i += 2 * gap;
        }
        gap *= 2;
    }
    partials.into_iter().next().flatten()
}

/// Element-wise merge semantics for one segment of a packed `f64`
/// collective (see [`Comm::allreduce_packed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise minimum; NaN elements lose to any finite value.
    Min,
    /// Element-wise maximum; NaN elements lose to any finite value.
    Max,
}

impl SegmentOp {
    fn merge(self, a: f64, b: f64) -> f64 {
        match self {
            SegmentOp::Sum => a + b,
            // `f64::min`/`max` are NaN-ignoring: if one side is NaN the
            // other wins, which is what empty-bin Min/Max identities need.
            SegmentOp::Min => a.min(b),
            SegmentOp::Max => a.max(b),
        }
    }
}

/// One segment of a packed collective: `len` consecutive elements merged
/// with `op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Merge semantics for this segment's elements.
    pub op: SegmentOp,
    /// Number of consecutive elements the segment covers.
    pub len: usize,
}

impl Segment {
    /// Convenience constructor.
    pub fn new(op: SegmentOp, len: usize) -> Self {
        Segment { op, len }
    }
}

impl Comm {
    /// Claim the tag slice for the next collective on this communicator,
    /// running the collective hook (slow-rank injection, tracing) first.
    fn next_coll_tag(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        self.notify_collective(seq);
        COLLECTIVE_TAG_BASE + seq * SLOTS_PER_COLLECTIVE
    }

    /// Broadcast `value` from `root` to every rank. Non-root ranks pass
    /// their own (ignored) `value`; all ranks return the root's value.
    ///
    /// Single-rank communicators short-circuit (the slot is still claimed
    /// so the hook observes the collective); on a multi-node topology the
    /// broadcast is tiered — root to the other nodes' leaders over the
    /// interconnect, then node-local fan-out.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, value: T) -> Result<T> {
        self.bcast_metered(root, value, std::mem::size_of::<T>())
    }

    pub(crate) fn bcast_metered<T: Clone + Send + 'static>(
        &self,
        root: usize,
        value: T,
        bytes: usize,
    ) -> Result<T> {
        let tag = self.next_coll_tag();
        if self.size() == 1 {
            return Ok(value);
        }
        if self.hierarchical() {
            return self.bcast_hier(root, value, bytes, tag);
        }
        if self.rank() == root {
            for dst in 0..self.size() {
                if dst != root {
                    self.coll_send_metered(dst, tag + SLOT_DATA, value.clone(), bytes);
                }
            }
            Ok(value)
        } else {
            self.coll_recv(root, tag + SLOT_DATA)
        }
    }

    /// Tiered broadcast: `root` hands the value to every other node's
    /// leader (inter-node tier, on this comm's tag), then each node fans
    /// out locally on the node sub-communicator. The value is cloned
    /// verbatim, so flat and hierarchical broadcasts agree trivially.
    fn bcast_hier<T: Clone + Send + 'static>(
        &self,
        root: usize,
        value: T,
        bytes: usize,
        tag: u64,
    ) -> Result<T> {
        self.with_hier(|h| {
            let topo = self.topology();
            let root_node = topo.node_of(root);
            // Within root's node the original root is the local source;
            // elsewhere the node leader is (it receives from root first).
            let src = if h.node_index == root_node { root } else { topo.leader(h.node_index) };
            let node_tag = h.node.next_coll_tag();
            if self.rank() == src {
                let v = if self.rank() == root {
                    for node in 0..topo.num_nodes() {
                        if node != root_node {
                            self.coll_send_metered(
                                topo.leader(node),
                                tag + SLOT_DATA,
                                value.clone(),
                                bytes,
                            );
                        }
                    }
                    value
                } else {
                    self.coll_recv(root, tag + SLOT_DATA)?
                };
                for nr in 0..h.node.size() {
                    if nr != h.node.rank() {
                        h.node.coll_send_metered(nr, node_tag + SLOT_DATA, v.clone(), bytes);
                    }
                }
                Ok(v)
            } else {
                h.node.coll_recv(topo.node_rank(src), node_tag + SLOT_DATA)
            }
        })
    }

    /// Reduce every rank's `value` with `op` at `root`. Returns
    /// `Some(result)` on the root and `None` elsewhere. The fold follows
    /// the topology's canonical merge order — plain rank order on the
    /// default single-node topology — so non-commutative `op`s behave
    /// deterministically and flat results match the hierarchical path
    /// bit-for-bit.
    pub fn reduce<T, F>(&self, root: usize, value: T, op: F) -> Result<Option<T>>
    where
        T: Send + 'static,
        F: Fn(T, T) -> T,
    {
        self.reduce_metered(root, value, &op, std::mem::size_of::<T>())
    }

    pub(crate) fn reduce_metered<T, F>(
        &self,
        root: usize,
        value: T,
        op: &F,
        bytes: usize,
    ) -> Result<Option<T>>
    where
        T: Send + 'static,
        F: Fn(T, T) -> T,
    {
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let mut parts: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            parts[root] = Some(value);
            for (src, part) in parts.iter_mut().enumerate() {
                if src != root {
                    *part = Some(self.coll_recv(src, tag + SLOT_DATA)?);
                }
            }
            Ok(canonical_combine(parts, self.topology(), op))
        } else {
            self.coll_send_metered(root, tag + SLOT_DATA, value, bytes);
            Ok(None)
        }
    }

    /// Reduce with `op` and distribute the result to every rank.
    ///
    /// On a multi-node topology this is tiered: node-local reduce to each
    /// node's leader, a binomial tree among leaders over the inter-node
    /// tier, then node-local broadcast — the same canonical merge order
    /// the flat path applies, so results are bit-identical either way.
    pub fn allreduce<T, F>(&self, value: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        self.allreduce_metered(value, &op, std::mem::size_of::<T>())
    }

    pub(crate) fn allreduce_metered<T, F>(&self, value: T, op: &F, bytes: usize) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        self.allreduce_rounds.set(self.allreduce_rounds.get() + 1);
        if self.size() == 1 {
            // Single-rank communicators: the reduction of one value is the
            // value itself, so skip the reduce + bcast mailbox round-trip.
            // The round still counts (above) and still claims one
            // collective slot, so the hook (slow-rank injection, tracing)
            // observes it like any other collective.
            let _ = self.next_coll_tag();
            return value;
        }
        if self.hierarchical() {
            return self.allreduce_hier(value, op, bytes);
        }
        let reduced = self.reduce_metered(0, value, op, bytes).expect("rank 0 is always valid");
        self.bcast_metered(0, reduced, bytes)
            .expect("rank 0 is always valid")
            .expect("root always holds the reduced value")
    }

    /// The tiered allreduce. One collective slot is claimed on the parent
    /// (the hook observes the logical allreduce), then each tier's
    /// collective claims its own slot on its sub-communicator — so a hook
    /// such as the `mpi.collective` fault site fires on every tier.
    fn allreduce_hier<T, F>(&self, value: T, op: &F, bytes: usize) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let _ = self.next_coll_tag();
        self.with_hier(|h| {
            // Tier 1 (intra-node): reduce to the node leader, folding
            // members left-to-right in rank order.
            let partial = h.node.reduce_metered(0, value, op, bytes).expect("node rank 0 valid");
            // Tier 2 (inter-node): binomial-tree allreduce among leaders.
            let result = h.leader.as_ref().map(|l| {
                leader_allreduce(l, partial.expect("leader holds its node partial"), op, bytes)
            });
            // Tier 3 (intra-node): node-local broadcast of the result.
            let node_tag = h.node.next_coll_tag();
            if h.node.rank() == 0 {
                let v = result.expect("node leader ran the leader tier");
                for nr in 1..h.node.size() {
                    h.node.coll_send_metered(nr, node_tag + SLOT_DATA, v.clone(), bytes);
                }
                v
            } else {
                h.node.coll_recv(0, node_tag + SLOT_DATA).expect("node leader broadcasts")
            }
        })
    }

    /// One allreduce round over a packed `f64` buffer with per-segment
    /// merge semantics: `segments[i]` describes the op applied element-wise
    /// to the `i`-th run of consecutive elements. This is how N independent
    /// grid reductions collapse into a single communication round — the
    /// segment layout must be identical on every rank. On a multi-node
    /// topology the round is tiered like [`Comm::allreduce`] but still
    /// counts as one round, so the 1-packed-allreduce-per-step property of
    /// fused analyses survives the hierarchy.
    ///
    /// Errors (before communicating) if the segment lengths do not sum to
    /// `data.len()`.
    pub fn allreduce_packed(&self, data: Vec<f64>, segments: &[Segment]) -> Result<Vec<f64>> {
        let expected: usize = segments.iter().map(|s| s.len).sum();
        if expected != data.len() {
            return Err(Error::LengthMismatch { expected, got: data.len() });
        }
        let bytes = data.len() * std::mem::size_of::<f64>();
        let segments = segments.to_vec();
        let op = move |mut a: Vec<f64>, b: Vec<f64>| {
            debug_assert_eq!(a.len(), b.len(), "packed buffers must agree across ranks");
            let mut base = 0;
            for seg in &segments {
                for i in base..base + seg.len {
                    a[i] = seg.op.merge(a[i], b[i]);
                }
                base += seg.len;
            }
            a
        };
        Ok(self.allreduce_metered(data, &op, bytes))
    }

    /// Gather every rank's `value` at `root`, in rank order.
    pub fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Result<Option<Vec<T>>> {
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(value);
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = Some(self.coll_recv(src, tag + SLOT_DATA)?);
                }
            }
            Ok(Some(out.into_iter().map(|v| v.expect("all ranks filled")).collect()))
        } else {
            self.coll_send(root, tag + SLOT_DATA, value);
            Ok(None)
        }
    }

    /// Gather every rank's `value` and hand the full rank-ordered vector to
    /// every rank.
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        let gathered = self.gather(0, value).expect("rank 0 is always valid");
        let tag = self.next_coll_tag();
        if self.rank() == 0 {
            let all = gathered.expect("root has the gathered vector");
            for dst in 1..self.size() {
                self.coll_send(dst, tag + SLOT_RESULT, all.clone());
            }
            all
        } else {
            self.coll_recv(0, tag + SLOT_RESULT).expect("root broadcasts to all")
        }
    }

    /// Personalized all-to-all: `values[i]` is delivered to rank `i`; the
    /// result's slot `j` holds what rank `j` sent to this rank.
    pub fn alltoall<T: Send + 'static>(&self, values: Vec<T>) -> Result<Vec<T>> {
        if values.len() != self.size() {
            return Err(Error::LengthMismatch { expected: self.size(), got: values.len() });
        }
        let tag = self.next_coll_tag();
        let mut own: Option<T> = None;
        for (dst, v) in values.into_iter().enumerate() {
            if dst == self.rank() {
                own = Some(v);
            } else {
                self.coll_send(dst, tag + SLOT_DATA, v);
            }
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == self.rank() {
                out.push(own.take().expect("own slot set above"));
            } else {
                out.push(self.coll_recv(src, tag + SLOT_DATA)?);
            }
        }
        Ok(out)
    }

    /// Variable-size personalized all-to-all over vectors, the primitive
    /// Newton++'s body repartitioning is built on.
    pub fn alltoallv<T: Send + 'static>(&self, values: Vec<Vec<T>>) -> Result<Vec<Vec<T>>> {
        self.alltoall(values)
    }

    /// Inclusive prefix reduction: rank `i` returns
    /// `op(...op(op(v0, v1), v2)..., vi)`.
    pub fn scan<T, F>(&self, value: T, op: F) -> Result<T>
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let tag = self.next_coll_tag();
        let acc = if self.rank() == 0 {
            value
        } else {
            let prev: T = self.coll_recv(self.rank() - 1, tag + SLOT_DATA)?;
            op(prev, value)
        };
        if self.rank() + 1 < self.size() {
            self.coll_send(self.rank() + 1, tag + SLOT_DATA, acc.clone());
        }
        Ok(acc)
    }

    /// Partition the communicator by `color`; ranks sharing a color form a
    /// new communicator, ordered by `(key, parent rank)`. Collective.
    pub fn split(&self, color: u64, key: u64) -> Comm {
        // Root collects (color, key) from everyone, forms the groups, and
        // reserves one fresh communicator id per group.
        let triples = self.gather(0, (color, key, self.rank())).expect("rank 0 is always valid");
        let assignment: Vec<(u64, usize, usize)> = if self.rank() == 0 {
            let mut triples = triples.expect("root gathered");
            triples.sort_unstable();
            let mut colors: Vec<u64> = triples.iter().map(|t| t.0).collect();
            colors.dedup();
            let base = self.shared().reserve_comm_ids(colors.len() as u64);
            // Per parent rank: (new comm id, new rank, new size).
            let mut out = vec![(0u64, 0usize, 0usize); self.size()];
            for (gi, &color) in colors.iter().enumerate() {
                let members: Vec<usize> =
                    triples.iter().filter(|t| t.0 == color).map(|t| t.2).collect();
                for (new_rank, &parent_rank) in members.iter().enumerate() {
                    out[parent_rank] = (base + gi as u64, new_rank, members.len());
                }
            }
            out
        } else {
            Vec::new()
        };
        let assignment = self.bcast(0, assignment).expect("rank 0 is always valid");
        let (id, new_rank, new_size) = assignment[self.rank()];
        // Every rank sees the full assignment vector, so each can derive
        // its group's parent-rank list (ordered by new rank) and induce
        // the child topology — node membership survives the split.
        let mut members: Vec<(usize, usize)> = assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| a.0 == id)
            .map(|(parent_rank, a)| (a.1, parent_rank))
            .collect();
        members.sort_unstable();
        let parent_ranks: Vec<usize> = members.into_iter().map(|(_, p)| p).collect();
        let topology = self.topology().subset(&parent_ranks);
        self.make(id, new_rank, new_size, topology)
    }

    /// Duplicate the communicator: same group, topology, and mode; fresh
    /// id and tag space. Collective.
    pub fn dup(&self) -> Comm {
        let id = if self.rank() == 0 { self.shared().reserve_comm_ids(1) } else { 0 };
        let id = self.bcast(0, id).expect("rank 0 is always valid");
        self.make(id, self.rank(), self.size(), self.topology().clone())
    }

    /// Split into node-local sub-communicators: ranks sharing a simulated
    /// node form one communicator each (single-node topology, parent rank
    /// order). Collective over the parent.
    pub fn split_node(&self) -> Comm {
        self.split(self.topology().node_of(self.rank()) as u64, self.rank() as u64)
    }

    /// Split into the leader sub-communicator and per-node remainders:
    /// node leaders land in one communicator (one rank per node), every
    /// other rank in a communicator of its node's non-leaders. Returns the
    /// communicator this rank landed in and whether it is a leader.
    /// Collective over the parent.
    pub fn split_leaders(&self) -> (Comm, bool) {
        let topo = self.topology();
        let is_leader = topo.is_leader(self.rank());
        let color = if is_leader { 0 } else { 1 + topo.node_of(self.rank()) as u64 };
        (self.split(color, self.rank() as u64), is_leader)
    }
}

/// Binomial-tree allreduce among node leaders (the inter-node tier).
/// Reduction walks `gap = 1, 2, 4, …`: at each gap, the leader at index
/// `i + gap` sends its partial to leader `i` (a multiple of `2·gap`),
/// which folds it on the right — exactly the parenthesisation
/// [`canonical_combine`] applies to node partials. The result then walks
/// the mirrored tree back down. One collective slot on the leader comm
/// covers both sweeps, so hooks (fault sites) observe one leader-tier
/// collective per allreduce.
fn leader_allreduce<T, F>(l: &Comm, mine: T, op: &F, bytes: usize) -> T
where
    T: Clone + Send + 'static,
    F: Fn(T, T) -> T,
{
    let tag = l.next_coll_tag();
    let m = l.size();
    let i = l.rank();
    let mut acc = Some(mine);
    let mut gap = 1;
    while gap < m {
        if i % (2 * gap) == gap {
            l.coll_send_metered(
                i - gap,
                tag + SLOT_DATA,
                acc.take().expect("unsent partial"),
                bytes,
            );
            break;
        }
        debug_assert_eq!(i % (2 * gap), 0, "non-senders are merge targets at every gap");
        if i + gap < m {
            let other: T = l.coll_recv(i + gap, tag + SLOT_DATA).expect("tree peer sends");
            acc = Some(op(acc.take().expect("merge target holds a partial"), other));
        }
        gap *= 2;
    }
    // Broadcast back down: highest power of two first, receivers become
    // senders at the smaller gaps below them.
    let mut top = 1;
    while top < m {
        top *= 2;
    }
    let mut gap = top / 2;
    while gap >= 1 {
        if i.is_multiple_of(2 * gap) {
            if i + gap < m {
                let v = acc.clone().expect("holders forward the result");
                l.coll_send_metered(i + gap, tag + SLOT_RESULT, v, bytes);
            }
        } else if i % (2 * gap) == gap {
            acc = Some(l.coll_recv(i - gap, tag + SLOT_RESULT).expect("tree parent sends"));
        }
        gap /= 2;
    }
    acc.expect("every leader ends with the result")
}

#[cfg(test)]
mod tests {
    use crate::{CollectiveMode, Segment, SegmentOp, Topology, World};

    #[test]
    fn allreduce_packed_merges_per_segment() {
        let got = World::new(3).run(|c| {
            let r = c.rank() as f64;
            // [sum sum | min | max max]
            let data = vec![r, 10.0 * r, r, r, 100.0 - r];
            let segs = [
                Segment::new(SegmentOp::Sum, 2),
                Segment::new(SegmentOp::Min, 1),
                Segment::new(SegmentOp::Max, 2),
            ];
            c.allreduce_packed(data, &segs).unwrap()
        });
        for v in got {
            assert_eq!(v, vec![3.0, 30.0, 0.0, 2.0, 100.0]);
        }
    }

    #[test]
    fn allreduce_packed_min_max_ignore_nan() {
        let got = World::new(2).run(|c| {
            let data = if c.rank() == 0 { vec![f64::NAN, 5.0] } else { vec![2.0, f64::NAN] };
            let segs = [Segment::new(SegmentOp::Min, 1), Segment::new(SegmentOp::Max, 1)];
            c.allreduce_packed(data, &segs).unwrap()
        });
        for v in got {
            assert_eq!(v, vec![2.0, 5.0]);
        }
    }

    #[test]
    fn allreduce_packed_rejects_bad_segment_layout() {
        World::new(2).run(|c| {
            let segs = [Segment::new(SegmentOp::Sum, 3)];
            assert!(c.allreduce_packed(vec![1.0, 2.0], &segs).is_err());
            // The error fires before any communication, so both ranks stay
            // aligned without recovery.
            c.barrier();
        });
    }

    #[test]
    fn allreduce_counter_counts_packed_as_one_round() {
        let got = World::new(2).run(|c| {
            c.allreduce(1u64, |a, b| a + b);
            let segs = [Segment::new(SegmentOp::Sum, 2), Segment::new(SegmentOp::Min, 1)];
            c.allreduce_packed(vec![0.0; 3], &segs).unwrap();
            c.allreduce_count()
        });
        assert_eq!(got, vec![2, 2]);
    }

    #[test]
    fn single_rank_allreduce_short_circuits() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        World::new(1).run(|c| {
            // The hook still observes exactly one collective per round,
            // so sequencing/fault-injection semantics are preserved.
            let fired = Arc::new(AtomicU64::new(0));
            let f2 = fired.clone();
            c.set_collective_hook(Arc::new(move |_| {
                f2.fetch_add(1, Ordering::SeqCst);
            }));

            assert_eq!(c.allreduce(41i64, |a, b| a + b), 41);
            assert_eq!(c.allreduce_count(), 1);
            assert_eq!(fired.load(Ordering::SeqCst), 1);

            // Non-commutative op: the lone value passes through untouched.
            assert_eq!(c.allreduce("solo".to_string(), |a, b| a + &b), "solo");
            assert_eq!(c.allreduce_count(), 2);

            // Packed variant rides the same fast path — but validates the
            // segment layout first, without counting a round.
            let bad = [Segment::new(SegmentOp::Sum, 2)];
            assert!(c.allreduce_packed(vec![1.0], &bad).is_err());
            assert_eq!(c.allreduce_count(), 2);
            let segs = [Segment::new(SegmentOp::Sum, 1), Segment::new(SegmentOp::Min, 1)];
            assert_eq!(c.allreduce_packed(vec![3.0, 7.0], &segs).unwrap(), vec![3.0, 7.0]);
            assert_eq!(c.allreduce_count(), 3);
        });
    }

    #[test]
    fn bcast_from_each_root() {
        for root in 0..4 {
            let got = World::new(4).run(move |c| {
                let v = if c.rank() == root { 42 + root } else { 0 };
                c.bcast(root, v).unwrap()
            });
            assert_eq!(got, vec![42 + root; 4]);
        }
    }

    #[test]
    fn reduce_sum_matches_sequential() {
        let got = World::new(6).run(|c| c.reduce(2, c.rank() as i64 + 1, |a, b| a + b).unwrap());
        assert_eq!(got[2], Some(21));
        for (r, v) in got.iter().enumerate() {
            if r != 2 {
                assert_eq!(*v, None);
            }
        }
    }

    #[test]
    fn reduce_is_rank_ordered_for_noncommutative_op() {
        // String concatenation is non-commutative; rank order must hold.
        let got = World::new(4).run(|c| c.reduce(0, c.rank().to_string(), |a, b| a + &b).unwrap());
        assert_eq!(got[0].as_deref(), Some("0123"));
    }

    #[test]
    fn allreduce_min_and_max() {
        let vals = [5i64, -3, 9, 0];
        let mins = World::new(4).run(move |c| c.allreduce(vals[c.rank()], i64::min));
        assert_eq!(mins, vec![-3; 4]);
        let maxs = World::new(4).run(move |c| c.allreduce(vals[c.rank()], i64::max));
        assert_eq!(maxs, vec![9; 4]);
    }

    #[test]
    fn gather_orders_by_rank() {
        let got = World::new(5).run(|c| c.gather(1, c.rank() * 10).unwrap());
        assert_eq!(got[1], Some(vec![0, 10, 20, 30, 40]));
        assert_eq!(got[0], None);
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        let got = World::new(4).run(|c| c.allgather(format!("r{}", c.rank())));
        for v in got {
            assert_eq!(v, vec!["r0", "r1", "r2", "r3"]);
        }
    }

    #[test]
    fn alltoall_transposes() {
        let got = World::new(3).run(|c| {
            let outgoing: Vec<u32> = (0..3).map(|d| (c.rank() * 10 + d) as u32).collect();
            c.alltoall(outgoing).unwrap()
        });
        // rank r receives j*10 + r from each rank j
        for (r, incoming) in got.iter().enumerate() {
            let expect: Vec<u32> = (0..3).map(|j| (j * 10 + r) as u32).collect();
            assert_eq!(*incoming, expect);
        }
    }

    #[test]
    fn alltoallv_moves_variable_payloads() {
        let got = World::new(3).run(|c| {
            let outgoing: Vec<Vec<usize>> = (0..3).map(|d| vec![c.rank(); d]).collect();
            c.alltoallv(outgoing).unwrap()
        });
        for (r, incoming) in got.iter().enumerate() {
            for (j, part) in incoming.iter().enumerate() {
                assert_eq!(*part, vec![j; r]);
            }
        }
    }

    #[test]
    fn alltoall_length_mismatch_errors() {
        World::new(2).run(|c| {
            assert!(c.alltoall(vec![1, 2, 3]).is_err());
            // Recover the collective sequence so both ranks stay aligned.
            c.barrier();
        });
    }

    #[test]
    fn scan_inclusive_prefix_sum() {
        let got = World::new(5).run(|c| c.scan(c.rank() as i64 + 1, |a, b| a + b).unwrap());
        assert_eq!(got, vec![1, 3, 6, 10, 15]);
    }

    #[test]
    fn split_by_parity() {
        let got = World::new(6).run(|c| {
            let sub = c.split((c.rank() % 2) as u64, c.rank() as u64);
            // Sum of parent ranks within the sub-communicator.
            let s = sub.allreduce(c.rank(), |a, b| a + b);
            (sub.rank(), sub.size(), s)
        });
        // evens: 0,2,4 -> sum 6; odds: 1,3,5 -> sum 9
        assert_eq!(got[0], (0, 3, 6));
        assert_eq!(got[2], (1, 3, 6));
        assert_eq!(got[4], (2, 3, 6));
        assert_eq!(got[1], (0, 3, 9));
        assert_eq!(got[3], (1, 3, 9));
        assert_eq!(got[5], (2, 3, 9));
    }

    #[test]
    fn split_key_reorders_ranks() {
        let got = World::new(4).run(|c| {
            // Reverse order via descending keys.
            let sub = c.split(0, (c.size() - c.rank()) as u64);
            sub.rank()
        });
        assert_eq!(got, vec![3, 2, 1, 0]);
    }

    #[test]
    fn dup_isolates_tag_space() {
        let ok = World::new(2).run(|c| {
            let d = c.dup();
            if c.rank() == 0 {
                c.send(1, 5, 1u8).unwrap();
                d.send(1, 5, 2u8).unwrap();
                true
            } else {
                // Receive in the opposite order: messages must not cross
                // between the two communicators.
                let on_dup: u8 = d.recv(0, 5).unwrap();
                let on_parent: u8 = c.recv(0, 5).unwrap();
                on_dup == 2 && on_parent == 1
            }
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn back_to_back_collectives_do_not_cross_match() {
        let got = World::new(4).run(|c| {
            let a = c.allreduce(1u64, |a, b| a + b);
            let b = c.allreduce(10u64, |a, b| a + b);
            let g = c.allgather(c.rank());
            (a, b, g)
        });
        for (a, b, g) in got {
            assert_eq!(a, 4);
            assert_eq!(b, 40);
            assert_eq!(g, vec![0, 1, 2, 3]);
        }
    }

    fn sweep(mode: CollectiveMode, ranks_per_node: usize) -> Vec<Vec<f64>> {
        World::new(8).with_ranks_per_node(ranks_per_node).with_collective_mode(mode).run(|c| {
            // Values whose f64 sums are order-sensitive, so any
            // re-parenthesisation of the merge shows up in the bits.
            let r = c.rank() as f64;
            let data = vec![0.1 + r * 1e-3, 1e16 * if c.rank() % 2 == 0 { 1.0 } else { -1.0 }, r];
            let segs = [Segment::new(SegmentOp::Sum, 2), Segment::new(SegmentOp::Max, 1)];
            c.allreduce_packed(data, &segs).unwrap()
        })
    }

    #[test]
    fn hierarchical_allreduce_is_bit_identical_to_flat() {
        for ranks_per_node in [1, 2, 3, 4, 8] {
            let flat = sweep(CollectiveMode::Flat, ranks_per_node);
            let hier = sweep(CollectiveMode::Hierarchical, ranks_per_node);
            for (f, h) in flat.iter().zip(&hier) {
                let fb: Vec<u64> = f.iter().map(|v| v.to_bits()).collect();
                let hb: Vec<u64> = h.iter().map(|v| v.to_bits()).collect();
                assert_eq!(fb, hb, "modes diverge at {ranks_per_node} ranks/node");
            }
        }
    }

    #[test]
    fn hierarchical_allreduce_cuts_inter_node_traffic() {
        let run = |mode| {
            World::new(8).with_ranks_per_node(2).with_collective_mode(mode).run(|c| {
                c.allreduce(c.rank() as u64, |a, b| a + b);
                c.tier_stats()
            })
        };
        let total = |stats: Vec<crate::TierSnapshot>| {
            let mut sum = crate::TierSnapshot::default();
            for s in &stats {
                sum.accumulate(s);
            }
            sum
        };
        let flat = total(run(CollectiveMode::Flat));
        let hier = total(run(CollectiveMode::Hierarchical));
        // Flat: 7 sends to root + 7 bcasts, 6 ranks off rank 0's node
        // each way -> 12 inter messages. Hierarchical: only the 4-leader
        // binomial tree crosses nodes -> 3 up + 3 down.
        assert_eq!(flat.inter_messages, 12);
        assert_eq!(hier.inter_messages, 6);
        assert!(hier.inter_messages < flat.inter_messages);
        // The node tiers trade that for cheap intra-node messages.
        assert!(hier.intra_messages > 0);
    }

    #[test]
    fn single_node_topology_skips_inter_tier() {
        // All ranks on one node: the hierarchical mode must behave exactly
        // like flat — no inter-node traffic, identical results.
        let got = World::new(4).with_ranks_per_node(4).run(|c| {
            let v = c.allreduce(c.rank() as f64 + 0.5, |a, b| a + b);
            let b = c.bcast(2, c.rank()).unwrap();
            c.barrier();
            (v, b, c.tier_stats())
        });
        for (v, b, t) in got {
            assert_eq!(v, 0.5 + 1.5 + 2.5 + 3.5);
            assert_eq!(b, 2);
            assert_eq!(t.inter_messages, 0);
            assert_eq!(t.inter_bytes, 0);
        }
    }

    #[test]
    fn hierarchical_bcast_from_non_leader_root() {
        for root in 0..6 {
            let got = World::new(6).with_ranks_per_node(2).run(move |c| {
                let v = if c.rank() == root { 42 + root } else { 0 };
                c.bcast(root, v).unwrap()
            });
            assert_eq!(got, vec![42 + root; 6], "root {root}");
        }
    }

    #[test]
    fn hierarchical_barrier_synchronises_all_ranks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let arrived = AtomicUsize::new(0);
        World::new(6).with_ranks_per_node(2).run(|c| {
            arrived.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the tiered barrier every rank must have arrived.
            assert_eq!(arrived.load(Ordering::SeqCst), 6);
            c.barrier();
        });
    }

    #[test]
    fn single_rank_barrier_and_bcast_short_circuit() {
        World::new(1).run(|c| {
            // Neither may touch the mailbox or block.
            c.barrier();
            assert_eq!(c.bcast(0, 9u8).unwrap(), 9);
            let t = c.tier_stats();
            assert_eq!(t.messages(), 0);
        });
    }

    #[test]
    fn split_preserves_node_membership() {
        let got = World::new(8).with_ranks_per_node(2).run(|c| {
            // Evens: parent ranks 0,2,4,6 from nodes 0,1,2,3; odds same.
            let sub = c.split((c.rank() % 2) as u64, c.rank() as u64);
            let nodes = sub.topology().num_nodes();
            let v = sub.allreduce(c.rank() as f64 * 1e15 + 0.1, |a, b| a + b);
            (nodes, v, sub.tier_stats().inter_messages > 0)
        });
        for (nodes, _, crossed) in &got {
            assert_eq!(*nodes, 4, "each split child spans all four nodes");
            assert!(crossed, "split children charge the inter tier");
        }
        // And both children agree internally.
        assert_eq!(got[0].1, got[2].1);
        assert_eq!(got[1].1, got[3].1);
    }

    #[test]
    fn split_node_and_split_leaders() {
        let got = World::new(6).with_ranks_per_node(3).run(|c| {
            let node = c.split_node();
            let node_sum = node.allreduce(c.rank(), |a, b| a + b);
            let (tier, is_leader) = c.split_leaders();
            let tier_info = (tier.size(), tier.allreduce(c.rank(), |a, b| a + b));
            (node.size(), node_sum, is_leader, tier_info)
        });
        // Nodes are {0,1,2} and {3,4,5}.
        assert_eq!(got[0], (3, 3, true, (2, 3))); // leaders 0 and 3
        assert_eq!(got[3], (3, 12, true, (2, 3)));
        assert_eq!(got[1], (3, 3, false, (2, 3))); // followers 1, 2
        assert_eq!(got[4], (3, 12, false, (2, 9))); // followers 4, 5
        let node_topo_flat = World::new(4).with_ranks_per_node(2).run(|c| {
            let node = c.split_node();
            node.topology().is_single_node()
        });
        assert!(node_topo_flat.iter().all(|&b| b));
    }

    #[test]
    fn hook_fires_on_every_tier() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let got = World::new(4).with_ranks_per_node(2).run(|c| {
            // Build the hierarchy first, then install the hook: it must
            // still reach the cached node/leader sub-communicators.
            c.allreduce(1u64, |a, b| a + b);
            let n = Arc::new(AtomicU64::new(0));
            let n2 = n.clone();
            c.set_collective_hook(Arc::new(move |_| {
                n2.fetch_add(1, Ordering::SeqCst);
            }));
            c.allreduce(1u64, |a, b| a + b);
            let fired = n.load(Ordering::SeqCst);
            c.clear_collective_hook();
            c.allreduce(1u64, |a, b| a + b);
            (fired, n.load(Ordering::SeqCst))
        });
        for (rank, (fired, after_clear)) in got.iter().enumerate() {
            // Parent slot + node reduce + node bcast = 3 on every rank;
            // leaders also observe the leader-tier collective.
            let expect = if rank % 2 == 0 { 4 } else { 3 };
            assert_eq!(*fired, expect, "rank {rank}");
            assert_eq!(after_clear, fired, "clear must reach the tiers on rank {rank}");
        }
    }

    #[test]
    fn explicit_topology_groups_arbitrarily() {
        // Interleaved nodes: ranks 0,2 on node A, ranks 1,3 on node B.
        let topo = Topology::from_nodes(vec![0, 1, 0, 1]);
        let flat = World::new(4)
            .with_topology(topo.clone())
            .with_collective_mode(CollectiveMode::Flat)
            .run(|c| c.allreduce(0.1 * (c.rank() as f64 + 1.0), |a, b| a + b));
        let hier = World::new(4)
            .with_topology(topo)
            .run(|c| c.allreduce(0.1 * (c.rank() as f64 + 1.0), |a, b| a + b));
        let fb: Vec<u64> = flat.iter().map(|v| v.to_bits()).collect();
        let hb: Vec<u64> = hier.iter().map(|v| v.to_bits()).collect();
        assert_eq!(fb, hb);
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let got = World::new(1).run(|c| {
            let a = c.allreduce(7, |a, b| a + b);
            let g = c.allgather(3u8);
            let s = c.scan(5, |a, b| a + b).unwrap();
            let t = c.alltoall(vec![9i32]).unwrap();
            (a, g, s, t)
        });
        assert_eq!(got[0], (7, vec![3u8], 5, vec![9i32]));
    }
}
