//! The communicator handle and point-to-point operations.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use devsim::NetworkParams;
use parking_lot::Mutex;

use crate::barrier::Barrier;
use crate::error::{Error, Result};
use crate::mailbox::{Key, Mailbox};
use crate::topology::{CollectiveMode, TierCounters, TierSnapshot, Topology};
use crate::ANY_SOURCE;

/// State shared by every rank of a [`crate::World`].
pub(crate) struct WorldShared {
    pub mailbox: Mailbox,
    /// One reusable barrier per communicator id.
    barriers: Mutex<HashMap<u64, Arc<Barrier>>>,
    /// Source of fresh communicator ids (the world communicator is id 0).
    next_comm_id: AtomicU64,
    /// Cost model for the simulated cluster network; every message is
    /// charged against its intra- or inter-node tier.
    pub net: NetworkParams,
    /// Multiplier on modeled message durations (0 disables modeled time
    /// but keeps message/byte counts).
    pub time_scale: f64,
}

impl WorldShared {
    pub fn new(net: NetworkParams, time_scale: f64) -> Self {
        WorldShared {
            mailbox: Mailbox::new(),
            barriers: Mutex::new(HashMap::new()),
            next_comm_id: AtomicU64::new(1),
            net,
            time_scale,
        }
    }

    /// All members of a communicator call this with the same `(id, n)`; the
    /// first caller creates the barrier and the rest share it.
    pub fn barrier_for(&self, id: u64, n: usize) -> Arc<Barrier> {
        self.barriers.lock().entry(id).or_insert_with(|| Arc::new(Barrier::new(n))).clone()
    }

    /// Reserve `count` consecutive fresh communicator ids, returning the first.
    pub fn reserve_comm_ids(&self, count: u64) -> u64 {
        self.next_comm_id.fetch_add(count, Ordering::Relaxed)
    }
}

/// A communicator: this rank's endpoint for messaging with its peers.
///
/// `Comm` is deliberately not `Clone`: collective calls keep an internal
/// sequence number that must stay in lockstep across ranks, and cloning
/// would silently fork it. Use [`Comm::dup`] (a collective) to obtain an
/// independent communicator over the same group, as in MPI.
pub struct Comm {
    shared: Arc<WorldShared>,
    comm_id: u64,
    rank: usize,
    size: usize,
    barrier: Arc<Barrier>,
    /// Per-rank collective sequence number; advances identically on every
    /// rank because collectives must be called in the same order everywhere.
    pub(crate) coll_seq: Cell<u64>,
    /// Allreduce rounds issued through this handle (packed or plain); the
    /// observable a fused analysis path optimises, so callers can assert on
    /// communication counts rather than trusting the implementation.
    pub(crate) allreduce_rounds: Cell<u64>,
    /// Collective observer (fault injection, tracing); see
    /// [`CollectiveHook`].
    coll_hook: RefCell<Option<CollectiveHook>>,
    /// The node grouping of this communicator's ranks.
    topology: Arc<Topology>,
    /// Whether collectives take the tiered or the flat path.
    mode: CollectiveMode,
    /// Per-tier traffic charged through this handle. Shared with the
    /// internal node/leader sub-communicators (see [`Hier`]) so a handle's
    /// stats cover its whole tiered exchange.
    tiers: Arc<TierCounters>,
    /// Lazily built node-local/leader sub-communicators for the
    /// hierarchical collective path.
    hier: RefCell<Option<Box<Hier>>>,
}

/// The internal sub-communicators one rank uses on the tiered path.
pub(crate) struct Hier {
    /// This rank's node-local sub-communicator (single-node topology, so
    /// its own collectives stay flat). Node rank 0 is the node leader.
    pub node: Comm,
    /// The inter-node leader sub-communicator; `Some` only on leaders.
    /// Its topology places each leader on its own node, so every message
    /// on it is charged to the inter-node tier.
    pub leader: Option<Comm>,
    /// The node index this rank lives on.
    pub node_index: usize,
}

/// Tag space reserved for collectives; user tags must stay below this.
pub(crate) const COLLECTIVE_TAG_BASE: u64 = 1 << 63;

/// Id space reserved for the internal hierarchical sub-communicators.
/// Ids are derived from the parent's id rather than negotiated, so
/// building the hierarchy costs no communication and cannot perturb the
/// parent's collective sequence: the leader comm of parent `p` is
/// `HIER_ID_BASE + p * HIER_ID_STRIDE`, and node `k`'s comm is that plus
/// `1 + k`.
const HIER_ID_BASE: u64 = 1 << 62;
const HIER_ID_STRIDE: u64 = 4096;

/// Observer invoked at the top of every collective on a communicator
/// (barrier excepted), with the collective's sequence number. Installed
/// with [`Comm::set_collective_hook`] and inherited by communicators
/// derived through `dup`/`split`; used for fault injection (slow-rank
/// delays) and tracing without coupling this crate to the simulator.
pub type CollectiveHook = Arc<dyn Fn(u64) + Send + Sync>;

impl Comm {
    pub(crate) fn new(
        shared: Arc<WorldShared>,
        comm_id: u64,
        rank: usize,
        size: usize,
        topology: Arc<Topology>,
        mode: CollectiveMode,
    ) -> Self {
        Comm::with_parts(shared, comm_id, rank, size, topology, mode, Arc::default())
    }

    fn with_parts(
        shared: Arc<WorldShared>,
        comm_id: u64,
        rank: usize,
        size: usize,
        topology: Arc<Topology>,
        mode: CollectiveMode,
        tiers: Arc<TierCounters>,
    ) -> Self {
        debug_assert_eq!(topology.size(), size, "topology must cover every rank");
        let barrier = shared.barrier_for(comm_id, size);
        Comm {
            shared,
            comm_id,
            rank,
            size,
            barrier,
            coll_seq: Cell::new(0),
            allreduce_rounds: Cell::new(0),
            coll_hook: RefCell::new(None),
            topology,
            mode,
            tiers,
            hier: RefCell::new(None),
        }
    }

    /// Install a [`CollectiveHook`] invoked at the top of every collective
    /// on this handle; communicators later derived via `dup`/`split`
    /// inherit it, as do the internal node-local/leader sub-communicators
    /// the hierarchical path creates (so fault sites fire on every tier).
    /// Must not be called from inside a hook.
    pub fn set_collective_hook(&self, hook: CollectiveHook) {
        if let Some(h) = self.hier.borrow().as_deref() {
            h.node.set_collective_hook(hook.clone());
            if let Some(l) = &h.leader {
                l.set_collective_hook(hook.clone());
            }
        }
        *self.coll_hook.borrow_mut() = Some(hook);
    }

    /// Remove the collective hook from this handle (and from the internal
    /// tier sub-communicators, if built). Must not be called from inside a
    /// hook.
    pub fn clear_collective_hook(&self) {
        if let Some(h) = self.hier.borrow().as_deref() {
            h.node.clear_collective_hook();
            if let Some(l) = &h.leader {
                l.clear_collective_hook();
            }
        }
        *self.coll_hook.borrow_mut() = None;
    }

    /// Internal: run the hook for collective number `seq`. The hook is
    /// cloned out before the call so it may itself inspect the comm.
    pub(crate) fn notify_collective(&self, seq: u64) {
        let hook = self.coll_hook.borrow().clone();
        if let Some(hook) = hook {
            hook(seq);
        }
    }

    /// Number of allreduce rounds issued through this handle so far. A
    /// packed allreduce counts as one round regardless of segment count.
    pub fn allreduce_count(&self) -> u64 {
        self.allreduce_rounds.get()
    }

    /// The node grouping of this communicator's ranks.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Per-tier traffic charged through this handle so far, including the
    /// internal tier sub-communicators of hierarchical collectives.
    /// Handles derived via `dup`/`split` account separately.
    pub fn tier_stats(&self) -> TierSnapshot {
        self.tiers.snapshot()
    }

    /// This rank's index within the communicator, in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.size
    }

    fn check_rank(&self, rank: usize) -> Result<()> {
        if rank < self.size {
            Ok(())
        } else {
            Err(Error::RankOutOfRange { rank, size: self.size })
        }
    }

    fn key(&self, src: usize, dst: usize, tag: u64) -> Key {
        Key { comm: self.comm_id, src, dst, tag }
    }

    /// Charge one message to `dst` against its network tier: counts, bytes,
    /// and the modeled duration under the world's [`NetworkParams`].
    pub(crate) fn charge_message(&self, dst: usize, bytes: usize) {
        let inter = !self.topology.same_node(self.rank, dst);
        let d = devsim::message_duration(bytes, inter, &self.shared.net, self.shared.time_scale);
        self.tiers.record(inter, bytes as u64, d.as_nanos() as u64);
    }

    /// Send `value` to `dst` with matching `tag`. Buffered: never blocks.
    ///
    /// Payloads are moved, not serialised, so tier accounting charges the
    /// shallow `size_of::<T>()`; collectives with known payload sizes
    /// charge exact byte counts instead.
    pub fn send<T: Send + 'static>(&self, dst: usize, tag: u64, value: T) -> Result<()> {
        self.check_rank(dst)?;
        debug_assert!(tag < COLLECTIVE_TAG_BASE, "user tags must be < 2^63");
        self.charge_message(dst, std::mem::size_of::<T>());
        self.shared.mailbox.post(self.key(self.rank, dst, tag), Box::new(value));
        Ok(())
    }

    /// Block until a message with `tag` from `src` arrives and return it.
    /// Pass [`crate::ANY_SOURCE`] as `src` to match any sender (use
    /// [`Comm::recv_any`] if you also need the source rank).
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> Result<T> {
        if src == ANY_SOURCE {
            return self.recv_any(tag).map(|(_, v)| v);
        }
        self.check_rank(src)?;
        self.shared.mailbox.take(self.key(src, self.rank, tag))
    }

    /// Blocking receive from any source; returns `(source_rank, value)`.
    pub fn recv_any<T: Send + 'static>(&self, tag: u64) -> Result<(usize, T)> {
        self.shared.mailbox.take_any(self.comm_id, self.rank, tag)
    }

    /// Receive with a timeout; [`Error::Timeout`] if nothing matched in time.
    pub fn recv_timeout<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<T> {
        self.check_rank(src)?;
        self.shared.mailbox.take_timeout(self.key(src, self.rank, tag), timeout)
    }

    /// Non-blocking receive: `None` if no matching message is queued.
    pub fn try_recv<T: Send + 'static>(&self, src: usize, tag: u64) -> Result<Option<T>> {
        self.check_rank(src)?;
        self.shared.mailbox.try_take(self.key(src, self.rank, tag)).transpose()
    }

    /// Combined send to `dst` and receive from `src` on the same tag, safe
    /// against the cyclic-exchange deadlock because sends are buffered.
    pub fn sendrecv<T: Send + 'static>(
        &self,
        dst: usize,
        src: usize,
        tag: u64,
        value: T,
    ) -> Result<T> {
        self.send(dst, tag, value)?;
        self.recv(src, tag)
    }

    /// Wait until every rank of the communicator has reached the barrier.
    ///
    /// Single-rank communicators return immediately; on a multi-node
    /// topology the wait is tiered (node barrier → leader barrier → node
    /// barrier) so only node leaders synchronise across the interconnect.
    pub fn barrier(&self) {
        if self.size == 1 {
            return;
        }
        if self.hierarchical() {
            self.with_hier(|h| {
                h.node.barrier();
                if let Some(l) = &h.leader {
                    l.barrier();
                }
                h.node.barrier();
            });
        } else {
            self.barrier.wait();
        }
    }

    pub(crate) fn shared(&self) -> &Arc<WorldShared> {
        &self.shared
    }

    /// Internal: send on the reserved collective tag space, charging the
    /// shallow payload size.
    pub(crate) fn coll_send<T: Send + 'static>(&self, dst: usize, tag: u64, value: T) {
        self.coll_send_metered(dst, tag, value, std::mem::size_of::<T>());
    }

    /// Internal: collective-tag send charging an exact payload size (used
    /// where the wire size is known, e.g. packed `f64` buffers).
    pub(crate) fn coll_send_metered<T: Send + 'static>(
        &self,
        dst: usize,
        tag: u64,
        value: T,
        bytes: usize,
    ) {
        self.charge_message(dst, bytes);
        self.shared.mailbox.post(self.key(self.rank, dst, tag), Box::new(value));
    }

    /// Internal: receive on the reserved collective tag space.
    pub(crate) fn coll_recv<T: Send + 'static>(&self, src: usize, tag: u64) -> Result<T> {
        self.shared.mailbox.take(self.key(src, self.rank, tag))
    }

    /// Internal: construct a sibling communicator handle (used by split/dup).
    /// The child inherits this handle's collective hook and mode.
    pub(crate) fn make(&self, comm_id: u64, rank: usize, size: usize, topology: Topology) -> Comm {
        let child =
            Comm::new(self.shared.clone(), comm_id, rank, size, Arc::new(topology), self.mode);
        *child.coll_hook.borrow_mut() = self.coll_hook.borrow().clone();
        child
    }

    /// Whether collectives on this handle take the tiered path: the mode
    /// allows it, the topology actually spans nodes (single-node worlds —
    /// the default — skip the inter-node tier entirely), and the id leaves
    /// room in the derived-id space (internal sub-comms never recurse).
    pub(crate) fn hierarchical(&self) -> bool {
        self.mode == CollectiveMode::Hierarchical
            && !self.topology.is_single_node()
            && self.comm_id < HIER_ID_BASE / HIER_ID_STRIDE
    }

    /// Run `f` with this rank's tier sub-communicators, building and
    /// caching them on first use. Construction is pure derivation — no
    /// messages, no collective slots — so it cannot perturb the parent's
    /// sequence numbers. Only meaningful when [`Comm::hierarchical`].
    pub(crate) fn with_hier<R>(&self, f: impl FnOnce(&Hier) -> R) -> R {
        debug_assert!(self.hierarchical());
        if self.hier.borrow().is_none() {
            *self.hier.borrow_mut() = Some(Box::new(self.build_hier()));
        }
        let guard = self.hier.borrow();
        f(guard.as_deref().expect("hierarchy built above"))
    }

    fn build_hier(&self) -> Hier {
        let topo = &self.topology;
        let num_nodes = topo.num_nodes();
        assert!(
            (num_nodes as u64) < HIER_ID_STRIDE,
            "derived-id space supports at most {} nodes",
            HIER_ID_STRIDE - 1
        );
        let node_index = topo.node_of(self.rank);
        let members = topo.members(node_index);
        let hook = self.coll_hook.borrow().clone();

        let node_id = HIER_ID_BASE + self.comm_id * HIER_ID_STRIDE + 1 + node_index as u64;
        let node = Comm::with_parts(
            self.shared.clone(),
            node_id,
            topo.node_rank(self.rank),
            members.len(),
            Arc::new(Topology::single_node(members.len())),
            self.mode,
            self.tiers.clone(),
        );
        *node.coll_hook.borrow_mut() = hook.clone();

        let leader = (topo.leader(node_index) == self.rank).then(|| {
            let leader_id = HIER_ID_BASE + self.comm_id * HIER_ID_STRIDE;
            // One node per leader: every leader-tier message is inter-node.
            let l = Comm::with_parts(
                self.shared.clone(),
                leader_id,
                node_index,
                num_nodes,
                Arc::new(Topology::from_nodes((0..num_nodes).collect())),
                self.mode,
                self.tiers.clone(),
            );
            *l.coll_hook.borrow_mut() = hook.clone();
            l
        });
        Hier { node, leader, node_index }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Error, World, ANY_SOURCE};
    use std::time::Duration;

    #[test]
    fn rank_and_size_are_consistent() {
        let got = World::new(3).run(|c| (c.rank(), c.size()));
        assert_eq!(got, vec![(0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn ring_exchange_delivers_in_order() {
        let got = World::new(4).run(|c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            for i in 0..5u32 {
                c.send(next, 7, (c.rank() as u32, i)).unwrap();
            }
            (0..5u32).map(|_| c.recv::<(u32, u32)>(prev, 7).unwrap()).collect::<Vec<_>>()
        });
        for (rank, msgs) in got.iter().enumerate() {
            let prev = (rank + 4 - 1) % 4;
            let expect: Vec<_> = (0..5).map(|i| (prev as u32, i)).collect();
            assert_eq!(*msgs, expect);
        }
    }

    #[test]
    fn send_to_invalid_rank_errors() {
        World::new(2).run(|c| {
            assert!(matches!(c.send(5, 0, 1u8), Err(Error::RankOutOfRange { rank: 5, size: 2 })));
        });
    }

    #[test]
    fn recv_any_source_reports_sender() {
        let got = World::new(3).run(|c| {
            if c.rank() == 0 {
                let mut seen = vec![];
                for _ in 0..2 {
                    let (src, v): (usize, u64) = c.recv_any(3).unwrap();
                    seen.push((src, v));
                }
                seen.sort_unstable();
                seen
            } else {
                c.send(0, 3, c.rank() as u64 * 10).unwrap();
                vec![]
            }
        });
        assert_eq!(got[0], vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn recv_with_wildcard_constant() {
        let got = World::new(2).run(|c| {
            if c.rank() == 0 {
                c.recv::<i32>(ANY_SOURCE, 0).unwrap()
            } else {
                c.send(0, 0, 17i32).unwrap();
                0
            }
        });
        assert_eq!(got[0], 17);
    }

    #[test]
    fn sendrecv_cyclic_shift_does_not_deadlock() {
        let got = World::new(5).run(|c| {
            let dst = (c.rank() + 1) % c.size();
            let src = (c.rank() + c.size() - 1) % c.size();
            c.sendrecv(dst, src, 0, c.rank()).unwrap()
        });
        assert_eq!(got, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn recv_timeout_expires() {
        World::new(2).run(|c| {
            if c.rank() == 0 {
                let err = c.recv_timeout::<i32>(1, 0, Duration::from_millis(10)).unwrap_err();
                assert_eq!(err, Error::Timeout);
            }
            c.barrier();
        });
    }

    #[test]
    fn try_recv_sees_buffered_message_after_barrier() {
        World::new(2).run(|c| {
            if c.rank() == 1 {
                c.send(0, 2, 5u8).unwrap();
            }
            c.barrier();
            if c.rank() == 0 {
                assert_eq!(c.try_recv::<u8>(1, 2).unwrap(), Some(5));
                assert_eq!(c.try_recv::<u8>(1, 2).unwrap(), None);
            }
        });
    }

    #[test]
    fn collective_hook_fires_and_is_inherited() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let ok = World::new(2).run(|c| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = n.clone();
            c.set_collective_hook(Arc::new(move |_seq| {
                n2.fetch_add(1, Ordering::SeqCst);
            }));
            c.bcast(0, 7u8).unwrap();
            let after_bcast = n.load(Ordering::SeqCst);

            // dup's internal collectives run on the parent; the child
            // inherits the hook for its own collectives.
            let d = c.dup();
            let after_dup = n.load(Ordering::SeqCst);
            d.bcast(0, 9u8).unwrap();
            let after_child = n.load(Ordering::SeqCst);

            c.clear_collective_hook();
            c.bcast(0, 1u8).unwrap();
            let after_clear = n.load(Ordering::SeqCst);

            after_bcast == 1
                && after_dup > after_bcast
                && after_child == after_dup + 1
                && after_clear == after_child
        });
        assert!(ok.iter().all(|&b| b), "hook counts wrong on some rank: {ok:?}");
    }

    #[test]
    fn moves_non_clone_payloads() {
        struct Token(#[allow(dead_code)] Vec<u8>);
        let ok = World::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 0, Token(vec![1, 2, 3])).unwrap();
                true
            } else {
                c.recv::<Token>(0, 0).unwrap().0 == vec![1, 2, 3]
            }
        });
        assert!(ok.iter().all(|&b| b));
    }
}
