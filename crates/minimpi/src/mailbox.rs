//! Shared mailbox matching messages on `(comm, src, dst, tag)` in FIFO order.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::error::{Error, Result};

/// Erased message payload.
type Payload = Box<dyn Any + Send>;

/// Message-matching key. `comm` is the communicator id so that messages on a
/// sub-communicator never match messages on the parent.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Key {
    pub comm: u64,
    pub src: usize,
    pub dst: usize,
    pub tag: u64,
}

#[derive(Default)]
struct Queues {
    map: HashMap<Key, VecDeque<Payload>>,
}

/// A process-wide mailbox shared by every rank of a [`crate::World`].
///
/// Each `(comm, src, dst, tag)` tuple owns an independent FIFO queue, so
/// messages between a given pair of ranks with a given tag arrive in send
/// order, while messages on different tags can be received out of order —
/// the same matching semantics MPI provides.
pub(crate) struct Mailbox {
    queues: Mutex<Queues>,
    arrived: Condvar,
}

impl Mailbox {
    pub fn new() -> Self {
        Mailbox { queues: Mutex::new(Queues::default()), arrived: Condvar::new() }
    }

    /// Enqueue a message. Never blocks: this models MPI's buffered send,
    /// which is what the coupled codes in the paper rely on.
    pub fn post(&self, key: Key, payload: Payload) {
        let mut q = self.queues.lock();
        q.map.entry(key).or_default().push_back(payload);
        drop(q);
        self.arrived.notify_all();
    }

    /// Block until a message matching `key` is available and return it.
    pub fn take<T: Send + 'static>(&self, key: Key) -> Result<T> {
        let mut q = self.queues.lock();
        loop {
            if let Some(payload) = Self::pop(&mut q.map, key) {
                return Self::downcast(payload);
            }
            self.arrived.wait(&mut q);
        }
    }

    /// Like [`take`](Self::take) but gives up after `timeout`.
    pub fn take_timeout<T: Send + 'static>(&self, key: Key, timeout: Duration) -> Result<T> {
        let deadline = Instant::now() + timeout;
        let mut q = self.queues.lock();
        loop {
            if let Some(payload) = Self::pop(&mut q.map, key) {
                return Self::downcast(payload);
            }
            if self.arrived.wait_until(&mut q, deadline).timed_out() {
                return Err(Error::Timeout);
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_take<T: Send + 'static>(&self, key: Key) -> Option<Result<T>> {
        let mut q = self.queues.lock();
        Self::pop(&mut q.map, key).map(Self::downcast)
    }

    /// Block until a message for `dst` with `tag` arrives from *any* source
    /// on communicator `comm`; returns the source rank alongside the payload.
    pub fn take_any<T: Send + 'static>(
        &self,
        comm: u64,
        dst: usize,
        tag: u64,
    ) -> Result<(usize, T)> {
        let mut q = self.queues.lock();
        loop {
            let hit = q.queues_matching(comm, dst, tag).next();
            if let Some(key) = hit {
                let payload = Self::pop(&mut q.map, key).expect("queue vanished under lock");
                return Self::downcast(payload).map(|v| (key.src, v));
            }
            self.arrived.wait(&mut q);
        }
    }

    fn pop(map: &mut HashMap<Key, VecDeque<Payload>>, key: Key) -> Option<Payload> {
        let queue = map.get_mut(&key)?;
        let payload = queue.pop_front();
        if queue.is_empty() {
            map.remove(&key);
        }
        payload
    }

    fn downcast<T: Send + 'static>(payload: Payload) -> Result<T> {
        payload
            .downcast::<T>()
            .map(|b| *b)
            .map_err(|_| Error::TypeMismatch { expected: std::any::type_name::<T>() })
    }
}

impl Queues {
    /// Keys with pending messages destined for `(comm, dst, tag)`, lowest
    /// source rank first (a deterministic tie-break for `ANY_SOURCE`).
    fn queues_matching(&self, comm: u64, dst: usize, tag: u64) -> impl Iterator<Item = Key> + '_ {
        let mut keys: Vec<Key> = self
            .map
            .keys()
            .filter(|k| k.comm == comm && k.dst == dst && k.tag == tag)
            .copied()
            .collect();
        keys.sort_by_key(|k| k.src);
        keys.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(src: usize, dst: usize, tag: u64) -> Key {
        Key { comm: 0, src, dst, tag }
    }

    #[test]
    fn post_then_take_roundtrips() {
        let mb = Mailbox::new();
        mb.post(key(0, 1, 7), Box::new(42i32));
        assert_eq!(mb.take::<i32>(key(0, 1, 7)).unwrap(), 42);
    }

    #[test]
    fn fifo_order_within_key() {
        let mb = Mailbox::new();
        for i in 0..10i64 {
            mb.post(key(0, 0, 1), Box::new(i));
        }
        for i in 0..10i64 {
            assert_eq!(mb.take::<i64>(key(0, 0, 1)).unwrap(), i);
        }
    }

    #[test]
    fn tags_are_independent() {
        let mb = Mailbox::new();
        mb.post(key(0, 1, 2), Box::new("b".to_string()));
        mb.post(key(0, 1, 1), Box::new("a".to_string()));
        assert_eq!(mb.take::<String>(key(0, 1, 1)).unwrap(), "a");
        assert_eq!(mb.take::<String>(key(0, 1, 2)).unwrap(), "b");
    }

    #[test]
    fn type_mismatch_is_reported() {
        let mb = Mailbox::new();
        mb.post(key(0, 1, 0), Box::new(1.5f64));
        let err = mb.take::<i32>(key(0, 1, 0)).unwrap_err();
        assert!(matches!(err, Error::TypeMismatch { .. }));
    }

    #[test]
    fn timeout_expires_when_no_message() {
        let mb = Mailbox::new();
        let err = mb.take_timeout::<i32>(key(0, 1, 0), Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, Error::Timeout);
    }

    #[test]
    fn try_take_is_nonblocking() {
        let mb = Mailbox::new();
        assert!(mb.try_take::<i32>(key(0, 1, 0)).is_none());
        mb.post(key(0, 1, 0), Box::new(5i32));
        assert_eq!(mb.try_take::<i32>(key(0, 1, 0)).unwrap().unwrap(), 5);
    }

    #[test]
    fn take_any_prefers_lowest_source() {
        let mb = Mailbox::new();
        mb.post(key(3, 0, 9), Box::new(30i32));
        mb.post(key(1, 0, 9), Box::new(10i32));
        let (src, v) = mb.take_any::<i32>(0, 0, 9).unwrap();
        assert_eq!((src, v), (1, 10));
        let (src, v) = mb.take_any::<i32>(0, 0, 9).unwrap();
        assert_eq!((src, v), (3, 30));
    }

    #[test]
    fn take_blocks_until_post_from_other_thread() {
        let mb = std::sync::Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let h = std::thread::spawn(move || mb2.take::<u64>(key(0, 1, 4)).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        mb.post(key(0, 1, 4), Box::new(99u64));
        assert_eq!(h.join().unwrap(), 99);
    }
}
