//! The [`World`]: spawns one thread per rank and hands each a [`Comm`].

use std::sync::Arc;

use crate::comm::{Comm, WorldShared};

/// A fixed-size group of ranks, each run on its own OS thread.
///
/// This replaces `mpirun -n <N>`: [`World::run`] spawns `N` scoped threads,
/// passes each a rank-`i` [`Comm`] over the world communicator, and returns
/// the per-rank results in rank order.
pub struct World {
    n: usize,
}

impl World {
    /// Create a world of `n` ranks.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a world needs at least one rank");
        World { n }
    }

    /// Number of ranks this world will spawn.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Run `f` on every rank concurrently and collect the results in rank
    /// order. `f` may borrow from the caller's stack (scoped threads).
    ///
    /// # Panics
    /// If any rank panics, the panic is propagated after all ranks have
    /// been joined.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        let shared = Arc::new(WorldShared::new());
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.n)
                .map(|rank| {
                    let shared = shared.clone();
                    let n = self.n;
                    scope.spawn(move || f(Comm::new(shared, 0, rank, n)))
                })
                .collect();
            let mut results = Vec::with_capacity(self.n);
            let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
            for h in handles {
                match h.join() {
                    Ok(r) => results.push(r),
                    Err(p) => panic = Some(p),
                }
            }
            if let Some(p) = panic {
                std::panic::resume_unwind(p);
            }
            results
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_rank_order() {
        let got = World::new(8).run(|c| c.rank() * c.rank());
        assert_eq!(got, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn closures_can_borrow_caller_state() {
        let data = [10, 20, 30];
        let got = World::new(3).run(|c| data[c.rank()] + 1);
        assert_eq!(got, vec![11, 21, 31]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        World::new(0);
    }

    #[test]
    fn worlds_are_isolated_from_each_other() {
        // Two sequential worlds must not share mailboxes or barriers.
        let a = World::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 0, 1u8).unwrap();
            }
            c.barrier();
            c.rank()
        });
        let b = World::new(2).run(|c| {
            // A fresh world: no stale message from world `a` may appear.
            if c.rank() == 1 {
                assert_eq!(c.try_recv::<u8>(0, 0).unwrap(), None);
            }
            c.barrier();
            c.rank()
        });
        assert_eq!(a, b);
    }

    #[test]
    fn rank_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            World::new(2).run(|c| {
                if c.rank() == 1 {
                    panic!("rank 1 exploded");
                }
            });
        });
        assert!(result.is_err());
    }
}
