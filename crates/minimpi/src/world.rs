//! The [`World`]: spawns one thread per rank and hands each a [`Comm`].

use std::sync::Arc;

use devsim::NetworkParams;

use crate::comm::{Comm, WorldShared};
use crate::topology::{CollectiveMode, Topology};

/// A fixed-size group of ranks, each run on its own OS thread.
///
/// This replaces `mpirun -n <N>`: [`World::run`] spawns `N` scoped threads,
/// passes each a rank-`i` [`Comm`] over the world communicator, and returns
/// the per-rank results in rank order.
///
/// By default all ranks share one simulated node (the historical flat
/// behaviour). [`World::with_ranks_per_node`] / [`World::with_topology`]
/// group ranks into nodes, after which collectives take the tiered
/// hierarchical path and every message is charged against the intra- or
/// inter-node tier of [`NetworkParams`].
pub struct World {
    n: usize,
    topology: Topology,
    net: NetworkParams,
    time_scale: f64,
    mode: CollectiveMode,
}

impl World {
    /// Create a world of `n` ranks on a single simulated node.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a world needs at least one rank");
        World {
            n,
            topology: Topology::single_node(n),
            net: NetworkParams::default(),
            time_scale: 0.0,
            mode: CollectiveMode::default(),
        }
    }

    /// Group consecutive ranks into simulated nodes of `ranks_per_node`
    /// (the last node may be partial), as `mpirun` fills nodes.
    pub fn with_ranks_per_node(mut self, ranks_per_node: usize) -> Self {
        self.topology = Topology::grouped(self.n, ranks_per_node);
        self
    }

    /// Use an explicit rank → node assignment.
    ///
    /// # Panics
    /// Panics if the topology does not cover exactly `n` ranks.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        assert_eq!(topology.size(), self.n, "topology must cover every rank");
        self.topology = topology;
        self
    }

    /// Set the network cost model and the time scale applied to modeled
    /// message durations (`0.0`, the default, records message/byte counts
    /// but no modeled time — what unit tests want).
    pub fn with_net(mut self, net: NetworkParams, time_scale: f64) -> Self {
        self.net = net;
        self.time_scale = time_scale;
        self
    }

    /// Choose how collectives route traffic; the default is
    /// [`CollectiveMode::Hierarchical`]. [`CollectiveMode::Flat`] keeps the
    /// all-to-root algorithms as a bit-identical A/B baseline.
    pub fn with_collective_mode(mut self, mode: CollectiveMode) -> Self {
        self.mode = mode;
        self
    }

    /// Number of ranks this world will spawn.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Run `f` on every rank concurrently and collect the results in rank
    /// order. `f` may borrow from the caller's stack (scoped threads).
    ///
    /// # Panics
    /// If any rank panics, the panic is propagated after all ranks have
    /// been joined.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        let shared = Arc::new(WorldShared::new(self.net, self.time_scale));
        let topology = Arc::new(self.topology.clone());
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.n)
                .map(|rank| {
                    let shared = shared.clone();
                    let topology = topology.clone();
                    let n = self.n;
                    let mode = self.mode;
                    scope.spawn(move || f(Comm::new(shared, 0, rank, n, topology, mode)))
                })
                .collect();
            let mut results = Vec::with_capacity(self.n);
            let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
            for h in handles {
                match h.join() {
                    Ok(r) => results.push(r),
                    Err(p) => panic = Some(p),
                }
            }
            if let Some(p) = panic {
                std::panic::resume_unwind(p);
            }
            results
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_rank_order() {
        let got = World::new(8).run(|c| c.rank() * c.rank());
        assert_eq!(got, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn closures_can_borrow_caller_state() {
        let data = [10, 20, 30];
        let got = World::new(3).run(|c| data[c.rank()] + 1);
        assert_eq!(got, vec![11, 21, 31]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        World::new(0);
    }

    #[test]
    fn worlds_are_isolated_from_each_other() {
        // Two sequential worlds must not share mailboxes or barriers.
        let a = World::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 0, 1u8).unwrap();
            }
            c.barrier();
            c.rank()
        });
        let b = World::new(2).run(|c| {
            // A fresh world: no stale message from world `a` may appear.
            if c.rank() == 1 {
                assert_eq!(c.try_recv::<u8>(0, 0).unwrap(), None);
            }
            c.barrier();
            c.rank()
        });
        assert_eq!(a, b);
    }

    #[test]
    fn rank_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            World::new(2).run(|c| {
                if c.rank() == 1 {
                    panic!("rank 1 exploded");
                }
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn default_world_is_single_node() {
        World::new(4).run(|c| {
            assert!(c.topology().is_single_node());
            assert_eq!(c.topology().num_nodes(), 1);
        });
    }

    #[test]
    fn grouped_world_exposes_its_topology() {
        let got = World::new(6)
            .with_ranks_per_node(2)
            .run(|c| (c.topology().node_of(c.rank()), c.topology().is_leader(c.rank())));
        assert_eq!(got, vec![(0, true), (0, false), (1, true), (1, false), (2, true), (2, false)]);
    }

    #[test]
    #[should_panic(expected = "cover every rank")]
    fn mismatched_topology_rejected() {
        let _ = World::new(4).with_topology(Topology::single_node(3));
    }
}
