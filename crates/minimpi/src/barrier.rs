//! A reusable sense-reversing barrier.
//!
//! `std::sync::Barrier` would suffice for a single communicator, but
//! sub-communicators created by [`crate::Comm::split`] need barriers created
//! dynamically and shared by an agreed subset of ranks, so we keep our own
//! small implementation with an explicit generation counter.

use parking_lot::{Condvar, Mutex};

struct State {
    /// Ranks still to arrive in the current generation.
    remaining: usize,
    /// Incremented every time the barrier trips; waiters key off this so a
    /// fast rank re-entering the barrier cannot consume the previous trip.
    generation: u64,
}

/// A barrier usable any number of times by a fixed set of `n` participants.
pub(crate) struct Barrier {
    n: usize,
    state: Mutex<State>,
    tripped: Condvar,
}

impl Barrier {
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier requires at least one participant");
        Barrier {
            n,
            state: Mutex::new(State { remaining: n, generation: 0 }),
            tripped: Condvar::new(),
        }
    }

    /// Block until all `n` participants have called `wait` in this
    /// generation. Returns `true` on exactly one participant per generation
    /// (the last to arrive), mirroring `std::sync::Barrier`.
    pub fn wait(&self) -> bool {
        let mut s = self.state.lock();
        s.remaining -= 1;
        if s.remaining == 0 {
            s.remaining = self.n;
            s.generation = s.generation.wrapping_add(1);
            drop(s);
            self.tripped.notify_all();
            true
        } else {
            let gen = s.generation;
            while s.generation == gen {
                self.tripped.wait(&mut s);
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_participant_never_blocks() {
        let b = Barrier::new(1);
        for _ in 0..100 {
            assert!(b.wait());
        }
    }

    #[test]
    fn all_threads_pass_each_generation_together() {
        const N: usize = 8;
        const ROUNDS: usize = 50;
        let barrier = Arc::new(Barrier::new(N));
        let counter = Arc::new(AtomicUsize::new(0));

        let handles: Vec<_> = (0..N)
            .map(|_| {
                let barrier = barrier.clone();
                let counter = counter.clone();
                std::thread::spawn(move || {
                    for round in 0..ROUNDS {
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        // After the barrier every thread must observe the
                        // full count for this round.
                        assert!(counter.load(Ordering::SeqCst) >= (round + 1) * N);
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), N * ROUNDS);
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        const N: usize = 4;
        let barrier = Arc::new(Barrier::new(N));
        let leaders = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let barrier = barrier.clone();
                let leaders = leaders.clone();
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 20);
    }
}
