//! Error type for communicator operations.

use std::fmt;

/// Result alias for minimpi operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by communicator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A rank argument was outside `0..size`.
    RankOutOfRange { rank: usize, size: usize },
    /// `recv` matched a message whose payload type differs from the
    /// requested type.
    TypeMismatch { expected: &'static str },
    /// A timed receive expired before a matching message arrived.
    Timeout,
    /// The communicator has been shut down (its world has finished).
    Shutdown,
    /// A vector argument's length did not match the communicator size.
    LengthMismatch { expected: usize, got: usize },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            Error::TypeMismatch { expected } => {
                write!(f, "received message payload is not of type {expected}")
            }
            Error::Timeout => write!(f, "receive timed out"),
            Error::Shutdown => write!(f, "communicator has been shut down"),
            Error::LengthMismatch { expected, got } => {
                write!(f, "argument length {got} does not match communicator size {expected}")
            }
        }
    }
}

impl std::error::Error for Error {}
