//! Predefined reduction operators, mirroring `MPI_SUM` / `MPI_MIN` /
//! `MPI_MAX`, plus element-wise variants over vectors — the shapes the
//! data-binning analysis reduces across ranks.

/// Element-wise sum of two equally sized vectors.
///
/// # Panics
/// Panics if the lengths differ; cross-rank reductions in this codebase
/// always reduce equally shaped grids.
pub fn vec_sum(mut a: Vec<f64>, b: Vec<f64>) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vec_sum requires equal lengths");
    for (x, y) in a.iter_mut().zip(&b) {
        *x += *y;
    }
    a
}

/// Element-wise minimum of two equally sized vectors.
pub fn vec_min(mut a: Vec<f64>, b: Vec<f64>) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vec_min requires equal lengths");
    for (x, y) in a.iter_mut().zip(&b) {
        *x = x.min(*y);
    }
    a
}

/// Element-wise maximum of two equally sized vectors.
pub fn vec_max(mut a: Vec<f64>, b: Vec<f64>) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vec_max requires equal lengths");
    for (x, y) in a.iter_mut().zip(&b) {
        *x = x.max(*y);
    }
    a
}

/// Sum that ignores NaN padding (empty bins are NaN before finalization).
pub fn nan_aware_min(a: f64, b: f64) -> f64 {
    match (a.is_nan(), b.is_nan()) {
        (true, _) => b,
        (_, true) => a,
        _ => a.min(b),
    }
}

/// Max counterpart of [`nan_aware_min`].
pub fn nan_aware_max(a: f64, b: f64) -> f64 {
    match (a.is_nan(), b.is_nan()) {
        (true, _) => b,
        (_, true) => a,
        _ => a.max(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sum_adds_elementwise() {
        assert_eq!(vec_sum(vec![1.0, 2.0], vec![10.0, 20.0]), vec![11.0, 22.0]);
    }

    #[test]
    fn vec_min_max_elementwise() {
        assert_eq!(vec_min(vec![1.0, 5.0], vec![2.0, 3.0]), vec![1.0, 3.0]);
        assert_eq!(vec_max(vec![1.0, 5.0], vec![2.0, 3.0]), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn vec_sum_rejects_mismatched_lengths() {
        vec_sum(vec![1.0], vec![1.0, 2.0]);
    }

    #[test]
    fn nan_aware_ops_skip_nan() {
        assert_eq!(nan_aware_min(f64::NAN, 3.0), 3.0);
        assert_eq!(nan_aware_min(3.0, f64::NAN), 3.0);
        assert_eq!(nan_aware_min(2.0, 3.0), 2.0);
        assert!(nan_aware_min(f64::NAN, f64::NAN).is_nan());
        assert_eq!(nan_aware_max(f64::NAN, 3.0), 3.0);
        assert_eq!(nan_aware_max(5.0, 3.0), 5.0);
    }

    #[test]
    fn works_as_allreduce_operator() {
        use crate::World;
        let got = World::new(3).run(|c| {
            let local = vec![c.rank() as f64; 4];
            c.allreduce(local, vec_sum)
        });
        for v in got {
            assert_eq!(v, vec![3.0; 4]);
        }
    }
}
