//! # minimpi — an in-process MPI-style communicator
//!
//! `minimpi` provides the message-passing substrate used throughout this
//! reproduction of the SENSEI heterogeneous-architecture extensions. The
//! original system runs across nodes with MPI; here every MPI *rank* is an
//! OS thread inside one process, and all communication happens through
//! shared memory. The API mirrors the MPI subset that SENSEI, Newton++, and
//! the data-binning analysis actually exercise:
//!
//! * point-to-point: [`Comm::send`], [`Comm::recv`], [`Comm::sendrecv`]
//! * collectives: [`Comm::barrier`], [`Comm::bcast`], [`Comm::reduce`],
//!   [`Comm::allreduce`], [`Comm::allreduce_packed`], [`Comm::gather`],
//!   [`Comm::allgather`], [`Comm::alltoall`], [`Comm::alltoallv`],
//!   [`Comm::scan`]
//! * communicator management: [`Comm::split`], [`Comm::dup`],
//!   [`Comm::split_node`], [`Comm::split_leaders`]
//!
//! # Topology
//!
//! Ranks can be grouped into simulated *nodes* ([`Topology`], configured
//! through [`World::with_ranks_per_node`] / [`World::with_topology`]).
//! Every message is then charged against the intra- or inter-node tier of
//! a [`devsim::NetworkParams`] cost model, and `allreduce` /
//! `allreduce_packed` / `bcast` / `barrier` take a tiered path: node-local
//! reduce, a binomial tree among node leaders across the interconnect,
//! node-local broadcast. Results are bit-identical to the flat algorithms
//! ([`CollectiveMode::Flat`]) because both realise the topology's
//! canonical merge order. The default world is a single node, which keeps
//! the historical flat behaviour.
//!
//! # Semantics
//!
//! As in MPI, every rank of a communicator must call each collective in the
//! same order. Messages are matched on `(source, destination, tag)` in FIFO
//! order. Message payloads are moved (not serialized); any `Send + 'static`
//! type can be sent, and [`Comm::recv`] returns an error if the queued
//! payload's type does not match the requested type.
//!
//! # Example
//!
//! ```
//! use minimpi::World;
//!
//! let sums = World::new(4).run(|comm| {
//!     let r = comm.rank() as i64;
//!     comm.allreduce(r, |a, b| a + b)
//! });
//! assert_eq!(sums, vec![6, 6, 6, 6]);
//! ```

mod barrier;
mod collectives;
mod comm;
mod error;
mod mailbox;
pub mod ops;
mod topology;
mod world;

pub use collectives::{Segment, SegmentOp};
pub use comm::{CollectiveHook, Comm};
pub use error::{Error, Result};
pub use topology::{CollectiveMode, TierSnapshot, Topology};
pub use world::World;

/// Wildcard source for [`Comm::recv_any`]: match a message from any rank.
pub const ANY_SOURCE: usize = usize::MAX;
