//! The abstract data-array interface (`svtkDataArray`).

use std::any::Any;
use std::sync::Arc;

use devsim::{CellBuffer, PinStats, Stream};
use hamr::HamrStream;

/// Shared handle to a type-erased data array.
pub type ArrayRef = Arc<dyn DataArray>;

/// The interface every array in the data model implements — the role
/// `svtkDataArray` plays in VTK/SENSEI. Datasets store `ArrayRef`s; codes
/// that need typed access downcast with [`DataArray::as_any`] or the
/// [`HamrDataArray`](crate::HamrDataArray) conveniences.
pub trait DataArray: Send + Sync {
    /// The array's name (how simulations and analyses address it).
    fn name(&self) -> &str;

    /// Number of tuples (logical elements).
    fn num_tuples(&self) -> usize;

    /// Components per tuple (1 for scalars, 3 for vectors, ...).
    fn num_components(&self) -> usize;

    /// C++-style element type name ("double", "int", ...).
    fn type_name(&self) -> &'static str;

    /// Current residency: `None` = host, `Some(d)` = device `d`.
    fn device(&self) -> Option<usize>;

    /// Downcasting support.
    fn as_any(&self) -> &dyn Any;

    /// Deep-copy the array (same name, same placement) behind the erased
    /// interface — the copy the asynchronous execution path takes before
    /// handing data to the in situ thread. The copy is **stream-ordered**:
    /// enqueue-only on device-resident arrays; call
    /// [`synchronize_erased`](Self::synchronize_erased) on the returned
    /// array before consuming it out of stream order.
    fn deep_copy_erased(&self) -> hamr::Result<ArrayRef>;

    /// Wait for in-flight operations on this array's stream.
    fn synchronize_erased(&self) -> hamr::Result<()>;

    /// Generation identity of the backing allocation as
    /// `(allocation_id, write_generation)`, or `None` for array types
    /// without generation tracking — consumers must treat those as
    /// modified every time (always copy).
    fn generation_erased(&self) -> Option<(u64, u64)> {
        None
    }

    /// A zero-copy copy-on-write share pinned to the array's current
    /// contents, ordered on `stream` (a snapshot layer's dedicated copy
    /// stream). `None` when the array type cannot share — the caller
    /// falls back to a deep copy.
    fn cow_share_erased(&self, _stats: &Arc<PinStats>, _stream: HamrStream) -> Option<ArrayRef> {
        None
    }

    /// Deep-copy the array with the transfer enqueued on an explicit
    /// `stream` instead of the array's own (the delta-snapshot path: all
    /// needed copies ride one dedicated copy stream so the data producer
    /// resumes immediately). Defaults to the array-stream-ordered
    /// [`deep_copy_erased`](Self::deep_copy_erased).
    fn deep_copy_async_erased(&self, _stream: &Arc<Stream>) -> hamr::Result<ArrayRef> {
        self.deep_copy_erased()
    }

    /// The backing cells, for fence registration against in-flight
    /// asynchronous copies. `None` for array types not backed by cells.
    fn cells_erased(&self) -> Option<CellBuffer> {
        None
    }

    /// Deactivate a CoW pin held by this array (no-op on unpinned or
    /// untracked arrays): the holder promises not to read through this
    /// array again, so the producer's later writes skip the fault copy.
    fn release_cow_erased(&self) {}

    /// Physical storage layout: [`hamr::Layout::Scalar`] unless the array
    /// is a field of a layout group sharing an interleaved block.
    fn layout_erased(&self) -> hamr::Layout {
        hamr::Layout::Scalar
    }

    /// Total scalar element count (`tuples * components`).
    fn len(&self) -> usize {
        self.num_tuples() * self.num_components()
    }

    /// True when the array holds no data.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for dyn DataArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DataArray(name={:?}, type={}, tuples={}, components={}, device={:?})",
            self.name(),
            self.type_name(),
            self.num_tuples(),
            self.num_components(),
            self.device()
        )
    }
}
