//! The abstract data-array interface (`svtkDataArray`).

use std::any::Any;
use std::sync::Arc;

/// Shared handle to a type-erased data array.
pub type ArrayRef = Arc<dyn DataArray>;

/// The interface every array in the data model implements — the role
/// `svtkDataArray` plays in VTK/SENSEI. Datasets store `ArrayRef`s; codes
/// that need typed access downcast with [`DataArray::as_any`] or the
/// [`HamrDataArray`](crate::HamrDataArray) conveniences.
pub trait DataArray: Send + Sync {
    /// The array's name (how simulations and analyses address it).
    fn name(&self) -> &str;

    /// Number of tuples (logical elements).
    fn num_tuples(&self) -> usize;

    /// Components per tuple (1 for scalars, 3 for vectors, ...).
    fn num_components(&self) -> usize;

    /// C++-style element type name ("double", "int", ...).
    fn type_name(&self) -> &'static str;

    /// Current residency: `None` = host, `Some(d)` = device `d`.
    fn device(&self) -> Option<usize>;

    /// Downcasting support.
    fn as_any(&self) -> &dyn Any;

    /// Deep-copy the array (same name, same placement) behind the erased
    /// interface — the copy the asynchronous execution path takes before
    /// handing data to the in situ thread. The copy is **stream-ordered**:
    /// enqueue-only on device-resident arrays; call
    /// [`synchronize_erased`](Self::synchronize_erased) on the returned
    /// array before consuming it out of stream order.
    fn deep_copy_erased(&self) -> hamr::Result<ArrayRef>;

    /// Wait for in-flight operations on this array's stream.
    fn synchronize_erased(&self) -> hamr::Result<()>;

    /// Total scalar element count (`tuples * components`).
    fn len(&self) -> usize {
        self.num_tuples() * self.num_components()
    }

    /// True when the array holds no data.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for dyn DataArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DataArray(name={:?}, type={}, tuples={}, components={}, device={:?})",
            self.name(),
            self.type_name(),
            self.num_tuples(),
            self.num_components(),
            self.device()
        )
    }
}
