//! Tabular data: columns of co-occurring values.
//!
//! The data-binning analysis (§4.2) consumes "tabular data where columns
//! represent different variables and rows represent co-occurring
//! measurements or realizations of these variables". Newton++ publishes
//! its bodies this way: one row per body, columns `x, y, z, vx, vy, vz,
//! mass, ...`, each column a heterogeneous array that may live on a
//! device.

use std::sync::Arc;

use devsim::{KernelCost, SimNode};
use hamr::{Layout, LayoutMap, Mapping};

use crate::attributes::FieldData;
use crate::data_array::ArrayRef;
use crate::hamr_array::{downcast, HamrDataArray};

/// A table of equally long columns.
#[derive(Default, Clone, Debug)]
pub struct TableData {
    columns: FieldData,
    rows: usize,
    /// Physical layout of the most recent [`TableData::group_columns`]
    /// call ([`Layout::Scalar`] when columns own dense allocations).
    layout: Layout,
}

impl TableData {
    /// An empty table.
    pub fn new() -> Self {
        TableData::default()
    }

    /// Add (or replace) a column.
    ///
    /// # Panics
    /// Panics if the column's tuple count differs from existing columns;
    /// a table's columns are co-occurring rows by definition.
    pub fn set_column(&mut self, array: ArrayRef) {
        let tuples = array.num_tuples();
        if self.columns.is_empty()
            || (self.columns.len() == 1 && self.columns.array(array.name()).is_some())
        {
            self.rows = tuples;
        } else {
            assert_eq!(
                tuples,
                self.rows,
                "column '{}' has {} rows, table has {}",
                array.name(),
                tuples,
                self.rows
            );
        }
        self.columns.set_array(array);
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&ArrayRef> {
        self.columns.array(name)
    }

    /// Column names in insertion order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.names().collect()
    }

    /// All columns.
    pub fn columns(&self) -> &[ArrayRef] {
        self.columns.arrays()
    }

    /// Number of rows (0 for an empty table).
    pub fn num_rows(&self) -> usize {
        if self.columns.is_empty() {
            0
        } else {
            self.rows
        }
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Generation identity `(allocation_id, write_generation)` of a
    /// column's backing allocation — `None` for a missing column or one
    /// without generation tracking (treat as modified).
    pub fn column_generation(&self, name: &str) -> Option<(u64, u64)> {
        self.column(name).and_then(|a| a.generation_erased())
    }

    /// The layout handle of the table's grouped columns
    /// ([`Layout::Scalar`] when no grouping is active).
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Regroup `names` (double columns) into one interleaved backing
    /// block from the stream-ordered host pool, arranged as `layout`.
    /// The scatter is a charged host pass (`svtk_relayout_pack` — the
    /// SoA→AoS relayout of a LLAMA-style mapping change); afterwards the
    /// named columns alias the shared block through their layout maps and
    /// read identically through the accessor API. Returns the number of
    /// cells relayouted (0 for [`Layout::Scalar`], which ungroups nothing
    /// and is a no-op).
    pub fn group_columns(
        &mut self,
        names: &[&str],
        layout: Layout,
        node: &Arc<SimNode>,
    ) -> hamr::Result<usize> {
        if layout == Layout::Scalar || names.is_empty() {
            self.layout = Layout::Scalar;
            return Ok(0);
        }
        let n = self.num_rows();
        let fields = names.len();
        // Snapshot the sources through the accessor path first: a source
        // may itself be grouped (regrouping) or device-resident.
        let mut sources: Vec<(String, Vec<f64>)> = Vec::with_capacity(fields);
        for name in names {
            let col = self
                .column(name)
                .ok_or_else(|| hamr::Error::Layout(format!("no column '{name}' to group")))?;
            let arr = downcast::<f64>(col).ok_or_else(|| {
                hamr::Error::Layout(format!(
                    "column '{name}' is {}, layout groups hold doubles",
                    col.type_name()
                ))
            })?;
            sources.push((name.to_string(), arr.to_vec()?));
        }
        let block = node.try_host_alloc_f64(layout.block_cells(n, fields))?;
        let dst = block.clone();
        let maps: Vec<LayoutMap> =
            (0..fields).map(|f| LayoutMap::new(layout, n, fields, f)).collect();
        let scatter_maps = maps.clone();
        let (names_owned, cols): (Vec<String>, Vec<Vec<f64>>) = sources.into_iter().unzip();
        node.host().run(
            "svtk_relayout_pack",
            KernelCost::bytes((2 * n * fields * 8) as f64),
            move || -> hamr::Result<()> {
                let v = dst.host_u64()?;
                for (m, col) in scatter_maps.iter().zip(&cols) {
                    for (i, x) in col.iter().enumerate() {
                        v.set(m.index(i), x.to_bits());
                    }
                }
                Ok(())
            },
        )?;
        for (name, map) in names_owned.into_iter().zip(maps) {
            let arr = HamrDataArray::<f64>::from_group(
                name,
                node.clone(),
                block.clone(),
                map,
                hamr::HamrStream::default_stream(),
                hamr::StreamMode::Sync,
            )?;
            self.set_column(arr.as_array_ref());
        }
        self.layout = layout;
        Ok(n * fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamr_array::HamrDataArray;
    use crate::{Allocator, HamrStream, StreamMode};
    use devsim::{NodeConfig, SimNode};
    use std::sync::Arc;

    fn arr(node: &Arc<SimNode>, name: &str, v: &[f64]) -> ArrayRef {
        HamrDataArray::from_slice(
            name,
            node.clone(),
            v,
            1,
            Allocator::Malloc,
            None,
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap()
    }

    #[test]
    fn builds_a_consistent_table() {
        let n = SimNode::new(NodeConfig::fast_test(1));
        let mut t = TableData::new();
        assert_eq!(t.num_rows(), 0);
        t.set_column(arr(&n, "x", &[1.0, 2.0, 3.0]));
        t.set_column(arr(&n, "mass", &[0.1, 0.2, 0.3]));
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.column_names(), vec!["x", "mass"]);
        assert!(t.column("mass").is_some());
    }

    #[test]
    #[should_panic(expected = "has 2 rows, table has 3")]
    fn rejects_mismatched_column_lengths() {
        let n = SimNode::new(NodeConfig::fast_test(1));
        let mut t = TableData::new();
        t.set_column(arr(&n, "x", &[1.0, 2.0, 3.0]));
        t.set_column(arr(&n, "y", &[1.0, 2.0]));
    }

    #[test]
    fn grouped_columns_share_one_block_and_read_identically() {
        let n = SimNode::new(NodeConfig::fast_test(1));
        let mut t = TableData::new();
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [9.0, 8.0, 7.0, 6.0, 5.0];
        let ms = [0.1, 0.2, 0.3, 0.4, 0.5];
        t.set_column(arr(&n, "x", &xs));
        t.set_column(arr(&n, "y", &ys));
        t.set_column(arr(&n, "mass", &ms));
        for layout in [hamr::Layout::AoS, hamr::Layout::SoA, hamr::Layout::AoSoA { lane_width: 4 }]
        {
            let mut g = t.clone();
            let moved = g.group_columns(&["x", "y", "mass"], layout, &n).unwrap();
            assert_eq!(moved, 15);
            assert_eq!(g.layout(), layout);
            assert_eq!(g.num_rows(), 5);
            let gx = downcast::<f64>(g.column("x").unwrap()).unwrap();
            let gy = downcast::<f64>(g.column("y").unwrap()).unwrap();
            let gm = downcast::<f64>(g.column("mass").unwrap()).unwrap();
            assert_eq!(gx.to_vec().unwrap(), xs);
            assert_eq!(gy.to_vec().unwrap(), ys);
            assert_eq!(gm.to_vec().unwrap(), ms);
            assert!(gx.data().same_allocation(&gy.data()), "fields share the block");
            assert_eq!(gx.layout(), layout);
            assert_eq!(g.column("x").unwrap().layout_erased(), layout);
            // A deep copy of a grouped column is dense scalar again.
            let copy = g.column("x").unwrap().deep_copy_erased().unwrap();
            assert_eq!(copy.layout_erased(), hamr::Layout::Scalar);
            assert_eq!(downcast::<f64>(&copy).unwrap().to_vec().unwrap(), xs);
        }
        // Scalar grouping is a no-op.
        let mut s = t.clone();
        assert_eq!(s.group_columns(&["x", "y"], hamr::Layout::Scalar, &n).unwrap(), 0);
        assert_eq!(s.layout(), hamr::Layout::Scalar);
    }

    #[test]
    fn grouped_blocks_hit_the_pool_size_class_at_steady_state() {
        // Repeated regrouping of the same table shape allocates the same
        // interleaved block size every time; after the first raw
        // allocation the host pool's size class must serve every later
        // block from cache (the drop of the previous grouped table
        // returns its block, and same-stream reuse is immediate).
        let n = SimNode::new(NodeConfig::fast_test(1));
        let mut t = TableData::new();
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        for name in ["x", "y", "mass"] {
            t.set_column(arr(&n, name, &vals));
        }
        let layout = hamr::Layout::AoSoA { lane_width: 8 };
        let before = n.pool_stats(devsim::MemSpace::Host);
        for round in 0..8 {
            let mut g = t.clone();
            g.group_columns(&["x", "y", "mass"], layout, &n).unwrap();
            let after = n.pool_stats(devsim::MemSpace::Host);
            if round > 0 {
                assert_eq!(
                    after.raw_allocs,
                    before.raw_allocs + 1,
                    "round {round}: only the first block may raw-allocate"
                );
            }
        }
        let after = n.pool_stats(devsim::MemSpace::Host);
        assert_eq!(after.raw_allocs, before.raw_allocs + 1);
        assert!(after.hits >= before.hits + 7, "later rounds are served from cache");
    }

    #[test]
    fn replacing_the_only_column_may_resize() {
        let n = SimNode::new(NodeConfig::fast_test(1));
        let mut t = TableData::new();
        t.set_column(arr(&n, "x", &[1.0, 2.0]));
        t.set_column(arr(&n, "x", &[1.0, 2.0, 3.0]));
        assert_eq!(t.num_rows(), 3);
    }
}
