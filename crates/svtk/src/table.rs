//! Tabular data: columns of co-occurring values.
//!
//! The data-binning analysis (§4.2) consumes "tabular data where columns
//! represent different variables and rows represent co-occurring
//! measurements or realizations of these variables". Newton++ publishes
//! its bodies this way: one row per body, columns `x, y, z, vx, vy, vz,
//! mass, ...`, each column a heterogeneous array that may live on a
//! device.

use crate::attributes::FieldData;
use crate::data_array::ArrayRef;

/// A table of equally long columns.
#[derive(Default, Clone, Debug)]
pub struct TableData {
    columns: FieldData,
    rows: usize,
}

impl TableData {
    /// An empty table.
    pub fn new() -> Self {
        TableData::default()
    }

    /// Add (or replace) a column.
    ///
    /// # Panics
    /// Panics if the column's tuple count differs from existing columns;
    /// a table's columns are co-occurring rows by definition.
    pub fn set_column(&mut self, array: ArrayRef) {
        let tuples = array.num_tuples();
        if self.columns.is_empty()
            || (self.columns.len() == 1 && self.columns.array(array.name()).is_some())
        {
            self.rows = tuples;
        } else {
            assert_eq!(
                tuples,
                self.rows,
                "column '{}' has {} rows, table has {}",
                array.name(),
                tuples,
                self.rows
            );
        }
        self.columns.set_array(array);
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&ArrayRef> {
        self.columns.array(name)
    }

    /// Column names in insertion order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.names().collect()
    }

    /// All columns.
    pub fn columns(&self) -> &[ArrayRef] {
        self.columns.arrays()
    }

    /// Number of rows (0 for an empty table).
    pub fn num_rows(&self) -> usize {
        if self.columns.is_empty() {
            0
        } else {
            self.rows
        }
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Generation identity `(allocation_id, write_generation)` of a
    /// column's backing allocation — `None` for a missing column or one
    /// without generation tracking (treat as modified).
    pub fn column_generation(&self, name: &str) -> Option<(u64, u64)> {
        self.column(name).and_then(|a| a.generation_erased())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamr_array::HamrDataArray;
    use crate::{Allocator, HamrStream, StreamMode};
    use devsim::{NodeConfig, SimNode};
    use std::sync::Arc;

    fn arr(node: &Arc<SimNode>, name: &str, v: &[f64]) -> ArrayRef {
        HamrDataArray::from_slice(
            name,
            node.clone(),
            v,
            1,
            Allocator::Malloc,
            None,
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap()
    }

    #[test]
    fn builds_a_consistent_table() {
        let n = SimNode::new(NodeConfig::fast_test(1));
        let mut t = TableData::new();
        assert_eq!(t.num_rows(), 0);
        t.set_column(arr(&n, "x", &[1.0, 2.0, 3.0]));
        t.set_column(arr(&n, "mass", &[0.1, 0.2, 0.3]));
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.column_names(), vec!["x", "mass"]);
        assert!(t.column("mass").is_some());
    }

    #[test]
    #[should_panic(expected = "has 2 rows, table has 3")]
    fn rejects_mismatched_column_lengths() {
        let n = SimNode::new(NodeConfig::fast_test(1));
        let mut t = TableData::new();
        t.set_column(arr(&n, "x", &[1.0, 2.0, 3.0]));
        t.set_column(arr(&n, "y", &[1.0, 2.0]));
    }

    #[test]
    fn replacing_the_only_column_may_resize() {
        let n = SimNode::new(NodeConfig::fast_test(1));
        let mut t = TableData::new();
        t.set_column(arr(&n, "x", &[1.0, 2.0]));
        t.set_column(arr(&n, "x", &[1.0, 2.0, 3.0]));
        assert_eq!(t.num_rows(), 3);
    }
}
