//! The type-erased data object SENSEI adaptors exchange.

use crate::image_data::ImageData;
use crate::multiblock::MultiBlock;
use crate::table::TableData;

/// Any dataset the SENSEI mediation layer can carry — the role
/// `vtkDataObject` plays in the C++ implementation.
#[derive(Clone, Debug)]
pub enum DataObject {
    /// Tabular data (e.g. Newton++'s bodies).
    Table(TableData),
    /// A uniform Cartesian mesh (e.g. a binned result).
    Image(ImageData),
    /// A collection of blocks distributed over MPI ranks.
    Multi(MultiBlock),
}

impl DataObject {
    /// Human-readable class name.
    pub fn class_name(&self) -> &'static str {
        match self {
            DataObject::Table(_) => "TableData",
            DataObject::Image(_) => "ImageData",
            DataObject::Multi(_) => "MultiBlock",
        }
    }

    /// The table inside, if this is tabular data.
    pub fn as_table(&self) -> Option<&TableData> {
        match self {
            DataObject::Table(t) => Some(t),
            _ => None,
        }
    }

    /// The image inside, if this is a uniform mesh.
    pub fn as_image(&self) -> Option<&ImageData> {
        match self {
            DataObject::Image(i) => Some(i),
            _ => None,
        }
    }

    /// The multiblock inside, if this is a block collection.
    pub fn as_multi(&self) -> Option<&MultiBlock> {
        match self {
            DataObject::Multi(m) => Some(m),
            _ => None,
        }
    }

    /// Deep-copy the object: every attached array gets a fresh allocation
    /// with the same placement. This is the snapshot the asynchronous
    /// execution method takes so the simulation can immediately overwrite
    /// its own arrays (§4.3).
    pub fn deep_copy(&self) -> hamr::Result<DataObject> {
        match self {
            DataObject::Table(t) => {
                let mut copy = TableData::new();
                for col in t.columns() {
                    copy.set_column(col.deep_copy_erased()?);
                }
                Ok(DataObject::Table(copy))
            }
            DataObject::Image(img) => {
                let mut copy = img.clone_structure();
                for assoc in [crate::FieldAssociation::Point, crate::FieldAssociation::Cell] {
                    for arr in img.data(assoc).arrays() {
                        copy.data_mut(assoc).set_array(arr.deep_copy_erased()?);
                    }
                }
                Ok(DataObject::Image(copy))
            }
            DataObject::Multi(mb) => {
                let mut copy = MultiBlock::new(mb.num_blocks());
                for (i, block) in mb.local_blocks() {
                    copy.set_block(i, block.deep_copy()?);
                }
                Ok(DataObject::Multi(copy))
            }
        }
    }
}

impl From<TableData> for DataObject {
    fn from(t: TableData) -> Self {
        DataObject::Table(t)
    }
}

impl From<ImageData> for DataObject {
    fn from(i: ImageData) -> Self {
        DataObject::Image(i)
    }
}

impl From<MultiBlock> for DataObject {
    fn from(m: MultiBlock) -> Self {
        DataObject::Multi(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_and_downcasts() {
        let t: DataObject = TableData::new().into();
        assert_eq!(t.class_name(), "TableData");
        assert!(t.as_table().is_some());
        assert!(t.as_image().is_none());

        let i: DataObject = ImageData::from_bounds([1, 1, 1], [0.0; 3], [1.0; 3]).into();
        assert_eq!(i.class_name(), "ImageData");
        assert!(i.as_image().is_some());
        assert!(i.as_multi().is_none());

        let m: DataObject = MultiBlock::new(2).into();
        assert_eq!(m.class_name(), "MultiBlock");
        assert!(m.as_multi().is_some());
        assert!(m.as_table().is_none());
    }
}
