//! Uniform Cartesian meshes (VTK's `vtkImageData`).
//!
//! Data binning "specifies a subset of the variables to use as the
//! coordinate axes of a uniform Cartesian mesh" (§4.2); the binned result
//! is cell data on such a mesh. We support 1-, 2-, and 3-dimensional
//! meshes (trailing dimensions of extent 1).

use crate::attributes::{FieldAssociation, FieldData};

/// A uniform Cartesian mesh with point and cell data.
#[derive(Clone, Debug)]
pub struct ImageData {
    /// Points per axis (cells per axis + 1).
    dims: [usize; 3],
    /// Coordinate of point (0,0,0).
    origin: [f64; 3],
    /// Grid spacing per axis.
    spacing: [f64; 3],
    point_data: FieldData,
    cell_data: FieldData,
}

impl ImageData {
    /// A mesh with `cells` cells per axis spanning `[lo, hi]` per axis.
    ///
    /// # Panics
    /// Panics if any axis has zero cells or an inverted/degenerate range.
    pub fn from_bounds(cells: [usize; 3], lo: [f64; 3], hi: [f64; 3]) -> Self {
        let mut spacing = [0.0; 3];
        for a in 0..3 {
            assert!(cells[a] > 0, "axis {a} must have at least one cell");
            assert!(hi[a] > lo[a], "axis {a} range [{}, {}] is degenerate", lo[a], hi[a]);
            spacing[a] = (hi[a] - lo[a]) / cells[a] as f64;
        }
        ImageData {
            dims: [cells[0] + 1, cells[1] + 1, cells[2] + 1],
            origin: lo,
            spacing,
            point_data: FieldData::new(),
            cell_data: FieldData::new(),
        }
    }

    /// Points per axis.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Cells per axis.
    pub fn cell_dims(&self) -> [usize; 3] {
        [self.dims[0] - 1, self.dims[1] - 1, self.dims[2] - 1]
    }

    /// Coordinate origin (point 0,0,0).
    pub fn origin(&self) -> [f64; 3] {
        self.origin
    }

    /// Grid spacing per axis.
    pub fn spacing(&self) -> [f64; 3] {
        self.spacing
    }

    /// Axis-aligned bounds as `(lo, hi)`.
    pub fn bounds(&self) -> ([f64; 3], [f64; 3]) {
        let cd = self.cell_dims();
        let hi = [
            self.origin[0] + self.spacing[0] * cd[0] as f64,
            self.origin[1] + self.spacing[1] * cd[1] as f64,
            self.origin[2] + self.spacing[2] * cd[2] as f64,
        ];
        (self.origin, hi)
    }

    /// Total number of points.
    pub fn num_points(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        let cd = self.cell_dims();
        cd[0] * cd[1] * cd[2]
    }

    /// Flat cell index from per-axis cell coordinates (x fastest).
    pub fn cell_index(&self, ijk: [usize; 3]) -> usize {
        let cd = self.cell_dims();
        debug_assert!(ijk[0] < cd[0] && ijk[1] < cd[1] && ijk[2] < cd[2]);
        (ijk[2] * cd[1] + ijk[1]) * cd[0] + ijk[0]
    }

    /// Cell coordinates containing a physical point; `None` outside the
    /// mesh. Points exactly on the upper boundary land in the last cell,
    /// matching the binning convention.
    pub fn locate(&self, p: [f64; 3]) -> Option<[usize; 3]> {
        let cd = self.cell_dims();
        let mut ijk = [0usize; 3];
        for a in 0..3 {
            let t = (p[a] - self.origin[a]) / self.spacing[a];
            if t < 0.0 {
                return None;
            }
            let mut i = t.floor() as usize;
            if i >= cd[a] {
                // Upper-boundary inclusion.
                let hi = self.origin[a] + self.spacing[a] * cd[a] as f64;
                if p[a] <= hi {
                    i = cd[a] - 1;
                } else {
                    return None;
                }
            }
            ijk[a] = i;
        }
        Some(ijk)
    }

    /// A copy of the mesh geometry with no attached data arrays.
    pub fn clone_structure(&self) -> ImageData {
        ImageData {
            dims: self.dims,
            origin: self.origin,
            spacing: self.spacing,
            point_data: FieldData::new(),
            cell_data: FieldData::new(),
        }
    }

    /// Data centered on the given association.
    pub fn data(&self, assoc: FieldAssociation) -> &FieldData {
        match assoc {
            FieldAssociation::Point => &self.point_data,
            FieldAssociation::Cell | FieldAssociation::Field => &self.cell_data,
        }
    }

    /// Mutable data for the given association.
    pub fn data_mut(&mut self, assoc: FieldAssociation) -> &mut FieldData {
        match assoc {
            FieldAssociation::Point => &mut self.point_data,
            FieldAssociation::Cell | FieldAssociation::Field => &mut self.cell_data,
        }
    }

    /// Generation identity `(allocation_id, write_generation)` of an
    /// attached array's backing allocation — `None` for a missing array
    /// or one without generation tracking (treat as modified).
    pub fn array_generation(&self, assoc: FieldAssociation, name: &str) -> Option<(u64, u64)> {
        self.data(assoc).array(name).and_then(|a| a.generation_erased())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid2d() -> ImageData {
        ImageData::from_bounds([4, 2, 1], [0.0, 0.0, 0.0], [4.0, 1.0, 1.0])
    }

    #[test]
    fn dimensions_and_counts() {
        let g = grid2d();
        assert_eq!(g.dims(), [5, 3, 2]);
        assert_eq!(g.cell_dims(), [4, 2, 1]);
        assert_eq!(g.num_points(), 30);
        assert_eq!(g.num_cells(), 8);
        assert_eq!(g.spacing(), [1.0, 0.5, 1.0]);
    }

    #[test]
    fn bounds_roundtrip() {
        let g = grid2d();
        let (lo, hi) = g.bounds();
        assert_eq!(lo, [0.0, 0.0, 0.0]);
        assert_eq!(hi, [4.0, 1.0, 1.0]);
    }

    #[test]
    fn cell_index_is_x_fastest() {
        let g = grid2d();
        assert_eq!(g.cell_index([0, 0, 0]), 0);
        assert_eq!(g.cell_index([1, 0, 0]), 1);
        assert_eq!(g.cell_index([0, 1, 0]), 4);
        assert_eq!(g.cell_index([3, 1, 0]), 7);
    }

    #[test]
    fn locate_interior_boundary_and_outside() {
        let g = grid2d();
        assert_eq!(g.locate([0.5, 0.25, 0.5]), Some([0, 0, 0]));
        assert_eq!(g.locate([3.99, 0.99, 0.5]), Some([3, 1, 0]));
        // Upper boundary inclusive.
        assert_eq!(g.locate([4.0, 1.0, 1.0]), Some([3, 1, 0]));
        // Outside.
        assert_eq!(g.locate([-0.1, 0.5, 0.5]), None);
        assert_eq!(g.locate([4.1, 0.5, 0.5]), None);
        assert_eq!(g.locate([1.0, 1.5, 0.5]), None);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_bounds_rejected() {
        ImageData::from_bounds([2, 2, 1], [0.0, 1.0, 0.0], [1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_rejected() {
        ImageData::from_bounds([0, 2, 1], [0.0, 0.0, 0.0], [1.0, 1.0, 1.0]);
    }
}
