//! Multiblock datasets: globally indexed blocks, locally populated.
//!
//! SENSEI represents distributed data as a block collection with one
//! global index space; each MPI rank populates the blocks it owns and
//! leaves the rest empty. The mediation layer never gathers blocks — it
//! hands each rank's local blocks to the analysis, which reduces across
//! ranks itself.

use crate::dataset::DataObject;

/// A fixed-size collection of optionally present data blocks.
#[derive(Clone, Debug, Default)]
pub struct MultiBlock {
    blocks: Vec<Option<Box<DataObject>>>,
}

impl MultiBlock {
    /// A collection of `n` empty block slots.
    pub fn new(n: usize) -> Self {
        MultiBlock { blocks: (0..n).map(|_| None).collect() }
    }

    /// Number of block slots (the global block count).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Populate block `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set_block(&mut self, i: usize, data: DataObject) {
        self.blocks[i] = Some(Box::new(data));
    }

    /// Block `i`, if locally present.
    pub fn block(&self, i: usize) -> Option<&DataObject> {
        self.blocks.get(i).and_then(|b| b.as_deref())
    }

    /// Clear block `i`.
    pub fn clear_block(&mut self, i: usize) {
        if let Some(b) = self.blocks.get_mut(i) {
            *b = None;
        }
    }

    /// Iterate over locally present blocks as `(index, data)`.
    pub fn local_blocks(&self) -> impl Iterator<Item = (usize, &DataObject)> {
        self.blocks.iter().enumerate().filter_map(|(i, b)| b.as_deref().map(|d| (i, d)))
    }

    /// Number of locally present blocks.
    pub fn num_local_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableData;

    #[test]
    fn sparse_population() {
        let mut mb = MultiBlock::new(4);
        assert_eq!(mb.num_blocks(), 4);
        assert_eq!(mb.num_local_blocks(), 0);
        mb.set_block(2, TableData::new().into());
        assert_eq!(mb.num_local_blocks(), 1);
        assert!(mb.block(2).is_some());
        assert!(mb.block(0).is_none());
        assert!(mb.block(9).is_none());
        let local: Vec<usize> = mb.local_blocks().map(|(i, _)| i).collect();
        assert_eq!(local, vec![2]);
        mb.clear_block(2);
        assert_eq!(mb.num_local_blocks(), 0);
    }

    #[test]
    #[should_panic]
    fn set_out_of_range_panics() {
        let mut mb = MultiBlock::new(1);
        mb.set_block(3, TableData::new().into());
    }
}
