//! Field data: named array collections with a centering association.

use crate::data_array::ArrayRef;

/// Where an array's values are centered on a dataset — VTK's point/cell
/// data plus uncentered field data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldAssociation {
    /// Node-centered values (one tuple per mesh point / table row).
    Point,
    /// Cell-centered values (one tuple per mesh cell).
    Cell,
    /// Uncentered global values.
    Field,
}

impl FieldAssociation {
    /// Name used in run-time XML configuration.
    pub fn name(&self) -> &'static str {
        match self {
            FieldAssociation::Point => "point",
            FieldAssociation::Cell => "cell",
            FieldAssociation::Field => "field",
        }
    }

    /// Parse from the XML spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "point" | "node" => Some(FieldAssociation::Point),
            "cell" => Some(FieldAssociation::Cell),
            "field" => Some(FieldAssociation::Field),
            _ => None,
        }
    }
}

/// An ordered, named collection of data arrays (VTK's `vtkFieldData` /
/// `vtkPointData` / `vtkCellData` role).
#[derive(Default, Clone)]
pub struct FieldData {
    arrays: Vec<ArrayRef>,
}

impl FieldData {
    /// An empty collection.
    pub fn new() -> Self {
        FieldData::default()
    }

    /// Add (or replace, by name) an array.
    pub fn set_array(&mut self, array: ArrayRef) {
        if let Some(slot) = self.arrays.iter_mut().find(|a| a.name() == array.name()) {
            *slot = array;
        } else {
            self.arrays.push(array);
        }
    }

    /// Look up an array by name.
    pub fn array(&self, name: &str) -> Option<&ArrayRef> {
        self.arrays.iter().find(|a| a.name() == name)
    }

    /// Remove an array by name; returns it if present.
    pub fn remove(&mut self, name: &str) -> Option<ArrayRef> {
        let idx = self.arrays.iter().position(|a| a.name() == name)?;
        Some(self.arrays.remove(idx))
    }

    /// Arrays in insertion order.
    pub fn arrays(&self) -> &[ArrayRef] {
        &self.arrays
    }

    /// Array names in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.arrays.iter().map(|a| a.name())
    }

    /// Number of arrays.
    pub fn len(&self) -> usize {
        self.arrays.len()
    }

    /// True when no arrays are held.
    pub fn is_empty(&self) -> bool {
        self.arrays.is_empty()
    }
}

impl std::fmt::Debug for FieldData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.arrays.iter().map(|a| a.name())).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamr_array::HamrDataArray;
    use crate::{Allocator, HamrStream, StreamMode};
    use devsim::{NodeConfig, SimNode};

    fn arr(name: &str, v: &[f64]) -> ArrayRef {
        HamrDataArray::from_slice(
            name,
            SimNode::new(NodeConfig::fast_test(1)),
            v,
            1,
            Allocator::Malloc,
            None,
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap()
    }

    #[test]
    fn set_get_remove() {
        let mut fd = FieldData::new();
        fd.set_array(arr("mass", &[1.0]));
        fd.set_array(arr("vx", &[2.0]));
        assert_eq!(fd.len(), 2);
        assert!(fd.array("mass").is_some());
        assert!(fd.array("nope").is_none());
        assert_eq!(fd.names().collect::<Vec<_>>(), vec!["mass", "vx"]);
        let removed = fd.remove("mass").unwrap();
        assert_eq!(removed.name(), "mass");
        assert_eq!(fd.len(), 1);
        assert!(fd.remove("mass").is_none());
    }

    #[test]
    fn set_replaces_by_name_in_place() {
        let mut fd = FieldData::new();
        fd.set_array(arr("x", &[1.0]));
        fd.set_array(arr("y", &[2.0]));
        fd.set_array(arr("x", &[9.0, 10.0]));
        assert_eq!(fd.len(), 2);
        assert_eq!(fd.array("x").unwrap().num_tuples(), 2);
        // Order preserved: x still first.
        assert_eq!(fd.names().collect::<Vec<_>>(), vec!["x", "y"]);
    }

    #[test]
    fn association_names_roundtrip() {
        for a in [FieldAssociation::Point, FieldAssociation::Cell, FieldAssociation::Field] {
            assert_eq!(FieldAssociation::parse(a.name()), Some(a));
        }
        assert_eq!(FieldAssociation::parse("node"), Some(FieldAssociation::Point));
        assert_eq!(FieldAssociation::parse("bogus"), None);
    }
}
