//! `svtkHAMRDataArray` — the heterogeneous data array.

use std::any::Any;
use std::sync::Arc;

use devsim::{CellBuffer, SimNode};
use hamr::{
    AccessView, Allocator, Element, HamrBuffer, HamrStream, Layout, LayoutMap, Mapping, Pm,
    StreamMode,
};

use crate::data_array::{ArrayRef, DataArray};

/// A data array backed by the HAMR memory resource — host *and* device
/// memory management plus PM interoperability behind the `svtkDataArray`
/// interface (the paper's HDA, §2).
///
/// Constructors mirror the `svtkHAMRDoubleArray::New` overloads:
/// allocate-and-own ([`HamrDataArray::new`], [`new_init`](Self::new_init),
/// [`from_slice`](Self::from_slice)) or adopt externally allocated memory
/// zero-copy with coordinated life-cycle management
/// ([`adopt`](Self::adopt), Listing 1).
pub struct HamrDataArray<T: Element> {
    name: String,
    components: usize,
    buffer: Arc<HamrBuffer<T>>,
}

/// `svtkHAMRDoubleArray`.
pub type HamrDoubleArray = HamrDataArray<f64>;
/// `svtkHAMRFloatArray`.
pub type HamrFloatArray = HamrDataArray<f32>;
/// `svtkHAMRIntArray`.
pub type HamrIntArray = HamrDataArray<i32>;
/// `svtkHAMRIdTypeArray` (64-bit ids).
pub type HamrIdArray = HamrDataArray<i64>;
/// `svtkHAMRUnsignedCharArray`.
pub type HamrUCharArray = HamrDataArray<u8>;

impl<T: Element> HamrDataArray<T> {
    /// Allocate a zero-initialized array of `tuples * components` elements
    /// through `allocator` (on `device` for device allocators).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        node: Arc<SimNode>,
        tuples: usize,
        components: usize,
        allocator: Allocator,
        device: Option<usize>,
        stream: HamrStream,
        mode: StreamMode,
    ) -> hamr::Result<Arc<Self>> {
        let buffer = HamrBuffer::new(node, tuples * components, allocator, device, stream, mode)?;
        Ok(Arc::new(HamrDataArray { name: name.into(), components, buffer: Arc::new(buffer) }))
    }

    /// Allocate and fill with `value` (Listing 1's initialize-on-device).
    #[allow(clippy::too_many_arguments)]
    pub fn new_init(
        name: impl Into<String>,
        node: Arc<SimNode>,
        tuples: usize,
        components: usize,
        value: T,
        allocator: Allocator,
        device: Option<usize>,
        stream: HamrStream,
        mode: StreamMode,
    ) -> hamr::Result<Arc<Self>> {
        let buffer = HamrBuffer::new_init(
            node,
            tuples * components,
            value,
            allocator,
            device,
            stream,
            mode,
        )?;
        Ok(Arc::new(HamrDataArray { name: name.into(), components, buffer: Arc::new(buffer) }))
    }

    /// Allocate and deep-copy from host data.
    #[allow(clippy::too_many_arguments)]
    pub fn from_slice(
        name: impl Into<String>,
        node: Arc<SimNode>,
        data: &[T],
        components: usize,
        allocator: Allocator,
        device: Option<usize>,
        stream: HamrStream,
        mode: StreamMode,
    ) -> hamr::Result<Arc<Self>> {
        assert!(
            components > 0 && data.len().is_multiple_of(components),
            "data length must be a multiple of components"
        );
        let buffer = HamrBuffer::from_slice(node, data, allocator, device, stream, mode)?;
        Ok(Arc::new(HamrDataArray { name: name.into(), components, buffer: Arc::new(buffer) }))
    }

    /// Zero-copy construction from externally allocated memory with
    /// coordinated life-cycle management (Listing 1): the simulation keeps
    /// its handle, the array shares the same cells, and the memory is
    /// freed when the last holder drops.
    pub fn adopt(
        name: impl Into<String>,
        node: Arc<SimNode>,
        cells: CellBuffer,
        components: usize,
        allocator: Allocator,
        stream: HamrStream,
        mode: StreamMode,
    ) -> hamr::Result<Arc<Self>> {
        let buffer = HamrBuffer::adopt(node, cells, allocator, stream, mode)?;
        Ok(Arc::new(HamrDataArray { name: name.into(), components, buffer: Arc::new(buffer) }))
    }

    /// Wrap an existing HAMR buffer.
    pub fn from_buffer(
        name: impl Into<String>,
        components: usize,
        buffer: Arc<HamrBuffer<T>>,
    ) -> Arc<Self> {
        Arc::new(HamrDataArray { name: name.into(), components, buffer })
    }

    /// Wrap one field of a layout group sharing the interleaved host
    /// block `cells` (see [`HamrBuffer::from_group`]): all fields of a
    /// grouped table alias one pooled allocation.
    pub fn from_group(
        name: impl Into<String>,
        node: Arc<SimNode>,
        cells: CellBuffer,
        map: LayoutMap,
        stream: HamrStream,
        mode: StreamMode,
    ) -> hamr::Result<Arc<Self>> {
        let buffer = HamrBuffer::from_group(node, cells, map, Allocator::Malloc, stream, mode)?;
        Ok(Arc::new(HamrDataArray { name: name.into(), components: 1, buffer: Arc::new(buffer) }))
    }

    /// The physical layout of the backing storage ([`Layout::Scalar`]
    /// unless the array is a field of a layout group).
    pub fn layout(&self) -> Layout {
        self.buffer.layout()
    }

    /// The underlying HAMR buffer.
    pub fn buffer(&self) -> &Arc<HamrBuffer<T>> {
        &self.buffer
    }

    /// The allocator owning the memory.
    pub fn allocator(&self) -> Allocator {
        self.buffer.allocator()
    }

    /// The managing programming model.
    pub fn pm(&self) -> Pm {
        self.buffer.pm()
    }

    /// Direct access to the managed cells (`GetData()`), for callers that
    /// already know location and PM.
    pub fn data(&self) -> CellBuffer {
        self.buffer.data()
    }

    /// `GetHostAccessible()`: a host view, moved into a temporary if the
    /// data is device-resident.
    pub fn host_accessible(&self) -> hamr::Result<AccessView<T>> {
        self.buffer.host_accessible()
    }

    /// `GetDeviceAccessible()`: a view on `device` in `pm`, moved into a
    /// temporary unless already resident there.
    pub fn device_accessible(&self, device: usize, pm: Pm) -> hamr::Result<AccessView<T>> {
        self.buffer.device_accessible(device, pm)
    }

    /// `GetCUDAAccessible()` (Listing 3).
    pub fn cuda_accessible(&self, device: usize) -> hamr::Result<AccessView<T>> {
        self.buffer.cuda_accessible(device)
    }

    /// `GetHIPAccessible()`.
    pub fn hip_accessible(&self, device: usize) -> hamr::Result<AccessView<T>> {
        self.buffer.hip_accessible(device)
    }

    /// `GetOpenMPAccessible()`.
    pub fn openmp_accessible(&self, device: usize) -> hamr::Result<AccessView<T>> {
        self.buffer.openmp_accessible(device)
    }

    /// `GetSYCLAccessible()` (the paper's planned SYCL support).
    pub fn sycl_accessible(&self, device: usize) -> hamr::Result<AccessView<T>> {
        self.buffer.sycl_accessible(device)
    }

    /// `GetKokkosAccessible()` (third-party PM support).
    pub fn kokkos_accessible(&self, device: usize) -> hamr::Result<AccessView<T>> {
        self.buffer.kokkos_accessible(device)
    }

    /// Wait for in-flight operations on this array (`Synchronize()`).
    pub fn synchronize(&self) -> hamr::Result<()> {
        self.buffer.synchronize()
    }

    /// Copy the contents to a host `Vec`, synchronizing as needed.
    pub fn to_vec(&self) -> hamr::Result<Vec<T>> {
        self.buffer.to_vec()
    }

    /// Deep-copy this array into a new allocation with the same placement
    /// — the explicit copy the asynchronous execution path takes before
    /// handing data to the in situ thread (§4.3).
    ///
    /// The copy is **stream-ordered** on the array's stream: for
    /// device-resident arrays this call enqueues the transfer and returns;
    /// operations submitted later on the same stream see the copied data,
    /// and out-of-stream consumers must [`synchronize`](Self::synchronize)
    /// first. Batching many copies behind a single synchronization point
    /// is what keeps the asynchronous execution method's apparent cost
    /// small.
    pub fn deep_copy(&self, name: impl Into<String>) -> hamr::Result<Arc<Self>> {
        self.deep_copy_impl(name, None)
    }

    /// Deep-copy with the transfer enqueued on an explicit `stream` — the
    /// delta-snapshot path, where all per-step copies ride one dedicated
    /// copy stream so the producer's compute stream is never occupied.
    /// The copy's buffer is ordered on that stream too, so synchronizing
    /// it (or waiting an event recorded after the copies) completes it.
    pub fn deep_copy_on(
        &self,
        name: impl Into<String>,
        stream: &Arc<devsim::Stream>,
    ) -> hamr::Result<Arc<Self>> {
        self.deep_copy_impl(name, Some(stream))
    }

    fn deep_copy_impl(
        &self,
        name: impl Into<String>,
        copy_stream: Option<&Arc<devsim::Stream>>,
    ) -> hamr::Result<Arc<Self>> {
        let node = self.buffer.node().clone();
        let device = self.buffer.device();
        let (buf_stream, mode) = match copy_stream {
            Some(s) => (HamrStream::new(s.clone()), StreamMode::Async),
            None => (self.buffer.stream().clone(), self.buffer.mode()),
        };
        let copy = HamrBuffer::<T>::new(
            node.clone(),
            self.buffer.len(),
            self.allocator(),
            device,
            buf_stream,
            mode,
        )?;
        let src = self.buffer.data();
        let dst = copy.data();
        match device {
            Some(d) => {
                let stream = match copy_stream {
                    Some(s) => s.clone(),
                    None => self.buffer.stream().resolve(&node, d)?,
                };
                stream.copy(&src, &dst)?;
            }
            None => {
                // Host-to-host: copy through host views (read-only on the
                // source so a pinned source yields its pinned contents).
                // A grouped source gathers through its layout map — the
                // copy is always a dense scalar run, so snapshots of
                // grouped tables stay bit-identical to scalar ones.
                let s = src.host_u64_ro()?;
                let d = dst.host_u64()?;
                match self.buffer.layout_map() {
                    Some(m) => {
                        for i in 0..m.len() {
                            d.set(i, s.get(m.index(i)));
                        }
                    }
                    None => {
                        for i in 0..s.len() {
                            d.set(i, s.get(i));
                        }
                    }
                }
            }
        }
        Ok(Arc::new(HamrDataArray {
            name: name.into(),
            components: self.components,
            buffer: Arc::new(copy),
        }))
    }

    /// A zero-copy copy-on-write share of this array pinned to its
    /// current contents (see [`HamrBuffer::cow_share`]); its operations
    /// are ordered on `stream`.
    pub fn cow_share(
        self: &Arc<Self>,
        stats: &Arc<devsim::PinStats>,
        stream: hamr::HamrStream,
    ) -> Arc<Self> {
        Arc::new(HamrDataArray {
            name: self.name.clone(),
            components: self.components,
            buffer: Arc::new(self.buffer.cow_share(stats, stream)),
        })
    }

    /// The backing allocation's write generation (see
    /// [`HamrBuffer::write_generation`]).
    pub fn write_generation(&self) -> u64 {
        self.buffer.write_generation()
    }

    /// Type-erase into an [`ArrayRef`].
    pub fn as_array_ref(self: &Arc<Self>) -> ArrayRef {
        self.clone()
    }
}

impl<T: Element> DataArray for HamrDataArray<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_tuples(&self) -> usize {
        self.buffer.len() / self.components
    }

    fn num_components(&self) -> usize {
        self.components
    }

    fn type_name(&self) -> &'static str {
        T::TYPE_NAME
    }

    fn device(&self) -> Option<usize> {
        self.buffer.device()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn deep_copy_erased(&self) -> hamr::Result<ArrayRef> {
        Ok(self.deep_copy(self.name.clone())? as ArrayRef)
    }

    fn synchronize_erased(&self) -> hamr::Result<()> {
        self.synchronize()
    }

    fn generation_erased(&self) -> Option<(u64, u64)> {
        Some((self.buffer.allocation_id(), self.buffer.write_generation()))
    }

    fn cow_share_erased(
        &self,
        stats: &Arc<devsim::PinStats>,
        stream: HamrStream,
    ) -> Option<ArrayRef> {
        Some(Arc::new(HamrDataArray {
            name: self.name.clone(),
            components: self.components,
            buffer: Arc::new(self.buffer.cow_share(stats, stream)),
        }) as ArrayRef)
    }

    fn deep_copy_async_erased(&self, stream: &Arc<devsim::Stream>) -> hamr::Result<ArrayRef> {
        Ok(self.deep_copy_on(self.name.clone(), stream)? as ArrayRef)
    }

    fn cells_erased(&self) -> Option<devsim::CellBuffer> {
        Some(self.buffer.data())
    }

    fn release_cow_erased(&self) {
        self.buffer.release_cow();
    }

    fn layout_erased(&self) -> Layout {
        self.buffer.layout()
    }
}

/// Downcast a type-erased array to a concrete `HamrDataArray<T>`.
pub fn downcast<T: Element>(array: &ArrayRef) -> Option<&HamrDataArray<T>> {
    array.as_any().downcast_ref::<HamrDataArray<T>>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use devsim::NodeConfig;

    fn node() -> Arc<SimNode> {
        SimNode::new(NodeConfig::fast_test(2))
    }

    fn simple(name: &str, data: &[f64]) -> Arc<HamrDoubleArray> {
        HamrDataArray::from_slice(
            name,
            node(),
            data,
            1,
            Allocator::Malloc,
            None,
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap()
    }

    #[test]
    fn implements_the_data_array_interface() {
        let a = HamrDataArray::<f64>::from_slice(
            "velocity",
            node(),
            &[1., 2., 3., 4., 5., 6.],
            3,
            Allocator::Cuda,
            Some(1),
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();
        assert_eq!(a.name(), "velocity");
        assert_eq!(a.num_tuples(), 2);
        assert_eq!(a.num_components(), 3);
        assert_eq!(a.len(), 6);
        assert_eq!(a.type_name(), "double");
        assert_eq!(DataArray::device(a.as_ref()), Some(1));
    }

    #[test]
    fn downcast_from_array_ref() {
        let a = simple("x", &[1.0]);
        let r: ArrayRef = a.as_array_ref();
        assert!(downcast::<f64>(&r).is_some());
        assert!(downcast::<i32>(&r).is_none());
        assert_eq!(downcast::<f64>(&r).unwrap().to_vec().unwrap(), vec![1.0]);
    }

    #[test]
    fn debug_formatting_of_trait_object() {
        let a = simple("rho", &[0.5, 0.6]);
        let r: ArrayRef = a.as_array_ref();
        let s = format!("{:?}", r.as_ref());
        assert!(s.contains("rho"));
        assert!(s.contains("double"));
    }

    #[test]
    fn deep_copy_is_independent() {
        let n = node();
        let a = HamrDataArray::<f64>::from_slice(
            "orig",
            n.clone(),
            &[1.0, 2.0],
            1,
            Allocator::Cuda,
            Some(0),
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();
        let b = a.deep_copy("copy").unwrap();
        assert_eq!(b.name(), "copy");
        assert!(!a.data().same_allocation(&b.data()));
        assert_eq!(b.to_vec().unwrap(), vec![1.0, 2.0]);
        assert_eq!(b.device(), Some(0));
    }

    #[test]
    fn deep_copy_on_host() {
        let a = simple("h", &[3.0, 4.0]);
        let b = a.deep_copy("h2").unwrap();
        assert_eq!(b.to_vec().unwrap(), vec![3.0, 4.0]);
        assert_eq!(b.device(), None);
    }

    #[test]
    fn adopt_shares_cells_via_interface() {
        let n = node();
        let sim_mem = n.device(0).unwrap().alloc_f64(3).unwrap();
        let a = HamrDataArray::<f64>::adopt(
            "simData",
            n,
            sim_mem.clone(),
            1,
            Allocator::OpenMp,
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();
        assert!(a.data().same_allocation(&sim_mem));
        assert_eq!(a.num_tuples(), 3);
        assert_eq!(a.pm(), Pm::OpenMp);
    }

    #[test]
    #[should_panic(expected = "multiple of components")]
    fn component_mismatch_is_rejected() {
        let _ = HamrDataArray::<f64>::from_slice(
            "bad",
            node(),
            &[1.0, 2.0, 3.0],
            2,
            Allocator::Malloc,
            None,
            HamrStream::default_stream(),
            StreamMode::Sync,
        );
    }
}
