//! # svtk — the SENSEI data model
//!
//! The SENSEI data model is "VTK plus heterogeneous arrays" (SC-W 2023
//! §2): datasets describe mesh geometry and attach node-, cell-, and
//! un-centered data arrays; the arrays themselves are `svtkDataArray`
//! subclasses. VTK's stock subclasses manage host memory only, so the
//! paper adds `svtkHAMRDataArray` — an array backed by the HAMR memory
//! resource that also manages device memory and provides PM
//! interoperability.
//!
//! This crate implements the subset of that model the SENSEI mediation
//! paths actually touch:
//!
//! * [`DataArray`] — the abstract array interface ( name, tuple count,
//!   component count, element type), with downcasting;
//! * [`HamrDataArray`] — the heterogeneous array (the paper's HDA),
//!   including zero-copy adoption and location/PM-agnostic access;
//! * [`FieldData`] — a named collection of arrays with an association
//!   ([`FieldAssociation::Point`], [`Cell`](FieldAssociation::Cell), or
//!   uncentered [`Field`](FieldAssociation::Field) data);
//! * [`TableData`] — tabular data (columns over co-occurring rows), the
//!   input shape of the data-binning analysis;
//! * [`ImageData`] — a uniform Cartesian mesh, the output shape of the
//!   data-binning analysis;
//! * [`MultiBlock`] — the per-rank block container SENSEI passes between
//!   simulation and analysis adaptors.

mod attributes;
mod data_array;
mod dataset;
mod hamr_array;
mod image_data;
mod multiblock;
mod table;

pub use attributes::{FieldAssociation, FieldData};
pub use data_array::{ArrayRef, DataArray};
pub use dataset::DataObject;
pub use hamr_array::{
    downcast, HamrDataArray, HamrDoubleArray, HamrFloatArray, HamrIdArray, HamrIntArray,
    HamrUCharArray,
};
pub use image_data::ImageData;
pub use multiblock::MultiBlock;
pub use table::TableData;

pub use hamr::{Allocator, HamrStream, Pm, StreamMode};
