//! Property tests on the data-model geometry and containers.

use proptest::prelude::*;
use svtk::ImageData;

fn mesh_strategy() -> impl Strategy<Value = ImageData> {
    (
        (1usize..12, 1usize..12, 1usize..4),
        (-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0),
        (0.1f64..5.0, 0.1f64..5.0, 0.1f64..5.0),
    )
        .prop_map(|(cells, lo, extent)| {
            ImageData::from_bounds(
                [cells.0, cells.1, cells.2],
                [lo.0, lo.1, lo.2],
                [lo.0 + extent.0, lo.1 + extent.1, lo.2 + extent.2],
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// cell_index is a bijection from cell coordinates to 0..num_cells.
    #[test]
    fn cell_index_is_a_bijection(mesh in mesh_strategy()) {
        let cd = mesh.cell_dims();
        let mut seen = vec![false; mesh.num_cells()];
        for k in 0..cd[2] {
            for j in 0..cd[1] {
                for i in 0..cd[0] {
                    let idx = mesh.cell_index([i, j, k]);
                    prop_assert!(idx < seen.len());
                    prop_assert!(!seen[idx], "duplicate index {idx}");
                    seen[idx] = true;
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Every interior point locates to a valid cell; points outside the
    /// bounds locate to None.
    #[test]
    fn locate_respects_bounds(mesh in mesh_strategy(), t in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0)) {
        let (lo, hi) = mesh.bounds();
        let p = [
            lo[0] + t.0 * (hi[0] - lo[0]),
            lo[1] + t.1 * (hi[1] - lo[1]),
            lo[2] + t.2 * (hi[2] - lo[2]),
        ];
        let ijk = mesh.locate(p);
        prop_assert!(ijk.is_some(), "interior point {p:?} must locate");
        let ijk = ijk.unwrap();
        let cd = mesh.cell_dims();
        prop_assert!(ijk[0] < cd[0] && ijk[1] < cd[1] && ijk[2] < cd[2]);

        // Clearly outside on each axis: None.
        let span = hi[0] - lo[0];
        prop_assert!(mesh.locate([hi[0] + span, p[1], p[2]]).is_none());
        prop_assert!(mesh.locate([lo[0] - span, p[1], p[2]]).is_none());
    }

    /// locate is consistent with the cell's geometric extent: the located
    /// cell's bounds contain the point.
    #[test]
    fn located_cell_contains_the_point(mesh in mesh_strategy(), t in (0.001f64..0.999, 0.001f64..0.999, 0.001f64..0.999)) {
        let (lo, hi) = mesh.bounds();
        let p = [
            lo[0] + t.0 * (hi[0] - lo[0]),
            lo[1] + t.1 * (hi[1] - lo[1]),
            lo[2] + t.2 * (hi[2] - lo[2]),
        ];
        let ijk = mesh.locate(p).unwrap();
        let s = mesh.spacing();
        let o = mesh.origin();
        for a in 0..3 {
            let cell_lo = o[a] + s[a] * ijk[a] as f64;
            let cell_hi = cell_lo + s[a];
            prop_assert!(
                p[a] >= cell_lo - 1e-9 && p[a] <= cell_hi + 1e-9,
                "axis {a}: point {} outside cell [{cell_lo}, {cell_hi}]",
                p[a]
            );
        }
    }

    /// Point and cell counts follow the dims arithmetic.
    #[test]
    fn counts_match_dims(mesh in mesh_strategy()) {
        let d = mesh.dims();
        let cd = mesh.cell_dims();
        prop_assert_eq!(mesh.num_points(), d[0] * d[1] * d[2]);
        prop_assert_eq!(mesh.num_cells(), cd[0] * cd[1] * cd[2]);
        prop_assert_eq!(d[0], cd[0] + 1);
        // Bounds round-trip through spacing.
        let (lo, hi) = mesh.bounds();
        let s = mesh.spacing();
        for a in 0..3 {
            prop_assert!((lo[a] + s[a] * cd[a] as f64 - hi[a]).abs() < 1e-9);
        }
    }
}
