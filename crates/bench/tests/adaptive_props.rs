//! Property: an adaptively reconfigured run is bit-identical to its
//! static reference, whatever schedule of mid-run reconfigurations the
//! controller (or anything driving `Bridge::reconfigure_backend`) could
//! apply — random reconfiguration points × placements × layouts ×
//! execution methods × snapshot modes. Placement, execution, layout,
//! and snapshot policy decide *when and where* work runs, never *what*
//! it computes.

use std::sync::Arc;

use devsim::{NodeConfig, SimNode};
use minimpi::World;
use parking_lot::Mutex;
use proptest::prelude::*;
use sensei::{
    ArrayMetadata, BackendControls, Bridge, DataAdaptor, DeviceSpec, ExecutionMethod, MeshMetadata,
    SnapshotMode,
};
use svtk::{Allocator, DataObject, FieldAssociation, HamrStream, StreamMode, TableData};

use bench::results_bit_identical;
use binning::{BinnedResult, BinningSpec, BinningSuite, ResultSink, VarOp};

const FIELDS: [&str; 4] = ["x", "y", "m", "e"];
const NUM_DEVICES: usize = 2;

fn field_value(step: u64, field: usize, i: usize) -> f64 {
    let mut z = step
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((field as u64) << 32)
        .wrapping_add(i as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let u = (z >> 11) as f64 / (1u64 << 53) as f64;
    match field {
        0 | 1 => u * 4.0 - 2.0,
        2 => 0.5 + u,
        _ => u * 100.0,
    }
}

/// Publishes the particle table each step in the layout the committed
/// back-end controls ask for.
struct Producer {
    node: Arc<SimNode>,
    layout: hamr::Layout,
    rows: usize,
    step: u64,
    table: TableData,
}

impl Producer {
    fn new(node: Arc<SimNode>, layout: hamr::Layout, rows: usize) -> Self {
        let mut p = Producer { node, layout, rows, step: 0, table: TableData::new() };
        p.produce();
        p
    }

    fn produce(&mut self) {
        let mut table = TableData::new();
        for (f, name) in FIELDS.iter().enumerate() {
            let vals: Vec<f64> = (0..self.rows).map(|i| field_value(self.step, f, i)).collect();
            let arr = svtk::HamrDoubleArray::from_slice(
                *name,
                self.node.clone(),
                &vals,
                1,
                Allocator::Malloc,
                None,
                HamrStream::default_stream(),
                StreamMode::Sync,
            )
            .expect("column");
            table.set_column(arr.as_array_ref());
        }
        if self.layout != hamr::Layout::Scalar {
            table.group_columns(&FIELDS, self.layout, &self.node).expect("group");
        }
        self.table = table;
    }

    fn advance(&mut self, layout: hamr::Layout) {
        self.step += 1;
        self.layout = layout;
        self.produce();
    }
}

impl DataAdaptor for Producer {
    fn num_meshes(&self) -> usize {
        1
    }
    fn mesh_metadata(&self, _i: usize) -> sensei::Result<MeshMetadata> {
        Ok(MeshMetadata {
            name: "particles".into(),
            arrays: FIELDS
                .iter()
                .map(|&name| ArrayMetadata {
                    name: name.to_string(),
                    association: FieldAssociation::Point,
                    components: 1,
                    type_name: "double",
                    device: None,
                })
                .collect(),
        })
    }
    fn mesh(&self, name: &str) -> sensei::Result<DataObject> {
        assert_eq!(name, "particles");
        Ok(DataObject::Table(self.table.clone()))
    }
    fn time(&self) -> f64 {
        self.step as f64
    }
    fn time_step(&self) -> u64 {
        self.step
    }
}

fn specs(resolution: usize) -> Vec<BinningSpec> {
    let parse = |s: &str| VarOp::parse(s).expect("valid op");
    vec![
        BinningSpec::new(
            "particles",
            ("x", "y"),
            resolution,
            vec![parse("count()"), parse("sum(m)"), parse("avg(e)")],
        ),
        BinningSpec::new(
            "particles",
            ("y", "x"),
            resolution,
            vec![parse("count()"), parse("min(m)"), parse("max(e)")],
        ),
    ]
}

/// One scheduled mid-run change: reconfigure the back-end and/or flip
/// the bridge-wide snapshot mode.
#[derive(Debug, Clone, Copy)]
struct Change {
    at: u64,
    controls: BackendControls,
    snapshot: SnapshotMode,
}

/// Run `steps` with `schedule` applied at its steps; return the sink
/// sorted by (step, axes) so asynchronous completion order cannot leak
/// into the comparison.
fn run_scheduled(
    steps: u64,
    rows: usize,
    start: BackendControls,
    schedule: &[Change],
) -> Vec<BinnedResult> {
    let node = SimNode::new(NodeConfig::fast_test(NUM_DEVICES));
    let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
    let run_node = node.clone();
    let run_sink = sink.clone();
    let schedule = schedule.to_vec();
    World::new(1).run(move |comm| {
        let node = run_node.clone();
        let sink = run_sink.clone();
        let factory: sensei::AdaptorFactory = Box::new(move |controls: &BackendControls| {
            let suite = BinningSuite::new(specs(6))
                .map_err(|e| sensei::Error::Analysis(format!("suite: {e}")))?
                .with_controls(*controls)
                .with_sink(sink.clone());
            Ok(Box::new(suite) as Box<dyn sensei::AnalysisAdaptor>)
        });
        let mut bridge = Bridge::new(node.clone());
        bridge.add_reconfigurable_analysis(start, factory, &comm).expect("attach");
        let mut producer = Producer::new(node.clone(), start.layout, rows);
        for step in 0..steps {
            for c in schedule.iter().filter(|c| c.at == step) {
                bridge.reconfigure_backend(0, c.controls, &comm).expect("reconfigure");
                bridge.set_snapshot_mode(c.snapshot);
            }
            bridge
                .execute(&producer, &comm, std::time::Duration::from_micros(100))
                .expect("execute");
            let layout = bridge.backend_controls(0).expect("backend 0").layout;
            producer.advance(layout);
        }
        bridge.finalize(&comm).expect("finalize");
    });
    let mut results = sink.lock().clone();
    results.sort_by(|a, b| (a.step, &a.axes).cmp(&(b.step, &b.axes)));
    results
}

fn execution() -> impl Strategy<Value = ExecutionMethod> {
    proptest::sample::select(vec![
        ExecutionMethod::Lockstep,
        ExecutionMethod::Asynchronous,
        ExecutionMethod::Dag,
    ])
}

fn device() -> impl Strategy<Value = DeviceSpec> {
    proptest::sample::select(vec![
        DeviceSpec::Host,
        DeviceSpec::Explicit(0),
        DeviceSpec::Explicit(NUM_DEVICES - 1),
    ])
}

fn layout() -> impl Strategy<Value = hamr::Layout> {
    proptest::sample::select(vec![
        hamr::Layout::Scalar,
        hamr::Layout::AoS,
        hamr::Layout::SoA,
        hamr::Layout::AoSoA { lane_width: 4 },
    ])
}

fn snapshot() -> impl Strategy<Value = SnapshotMode> {
    proptest::sample::select(vec![SnapshotMode::Deep, SnapshotMode::Delta, SnapshotMode::Cow])
}

fn controls() -> impl Strategy<Value = BackendControls> {
    (execution(), device(), layout()).prop_map(|(execution, device, layout)| BackendControls {
        execution,
        device,
        layout,
        queue_depth: 4,
        ..Default::default()
    })
}

fn change(steps: u64) -> impl Strategy<Value = Change> {
    (0..steps, controls(), snapshot()).prop_map(|(at, controls, snapshot)| Change {
        at,
        controls,
        snapshot,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any schedule of mid-run reconfigurations — arbitrary points,
    /// placements, layouts, execution methods, snapshot modes — yields
    /// results bit-identical to the untouched static reference.
    #[test]
    fn scheduled_reconfiguration_is_bit_identical(
        start in controls(),
        schedule in proptest::collection::vec(change(10), 1..4),
    ) {
        let steps = 10u64;
        let rows = 64usize;
        let reference = run_scheduled(
            steps,
            rows,
            BackendControls {
                execution: ExecutionMethod::Lockstep,
                device: DeviceSpec::Host,
                ..Default::default()
            },
            &[],
        );
        prop_assert_eq!(reference.len(), steps as usize * 2);
        let adapted = run_scheduled(steps, rows, start, &schedule);
        prop_assert!(
            results_bit_identical(&reference, &adapted),
            "schedule {:?} from {:?} must not perturb results",
            schedule,
            start
        );
    }
}
