//! Figure 2: total run time for lockstep vs asynchronous in situ, for
//! each of the four placements (8 cases).
//!
//! Each Criterion sample is one complete (scaled-down) run: simulation
//! init, `steps` solver iterations with in situ processing every
//! iteration, and finalization — exactly what the paper's Figure 2
//! reports. Absolute numbers reflect the simulated node's time model;
//! the comparisons (async < lockstep; dedicated placements slower) are
//! the reproduced result.

use criterion::{criterion_group, criterion_main, Criterion};

use bench::{run_case, CaseConfig};
use sensei::{ExecutionMethod, Placement};

fn scaled_case(placement: Placement, execution: ExecutionMethod) -> CaseConfig {
    CaseConfig {
        bodies: 1024,
        steps: 3,
        resolution: 32,
        instances: 3,
        ..CaseConfig::small(placement, execution)
    }
}

fn fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_total_runtime");
    group.sample_size(10);
    for placement in Placement::paper_placements() {
        for execution in [ExecutionMethod::Lockstep, ExecutionMethod::Asynchronous] {
            let cfg = scaled_case(placement, execution);
            let id = format!("{}/{}", placement.label().replace(' ', "_"), execution.name());
            group.bench_function(&id, |b| {
                b.iter(|| std::hint::black_box(run_case(&cfg)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
