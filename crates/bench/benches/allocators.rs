//! Allocation + initialization across the `svtkAllocator` variants
//! (§2 "Initialization"), including the async-allocator path that
//! requires an explicit stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use devsim::{NodeConfig, PoolConfig, SimNode};
use hamr::{Allocator, HamrBuffer, HamrStream, StreamMode};

fn allocators(c: &mut Criterion) {
    let node = SimNode::new(NodeConfig::fast_test(1));
    let mut group = c.benchmark_group("allocators");
    const N: usize = 100_000;

    for alloc in Allocator::ALL {
        let device = if alloc.is_device() { Some(0) } else { None };
        let stream = if alloc.is_stream_ordered() {
            HamrStream::new(node.device(0).unwrap().create_stream())
        } else {
            HamrStream::default_stream()
        };
        group.bench_with_input(
            BenchmarkId::new("alloc_fill", alloc.name()),
            &alloc,
            |b, &alloc| {
                b.iter(|| {
                    let buf = HamrBuffer::<f64>::new_init(
                        node.clone(),
                        N,
                        1.5,
                        alloc,
                        device,
                        stream.clone(),
                        StreamMode::Sync,
                    )
                    .unwrap();
                    std::hint::black_box(buf);
                });
            },
        );
    }

    // Sync vs async stream mode on the same allocator: async submission
    // returns immediately; synchronization is amortized over a batch.
    let stream = HamrStream::new(node.device(0).unwrap().create_stream());
    group.bench_function("cuda_async_mode_batch8", |b| {
        b.iter(|| {
            let bufs: Vec<_> = (0..8)
                .map(|_| {
                    HamrBuffer::<f64>::new_init(
                        node.clone(),
                        N / 8,
                        2.5,
                        Allocator::CudaAsync,
                        Some(0),
                        stream.clone(),
                        StreamMode::Async,
                    )
                    .unwrap()
                })
                .collect();
            bufs[7].synchronize().unwrap();
            std::hint::black_box(bufs);
        });
    });
    group.bench_function("cuda_sync_mode_batch8", |b| {
        b.iter(|| {
            let bufs: Vec<_> = (0..8)
                .map(|_| {
                    HamrBuffer::<f64>::new_init(
                        node.clone(),
                        N / 8,
                        2.5,
                        Allocator::Cuda,
                        Some(0),
                        HamrStream::default_stream(),
                        StreamMode::Sync,
                    )
                    .unwrap()
                })
                .collect();
            std::hint::black_box(bufs);
        });
    });
    group.finish();
}

/// The caching pool A/B: the identical allocate/use/free loop with the
/// pool serving repeats from its free lists versus raw allocation on
/// every request.
fn pool_ab(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_pool");
    const N: usize = 100_000;

    for (label, pool_cfg) in
        [("pooled", PoolConfig::default()), ("unpooled", PoolConfig::disabled())]
    {
        let node = SimNode::new(NodeConfig::fast_test(1));
        node.pool().configure(pool_cfg);
        let stream = HamrStream::new(node.device(0).unwrap().create_stream());
        group.bench_with_input(BenchmarkId::new("alloc_use_free", label), &(), |b, _| {
            b.iter(|| {
                let buf = HamrBuffer::<f64>::new_init(
                    node.clone(),
                    N,
                    1.5,
                    Allocator::CudaAsync,
                    Some(0),
                    stream.clone(),
                    StreamMode::Sync,
                )
                .unwrap();
                std::hint::black_box(&buf);
                // Dropping returns the block to the pool (or frees it raw).
            });
        });
        let stats = node.device(0).unwrap().pool_stats();
        eprintln!(
            "memory_pool/{label}: hit rate {:.1}% ({} hits / {} raw allocs)",
            stats.hit_rate() * 100.0,
            stats.hits,
            stats.raw_allocs,
        );
    }
    group.finish();
}

criterion_group!(benches, allocators, pool_ab);
criterion_main!(benches);
