//! Fused vs per-op binning A/B on the paper's §4.3 workload shape.
//!
//! Both arms run the same bounded-axis binning specs on the same
//! simulated node; the only difference is the execution strategy:
//!
//! * `per_op` — one `BinningAnalysis` per coordinate system, each op
//!   binned in its own passes/kernels and allreduced on its own (the
//!   paper's "binning of each coordinate system was done sequentially in
//!   a separate data binning operator instance");
//! * `fused` — one `BinningSuite` sharing the per-step fetch, computing
//!   every op of a coordinate system in a single pass/kernel, and packing
//!   every grid into one allreduce per step.
//!
//! `iter_custom` reports the mean *apparent in situ* cost per iteration,
//! the quantity the harness's `binning` mode asserts on.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use bench::{run_case, CaseConfig};
use sensei::{ExecutionMethod, Placement};

fn ab_case(execution: ExecutionMethod, fused: bool) -> CaseConfig {
    CaseConfig {
        bodies: 1024,
        steps: 4,
        resolution: 32,
        instances: 3,
        fused,
        bounded: true,
        ..CaseConfig::small(Placement::SameDevice, execution)
    }
}

fn fused_vs_perop(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_vs_perop");
    group.sample_size(10);
    for execution in [ExecutionMethod::Lockstep, ExecutionMethod::Asynchronous] {
        for fused in [false, true] {
            let cfg = ab_case(execution, fused);
            let id = format!("{}/{}", execution.name(), if fused { "fused" } else { "per_op" });
            group.bench_function(&id, |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += run_case(&cfg).mean_insitu;
                    }
                    total
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fused_vs_perop);
criterion_main!(benches);
