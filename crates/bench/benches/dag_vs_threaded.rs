//! Dag vs threaded execution A/B on the skewed mixed-cost binning
//! workload.
//!
//! Both arms run the same spec set (heavy 13-op instances interleaved
//! with count-only ones) through a shallow snapshot queue; the only
//! difference is the engine:
//!
//! * `threaded` — the asynchronous `ThreadedEngine`: the suite's inline
//!   `execute` on one persistent worker, every kernel routed to one
//!   device's streams;
//! * `dag` — the `DagEngine`: the suite emits a task graph per step and
//!   the work-stealing scheduler spreads kernel tasks across every
//!   device, overlapping downloads by construction.
//!
//! `iter_custom` reports the mean *apparent in situ* cost per iteration
//! — with the queue kept shallow this tracks actual worker throughput,
//! the quantity the harness's `dag` mode asserts on.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use bench::{run_dag_arm, DagBenchConfig};
use sensei::{ExecutionMethod, SnapshotMode};

fn ab_config() -> DagBenchConfig {
    DagBenchConfig {
        rows: 4_000,
        steps: 4,
        resolution: 24,
        num_devices: 2,
        time_scale: 4.0,
        queue_depth: 2,
        heavy_instances: 2,
        light_instances: 2,
    }
}

fn dag_vs_threaded(c: &mut Criterion) {
    let cfg = ab_config();
    let mut group = c.benchmark_group("dag_vs_threaded");
    group.sample_size(10);
    for (id, execution) in
        [("threaded", ExecutionMethod::Asynchronous), ("dag", ExecutionMethod::Dag)]
    {
        group.bench_function(id, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += run_dag_arm(&cfg, id, execution, SnapshotMode::Deep).mean_insitu;
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(benches, dag_vs_threaded);
criterion_main!(benches);
