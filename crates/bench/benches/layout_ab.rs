//! Layout × placement A/B: the fused binning suite consuming the same
//! synthetic particle table published as dense scalar columns vs as one
//! interleaved AoS / SoA / AoSoA block, host- and device-placed.
//!
//! Wall time per arm includes the modeled costs (zero time scale keeps
//! sleeps out), so the comparison measures the real per-layout overhead
//! of the accessor path: map-translated host fetches, lane-blocked
//! kernels, and the device arms' in-flight pack to dense.

use criterion::{criterion_group, criterion_main, Criterion};

use bench::{run_layout_arm, LayoutBenchConfig, CANDIDATE_LAYOUTS};

fn bench_cfg() -> LayoutBenchConfig {
    LayoutBenchConfig { rows: 4096, steps: 2, probe_steps: 1, resolution: 16, time_scale: 0.0 }
}

fn layout_ab(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut group = c.benchmark_group("layout_ab");
    group.sample_size(10);
    for placement in [None, Some(0usize)] {
        for layout in CANDIDATE_LAYOUTS {
            let id = format!(
                "{}/{}",
                match placement {
                    None => "host".to_string(),
                    Some(d) => format!("device{d}"),
                },
                layout.name(),
            );
            group.bench_function(&id, |b| {
                b.iter(|| std::hint::black_box(run_layout_arm(&cfg, layout, placement, cfg.steps)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, layout_ab);
criterion_main!(benches);
