//! Stream-ordered data movement: h2d / d2h / d2d transfer cost by size,
//! and synchronous vs asynchronous submission (the overlap the paper's
//! async allocators and stream modes exist to enable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use devsim::{NodeConfig, SimNode};

fn transfers(c: &mut Criterion) {
    let node = SimNode::new(NodeConfig::fast_test(2));
    let d0 = node.device(0).unwrap();
    let d1 = node.device(1).unwrap();
    let stream = d0.create_stream();

    let mut group = c.benchmark_group("data_movement");
    for &n in &[1_000usize, 100_000, 1_000_000] {
        group.throughput(Throughput::Bytes((n * 8) as u64));
        let host = node.host_alloc_f64(n);
        let dev0 = d0.alloc_f64(n).unwrap();
        let dev1 = d1.alloc_f64(n).unwrap();

        group.bench_with_input(BenchmarkId::new("h2d", n), &n, |b, _| {
            b.iter(|| {
                stream.copy(&host, &dev0).unwrap();
                stream.synchronize().unwrap();
            });
        });
        group.bench_with_input(BenchmarkId::new("d2h", n), &n, |b, _| {
            b.iter(|| {
                stream.copy(&dev0, &host).unwrap();
                stream.synchronize().unwrap();
            });
        });
        group.bench_with_input(BenchmarkId::new("d2d", n), &n, |b, _| {
            b.iter(|| {
                stream.copy(&dev0, &dev1).unwrap();
                stream.synchronize().unwrap();
            });
        });

        // Async submission: enqueue a batch, synchronize once — the
        // pattern the stream-ordered API exists for.
        group.bench_with_input(BenchmarkId::new("h2d_batched_async", n), &n, |b, _| {
            b.iter(|| {
                for _ in 0..8 {
                    stream.copy(&host, &dev0).unwrap();
                }
                stream.synchronize().unwrap();
            });
        });
        group.bench_with_input(BenchmarkId::new("h2d_batched_sync_each", n), &n, |b, _| {
            b.iter(|| {
                for _ in 0..8 {
                    stream.copy(&host, &dev0).unwrap();
                    stream.synchronize().unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, transfers);
criterion_main!(benches);
