//! The §2 ablation: zero-copy in-place access vs moved access vs deep
//! copy through the HDA access API.
//!
//! The paper's data-model extensions exist so that "when the back-end
//! can access the data in place, no additional work is done". This bench
//! quantifies exactly that: a direct (same-location, even cross-PM)
//! grant costs a refcount bump, while mismatched-location grants pay an
//! allocation plus a transfer, and deep copies always pay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use devsim::{NodeConfig, SimNode};
use hamr::{Allocator, HamrStream, Pm, StreamMode};
use svtk::HamrDataArray;

fn access_paths(c: &mut Criterion) {
    let node = SimNode::new(NodeConfig::fast_test(2));
    let mut group = c.benchmark_group("access_api");

    for &n in &[1_000usize, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();

        // Device-resident array managed by the OpenMP PM.
        let on_dev0 = HamrDataArray::<f64>::from_slice(
            "a",
            node.clone(),
            &data,
            1,
            Allocator::OpenMp,
            Some(0),
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();

        // Zero-copy: already on the requested device; cross-PM (CUDA view
        // of OpenMP-managed memory) is still in place.
        group.bench_with_input(
            BenchmarkId::new("zero_copy_same_device_cross_pm", n),
            &n,
            |b, _| {
                b.iter(|| std::hint::black_box(on_dev0.cuda_accessible(0).unwrap()));
            },
        );

        // Moved: requested on the other device -> temp + d2d transfer.
        group.bench_with_input(BenchmarkId::new("moved_d2d", n), &n, |b, _| {
            b.iter(|| {
                let v = on_dev0.device_accessible(1, Pm::Cuda).unwrap();
                on_dev0.synchronize().unwrap();
                std::hint::black_box(v);
            });
        });

        // Moved: requested on the host -> temp + d2h transfer.
        group.bench_with_input(BenchmarkId::new("moved_d2h", n), &n, |b, _| {
            b.iter(|| {
                let v = on_dev0.host_accessible().unwrap();
                on_dev0.synchronize().unwrap();
                std::hint::black_box(v);
            });
        });

        // Deep copy (what async execution pays per array per iteration).
        group.bench_with_input(BenchmarkId::new("deep_copy", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(on_dev0.deep_copy("copy").unwrap()));
        });

        // Host-resident array: host access is in place.
        let on_host = HamrDataArray::<f64>::from_slice(
            "h",
            node.clone(),
            &data,
            1,
            Allocator::Malloc,
            None,
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("zero_copy_host", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(on_host.host_accessible().unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, access_paths);
criterion_main!(benches);
