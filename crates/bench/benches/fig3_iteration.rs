//! Figure 3: average time per iteration spent in the solver and in in
//! situ processing, per placement × execution method.
//!
//! `iter_custom` reports the *per-iteration* cost (mean solver + mean
//! apparent in situ) from an instrumented run — the quantity stacked in
//! the paper's Figure 3. Comparing `lockstep` and `asynchronous`
//! variants of a placement shows both of the paper's findings: the
//! apparent in situ cost collapses under async while the solver itself
//! slows down.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use bench::{run_case, CaseConfig};
use sensei::{ExecutionMethod, Placement};

fn scaled_case(placement: Placement, execution: ExecutionMethod) -> CaseConfig {
    CaseConfig {
        bodies: 1024,
        steps: 4,
        resolution: 32,
        instances: 3,
        ..CaseConfig::small(placement, execution)
    }
}

fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_iteration");
    group.sample_size(10);
    for placement in Placement::paper_placements() {
        for execution in [ExecutionMethod::Lockstep, ExecutionMethod::Asynchronous] {
            let cfg = scaled_case(placement, execution);
            let id = format!("{}/{}", placement.label().replace(' ', "_"), execution.name());
            group.bench_function(&id, |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let out = run_case(&cfg);
                        total += out.mean_solver + out.mean_insitu;
                    }
                    total
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
