//! Host vs device binning (§4.4: "data binning is not an ideal algorithm
//! for GPUs since it requires the use of atomic memory updates").
//!
//! Runs with the time model disabled, so this measures the real cost of
//! the two implementations in this codebase: the host path's plain
//! stores vs the device path's CAS-based atomic updates. The reproduced
//! shape is the paper's: the device implementation does not beat the
//! host implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

use binning::{device_impl, host_impl, BinOp, GridParams};
use devsim::{NodeConfig, SimNode};

fn make_rows(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let xs: Vec<f64> = (0..n).map(|i| ((i * 37 % 1000) as f64 / 500.0) - 1.0).collect();
    let ys: Vec<f64> = (0..n).map(|i| ((i * 53 % 1000) as f64 / 500.0) - 1.0).collect();
    let vs: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
    (xs, ys, vs)
}

fn upload(node: &Arc<SimNode>, data: &[f64]) -> devsim::CellBuffer {
    let host = node.host_alloc_f64(data.len());
    host.host_f64().unwrap().copy_from_slice(data);
    let dev = node.device(0).unwrap().alloc_f64(data.len()).unwrap();
    let s = node.device(0).unwrap().default_stream();
    s.copy(&host, &dev).unwrap();
    s.synchronize().unwrap();
    dev
}

fn binning_paths(c: &mut Criterion) {
    let grid = GridParams::new(256, 256, [-1.0, -1.0], [1.0, 1.0]);
    let mut group = c.benchmark_group("binning_host_vs_device");
    for &n in &[10_000usize, 100_000] {
        let (xs, ys, vs) = make_rows(n);
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("host_sum", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(host_impl::bin_host(&xs, &ys, &vs, BinOp::Sum, &grid)));
        });

        let node = SimNode::new(NodeConfig::fast_test(1));
        let stream = node.device(0).unwrap().create_stream();
        let (dx, dy, dv) = (upload(&node, &xs), upload(&node, &ys), upload(&node, &vs));
        group.bench_with_input(BenchmarkId::new("device_sum_atomic", n), &n, |b, _| {
            b.iter(|| {
                let bins = device_impl::bin_device(
                    &node,
                    0,
                    &stream,
                    &dx,
                    &dy,
                    Some(&dv),
                    BinOp::Sum,
                    grid,
                )
                .unwrap();
                stream.synchronize().unwrap();
                std::hint::black_box(bins);
            });
        });

        group.bench_with_input(BenchmarkId::new("host_count", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(host_impl::bin_host(&xs, &ys, &[], BinOp::Count, &grid))
            });
        });
        group.bench_with_input(BenchmarkId::new("device_count_atomic", n), &n, |b, _| {
            b.iter(|| {
                let bins =
                    device_impl::bin_device(&node, 0, &stream, &dx, &dy, None, BinOp::Count, grid)
                        .unwrap();
                stream.synchronize().unwrap();
                std::hint::black_box(bins);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, binning_paths);
criterion_main!(benches);
