//! Live result serving: the `sensei::serve` fan-out under the bounded
//! fused binning workload, swept over session counts, plus the steering
//! round trip.
//!
//! Two experiments:
//!
//! * **fan-out sweep** — one Newton++ rank runs the suite
//!   asynchronously under CoW snapshots while N simulated clients
//!   (mixed ~80% fast / ~15% slow / ~5% continuously churning)
//!   subscribe by (variable × coordinate system). Each step the new
//!   binned results are serialized **once** per coordinate system and
//!   published through the hub; the sweep repeats at growing N and the
//!   report hard-asserts that bytes serialized per step are *flat*
//!   across session counts (the zero-copy claim), that every
//!   block-policy fast client received every frame it subscribed to
//!   (backpressure loses nothing), and that the binned results
//!   themselves are bit-identical whatever the audience size.
//! * **steering pair** — a two-rank run where a rank-0 session submits
//!   steering commands (frequency, resolution, pause, resume) at fixed
//!   steps; the bridge drains them at step boundaries, rank 0 decides
//!   and broadcasts, and every rank rebuilds through the ordinary
//!   reconfiguration path. A second run replays the identical schedule
//!   by calling [`sensei::Bridge::reconfigure_backend`] directly; the
//!   two sinks must match bit for bit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use devsim::SimNode;
use minimpi::World;
use newtonpp::{forces::Gravity, ic::UniformIc, IcKind, Newton, NewtonAdaptor, NewtonConfig};
use parking_lot::Mutex;
use sensei::{
    select_device, AnalysisAdaptor, BackendControls, Bridge, ExecutionMethod, OverflowPolicy,
    Placement, ServeHub, ServeKnobs, ServeStepStats, SessionConfig, SessionHandle, SnapshotMode,
    SteeringCommand, StepPayload, Topic,
};

use binning::{BinnedResult, BinningSpec, BinningSuite, ResultSink};

use crate::case::bench_node_config;
use crate::chaos::results_bit_identical;
use crate::workload::paper_binning_specs_bounded;

/// Scale of the serving bench.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Global body count.
    pub bodies: usize,
    /// Simulation steps per arm.
    pub steps: u64,
    /// Binning mesh resolution per axis.
    pub resolution: usize,
    /// Binning instances (coordinate systems published per step).
    pub instances: usize,
    /// The fan-out sweep's session counts, in run order.
    pub session_counts: Vec<usize>,
    /// Per-session delivery queue depth.
    pub queue_depth: usize,
    /// Client worker threads per arm (each polls a slice of sessions).
    pub client_threads: usize,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            bodies: 256,
            steps: 10,
            resolution: 16,
            instances: 3,
            session_counts: vec![64, 512, 4096],
            queue_depth: 4,
            client_threads: 4,
        }
    }
}

/// How a simulated client behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientClass {
    /// Block-policy, drains eagerly: must never lose a frame.
    Fast,
    /// Drop-oldest, drains rarely: stays current, may skip frames.
    Slow,
}

/// Outcome of one fan-out arm (one session count).
#[derive(Debug, Clone)]
pub struct ServeArm {
    /// Sessions opened up front (fast + slow; churners come and go on
    /// top of these).
    pub sessions: usize,
    /// Block-policy fast clients among them.
    pub fast: usize,
    /// Drop-oldest slow clients among them.
    pub slow: usize,
    /// Total attach/detach cycles the churner thread performed.
    pub churned: u64,
    /// Per-step serving rows (the `serve_csv` data).
    pub step_stats: Vec<ServeStepStats>,
    /// Frames delivered, run total.
    pub delivered: u64,
    /// Frames dropped (slow evictions; never fast clients), run total.
    pub dropped: u64,
    /// Bytes serialized per step, in step order — the flat-bytes claim
    /// compares these vectors across arms.
    pub bytes_per_step: Vec<u64>,
    /// Frames the fast clients were owed but did not receive (hard
    /// assert: zero).
    pub fast_missing: u64,
    /// Median of the per-step p50 delivery latencies, nanoseconds.
    pub p50_ns: u64,
    /// Worst per-step p99 delivery latency, nanoseconds.
    pub p99_ns: u64,
    /// Rank 0's sink: one [`BinnedResult`] per (step, instance).
    pub results: Vec<BinnedResult>,
    /// Wall time for the arm.
    pub wall: Duration,
}

/// Outcome of the steering pair.
#[derive(Debug, Clone)]
pub struct SteeringOutcome {
    /// Sink of the session-steered run.
    pub steered: Vec<BinnedResult>,
    /// Sink of the run replaying the same schedule by direct
    /// reconfiguration.
    pub replayed: Vec<BinnedResult>,
    /// Steering commands the bridge applied (both ranks).
    pub steers_applied: u64,
    /// Rank 0's `step action detail` steering log.
    pub steer_log: Vec<String>,
}

impl SteeringOutcome {
    /// True when the steered and replayed sinks match bit for bit.
    pub fn bit_identical(&self) -> bool {
        results_bit_identical(&self.steered, &self.replayed)
    }
}

/// The full serving report: the fan-out sweep plus the steering pair.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// The configuration that produced this report.
    pub config: ServeBenchConfig,
    /// One arm per session count, in `session_counts` order.
    pub arms: Vec<ServeArm>,
    /// The steering round trip.
    pub steering: SteeringOutcome,
}

impl ServeBenchReport {
    /// The zero-copy claim: bytes serialized per step are identical
    /// across every session count.
    pub fn flat_bytes(&self) -> bool {
        let reference = &self.arms[0].bytes_per_step;
        self.arms.iter().all(|a| &a.bytes_per_step == reference)
    }

    /// The backpressure claim: no block-policy fast client missed a
    /// frame, at any session count.
    pub fn zero_fast_drops(&self) -> bool {
        self.arms.iter().all(|a| a.fast_missing == 0)
    }

    /// The audience-independence claim: the binned results are
    /// bit-identical whatever the session count.
    pub fn results_identical_across_arms(&self) -> bool {
        let reference = &self.arms[0].results;
        self.arms.iter().all(|a| results_bit_identical(reference, &a.results))
    }

    /// The steering claim: steered == replayed, bit for bit.
    pub fn steering_bit_identical(&self) -> bool {
        self.steering.bit_identical()
    }
}

fn newton_config(bodies: usize) -> NewtonConfig {
    NewtonConfig {
        ic: IcKind::Uniform(UniformIc {
            n: bodies,
            seed: 20230817,
            half_width: 1.0,
            mass_range: (0.5, 1.5),
            velocity_scale: 0.1,
            central_mass: bodies as f64,
        }),
        dt: 1e-4,
        grav: Gravity { g: 1.0, eps: 0.05 },
        x_extent: (-2.0, 2.0),
        repartition_every: None,
    }
}

/// The arm's binning instances and their coordinate-system labels.
fn serve_specs(resolution: usize, instances: usize) -> (Vec<BinningSpec>, Vec<String>) {
    let specs: Vec<BinningSpec> =
        paper_binning_specs_bounded(resolution).into_iter().take(instances).collect();
    let coords = specs.iter().map(|s| format!("{}:{}", s.axes.0, s.axes.1)).collect();
    (specs, coords)
}

/// Serialize one binned result for publication: the columns are the
/// finalized per-bin output arrays, already host-resident.
fn payload_of(r: &BinnedResult) -> (String, StepPayload) {
    let coords = format!("{}:{}", r.axes.0, r.axes.1);
    (coords, StepPayload { step: r.step, time: r.time, columns: r.arrays.clone() })
}

/// One client worker: polls its sessions until the hub closes them,
/// returning per-session received-frame counts in input order. Fast
/// clients drain everything available each pass; slow clients take at
/// most one frame every 64th pass (their drop-oldest queues evict).
fn client_worker(mut sessions: Vec<(ClientClass, SessionHandle)>) -> Vec<(ClientClass, u64)> {
    let mut counts = vec![0u64; sessions.len()];
    let mut open: Vec<usize> = (0..sessions.len()).collect();
    let mut pass = 0u64;
    while !open.is_empty() {
        pass += 1;
        let mut progressed = false;
        open.retain(|&i| {
            let (class, h) = &mut sessions[i];
            match class {
                ClientClass::Fast => {
                    while let Some(frame) = h.try_recv() {
                        counts[i] += 1;
                        progressed = true;
                        drop(frame);
                    }
                }
                ClientClass::Slow => {
                    if pass.is_multiple_of(64) {
                        if let Some(frame) = h.try_recv() {
                            counts[i] += 1;
                            progressed = true;
                            drop(frame);
                        }
                    }
                }
            }
            !h.is_closed()
        });
        if !progressed {
            std::thread::yield_now();
        }
    }
    let classes: Vec<ClientClass> = sessions.iter().map(|(c, _)| *c).collect();
    drop(sessions); // unsubscribe + flush buffered latency samples
    classes.into_iter().zip(counts).collect()
}

/// Run one fan-out arm at `sessions` concurrent clients.
pub fn run_serve_arm(cfg: &ServeBenchConfig, sessions: usize) -> ServeArm {
    let node = SimNode::new(bench_node_config(1, 0.0));
    let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
    let hub = ServeHub::new(false);

    let fast = (sessions * 8).div_ceil(10).max(1);
    let slow = (sessions * 15 / 100).min(sessions - fast);
    let churn_slots = (sessions - fast - slow).max(1);

    let cfg = cfg.clone();
    let run_node = node.clone();
    let run_sink = sink.clone();
    let run_hub = hub.clone();
    type ArmOut = (Vec<ServeStepStats>, Vec<(ClientClass, u64)>, u64, Duration);
    let outcomes: Vec<ArmOut> = World::new(1).run(move |comm| {
        let node = run_node.clone();
        let hub = run_hub.clone();
        let t0 = Instant::now();

        let (specs, coords) = serve_specs(cfg.resolution, cfg.instances);
        let suite = BinningSuite::new(specs)
            .expect("suite over paper specs")
            .with_controls(BackendControls {
                execution: ExecutionMethod::Asynchronous,
                queue_depth: cfg.steps.max(1) as usize,
                ..Default::default()
            })
            .with_sink(run_sink.clone());

        let mut bridge = Bridge::new(node.clone());
        bridge.set_snapshot_mode(SnapshotMode::Cow);
        bridge.attach_serve(hub.clone());
        bridge.add_analysis(Box::new(suite), &comm).expect("attach suite");

        // The standing audience: fast block-policy clients that must
        // see every frame, slow drop-oldest clients that may not. Each
        // subscribes to one coordinate system, alternating between the
        // wildcard variable and the count output every instance
        // publishes.
        let block = SessionConfig { queue_depth: cfg.queue_depth, overflow: OverflowPolicy::Block };
        let lossy =
            SessionConfig { queue_depth: cfg.queue_depth, overflow: OverflowPolicy::DropOldest };
        let mut clients: Vec<(ClientClass, SessionHandle)> = (0..fast + slow)
            .map(|i| {
                let variable = if i % 2 == 0 { "*" } else { "count" };
                let topic = Topic::new(variable, coords[i % coords.len()].clone());
                if i < fast {
                    (ClientClass::Fast, hub.subscribe(topic, block))
                } else {
                    (ClientClass::Slow, hub.subscribe(topic, lossy))
                }
            })
            .collect();

        let threads = cfg.client_threads.max(1);
        let chunk = (clients.len()).div_ceil(threads).max(1);
        let mut workers = Vec::new();
        while !clients.is_empty() {
            let batch: Vec<_> = clients.drain(..chunk.min(clients.len())).collect();
            workers.push(std::thread::spawn(move || client_worker(batch)));
        }

        // The churners: short-lived sessions continuously attaching and
        // detaching while publication runs, exercising the sharded
        // registry under churn.
        let stop = Arc::new(AtomicBool::new(false));
        let churner = {
            let hub = hub.clone();
            let stop = stop.clone();
            let coords = coords.clone();
            std::thread::spawn(move || {
                let config = SessionConfig { queue_depth: 1, overflow: OverflowPolicy::DropOldest };
                let mut cycles = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let mut batch: Vec<SessionHandle> = (0..churn_slots)
                        .map(|i| {
                            hub.subscribe(Topic::new("*", coords[i % coords.len()].clone()), config)
                        })
                        .collect();
                    for h in &mut batch {
                        let _ = h.try_recv();
                    }
                    cycles += churn_slots as u64;
                    drop(batch);
                    std::thread::yield_now();
                }
                cycles
            })
        };

        let sim_selector = Placement::Host.sim_selector(1);
        let sim_device = select_device(comm.rank(), 1, &sim_selector);
        let mut sim =
            Newton::new(node.clone(), &comm, sim_device, newton_config(cfg.bodies)).expect("sim");

        let mut published = 0usize;
        for step in 0..cfg.steps {
            let solver_time = sim.step(&comm).expect("solver step");
            let adaptor = NewtonAdaptor::new(&sim);
            bridge.execute(&adaptor, &comm, solver_time).expect("in situ execute");

            // The suite runs asynchronously: wait for this step's
            // results to land in the sink, then serialize each
            // coordinate system once and fan it out.
            let expected = (step as usize + 1) * cfg.instances;
            let waited = Instant::now();
            let fresh: Vec<(String, StepPayload)> = loop {
                {
                    let all = run_sink.lock();
                    if all.len() >= expected {
                        break all[published..expected].iter().map(payload_of).collect();
                    }
                }
                assert!(
                    waited.elapsed() < Duration::from_secs(60),
                    "in situ worker stalled before step {step}"
                );
                std::thread::yield_now();
            };
            published = expected;
            for (coords, payload) in fresh {
                hub.publish(&coords, payload);
            }
        }

        // Shut the serving side down before finalize so the client
        // threads drain, flush their latency samples, and unsubscribe;
        // finalize then folds the per-step stats into the profiler.
        hub.shutdown();
        stop.store(true, Ordering::Release);
        let mut counts = Vec::new();
        for w in workers {
            counts.extend(w.join().expect("client worker"));
        }
        let churned = churner.join().expect("churner");
        let profiler = bridge.finalize(&comm).expect("finalize");
        (profiler.serve_samples().to_vec(), counts, churned, t0.elapsed())
    });

    let (step_stats, counts, churned, wall) = outcomes.into_iter().next().expect("one rank");
    let fast_missing: u64 = counts
        .iter()
        .filter(|(class, _)| *class == ClientClass::Fast)
        .map(|(_, got)| cfg.steps.saturating_sub(*got))
        .sum();
    let snapshot = hub.counter_snapshot();
    let results = sink.lock().clone();
    let mut p50s: Vec<u64> = step_stats.iter().map(|s| s.p50_ns).collect();
    p50s.sort_unstable();
    ServeArm {
        sessions,
        fast,
        slow,
        churned,
        delivered: snapshot.delivered,
        dropped: snapshot.dropped,
        bytes_per_step: step_stats.iter().map(|s| s.bytes_copied).collect(),
        fast_missing,
        p50_ns: p50s.get(p50s.len() / 2).copied().unwrap_or(0),
        p99_ns: step_stats.iter().map(|s| s.p99_ns).max().unwrap_or(0),
        step_stats,
        results,
        wall,
    }
}

/// The steering schedule, as `(step, command)` pairs submitted (or
/// replayed) immediately before that step's `bridge.execute`.
const STEER_AT_FREQUENCY: u64 = 2;
const STEER_AT_RESOLUTION: u64 = 4;
const STEER_AT_PAUSE: u64 = 6;
const STEER_AT_RESUME: u64 = 8;

/// Run the two-rank steering arm. With `steered` the schedule flows
/// through a rank-0 session and the bridge's drain/broadcast path;
/// otherwise the identical schedule is replayed by direct
/// reconfiguration against a standalone knobs instance.
fn run_steering_run(
    cfg: &ServeBenchConfig,
    steered: bool,
) -> (Vec<BinnedResult>, u64, Vec<String>) {
    let ranks = 2;
    let node = SimNode::new(bench_node_config(ranks, 0.0));
    let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
    let applied = Arc::new(Mutex::new(0u64));
    let log = Arc::new(Mutex::new(Vec::new()));

    let cfg = cfg.clone();
    let run_node = node.clone();
    let run_sink = sink.clone();
    let run_applied = applied.clone();
    let run_log = log.clone();
    World::new(ranks).run(move |comm| {
        let node = run_node.clone();
        let rank = comm.rank();

        // Steered runs read the binning resolution off their rank's hub
        // knobs (every rank's hub applies the broadcast schedule); the
        // replay reads a standalone knobs instance the loop sets
        // directly at the scheduled step.
        let hub = steered.then(|| ServeHub::new(true));
        let knobs: Arc<ServeKnobs> =
            hub.as_ref().map(|h| h.knobs()).unwrap_or_else(|| Arc::new(ServeKnobs::default()));

        let base_resolution = cfg.resolution;
        let instances = cfg.instances;
        let factory_knobs = knobs.clone();
        let factory_sink = (rank == 0).then(|| run_sink.clone());
        let factory: sensei::AdaptorFactory = Box::new(move |controls: &BackendControls| {
            let resolution = match factory_knobs.resolution() {
                0 => base_resolution,
                r => r,
            };
            let (specs, _) = serve_specs(resolution, instances);
            let mut suite = BinningSuite::new(specs)
                .map_err(|e| sensei::Error::Analysis(format!("binning suite: {e}")))?
                .with_controls(*controls);
            if let Some(sink) = &factory_sink {
                suite = suite.with_sink(sink.clone());
            }
            Ok(Box::new(suite) as Box<dyn AnalysisAdaptor>)
        });

        let mut controls = BackendControls::default();
        let mut bridge = Bridge::new(node.clone());
        if let Some(hub) = &hub {
            bridge.attach_serve(hub.clone());
        }
        bridge.add_reconfigurable_analysis(controls, factory, &comm).expect("attach suite");

        // The steering session lives on rank 0; it only submits (its
        // one-slot lossy queue never backpressures the publisher-less
        // run).
        let session = hub.as_ref().and_then(|h| {
            (rank == 0).then(|| {
                h.subscribe(
                    Topic::new("*", "x:y"),
                    SessionConfig { queue_depth: 1, overflow: OverflowPolicy::DropOldest },
                )
            })
        });

        let sim_selector = Placement::Host.sim_selector(ranks);
        let sim_device = select_device(rank, ranks, &sim_selector);
        let mut sim =
            Newton::new(node.clone(), &comm, sim_device, newton_config(cfg.bodies)).expect("sim");

        let mut paused_from = controls.frequency;
        for step in 0..cfg.steps {
            if let Some(session) = &session {
                // Steered: the session queues the command; the bridge
                // drains, broadcasts, and applies it at this step's
                // boundary inside `execute`.
                match step {
                    STEER_AT_FREQUENCY => {
                        session.steer(0, SteeringCommand::SetFrequency(2));
                    }
                    STEER_AT_RESOLUTION => {
                        session.steer(0, SteeringCommand::SetResolution(base_resolution * 2));
                    }
                    STEER_AT_PAUSE => session.steer(0, SteeringCommand::Pause),
                    STEER_AT_RESUME => session.steer(0, SteeringCommand::Resume),
                    _ => {}
                }
            } else if !steered {
                // Replay: every rank applies the identical schedule
                // through the ordinary reconfiguration path.
                match step {
                    STEER_AT_FREQUENCY => {
                        controls.frequency = 2;
                        bridge.reconfigure_backend(0, controls, &comm).expect("reconfigure");
                    }
                    STEER_AT_RESOLUTION => {
                        knobs.set_resolution(base_resolution * 2);
                        bridge.reconfigure_backend(0, controls, &comm).expect("reconfigure");
                    }
                    STEER_AT_PAUSE => {
                        paused_from = controls.frequency;
                        controls.frequency = u64::MAX;
                        bridge.reconfigure_backend(0, controls, &comm).expect("reconfigure");
                    }
                    STEER_AT_RESUME => {
                        controls.frequency = paused_from;
                        bridge.reconfigure_backend(0, controls, &comm).expect("reconfigure");
                    }
                    _ => {}
                }
            }
            let solver_time = sim.step(&comm).expect("solver step");
            let adaptor = NewtonAdaptor::new(&sim);
            bridge.execute(&adaptor, &comm, solver_time).expect("in situ execute");
        }

        let steers = hub.as_ref().map_or(0, |h| h.counter_snapshot().steers);
        let profiler = bridge.finalize(&comm).expect("finalize");
        if rank == 0 {
            *run_applied.lock() += steers;
            *run_log.lock() = profiler
                .adaptive_samples()
                .iter()
                .filter(|s| s.action == "steer")
                .map(|s| format!("{} {} {}", s.step, s.action, s.detail))
                .collect();
        }
    });

    let results = sink.lock().clone();
    let steers = *applied.lock();
    let steer_log = log.lock().clone();
    (results, steers, steer_log)
}

/// Run the steering pair: session-steered vs direct-replay.
pub fn run_steering_pair(cfg: &ServeBenchConfig) -> SteeringOutcome {
    let (steered, steers_applied, steer_log) = run_steering_run(cfg, true);
    let (replayed, _, _) = run_steering_run(cfg, false);
    SteeringOutcome { steered, replayed, steers_applied, steer_log }
}

/// Run the full serving bench: the fan-out sweep plus the steering pair.
pub fn run_serve_bench(cfg: &ServeBenchConfig) -> ServeBenchReport {
    let arms = cfg.session_counts.iter().map(|&n| run_serve_arm(cfg, n)).collect();
    ServeBenchReport { config: cfg.clone(), arms, steering: run_steering_pair(cfg) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeBenchConfig {
        ServeBenchConfig {
            bodies: 96,
            steps: 5,
            resolution: 8,
            instances: 2,
            session_counts: vec![16, 48],
            queue_depth: 4,
            client_threads: 2,
        }
    }

    #[test]
    fn fan_out_bytes_stay_flat_and_fast_clients_lose_nothing() {
        let cfg = tiny();
        let arms: Vec<ServeArm> =
            cfg.session_counts.iter().map(|&n| run_serve_arm(&cfg, n)).collect();
        for arm in &arms {
            assert_eq!(arm.step_stats.len(), cfg.steps as usize, "one stats row per step");
            assert_eq!(arm.fast_missing, 0, "block clients must see every frame");
            assert!(arm.delivered >= arm.fast as u64 * cfg.steps);
            assert_eq!(
                arm.results.len(),
                cfg.steps as usize * cfg.instances,
                "the workload itself is unchanged by serving"
            );
            assert!(arm.bytes_per_step.iter().all(|&b| b > 0));
        }
        let report = ServeBenchReport {
            config: cfg,
            arms,
            steering: SteeringOutcome {
                steered: Vec::new(),
                replayed: Vec::new(),
                steers_applied: 0,
                steer_log: Vec::new(),
            },
        };
        assert!(report.flat_bytes(), "bytes per step must not scale with sessions");
        assert!(report.zero_fast_drops());
        assert!(report.results_identical_across_arms());
    }

    #[test]
    fn steering_replay_is_bit_identical() {
        let cfg = ServeBenchConfig { steps: 10, ..tiny() };
        let outcome = run_steering_pair(&cfg);
        assert_eq!(outcome.steers_applied, 4, "frequency, resolution, pause, resume");
        assert_eq!(outcome.steer_log.len(), 4);
        assert!(
            outcome.steer_log.iter().any(|l| l.contains("pause"))
                && outcome.steer_log.iter().any(|l| l.contains("resume")),
            "log: {:?}",
            outcome.steer_log
        );
        assert!(
            !outcome.steered.is_empty() && outcome.steered.len() < 10 * cfg.instances,
            "pause and frequency must thin the stream: {} results",
            outcome.steered.len()
        );
        assert!(outcome.bit_identical(), "steered vs replayed sinks diverged");
    }
}
