//! # bench — the experiment harness
//!
//! Reproduces the paper's empirical evaluation (§4.3–§4.4): Newton++
//! coupled through SENSEI to the data-binning analysis on a simulated
//! four-device node, swept over the four in situ placements × two
//! execution methods of Table 1. The paper's 128-node/512-GPU runs scale
//! down to one simulated node; body counts, steps, and the time model
//! are configurable so the *shapes* — who wins, by what factor — can be
//! compared against the paper's Figures 2 and 3.

mod adaptive;
mod case;
mod chaos;
mod chart;
mod dag;
mod layout;
mod scale;
mod serve;
mod snapshot;
mod workload;

pub use adaptive::{
    controls_label, run_adaptive_arm, run_adaptive_bench, AdaptiveArm, AdaptiveBenchConfig,
    AdaptiveBenchReport, AdaptiveSweep, Workload, ADAPTIVE_TOLERANCE, STATIC_ARMS,
};
pub use case::{bench_node_config, run_case, AggregatedCase, CaseConfig, CaseOutcome};
pub use chaos::{results_bit_identical, run_chaos, ChaosArm, ChaosConfig, ChaosReport};
pub use chart::{ascii_bars, ascii_stack};
pub use dag::{
    run_dag_arm, run_dag_bench, skewed_binning_specs, DagArm, DagBenchConfig, DagBenchReport,
};
pub use layout::{
    run_layout_arm, run_layout_bench, LayoutArm, LayoutBenchConfig, LayoutReport, PlacementSweep,
    CANDIDATE_LAYOUTS,
};
pub use scale::{
    run_scale_bench, ScaleArm, ScaleBenchConfig, ScaleCheck, ScalePoint, ScaleReport, ScaleSweep,
};
pub use serve::{
    run_serve_arm, run_serve_bench, run_steering_pair, ServeArm, ServeBenchConfig,
    ServeBenchReport, SteeringOutcome,
};
pub use snapshot::{run_snapshot_bench, SnapshotArm, SnapshotBenchConfig, SnapshotReport};
pub use workload::{
    paper_binning_specs, paper_binning_specs_bounded, COORDINATE_SYSTEMS, VARIABLE_OPS,
};
