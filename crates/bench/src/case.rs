//! Running one experimental case: a placement × execution-method
//! combination on the simulated node.

use std::sync::Arc;
use std::time::Duration;

use devsim::{DeviceParams, HostParams, LinkParams, NodeConfig, SimNode};
use minimpi::World;
use newtonpp::{forces::Gravity, ic::UniformIc, IcKind, Newton, NewtonAdaptor, NewtonConfig};
use sensei::{BackendControls, Bridge, ExecutionMethod, Placement, SnapshotMode};

use binning::BinningAnalysis;

use crate::workload::paper_binning_specs;

/// One row of the experiment matrix (Table 1).
#[derive(Debug, Clone, Copy)]
pub struct CaseConfig {
    /// In situ placement.
    pub placement: Placement,
    /// Execution method.
    pub execution: ExecutionMethod,
    /// Devices on the node (Perlmutter: 4).
    pub num_devices: usize,
    /// Global body count.
    pub bodies: usize,
    /// Simulation steps (in situ runs every iteration, as in §4.3).
    pub steps: u64,
    /// Binning mesh resolution per axis (paper: 256).
    pub resolution: usize,
    /// Number of binning-operator instances to run (paper: 9; smaller for
    /// quick benches). Each instance reduces all ten variables.
    pub instances: usize,
    /// Multiplier on modeled durations (see `devsim::timemodel`).
    pub time_scale: f64,
    /// IC seed.
    pub seed: u64,
    /// Whether the node's caching memory pool is enabled (the default);
    /// `false` reverts to raw per-request allocation for A/B comparison.
    pub pool: bool,
    /// `true`: run the instances as one fused [`binning::BinningSuite`]
    /// (shared per-step fetch, batched multi-op kernels, one packed
    /// allreduce). `false` (the default): independent per-op
    /// [`BinningAnalysis`] instances — the reference arm of the A/B.
    pub fused: bool,
    /// Prescribe axis bounds instead of computing them on the fly. With
    /// bounds fixed no pre-binning bounds collective is needed, so the
    /// fused path's packed grid reduction is the step's only allreduce.
    pub bounded: bool,
    /// How the bridge's snapshot layer captures solver state each step:
    /// unconditional deep copies, generation-gated delta copies, or
    /// copy-on-write shares (see `sensei::SnapshotMode`).
    pub snapshot: SnapshotMode,
    /// The physical layout label threaded into the back-end controls
    /// (tags the profiler's counter rows; see `hamr::Layout`). Newton++
    /// publishes dense device columns, so this stays [`Layout::Scalar`]
    /// for the paper matrix — the layout A/B lives in `bench::layout`.
    pub layout: hamr::Layout,
}

impl CaseConfig {
    /// A reduced-scale default: full 9-instance workload, 4 devices.
    pub fn small(placement: Placement, execution: ExecutionMethod) -> Self {
        CaseConfig {
            placement,
            execution,
            num_devices: 4,
            bodies: 2048,
            steps: 10,
            resolution: 64,
            instances: 9,
            time_scale: 1.0,
            seed: 20230817,
            pool: true,
            fused: false,
            bounded: false,
            snapshot: SnapshotMode::Deep,
            layout: hamr::Layout::Scalar,
        }
    }

    /// The paper's 8-case matrix at a given base scale.
    pub fn matrix(base: &CaseConfig) -> Vec<CaseConfig> {
        let mut cases = Vec::new();
        for placement in Placement::paper_placements() {
            for execution in [ExecutionMethod::Lockstep, ExecutionMethod::Asynchronous] {
                cases.push(CaseConfig { placement, execution, ..*base });
            }
        }
        cases
    }
}

/// The modeled node used for benchmarking: slowed-down device and host
/// throughputs so that modeled service time dominates the real closure
/// time, making scheduling behaviour (overlap, contention) the measured
/// quantity. Parameters are printed by the harness for transparency.
pub fn bench_node_config(num_devices: usize, time_scale: f64) -> NodeConfig {
    NodeConfig {
        num_devices,
        device: DeviceParams {
            slots: 1,
            flops_per_sec: 5e9,
            bytes_per_sec: 5e10,
            launch_overhead: Duration::from_micros(100),
            // Charged on pool *misses* only: with pooling on it is a
            // warm-up cost, with --pool off every iteration pays it —
            // the figure-3 delta the caching pool buys. Kept small: the
            // asynchronous runs take more warm-up misses than lockstep
            // (nine concurrent workers peak-demand the pool at once), so
            // a large value here erodes the paper's async-beats-lockstep
            // margin on the shared-device placement, and in debug builds
            // it inflates the shape tests' apparent-cost means.
            alloc_overhead: Duration::from_micros(50),
            memory_bytes: 4 << 30,
        },
        // One host slot per rank (§4.1: one CPU serving 4 GPUs / 4
        // ranks). The solver's host phases take slots through the urgent
        // lane, so host-placed asynchronous in situ work saturates the
        // slots' idle cycles without convoying the solver — which is how
        // the paper's host placement uses otherwise-idle cores. The task
        // overhead slows host tasks the same way the slowed device
        // throughputs slow kernels, keeping modeled time dominant over
        // the real closure time.
        host: HostParams {
            slots: num_devices,
            flops_per_sec: 2.5e9,
            bytes_per_sec: 2.5e10,
            task_overhead: Duration::from_micros(500),
        },
        link: LinkParams {
            h2d_bytes_per_sec: 5e9,
            d2d_bytes_per_sec: 2e10,
            latency: Duration::from_micros(20),
        },
        pool: devsim::PoolConfig::default(),
        time_scale,
    }
}

/// Per-rank outcome of a case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Total wall time on this rank (init + steps + in situ + finalize).
    pub total: Duration,
    /// Mean solver time per iteration.
    pub mean_solver: Duration,
    /// Mean *apparent* in situ time per iteration.
    pub mean_insitu: Duration,
    /// Per-backend apparent-cost breakdown on this rank.
    pub backends: Vec<sensei::BackendBreakdown>,
    /// Work counters (passes, launches, downloads, allreduces, fetches)
    /// summed over this rank's back-ends.
    pub counters: sensei::CounterSnapshot,
}

/// A case aggregated over ranks.
#[derive(Debug, Clone)]
pub struct AggregatedCase {
    /// The configuration that produced this outcome.
    pub config: CaseConfig,
    /// MPI ranks used (Table 1's "Ranks per node").
    pub ranks: usize,
    /// Max total wall time over ranks (Figure 2).
    pub total: Duration,
    /// Mean over ranks of the per-iteration solver time (Figure 3, cyan).
    pub mean_solver: Duration,
    /// Mean over ranks of the per-iteration apparent in situ time
    /// (Figure 3, red/blue).
    pub mean_insitu: Duration,
    /// Per-backend apparent costs, averaged over ranks (same backend
    /// order as rank 0's first dispatches).
    pub backends: Vec<sensei::BackendBreakdown>,
    /// Final node-wide caching-pool counters, one sample per memory
    /// space (empty only if the node had no spaces touched).
    pub pool: Vec<sensei::PoolSample>,
    /// Work counters summed over every rank's back-ends.
    pub counters: sensei::CounterSnapshot,
}

impl AggregatedCase {
    /// Pool counters summed over every memory space.
    pub fn pool_total(&self) -> devsim::PoolStats {
        let mut total = devsim::PoolStats::default();
        for s in &self.pool {
            total.accumulate(&s.stats);
        }
        total
    }
}

/// Run one case: spin up the node, one rank per simulation device, wire
/// Newton++ to the binning workload through the bridge, run `steps`
/// iterations with in situ processing at every iteration, finalize.
pub fn run_case(cfg: &CaseConfig) -> AggregatedCase {
    let ranks = cfg.placement.ranks_per_node(cfg.num_devices);
    let node = SimNode::new(bench_node_config(cfg.num_devices, cfg.time_scale));
    if !cfg.pool {
        node.pool().configure(devsim::PoolConfig::disabled());
    }
    let stats_node = node.clone();
    let cfg_copy = *cfg;

    let outcomes: Vec<CaseOutcome> =
        World::new(ranks).run(move |comm| run_rank(node.clone(), &comm, &cfg_copy));

    let mut pool = vec![sensei::PoolSample {
        space: "host".into(),
        stats: stats_node.pool_stats(devsim::MemSpace::Host),
    }];
    for d in 0..stats_node.num_devices() {
        pool.push(sensei::PoolSample {
            space: format!("device{d}"),
            stats: stats_node.pool_stats(devsim::MemSpace::Device(d)),
        });
    }

    let total = outcomes.iter().map(|o| o.total).max().unwrap_or(Duration::ZERO);
    let mean = |f: fn(&CaseOutcome) -> Duration| -> Duration {
        outcomes.iter().map(f).sum::<Duration>() / outcomes.len().max(1) as u32
    };
    let mut counters = sensei::CounterSnapshot::default();
    for o in &outcomes {
        counters.accumulate(&o.counters);
    }
    AggregatedCase {
        config: *cfg,
        ranks,
        total,
        mean_solver: mean(|o| o.mean_solver),
        mean_insitu: mean(|o| o.mean_insitu),
        backends: average_backends(&outcomes),
        pool,
        counters,
    }
}

/// Average each backend's apparent costs over the ranks that dispatched it.
fn average_backends(outcomes: &[CaseOutcome]) -> Vec<sensei::BackendBreakdown> {
    let mut merged: Vec<sensei::BackendBreakdown> = Vec::new();
    let mut counts: Vec<u32> = Vec::new();
    for o in outcomes {
        for b in &o.backends {
            match merged.iter_mut().zip(&mut counts).find(|(m, _)| m.backend == b.backend) {
                Some((m, c)) => {
                    m.dispatches += b.dispatches;
                    m.total_apparent += b.total_apparent;
                    m.mean_apparent += b.mean_apparent;
                    *c += 1;
                }
                None => {
                    merged.push(b.clone());
                    counts.push(1);
                }
            }
        }
    }
    for (m, c) in merged.iter_mut().zip(&counts) {
        m.mean_apparent /= *c;
    }
    merged
}

fn run_rank(node: Arc<SimNode>, comm: &minimpi::Comm, cfg: &CaseConfig) -> CaseOutcome {
    let t_start = std::time::Instant::now();

    // Simulation placement: one rank per simulation device.
    let sim_selector = cfg.placement.sim_selector(cfg.num_devices);
    let sim_device = sensei::select_device(comm.rank(), cfg.num_devices, &sim_selector);

    let newton_cfg = NewtonConfig {
        ic: IcKind::Uniform(UniformIc {
            n: cfg.bodies,
            seed: cfg.seed,
            half_width: 1.0,
            mass_range: (0.5, 1.5),
            velocity_scale: 0.1,
            central_mass: cfg.bodies as f64,
        }),
        dt: 1e-4,
        grav: Gravity { g: 1.0, eps: 0.05 },
        x_extent: (-2.0, 2.0),
        // "body repartitioning [was] disabled during the runs" (§4.3).
        repartition_every: None,
    };
    let mut sim =
        Newton::new(node.clone(), comm, sim_device, newton_cfg).expect("simulation initialization");

    // In situ placement through the back-end controls. The snapshot queue
    // is sized to the run so submission never blocks — the paper's runs
    // used an unbounded queue (§4.3), and Figure 2's asynchronous
    // advantage depends on the solver never waiting on the in situ
    // workers.
    let (device_spec, selector) = cfg.placement.insitu_spec(cfg.num_devices);
    let controls = BackendControls {
        execution: cfg.execution,
        device: device_spec,
        selector,
        queue_depth: cfg.steps.max(1) as usize,
        layout: cfg.layout,
        ..Default::default()
    };

    let specs: Vec<binning::BinningSpec> = if cfg.bounded {
        crate::workload::paper_binning_specs_bounded(cfg.resolution)
    } else {
        paper_binning_specs(cfg.resolution)
    }
    .into_iter()
    .take(cfg.instances)
    .collect();

    let mut bridge = Bridge::new(node.clone());
    bridge.set_snapshot_mode(cfg.snapshot);
    if cfg.fused {
        // The fused arm: one suite shares each step's fetch across every
        // coordinate system, batches each system's ops into one kernel,
        // and reduces all grids in one packed allreduce.
        let suite = binning::BinningSuite::new(specs)
            .expect("suite over paper specs")
            .with_controls(controls);
        bridge.add_analysis(Box::new(suite), comm).expect("attach suite");
    } else {
        // The per-op reference arm: independent instances, one
        // pass/kernel/download/allreduce per operation.
        for spec in specs {
            let analysis = BinningAnalysis::new(spec).with_fused(false).with_controls(controls);
            bridge.add_analysis(Box::new(analysis), comm).expect("attach analysis");
        }
    }

    for _ in 0..cfg.steps {
        let solver_time = sim.step(comm).expect("solver step");
        let adaptor = NewtonAdaptor::new(&sim);
        bridge.execute(&adaptor, comm, solver_time).expect("in situ execute");
    }
    let profiler = bridge.finalize(comm).expect("finalize");
    let summary = profiler.summary();

    CaseOutcome {
        total: t_start.elapsed(),
        mean_solver: summary.mean_solver,
        mean_insitu: summary.mean_insitu,
        backends: profiler.backend_breakdown(),
        counters: profiler.counters_total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny, time-model-free case for functional testing.
    fn tiny(placement: Placement, execution: ExecutionMethod) -> CaseConfig {
        CaseConfig {
            placement,
            execution,
            num_devices: 4,
            bodies: 64,
            steps: 2,
            resolution: 8,
            instances: 2,
            time_scale: 0.0,
            seed: 1,
            pool: true,
            fused: false,
            bounded: false,
            snapshot: SnapshotMode::Deep,
            layout: hamr::Layout::Scalar,
        }
    }

    #[test]
    fn all_eight_cases_run_to_completion() {
        for cfg in CaseConfig::matrix(&tiny(Placement::Host, ExecutionMethod::Lockstep)) {
            let out = run_case(&cfg);
            assert_eq!(out.ranks, cfg.placement.ranks_per_node(4));
            assert!(out.total > Duration::ZERO);
        }
    }

    #[test]
    fn pool_toggle_controls_caching() {
        let base = tiny(Placement::Host, ExecutionMethod::Lockstep);
        let on = run_case(&base);
        assert!(on.pool_total().hits > 0, "steady-state iterations reuse pooled blocks");

        let off = run_case(&CaseConfig { pool: false, ..base });
        let t = off.pool_total();
        assert_eq!(t.hits, 0, "disabled pool never serves from cache");
        assert_eq!(t.cached_bytes, 0);
        assert_eq!(t.raw_allocs, t.misses);
    }

    #[test]
    fn fused_suite_packs_the_step_collectives() {
        // The asynchronous bounded workload: the fused arm must issue
        // exactly one allreduce per step per rank and one kernel launch +
        // one packed download per (coordinate system, fetched block).
        let base = tiny(Placement::SameDevice, ExecutionMethod::Asynchronous);
        let fused = run_case(&CaseConfig { fused: true, bounded: true, ..base });
        let ranks = fused.ranks as u64;
        assert_eq!(fused.counters.allreduces, base.steps * ranks, "one allreduce per step");
        let per_block = base.instances as u64 * base.steps * ranks;
        assert_eq!(fused.counters.kernel_launches, per_block, "one fused kernel per system");
        assert_eq!(fused.counters.downloads, per_block, "one packed download per system");

        let per_op = run_case(&CaseConfig { fused: false, bounded: true, ..base });
        assert!(per_op.counters.allreduces > fused.counters.allreduces);
        assert!(per_op.counters.kernel_launches > fused.counters.kernel_launches);
        assert!(per_op.counters.downloads > fused.counters.downloads);
        assert!(per_op.counters.fetches > fused.counters.fetches);
    }

    #[test]
    fn table1_rank_counts() {
        let base = tiny(Placement::Host, ExecutionMethod::Lockstep);
        let ranks: Vec<usize> = CaseConfig::matrix(&base)
            .iter()
            .map(|c| c.placement.ranks_per_node(c.num_devices))
            .collect();
        assert_eq!(ranks, vec![4, 4, 4, 4, 3, 3, 2, 2]);
    }
}
