//! ASCII renditions of the paper's bar charts, so the harness output can
//! be compared against Figures 2 and 3 at a glance.

use std::time::Duration;

/// Render labeled values as horizontal bars (Figure 2's layout: one bar
/// per case, grouped by placement).
pub fn ascii_bars(title: &str, rows: &[(String, Duration)], width: usize) -> String {
    let max = rows.iter().map(|(_, v)| v.as_secs_f64()).fold(0.0, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    for (label, value) in rows {
        let secs = value.as_secs_f64();
        let n = if max > 0.0 { (secs / max * width as f64).round() as usize } else { 0 };
        out.push_str(&format!("  {label:<label_w$}  {:>9.3}s  |{}\n", secs, "#".repeat(n)));
    }
    out
}

/// Render stacked (solver, in situ) pairs (Figure 3's layout: per-case
/// stacks of mean per-iteration times).
pub fn ascii_stack(title: &str, rows: &[(String, Duration, Duration)], width: usize) -> String {
    let max = rows.iter().map(|(_, a, b)| a.as_secs_f64() + b.as_secs_f64()).fold(0.0, f64::max);
    let label_w = rows.iter().map(|(l, _, _)| l.len()).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    for (label, solver, insitu) in rows {
        let (s, i) = (solver.as_secs_f64(), insitu.as_secs_f64());
        let scale = if max > 0.0 { width as f64 / max } else { 0.0 };
        let ns = (s * scale).round() as usize;
        let ni = (i * scale).round() as usize;
        out.push_str(&format!(
            "  {label:<label_w$}  solver {:>9.4}s + insitu {:>9.4}s  |{}{}\n",
            s,
            i,
            "=".repeat(ns),
            "#".repeat(ni)
        ));
    }
    out.push_str("  legend: = solver, # in situ (apparent)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_width() {
        let rows = vec![
            ("a".to_string(), Duration::from_secs(1)),
            ("bb".to_string(), Duration::from_secs(2)),
        ];
        let s = ascii_bars("t", &rows, 10);
        assert!(s.contains("|#####\n"), "half-length bar:\n{s}");
        assert!(s.contains("|##########\n"), "full-length bar:\n{s}");
    }

    #[test]
    fn stack_contains_both_segments() {
        let rows = vec![("case".to_string(), Duration::from_millis(30), Duration::from_millis(10))];
        let s = ascii_stack("t", &rows, 40);
        assert!(s.contains("==="));
        assert!(s.contains("#"));
        assert!(s.contains("legend"));
    }

    #[test]
    fn empty_rows_do_not_panic() {
        assert!(ascii_bars("t", &[], 10).contains('t'));
        assert!(ascii_stack("t", &[], 10).contains("legend"));
    }
}
