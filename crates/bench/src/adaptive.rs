//! Online adaptive placement & autotuning: the closed profiler loop
//! under the fused binning workload.
//!
//! Two experiments, both driven by the bridge-resident
//! [`sensei::AdaptiveController`] rather than the offline probe sweep of
//! `bench::layout`:
//!
//! * **steady** — a fixed per-step cost surface over (placement,
//!   layout). The static arms sweep the four corners of that surface;
//!   the adaptive arm starts from the *worst* static configuration and
//!   must converge, within a bounded number of steps, to within
//!   tolerance of the *best* static arm's steady-state apparent cost.
//! * **drift** — the workload's per-step cost profile changes mid-run
//!   (the stand-in for write rates / device contention shifting): phase
//!   one favors a device placement, phase two inverts the surface so
//!   the devices saturate and the host's lane-vectorized layouts win.
//!   Every static configuration is on the wrong side of one phase, so
//!   the adaptive arm — which re-probes when its settled baseline
//!   drifts — must beat *all* of them on end-to-end apparent cost.
//!
//! The per-step cost is injected as a modeled dispatch-side delay on top
//! of the real fused binning pass, so the controller tunes against the
//! same apparent-cost signal the profiler records, while the binned
//! *results* stay a pure function of the simulation step — every arm,
//! static or adaptive, must be bit-identical to the reference. A
//! mid-run engine rebuild that perturbed a value would fail the report,
//! not just a tolerance.

use std::sync::Arc;
use std::time::{Duration, Instant};

use devsim::SimNode;
use hamr::Layout;
use minimpi::World;
use parking_lot::Mutex;
use sensei::{
    AdaptiveConfig, AnalysisAdaptor, AnalysisCounters, ArrayMetadata, BackendControls, Bridge,
    DataAdaptor, DataRequirements, DeviceSpec, ExecContext, ExecutionMethod, MeshMetadata,
};
use svtk::{Allocator, DataObject, FieldAssociation, HamrStream, StreamMode, TableData};

use binning::{BinnedResult, BinningSpec, BinningSuite, ResultSink, VarOp};

use crate::case::bench_node_config;
use crate::chaos::results_bit_identical;

/// Scale of the adaptive bench.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveBenchConfig {
    /// Rows in the synthetic particle table.
    pub rows: usize,
    /// Steps per steady arm.
    pub steady_steps: u64,
    /// Steps per drift arm.
    pub drift_steps: u64,
    /// Step at which the drift workload's cost surface inverts.
    pub drift_at: u64,
    /// The steady adaptive arm must be settled by this step.
    pub converge_within: u64,
    /// Binning mesh resolution per axis.
    pub resolution: usize,
    /// Multiplier on the injected modeled per-step costs.
    pub time_scale: f64,
    /// Devices on the modeled node.
    pub num_devices: usize,
}

impl Default for AdaptiveBenchConfig {
    fn default() -> Self {
        AdaptiveBenchConfig {
            rows: 512,
            steady_steps: 36,
            drift_steps: 90,
            drift_at: 30,
            converge_within: 24,
            resolution: 8,
            time_scale: 1.0,
            num_devices: 4,
        }
    }
}

/// The steady adaptive arm must land within this fraction of the best
/// static arm's steady-state apparent cost (the issue's ~10% bar).
pub const ADAPTIVE_TOLERANCE: f64 = 0.10;

/// The static (placement, layout) grid: the corners of the cost
/// surface. First entry is the bit-identity reference; the adaptive
/// arms start from whichever of these measures worst.
pub const STATIC_ARMS: [(DeviceSpec, Layout); 4] = [
    (DeviceSpec::Host, Layout::Scalar),
    (DeviceSpec::Host, Layout::AoSoA { lane_width: 8 }),
    (DeviceSpec::Explicit(0), Layout::Scalar),
    (DeviceSpec::Explicit(0), Layout::AoS),
];

/// Which per-step cost surface an arm runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Phase-one surface for the whole run.
    Steady,
    /// Phase one until `drift_at`, inverted surface after.
    Drifting,
}

/// Modeled apparent cost (microseconds, before `time_scale`) of one
/// dispatch under the phase-one surface: the devices are fast and the
/// host is uniformly slow, so the best corner is (device, scalar) and
/// grouped layouts on the device pay the relayout pack.
fn phase1_us(c: &BackendControls) -> f64 {
    match c.device {
        DeviceSpec::Host => match c.layout {
            Layout::Scalar => 6200.0,
            Layout::SoA => 6100.0,
            Layout::AoSoA { lane_width: 4 } => 6050.0,
            Layout::AoSoA { .. } => 6000.0,
            Layout::AoS => 6300.0,
        },
        _ => match c.layout {
            Layout::Scalar => 1200.0,
            Layout::AoS => 2600.0,
            _ => 3000.0,
        },
    }
}

/// Phase-two surface: the devices saturate (contention / shifted write
/// rates) and the host's lane-vectorized layouts win, with AoSoA-8 the
/// new global best. Phase one's winner is this phase's worst region.
fn phase2_us(c: &BackendControls) -> f64 {
    match c.device {
        DeviceSpec::Host => match c.layout {
            Layout::Scalar => 2000.0,
            Layout::SoA => 1800.0,
            Layout::AoSoA { lane_width: 4 } => 1500.0,
            Layout::AoSoA { .. } => 1200.0,
            Layout::AoS => 2200.0,
        },
        _ => match c.layout {
            Layout::Scalar => 5200.0,
            _ => 5600.0,
        },
    }
}

fn modeled_cost(workload: Workload, drift_at: u64, scale: f64) -> CostFn {
    Arc::new(move |step: u64, c: &BackendControls| {
        let us = match workload {
            Workload::Steady => phase1_us(c),
            Workload::Drifting if step < drift_at => phase1_us(c),
            Workload::Drifting => phase2_us(c),
        };
        Duration::from_nanos((us * 1e3 * scale) as u64)
    })
}

type CostFn = Arc<dyn Fn(u64, &BackendControls) -> Duration + Send + Sync>;

/// The fused binning suite with the workload's modeled per-step cost
/// charged on the dispatch path — the controller and the profiler see
/// it as apparent cost, exactly like a real placement-dependent kernel,
/// while the binned results stay a pure function of the step.
struct ModeledSuite {
    inner: BinningSuite,
    cost: CostFn,
}

impl AnalysisAdaptor for ModeledSuite {
    fn name(&self) -> &str {
        "adaptive_binning"
    }
    fn controls(&self) -> &BackendControls {
        self.inner.controls()
    }
    fn controls_mut(&mut self) -> &mut BackendControls {
        self.inner.controls_mut()
    }
    fn required_arrays(&self) -> DataRequirements {
        self.inner.required_arrays()
    }
    fn counters(&self) -> Option<Arc<AnalysisCounters>> {
        self.inner.counters()
    }
    fn execute(&mut self, data: &dyn DataAdaptor, ctx: &ExecContext<'_>) -> sensei::Result<bool> {
        let delay = (self.cost)(data.time_step(), self.inner.controls());
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        self.inner.execute(data, ctx)
    }
    fn finalize(&mut self, ctx: &ExecContext<'_>) -> sensei::Result<()> {
        self.inner.finalize(ctx)
    }
}

/// The four columns of the synthetic particle table.
const FIELDS: [&str; 4] = ["x", "y", "m", "e"];

/// Deterministic per-(step, field, row) value (splitmix64): every arm
/// publishes bit-identical data whatever layout it is asked for.
fn field_value(step: u64, field: usize, i: usize) -> f64 {
    let mut z = step
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((field as u64) << 32)
        .wrapping_add(i as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let u = (z >> 11) as f64 / (1u64 << 53) as f64;
    match field {
        0 | 1 => u * 4.0 - 2.0,
        2 => 0.5 + u,
        _ => u * 100.0,
    }
}

/// A simulation stand-in that republishes the particle table each step
/// in whatever physical layout the bridge's *committed* back-end
/// controls ask for — the closed half of the loop: when the controller
/// re-picks a layout, the producer follows on the next step.
struct AdaptiveProducer {
    node: Arc<SimNode>,
    layout: Layout,
    rows: usize,
    step: u64,
    table: TableData,
}

impl AdaptiveProducer {
    fn new(node: Arc<SimNode>, layout: Layout, rows: usize) -> hamr::Result<Self> {
        let mut p = AdaptiveProducer { node, layout, rows, step: 0, table: TableData::new() };
        p.produce()?;
        Ok(p)
    }

    fn produce(&mut self) -> hamr::Result<()> {
        let mut table = TableData::new();
        for (f, name) in FIELDS.iter().enumerate() {
            let vals: Vec<f64> = (0..self.rows).map(|i| field_value(self.step, f, i)).collect();
            let arr = svtk::HamrDoubleArray::from_slice(
                *name,
                self.node.clone(),
                &vals,
                1,
                Allocator::Malloc,
                None,
                HamrStream::default_stream(),
                StreamMode::Sync,
            )?;
            table.set_column(arr.as_array_ref());
        }
        if self.layout != Layout::Scalar {
            table.group_columns(&FIELDS, self.layout, &self.node)?;
        }
        self.table = table;
        Ok(())
    }

    fn advance(&mut self, layout: Layout) -> hamr::Result<()> {
        self.step += 1;
        self.layout = layout;
        self.produce()
    }
}

impl DataAdaptor for AdaptiveProducer {
    fn num_meshes(&self) -> usize {
        1
    }

    fn mesh_metadata(&self, _i: usize) -> sensei::Result<MeshMetadata> {
        Ok(MeshMetadata {
            name: "particles".into(),
            arrays: FIELDS
                .iter()
                .map(|&name| ArrayMetadata {
                    name: name.to_string(),
                    association: FieldAssociation::Point,
                    components: 1,
                    type_name: "double",
                    device: None,
                })
                .collect(),
        })
    }

    fn mesh(&self, name: &str) -> sensei::Result<DataObject> {
        if name != "particles" {
            return Err(sensei::Error::NoSuchMesh { name: name.to_string() });
        }
        Ok(DataObject::Table(self.table.clone()))
    }

    fn time(&self) -> f64 {
        self.step as f64
    }

    fn time_step(&self) -> u64 {
        self.step
    }
}

/// The workload: two fused multi-op instances over the particle axes.
fn adaptive_specs(resolution: usize) -> Vec<BinningSpec> {
    let parse = |s: &str| VarOp::parse(s).expect("valid op");
    vec![
        BinningSpec::new(
            "particles",
            ("x", "y"),
            resolution,
            vec![parse("count()"), parse("sum(m)"), parse("avg(e)")],
        ),
        BinningSpec::new(
            "particles",
            ("y", "x"),
            resolution,
            vec![parse("count()"), parse("min(m)"), parse("max(e)")],
        ),
    ]
}

/// Outcome of one arm, static or adaptive.
#[derive(Debug, Clone)]
pub struct AdaptiveArm {
    /// Human-readable arm label, e.g. `static host/scalar`.
    pub label: String,
    /// The configuration the arm started from.
    pub start: BackendControls,
    /// The configuration it finished with (== `start` for statics).
    pub final_controls: BackendControls,
    /// The sink: one [`BinnedResult`] per (step, spec).
    pub results: Vec<BinnedResult>,
    /// Per-step apparent in situ cost, seconds, in step order.
    pub apparent_s: Vec<f64>,
    /// The step at which the controller (last) settled, if adaptive.
    pub converged_by: Option<u64>,
    /// Adaptive decisions applied (probes + commits + reverts).
    pub decisions: usize,
    /// The decision log, one `step action detail` line per decision.
    pub decision_log: Vec<String>,
    /// Probe-budget consumption at finalize.
    pub probes_used: u32,
    /// Aborted dispatches (must be zero everywhere).
    pub aborted: u64,
    /// Wall time for the whole arm.
    pub total_wall: Duration,
}

impl AdaptiveArm {
    /// Sum of per-step apparent cost — the end-to-end figure of merit.
    pub fn total_apparent(&self) -> f64 {
        self.apparent_s.iter().sum()
    }

    /// Mean apparent cost over the settled tail: steps at or after
    /// `converged_by` for adaptive arms, everything past the warm-up
    /// step for statics.
    pub fn steady_mean(&self) -> f64 {
        let from = self.converged_by.unwrap_or(1) as usize;
        let tail = &self.apparent_s[from.min(self.apparent_s.len().saturating_sub(1))..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

/// One workload's sweep: the static grid plus the adaptive arm that
/// started from the measured-worst static configuration.
#[derive(Debug, Clone)]
pub struct AdaptiveSweep {
    /// Which cost surface the sweep ran under.
    pub workload: Workload,
    /// Static arms, in [`STATIC_ARMS`] order.
    pub statics: Vec<AdaptiveArm>,
    /// The closed-loop arm.
    pub adaptive: AdaptiveArm,
}

impl AdaptiveSweep {
    /// The static arm with the lowest end-to-end apparent cost.
    pub fn best_static(&self) -> &AdaptiveArm {
        self.statics
            .iter()
            .min_by(|a, b| a.total_apparent().total_cmp(&b.total_apparent()))
            .expect("at least one static arm")
    }

    /// The static arm with the highest end-to-end apparent cost — the
    /// adaptive arm's deliberately bad starting point.
    pub fn worst_static(&self) -> &AdaptiveArm {
        self.statics
            .iter()
            .max_by(|a, b| a.total_apparent().total_cmp(&b.total_apparent()))
            .expect("at least one static arm")
    }

    /// True when every arm's results match the first static arm bit for
    /// bit — reconfiguration must never perturb a value.
    pub fn bit_identical(&self) -> bool {
        let reference = &self.statics[0].results;
        self.statics.iter().all(|a| results_bit_identical(reference, &a.results))
            && results_bit_identical(reference, &self.adaptive.results)
    }

    /// True when no arm aborted a dispatch.
    pub fn zero_aborts(&self) -> bool {
        self.statics.iter().all(|a| a.aborted == 0) && self.adaptive.aborted == 0
    }
}

/// The full adaptive report: both workloads' sweeps.
#[derive(Debug, Clone)]
pub struct AdaptiveBenchReport {
    /// The configuration that produced this report.
    pub config: AdaptiveBenchConfig,
    /// The steady-workload sweep.
    pub steady: AdaptiveSweep,
    /// The drifting-workload sweep.
    pub drift: AdaptiveSweep,
}

impl AdaptiveBenchReport {
    /// The headline convergence claim: starting from the worst static
    /// configuration, the controller settled within the step bound and
    /// its steady-state apparent cost is within `tolerance` of the best
    /// static arm's.
    pub fn converged_within(&self, tolerance: f64) -> bool {
        let a = &self.steady.adaptive;
        match a.converged_by {
            None => false,
            Some(step) => {
                step <= self.config.converge_within
                    && a.steady_mean()
                        <= self.steady.best_static().steady_mean() * (1.0 + tolerance)
            }
        }
    }

    /// The drift claim: the adaptive arm's end-to-end apparent cost
    /// beats every static arm's (each static is on the wrong side of
    /// one phase; the controller switches sides).
    pub fn drift_adaptive_wins(&self) -> bool {
        let total = self.drift.adaptive.total_apparent();
        self.drift.statics.iter().all(|s| total < s.total_apparent())
    }

    /// True when both sweeps are bit-identical to their references.
    pub fn all_bit_identical(&self) -> bool {
        self.steady.bit_identical() && self.drift.bit_identical()
    }

    /// True when no arm in either sweep aborted a dispatch.
    pub fn zero_aborts(&self) -> bool {
        self.steady.zero_aborts() && self.drift.zero_aborts()
    }
}

/// Human-readable configuration label.
pub fn controls_label(c: &BackendControls) -> String {
    let place = match c.device {
        DeviceSpec::Host => "host".to_string(),
        DeviceSpec::Explicit(d) => format!("device{d}"),
        DeviceSpec::Auto => "auto".to_string(),
    };
    format!("{place}/{}", c.layout.name())
}

fn base_controls(device: DeviceSpec, layout: Layout) -> BackendControls {
    BackendControls { execution: ExecutionMethod::Lockstep, device, layout, ..Default::default() }
}

/// Run one arm. `adaptive` enables the closed loop (placement + layout
/// dimensions; execution and snapshot tuning are exercised by the
/// sensei-level tests — under lockstep the apparent-cost objective is
/// the dispatch itself, which is what the injected model shapes).
pub fn run_adaptive_arm(
    cfg: &AdaptiveBenchConfig,
    workload: Workload,
    start: BackendControls,
    adaptive: bool,
) -> AdaptiveArm {
    let steps = match workload {
        Workload::Steady => cfg.steady_steps,
        Workload::Drifting => cfg.drift_steps,
    };
    // The node's intrinsic time model is disabled: the injected cost
    // surface *is* the workload under test, and the real fused binning
    // pass (a few hundred rows) contributes equally to every arm. Left
    // on, the device placements' launch/alloc overheads would blur the
    // surface the controller is being graded against.
    let node = SimNode::new(bench_node_config(cfg.num_devices, 0.0));
    let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
    let cost = modeled_cost(workload, cfg.drift_at, cfg.time_scale);

    let cfg = *cfg;
    let run_node = node.clone();
    let run_sink = sink.clone();
    type ArmOut = (Vec<f64>, Option<u64>, Vec<String>, u32, u64, BackendControls, Duration);
    let outcomes: Vec<ArmOut> = World::new(1).run(move |comm| {
        let node = run_node.clone();
        let t0 = Instant::now();

        let sink = run_sink.clone();
        let resolution = cfg.resolution;
        let cost = cost.clone();
        let factory: sensei::AdaptorFactory = Box::new(move |controls: &BackendControls| {
            let suite = BinningSuite::new(adaptive_specs(resolution))
                .map_err(|e| sensei::Error::Analysis(format!("binning suite: {e}")))?
                .with_controls(*controls)
                .with_sink(sink.clone());
            Ok(Box::new(ModeledSuite { inner: suite, cost: cost.clone() })
                as Box<dyn AnalysisAdaptor>)
        });

        let mut bridge = Bridge::new(node.clone());
        bridge.add_reconfigurable_analysis(start, factory, &comm).expect("attach suite");
        if adaptive {
            bridge.enable_adaptive(AdaptiveConfig {
                window: 2,
                warmup: 1,
                cooldown: 1,
                // The injected drift is a >4x cost jump; demanding 2x
                // before re-probing keeps sleep-timer jitter (which can
                // overshoot well past the default 1.5x on a ~1 ms floor)
                // from burning probe budget on phantom drift.
                drift_margin: 1.0,
                tune_execution: false,
                tune_snapshot: false,
                ..Default::default()
            });
        }

        let mut producer =
            AdaptiveProducer::new(node.clone(), start.layout, cfg.rows).expect("producer");
        let mut converged_by: Option<u64> = None;
        for step in 0..steps {
            bridge.execute(&producer, &comm, Duration::from_millis(1)).expect("in situ execute");
            // Settling is sticky until drift re-opens probing; keep the
            // *last* settle step so the drift arm reports its re-converge.
            if let Some(ctrl) = bridge.adaptive_controller() {
                if ctrl.settled() && converged_by.is_none() {
                    converged_by = Some(step);
                } else if !ctrl.settled() {
                    converged_by = None;
                }
            }
            // The producer follows the committed layout — the loop's
            // actuation path back into the data model.
            let layout = bridge.backend_controls(0).expect("backend 0").layout;
            producer.advance(layout).expect("producer step");
        }
        let final_controls = bridge.backend_controls(0).expect("backend 0");
        let probes = bridge.adaptive_controller().map_or(0, |c| c.probes_used());
        let profiler = bridge.finalize(&comm).expect("finalize");
        let mut apparent = vec![0.0f64; steps as usize];
        for s in profiler.backend_samples() {
            if let Some(slot) = apparent.get_mut(s.step as usize) {
                *slot += s.apparent.as_secs_f64();
            }
        }
        let decision_log: Vec<String> = profiler
            .adaptive_samples()
            .iter()
            .map(|s| format!("{} {} {}", s.step, s.action, s.detail))
            .collect();
        let aborted = profiler.counters_total().faults.aborted;
        (apparent, converged_by, decision_log, probes, aborted, final_controls, t0.elapsed())
    });

    let (apparent_s, converged_by, decision_log, probes_used, aborted, final_controls, total_wall) =
        outcomes.into_iter().next().expect("one rank");
    let decisions = decision_log.len();
    let results = sink.lock().clone();
    AdaptiveArm {
        label: if adaptive {
            format!("adaptive from {}", controls_label(&start))
        } else {
            format!("static {}", controls_label(&start))
        },
        start,
        final_controls,
        results,
        apparent_s,
        converged_by,
        decisions,
        decision_log,
        probes_used,
        aborted,
        total_wall,
    }
}

fn run_sweep(cfg: &AdaptiveBenchConfig, workload: Workload) -> AdaptiveSweep {
    let statics: Vec<AdaptiveArm> = STATIC_ARMS
        .iter()
        .map(|&(device, layout)| {
            run_adaptive_arm(cfg, workload, base_controls(device, layout), false)
        })
        .collect();
    let worst = statics
        .iter()
        .max_by(|a, b| a.total_apparent().total_cmp(&b.total_apparent()))
        .expect("static arms")
        .start;
    let adaptive = run_adaptive_arm(cfg, workload, worst, true);
    AdaptiveSweep { workload, statics, adaptive }
}

/// Run the full adaptive bench: static grids and closed-loop arms over
/// both workloads.
pub fn run_adaptive_bench(cfg: &AdaptiveBenchConfig) -> AdaptiveBenchReport {
    AdaptiveBenchReport {
        config: *cfg,
        steady: run_sweep(cfg, Workload::Steady),
        drift: run_sweep(cfg, Workload::Drifting),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AdaptiveBenchConfig {
        AdaptiveBenchConfig {
            rows: 197,
            steady_steps: 24,
            drift_steps: 60,
            drift_at: 20,
            converge_within: 20,
            resolution: 8,
            // Full-scale injected costs (ms-range sleeps): the drift
            // watcher compares a settled baseline against later windows,
            // and sub-ms sleeps get stretched enough by an oversubscribed
            // debug test run to mask the surface's inversion under the 2x
            // drift margin. One device trims the dedicated-device probes
            // the full harness config exercises.
            time_scale: 1.0,
            num_devices: 1,
        }
    }

    #[test]
    fn steady_adaptive_converges_from_the_worst_corner() {
        let cfg = tiny();
        let sweep = run_sweep(&cfg, Workload::Steady);
        assert_eq!(sweep.adaptive.start, sweep.worst_static().start, "starts from the worst arm");
        assert!(sweep.adaptive.converged_by.is_some(), "controller settled");
        // The cost surface's global best is (device, scalar); the
        // controller must land there from (host, scalar).
        assert_ne!(sweep.adaptive.final_controls.device, DeviceSpec::Host);
        assert_eq!(sweep.adaptive.final_controls.layout, Layout::Scalar);
        assert!(sweep.bit_identical(), "closed-loop reconfiguration never perturbs results");
        assert!(sweep.zero_aborts());
        assert!(sweep.adaptive.decisions > 0, "the decision log is populated");
    }

    #[test]
    fn drifting_workload_beats_every_static_arm() {
        let cfg = tiny();
        let report = AdaptiveBenchReport {
            config: cfg,
            steady: run_sweep(&cfg, Workload::Steady),
            drift: run_sweep(&cfg, Workload::Drifting),
        };
        assert!(report.all_bit_identical());
        assert!(report.zero_aborts());
        assert!(
            report.drift_adaptive_wins(),
            "adaptive {:.6}s must beat statics {:?}",
            report.drift.adaptive.total_apparent(),
            report
                .drift
                .statics
                .iter()
                .map(|s| (s.label.clone(), s.total_apparent()))
                .collect::<Vec<_>>(),
        );
        // After the drift the controller must have crossed to the host
        // side of the surface.
        assert_eq!(report.drift.adaptive.final_controls.device, DeviceSpec::Host);
    }

    #[test]
    fn arm_accounting_is_structurally_sound() {
        let cfg = AdaptiveBenchConfig { steady_steps: 4, time_scale: 0.0, ..tiny() };
        let arm = run_adaptive_arm(
            &cfg,
            Workload::Steady,
            base_controls(DeviceSpec::Host, Layout::Scalar),
            false,
        );
        assert_eq!(arm.apparent_s.len(), cfg.steady_steps as usize);
        assert_eq!(arm.results.len(), cfg.steady_steps as usize * 2, "one result per (step, spec)");
        assert_eq!(arm.converged_by, None, "statics never report convergence");
        assert_eq!(arm.decisions, 0);
        assert_eq!(arm.final_controls, arm.start);
    }
}
