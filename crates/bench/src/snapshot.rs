//! Snapshot mode: the bounded fused binning workload under the three
//! snapshot capture modes.
//!
//! Three arms of the same asynchronous, host-placed workload (Newton++
//! feeding a [`binning::BinningSuite`] over the bounded paper specs),
//! differing only in how the bridge's snapshot layer captures the
//! solver's arrays each step:
//!
//! 1. **deep** — the reference arm: every selected array is deep-copied
//!    at every capture, as the pre-CoW bridge always did.
//! 2. **delta** — only generation-advanced arrays are copied; arrays the
//!    solver has not touched since the previous capture are shared
//!    zero-copy behind a pin. Newton++ rewrites all but the mass column
//!    every step, so the delta arm's savings are modest — it bounds what
//!    generation gating alone can buy on a write-heavy solver.
//! 3. **cow** — every array is shared zero-copy at capture; a copy is
//!    materialized lazily only when the solver overwrites a still-pinned
//!    array. Because the host-placed suite fetches (and thereby detaches
//!    from) the shares early in the step while the solver's next kernels
//!    are still queued behind modeled launch overheads, only the arrays
//!    the first kernel writes fault — the steady-state copy traffic
//!    drops by the share of arrays that outrun the consumer.
//!
//! The arms run the identical simulation (same IC seed), so rank 0's
//! [`BinnedResult`] streams must be bit-identical across all three: CoW
//! sharing must never let a capture observe post-capture writes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use devsim::{NodeConfig, SimNode};
use minimpi::World;
use newtonpp::{forces::Gravity, ic::UniformIc, IcKind, Newton, NewtonAdaptor, NewtonConfig};
use parking_lot::Mutex;
use sensei::{
    select_device, BackendControls, Bridge, ExecutionMethod, Placement, SnapshotCounterSnapshot,
    SnapshotMode,
};

use binning::{BinnedResult, BinningSuite, ResultSink};

use crate::case::bench_node_config;
use crate::chaos::results_bit_identical;
use crate::workload::paper_binning_specs_bounded;

/// Scale of the snapshot A/B workload.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotBenchConfig {
    /// Global body count.
    pub bodies: usize,
    /// Simulation steps per arm (one capture per step).
    pub steps: u64,
    /// Binning mesh resolution per axis.
    pub resolution: usize,
    /// Binning instances in the suite.
    pub instances: usize,
    /// Multiplier on modeled durations.
    pub time_scale: f64,
}

impl Default for SnapshotBenchConfig {
    fn default() -> Self {
        SnapshotBenchConfig {
            bodies: 2048,
            steps: 10,
            resolution: 32,
            instances: 9,
            time_scale: 1.0,
        }
    }
}

/// Outcome of one snapshot arm.
#[derive(Debug, Clone)]
pub struct SnapshotArm {
    /// The capture mode the arm ran under.
    pub mode: SnapshotMode,
    /// Rank 0's sink: one [`BinnedResult`] per (delivered step, spec).
    pub results: Vec<BinnedResult>,
    /// The snapshot layer's counters at finalize.
    pub counters: SnapshotCounterSnapshot,
    /// Mean solver time per iteration.
    pub mean_solver: Duration,
    /// Mean *apparent* in situ time per iteration (submission + capture).
    pub mean_insitu: Duration,
    /// Wall time for the whole arm.
    pub total: Duration,
}

impl SnapshotArm {
    /// Capture-copy bytes per step (eager copies plus CoW fault copies).
    pub fn bytes_per_step(&self, steps: u64) -> f64 {
        self.counters.bytes_copied as f64 / steps.max(1) as f64
    }
}

/// The three arms of one snapshot A/B run.
#[derive(Debug, Clone)]
pub struct SnapshotReport {
    /// The configuration that produced this report.
    pub config: SnapshotBenchConfig,
    /// Unconditional per-step deep copies (the reference).
    pub deep: SnapshotArm,
    /// Generation-gated eager copies.
    pub delta: SnapshotArm,
    /// Zero-copy shares with lazy fault copies.
    pub cow: SnapshotArm,
}

impl SnapshotReport {
    /// The arms in report order.
    pub fn arms(&self) -> [&SnapshotArm; 3] {
        [&self.deep, &self.delta, &self.cow]
    }

    /// True when `arm`'s results match the deep arm bit for bit.
    pub fn bit_identical_to_deep(&self, arm: &SnapshotArm) -> bool {
        results_bit_identical(&self.deep.results, &arm.results)
    }

    /// Fraction of the deep arm's copy traffic the CoW arm avoided
    /// (1.0 = no bytes copied at all).
    pub fn cow_bytes_reduction(&self) -> f64 {
        let deep = self.deep.counters.bytes_copied as f64;
        if deep == 0.0 {
            return 0.0;
        }
        1.0 - self.cow.counters.bytes_copied as f64 / deep
    }
}

/// The modeled node for the snapshot arms. Built from the bench node
/// with a larger kernel launch overhead and a faster link: the CoW
/// claim under test is about *ordering* — the host-placed consumer
/// fetches and releases its shares while the solver's next kernel is
/// still pending launch — so the gap between consecutive kernel bodies
/// must comfortably cover the worker's fetch turnaround, keeping the
/// steady-state fault set at the first kernel's write set rather than
/// racing CI scheduling jitter.
fn snapshot_node_config(time_scale: f64) -> NodeConfig {
    let mut cfg = bench_node_config(1, time_scale);
    cfg.device.launch_overhead = Duration::from_millis(2);
    cfg.link.latency = Duration::from_micros(5);
    cfg
}

/// Run the three arms and collect their outcomes.
pub fn run_snapshot_bench(cfg: &SnapshotBenchConfig) -> SnapshotReport {
    SnapshotReport {
        config: *cfg,
        deep: run_arm(cfg, SnapshotMode::Deep),
        delta: run_arm(cfg, SnapshotMode::Delta),
        cow: run_arm(cfg, SnapshotMode::Cow),
    }
}

fn run_arm(cfg: &SnapshotBenchConfig, mode: SnapshotMode) -> SnapshotArm {
    let node = SimNode::new(snapshot_node_config(cfg.time_scale));
    let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));

    let cfg = *cfg;
    let run_node = node.clone();
    let run_sink = sink.clone();
    let outcomes: Vec<(SnapshotCounterSnapshot, Duration, Duration, Duration)> =
        World::new(1).run(move |comm| {
            let node = run_node.clone();
            let t0 = Instant::now();

            // Solver on the node's one device; the suite host-placed and
            // asynchronous, so every capture feeds a threaded worker.
            let placement = Placement::Host;
            let sim_selector = placement.sim_selector(1);
            let sim_device = select_device(comm.rank(), 1, &sim_selector);
            let (device_spec, selector) = placement.insitu_spec(1);
            let controls = BackendControls {
                execution: ExecutionMethod::Asynchronous,
                device: device_spec,
                selector,
                queue_depth: cfg.steps.max(1) as usize,
                ..Default::default()
            };

            let specs: Vec<binning::BinningSpec> = paper_binning_specs_bounded(cfg.resolution)
                .into_iter()
                .take(cfg.instances)
                .collect();
            let mut suite =
                BinningSuite::new(specs).expect("suite over paper specs").with_controls(controls);
            if comm.rank() == 0 {
                suite = suite.with_sink(run_sink.clone());
            }
            let mut bridge = Bridge::new(node.clone());
            bridge.set_snapshot_mode(mode);
            bridge.add_analysis(Box::new(suite), &comm).expect("attach suite");

            // Fixed IC seed: all three arms simulate identical data, so
            // the bit-identical claim compares capture modes, not seeds.
            let newton_cfg = NewtonConfig {
                ic: IcKind::Uniform(UniformIc {
                    n: cfg.bodies,
                    seed: 20230817,
                    half_width: 1.0,
                    mass_range: (0.5, 1.5),
                    velocity_scale: 0.1,
                    central_mass: cfg.bodies as f64,
                }),
                dt: 1e-4,
                grav: Gravity { g: 1.0, eps: 0.05 },
                x_extent: (-2.0, 2.0),
                repartition_every: None,
            };
            let mut sim = Newton::new(node.clone(), &comm, sim_device, newton_cfg)
                .expect("simulation initialization");

            for _ in 0..cfg.steps {
                let solver_time = sim.step(&comm).expect("solver step");
                let adaptor = NewtonAdaptor::new(&sim);
                bridge.execute(&adaptor, &comm, solver_time).expect("in situ execute");
            }
            let profiler = bridge.finalize(&comm).expect("finalize");
            let counters =
                profiler.snapshot_samples().last().map(|s| s.counters).unwrap_or_default();
            let summary = profiler.summary();
            (counters, summary.mean_solver, summary.mean_insitu, t0.elapsed())
        });

    let (counters, mean_solver, mean_insitu, total) = outcomes[0];
    let results = sink.lock().clone();
    SnapshotArm { mode, results, counters, mean_solver, mean_insitu, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SnapshotBenchConfig {
        SnapshotBenchConfig { bodies: 64, steps: 4, resolution: 8, instances: 3, time_scale: 1.0 }
    }

    #[test]
    fn arms_are_bit_identical_and_cow_copies_less() {
        let cfg = tiny();
        let report = run_snapshot_bench(&cfg);

        let d = &report.deep;
        assert_eq!(d.results.len(), cfg.steps as usize * cfg.instances);
        assert_eq!(d.counters.arrays_shared, 0, "deep mode never shares");
        assert_eq!(d.counters.cow_faults, 0, "deep mode never faults");
        assert!(d.counters.bytes_copied > 0);

        for arm in [&report.delta, &report.cow] {
            assert!(
                report.bit_identical_to_deep(arm),
                "{} arm results must match the deep reference",
                arm.mode.name()
            );
        }

        // Newton++ leaves the mass column untouched, so delta must share
        // at least that one array per steady-state capture.
        assert!(report.delta.counters.arrays_shared > 0, "delta shares unmodified arrays");
        assert!(report.delta.counters.bytes_copied < d.counters.bytes_copied);

        // CoW shares everything and only fault-copies what the solver
        // overwrites while the consumer still holds the pin.
        assert!(report.cow.counters.arrays_shared > report.delta.counters.arrays_shared);
        assert!(report.cow.counters.bytes_copied < d.counters.bytes_copied);
    }
}
