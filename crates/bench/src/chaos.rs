//! Chaos mode: the bounded fused binning workload under a deterministic
//! fault schedule.
//!
//! Three arms of the same workload (Newton++ feeding a
//! [`binning::BinningSuite`] over the bounded paper specs):
//!
//! 1. **baseline** — injection disabled; captures the reference
//!    [`BinnedResult`]s on rank 0.
//! 2. **retry** — every rank's first two armed kernel launches fail
//!    (`stream.launch`), plus a slow-rank delay on rank 0's first two
//!    armed collectives (`mpi.collective`); the suite runs lockstep on
//!    all ranks under [`RecoveryPolicy::Retry`]. Retrying a failed
//!    execute is collective-safe here because every injection site the
//!    schedule touches (fetch copies, kernel launches, pooled
//!    allocations) fires *before* the step's single packed allreduce and
//!    the sink push happens after it: a failed attempt is rank-local,
//!    and the eventual successful attempt issues the step's one
//!    collective, keeping the communicator matched. The recovered run's
//!    results must therefore be bit-identical to the baseline.
//! 3. **skip_step** — a single-rank asynchronous run where one pooled
//!    allocation fails in the in situ worker; under
//!    [`RecoveryPolicy::SkipStep`] the worker drops that step and keeps
//!    consuming, the solver runs to completion, and exactly one step's
//!    results are missing from the sink.
//!
//! Faults only fire on armed threads, so the solver itself is never
//! injected — the chaos claims are about the in situ path staying
//! recoverable, not about surviving solver corruption.

use std::sync::Arc;
use std::time::Duration;

use devsim::fault::site;
use devsim::{FaultConfig, FaultRule, SimNode};
use minimpi::World;
use newtonpp::{forces::Gravity, ic::UniformIc, IcKind, Newton, NewtonAdaptor, NewtonConfig};
use parking_lot::Mutex;
use sensei::{
    select_device, BackendControls, Bridge, ExecutionMethod, FaultSnapshot, Placement,
    RecoveryPolicy,
};

use binning::{BinnedResult, BinningSuite, ResultSink};

use crate::case::bench_node_config;
use crate::workload::paper_binning_specs_bounded;

/// Scale of the chaos workload. The schedule's rules fire with
/// probability 1 under occurrence caps, so the hard assertions hold for
/// any `seed`; the seed still reshuffles any probabilistic rules a user
/// adds on top.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed mixed into every fault-sampling decision.
    pub seed: u64,
    /// Devices on the simulated node == ranks of the multi-rank arms.
    pub num_devices: usize,
    /// Global body count.
    pub bodies: usize,
    /// Simulation steps per arm.
    pub steps: u64,
    /// Binning mesh resolution per axis.
    pub resolution: usize,
    /// Binning instances in the suite.
    pub instances: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig { seed: 7, num_devices: 4, bodies: 256, steps: 6, resolution: 16, instances: 3 }
    }
}

/// Outcome of one chaos arm.
#[derive(Debug, Clone)]
pub struct ChaosArm {
    /// Arm name: `baseline`, `retry`, or `skip_step`.
    pub arm: &'static str,
    /// The recovery policy the suite ran under.
    pub policy: &'static str,
    /// Ranks the arm ran on.
    pub ranks: usize,
    /// Solver steps completed per rank (the solver must always finish).
    pub steps_completed: u64,
    /// `bridge.execute` calls that returned an error.
    pub dispatch_errors: u64,
    /// Rank 0's sink: one [`BinnedResult`] per (delivered step, spec).
    pub results: Vec<BinnedResult>,
    /// Recovery outcomes summed over every rank's back-ends.
    pub faults: FaultSnapshot,
    /// Error-kind injections the node's injector actually performed.
    pub injector_errors: u64,
    /// Delay-kind injections (slow-rank stalls) actually performed.
    pub injector_delays: u64,
}

/// The three chaos arms of one seeded run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The configuration that produced this report.
    pub config: ChaosConfig,
    /// Fault-free reference.
    pub baseline: ChaosArm,
    /// Multi-rank lockstep arm under `Retry`.
    pub retry: ChaosArm,
    /// Single-rank asynchronous arm under `SkipStep`.
    pub skip: ChaosArm,
}

impl ChaosReport {
    /// True when the retry arm's recovered results match the baseline
    /// bit for bit.
    pub fn retry_bit_identical(&self) -> bool {
        results_bit_identical(&self.baseline.results, &self.retry.results)
    }
}

/// Bit-exact comparison of two result streams: same length and order,
/// same steps/axes/grids, and every output array equal under
/// `f64::to_bits` (no tolerance — recovery must not perturb the data).
pub fn results_bit_identical(a: &[BinnedResult], b: &[BinnedResult]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.step == y.step
                && x.axes == y.axes
                && x.grid == y.grid
                && x.arrays.len() == y.arrays.len()
                && x.arrays.iter().zip(&y.arrays).all(|((xn, xv), (yn, yv))| {
                    xn == yn
                        && xv.len() == yv.len()
                        && xv.iter().zip(yv).all(|(p, q)| p.to_bits() == q.to_bits())
                })
        })
}

/// Run the three arms and collect their outcomes.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let baseline = run_arm(
        cfg,
        "baseline",
        None,
        RecoveryPolicy::Abort,
        ExecutionMethod::Lockstep,
        cfg.num_devices,
    );

    // Every rank's first two armed kernel launches fail (per-rank rules:
    // `max_injections` caps a rule globally, so each rank gets its own),
    // and rank 0 stalls 2 ms at its first two armed collectives. Two
    // consecutive failures stay inside the 3-retry budget.
    let mut retry_schedule = FaultConfig::seeded(cfg.seed).with_rule(
        FaultRule::delay(site::MPI_COLLECTIVE, Duration::from_millis(2))
            .with_max_injections(2)
            .for_rank(0),
    );
    for rank in 0..cfg.num_devices {
        retry_schedule = retry_schedule
            .with_rule(FaultRule::error(site::STREAM_LAUNCH).with_max_injections(2).for_rank(rank));
    }
    let retry = run_arm(
        cfg,
        "retry",
        Some(retry_schedule),
        RecoveryPolicy::Retry { max_retries: 3, backoff_ms: 1 },
        ExecutionMethod::Lockstep,
        cfg.num_devices,
    );

    // One pooled allocation fails inside the asynchronous in situ worker;
    // single-rank so the dropped step skips no collectives.
    let skip_schedule = FaultConfig::seeded(cfg.seed)
        .with_rule(FaultRule::error(site::POOL_ALLOC).with_max_injections(1));
    let skip = run_arm(
        cfg,
        "skip_step",
        Some(skip_schedule),
        RecoveryPolicy::SkipStep,
        ExecutionMethod::Asynchronous,
        1,
    );

    ChaosReport { config: *cfg, baseline, retry, skip }
}

fn run_arm(
    cfg: &ChaosConfig,
    arm: &'static str,
    schedule: Option<FaultConfig>,
    recovery: RecoveryPolicy,
    execution: ExecutionMethod,
    ranks: usize,
) -> ChaosArm {
    // Modeled time is irrelevant to the recovery claims; scale 0 keeps
    // the chaos arms fast enough for CI.
    let node = SimNode::new(bench_node_config(ranks, 0.0));
    match &schedule {
        Some(f) => node.fault().configure(f.clone()),
        None => node.fault().clear(),
    }
    let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));

    let cfg = *cfg;
    let run_node = node.clone();
    let run_sink = sink.clone();
    let outcomes: Vec<(u64, u64, sensei::CounterSnapshot)> = World::new(ranks).run(move |comm| {
        let node = run_node.clone();

        // Slow-rank modeling: every collective consults the injector at
        // entry. Armed (in situ) collectives can be stalled by
        // `mpi.collective` delay rules; the solver's collectives run
        // unarmed and are exempt. Installed before the bridge attaches
        // back-ends so dup'd per-backend communicators inherit it.
        let fault = node.fault().clone();
        comm.set_collective_hook(Arc::new(move |_seq| {
            let _ = fault.check(site::MPI_COLLECTIVE);
        }));

        let placement = Placement::SameDevice;
        let sim_selector = placement.sim_selector(ranks);
        let sim_device = select_device(comm.rank(), ranks, &sim_selector);
        let (device_spec, selector) = placement.insitu_spec(ranks);
        let controls = BackendControls {
            execution,
            device: device_spec,
            selector,
            queue_depth: cfg.steps.max(1) as usize,
            recovery,
            ..Default::default()
        };

        let specs: Vec<binning::BinningSpec> =
            paper_binning_specs_bounded(cfg.resolution).into_iter().take(cfg.instances).collect();
        let mut suite =
            BinningSuite::new(specs).expect("suite over paper specs").with_controls(controls);
        if comm.rank() == 0 {
            suite = suite.with_sink(run_sink.clone());
        }
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(suite), &comm).expect("attach suite");

        // The IC seed is fixed (independent of the fault seed) so every
        // arm simulates identical data — the bit-identical claim compares
        // recovery arms against the baseline, not seeds against seeds.
        let newton_cfg = NewtonConfig {
            ic: IcKind::Uniform(UniformIc {
                n: cfg.bodies,
                seed: 20230817,
                half_width: 1.0,
                mass_range: (0.5, 1.5),
                velocity_scale: 0.1,
                central_mass: cfg.bodies as f64,
            }),
            dt: 1e-4,
            grav: Gravity { g: 1.0, eps: 0.05 },
            x_extent: (-2.0, 2.0),
            repartition_every: None,
        };
        let mut sim = Newton::new(node.clone(), &comm, sim_device, newton_cfg)
            .expect("simulation initialization");

        let mut steps_completed = 0u64;
        let mut dispatch_errors = 0u64;
        for _ in 0..cfg.steps {
            // The solver must survive every arm: faults never target it.
            let solver_time = sim.step(&comm).expect("solver step survives chaos");
            let adaptor = NewtonAdaptor::new(&sim);
            if bridge.execute(&adaptor, &comm, solver_time).is_err() {
                dispatch_errors += 1;
            }
            steps_completed += 1;
        }
        let profiler = bridge.finalize(&comm).expect("finalize survives recovery");
        comm.clear_collective_hook();
        (steps_completed, dispatch_errors, profiler.counters_total())
    });

    let stats = node.fault().stats();
    node.fault().clear();

    let mut faults = FaultSnapshot::default();
    let mut steps_completed = 0u64;
    let mut dispatch_errors = 0u64;
    for (steps, errors, counters) in &outcomes {
        faults.accumulate(&counters.faults);
        steps_completed = steps_completed.max(*steps);
        dispatch_errors += errors;
    }
    let results = sink.lock().clone();

    ChaosArm {
        arm,
        policy: recovery.name(),
        ranks,
        steps_completed,
        dispatch_errors,
        results,
        faults,
        injector_errors: stats.injected_errors,
        injector_delays: stats.injected_delays,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChaosConfig {
        ChaosConfig { num_devices: 2, bodies: 64, steps: 3, resolution: 8, instances: 2, seed: 11 }
    }

    #[test]
    fn retry_arm_recovers_bit_identically() {
        let cfg = tiny();
        let report = run_chaos(&cfg);
        let ranks = report.retry.ranks as u64;

        let b = &report.baseline;
        assert_eq!(b.faults, FaultSnapshot::default(), "baseline injects nothing");
        assert_eq!(b.dispatch_errors, 0);
        assert_eq!(b.results.len(), (cfg.steps as usize) * cfg.instances);

        let r = &report.retry;
        assert_eq!(r.faults.injected, ranks, "one injected dispatch per rank");
        assert_eq!(r.faults.retried, 2 * ranks, "two retry attempts per rank");
        assert_eq!(r.faults.recovered, ranks);
        assert_eq!(r.faults.aborted, 0);
        assert_eq!(r.dispatch_errors, 0, "recovery hides the faults from the solver loop");
        assert_eq!(r.injector_delays, 2, "rank 0 stalled at its first two armed collectives");
        assert!(report.retry_bit_identical(), "recovered results must match the baseline");
    }

    #[test]
    fn skip_arm_drops_one_step_and_finishes() {
        let cfg = tiny();
        let report = run_chaos(&cfg);
        let s = &report.skip;
        assert_eq!(s.ranks, 1);
        assert_eq!(s.steps_completed, cfg.steps, "the solver runs to completion");
        assert_eq!(s.dispatch_errors, 0);
        assert_eq!(s.faults.skipped, 1, "exactly one step is dropped");
        assert_eq!(s.faults.aborted, 0);
        assert_eq!(
            s.results.len(),
            (cfg.steps as usize - 1) * cfg.instances,
            "one step's results are missing, the rest are delivered"
        );
    }
}
