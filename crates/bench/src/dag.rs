//! DAG vs threaded execution A/B on a skewed mixed-cost binning workload.
//!
//! Five arms of the same workload (a static particle table feeding a
//! [`binning::BinningSuite`] over specs with deliberately unequal kernel
//! costs — heavy multi-op instances interleaved with count-only ones):
//!
//! 1. **inline** — the lockstep [`sensei::InlineEngine`]; captures the
//!    reference [`BinnedResult`]s and the full apparent in situ cost.
//! 2. **async_fused** — the threaded [`sensei::ThreadedEngine`]: the
//!    suite's inline `execute` on a persistent worker, all kernels
//!    routed to one device's streams.
//! 3. **dag/{deep,delta,cow}** (three arms) — the dataflow
//!    [`sensei::DagEngine`]: the suite emits a task graph per step and
//!    the work-stealing [`sensei::DagScheduler`] spreads the kernel
//!    tasks across *every* device on the node, overlapping downloads
//!    by construction.
//!
//! The snapshot queue is kept shallow (`queue_depth`), so once it fills
//! the producer runs at the in situ worker's pace and the *apparent*
//! cost of the threaded and dag arms measures their actual throughput —
//! which is what the harness's `dag` mode asserts on: the dag arms must
//! beat the threaded arm on both apparent cost and total wall time,
//! with a nonzero steal count and results bit-identical to the inline
//! reference.

use std::sync::Arc;
use std::time::{Duration, Instant};

use devsim::SimNode;
use minimpi::World;
use parking_lot::Mutex;
use sensei::{
    BackendControls, Bridge, DeviceSpec, ExecutionMethod, MeshMetadata, Result, SchedulerSnapshot,
    SnapshotMode,
};
use svtk::{Allocator, DataObject, HamrDataArray, HamrStream, StreamMode, TableData};

use binning::{BinOp, BinnedResult, BinningSpec, BinningSuite, ResultSink, VarOp};

use crate::case::bench_node_config;

/// Scale of the dag A/B workload.
#[derive(Debug, Clone, Copy)]
pub struct DagBenchConfig {
    /// Rows of the particle table (the binning kernels' `n`). Kept
    /// modest on purpose: devsim models device parallelism with
    /// overlapping sleeps, so the workload must be dominated by
    /// *modeled* kernel time (see `time_scale`), not by the real host
    /// math that computes the bin contents.
    pub rows: usize,
    /// Simulation steps per arm.
    pub steps: u64,
    /// Binning mesh resolution per axis.
    pub resolution: usize,
    /// Devices on the simulated node. The dag arms recruit all of them;
    /// the inline/threaded arms are pinned to device 0 by the controls.
    pub num_devices: usize,
    /// Multiplier on modeled durations (see `devsim::timemodel`).
    /// High by default so modeled kernel time dwarfs the real closure
    /// math: overlap across devices only shortens the modeled part,
    /// which is exactly what the dag arms exploit.
    pub time_scale: f64,
    /// Snapshot queue depth for the threaded and dag arms. Shallow on
    /// purpose: a full queue makes submission wait, so apparent cost
    /// tracks worker throughput instead of hiding it.
    pub queue_depth: usize,
    /// Instances binning the full heavy op set (13 ops).
    pub heavy_instances: usize,
    /// Instances binning only `count()` (1 op).
    pub light_instances: usize,
}

impl Default for DagBenchConfig {
    fn default() -> Self {
        DagBenchConfig {
            rows: 8_000,
            steps: 6,
            resolution: 48,
            num_devices: 2,
            time_scale: 10.0,
            queue_depth: 2,
            heavy_instances: 3,
            light_instances: 3,
        }
    }
}

impl DagBenchConfig {
    /// Total binning instances (results per step).
    pub fn instances(&self) -> usize {
        self.heavy_instances + self.light_instances
    }
}

/// The skewed spec set: heavy 13-op instances interleaved with light
/// count-only ones, so consecutive kernels differ ~6x in modeled cost.
/// Round-robin dispatch (by index) would alternate them regardless of
/// cost; the least-loaded and work-stealing claims are about cost.
/// Bounds are prescribed so the packed grid reduction is the step's only
/// collective.
pub fn skewed_binning_specs(cfg: &DagBenchConfig) -> Vec<BinningSpec> {
    let heavy_ops = || -> Vec<VarOp> {
        let mut ops = vec![VarOp { var: String::new(), op: BinOp::Count }];
        for var in ["m", "x", "z"] {
            for op in [BinOp::Sum, BinOp::Min, BinOp::Max, BinOp::Average] {
                ops.push(VarOp { var: var.to_string(), op });
            }
        }
        ops
    };
    let light_ops = || vec![VarOp { var: String::new(), op: BinOp::Count }];

    const AXES: [(&str, &str); 8] = [
        ("x", "y"),
        ("x", "z"),
        ("y", "z"),
        ("y", "m"),
        ("z", "m"),
        ("x", "m"),
        ("m", "x"),
        ("z", "x"),
    ];
    let mut kinds = Vec::new();
    for i in 0..cfg.heavy_instances.max(cfg.light_instances) {
        if i < cfg.heavy_instances {
            kinds.push(true);
        }
        if i < cfg.light_instances {
            kinds.push(false);
        }
    }
    kinds
        .into_iter()
        .enumerate()
        .map(|(i, heavy)| {
            let (a, b) = AXES[i % AXES.len()];
            let mut s = BinningSpec::new(
                "bodies",
                (a, b),
                cfg.resolution,
                if heavy { heavy_ops() } else { light_ops() },
            );
            s.bounds = Some(([-1.0, 1.0], [-1.0, 1.0]));
            s
        })
        .collect()
}

/// Static particle table with four device-resident columns; the solver
/// is a no-op, so total wall time is the in situ pipeline's throughput.
/// Shared with the scale harness's fused-suite check arm.
pub(crate) struct SkewTable {
    table: TableData,
    pub(crate) step: u64,
}

impl SkewTable {
    pub(crate) fn new(node: Arc<SimNode>, rank: usize, rows: usize) -> Self {
        let col = |seed: usize| -> Vec<f64> {
            (0..rows).map(|i| (((i * seed + rank * 7919) % 1000) as f64) / 500.0 - 1.0).collect()
        };
        let mut table = TableData::new();
        for (name, seed) in [("x", 37), ("y", 53), ("z", 71), ("m", 97)] {
            let arr = HamrDataArray::<f64>::from_slice(
                name,
                node.clone(),
                &col(seed),
                1,
                Allocator::OpenMp,
                Some(0),
                HamrStream::default_stream(),
                StreamMode::Sync,
            )
            .expect("allocate workload column");
            table.set_column(arr.as_array_ref());
        }
        SkewTable { table, step: 0 }
    }
}

impl sensei::DataAdaptor for SkewTable {
    fn num_meshes(&self) -> usize {
        1
    }
    fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
        Ok(MeshMetadata { name: "bodies".into(), arrays: vec![] })
    }
    fn mesh(&self, _name: &str) -> Result<DataObject> {
        Ok(DataObject::Table(self.table.clone()))
    }
    fn time(&self) -> f64 {
        self.step as f64 * 0.1
    }
    fn time_step(&self) -> u64 {
        self.step
    }
}

/// Outcome of one dag A/B arm.
#[derive(Debug, Clone)]
pub struct DagArm {
    /// Arm name: `inline`, `async_fused`, or `dag/<snapshot mode>`.
    pub arm: String,
    /// The engine the arm ran through.
    pub execution: ExecutionMethod,
    /// Snapshot capture mode (relevant to the threaded and dag arms).
    pub snapshot: SnapshotMode,
    /// Total wall time: init + steps + queue drain at finalize.
    pub total: Duration,
    /// Mean apparent in situ time per iteration.
    pub mean_insitu: Duration,
    /// Rank 0's sink: one [`BinnedResult`] per (step, spec).
    pub results: Vec<BinnedResult>,
    /// Scheduler totals (zero for the non-dag arms).
    pub sched: SchedulerSnapshot,
    /// Work/fault counters summed over the arm's back-ends.
    pub counters: sensei::CounterSnapshot,
}

/// The five arms of one dag A/B run.
#[derive(Debug, Clone)]
pub struct DagBenchReport {
    /// The configuration that produced this report.
    pub config: DagBenchConfig,
    /// Lockstep inline reference.
    pub inline_arm: DagArm,
    /// Asynchronous threaded arm (the incumbent the dag must beat).
    pub threaded: DagArm,
    /// Dag arms, one per snapshot mode: deep, delta, cow.
    pub dag: Vec<DagArm>,
}

impl DagBenchReport {
    /// Every arm in presentation order.
    pub fn arms(&self) -> Vec<&DagArm> {
        let mut all = vec![&self.inline_arm, &self.threaded];
        all.extend(self.dag.iter());
        all
    }

    /// The deep-snapshot dag arm (the headline comparison).
    pub fn dag_deep(&self) -> &DagArm {
        &self.dag[0]
    }

    /// True when `arm`'s results match the inline reference bit for bit.
    pub fn bit_identical_to_inline(&self, arm: &DagArm) -> bool {
        crate::chaos::results_bit_identical(&self.inline_arm.results, &arm.results)
    }
}

/// Run one arm of the dag A/B.
pub fn run_dag_arm(
    cfg: &DagBenchConfig,
    arm: &str,
    execution: ExecutionMethod,
    snapshot: SnapshotMode,
) -> DagArm {
    let node = SimNode::new(bench_node_config(cfg.num_devices, cfg.time_scale));
    let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));

    let cfg = *cfg;
    let run_node = node.clone();
    let run_sink = sink.clone();
    let out = World::new(1).run(move |comm| {
        let node = run_node.clone();
        let controls = BackendControls {
            execution,
            device: DeviceSpec::Explicit(0),
            queue_depth: cfg.queue_depth,
            ..Default::default()
        };
        let suite = BinningSuite::new(skewed_binning_specs(&cfg))
            .expect("suite over skewed specs")
            .with_sink(run_sink.clone())
            .with_controls(controls);
        let mut bridge = Bridge::new(node.clone());
        bridge.set_snapshot_mode(snapshot);
        bridge.add_analysis(Box::new(suite), &comm).expect("attach suite");

        let mut sim = SkewTable::new(node.clone(), comm.rank(), cfg.rows);
        let t0 = Instant::now();
        for step in 0..cfg.steps {
            sim.step = step;
            bridge.execute(&sim, &comm, Duration::ZERO).expect("in situ execute");
        }
        let profiler = bridge.finalize(&comm).expect("finalize");
        let total = t0.elapsed();
        let summary = profiler.summary();
        (total, summary.mean_insitu, profiler.scheduler_total(), profiler.counters_total())
    });

    let (total, mean_insitu, sched, counters) = out.into_iter().next().expect("one rank");
    let results = sink.lock().clone();
    DagArm {
        arm: arm.to_string(),
        execution,
        snapshot,
        total,
        mean_insitu,
        results,
        sched,
        counters,
    }
}

/// Run all five arms and collect their outcomes.
pub fn run_dag_bench(cfg: &DagBenchConfig) -> DagBenchReport {
    let inline_arm = run_dag_arm(cfg, "inline", ExecutionMethod::Lockstep, SnapshotMode::Deep);
    let threaded =
        run_dag_arm(cfg, "async_fused", ExecutionMethod::Asynchronous, SnapshotMode::Deep);
    let dag = [SnapshotMode::Deep, SnapshotMode::Delta, SnapshotMode::Cow]
        .into_iter()
        .map(|mode| run_dag_arm(cfg, &format!("dag/{}", mode.name()), ExecutionMethod::Dag, mode))
        .collect();
    DagBenchReport { config: *cfg, inline_arm, threaded, dag }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DagBenchConfig {
        DagBenchConfig {
            rows: 2000,
            steps: 2,
            resolution: 8,
            num_devices: 2,
            time_scale: 0.0,
            queue_depth: 2,
            heavy_instances: 2,
            light_instances: 2,
        }
    }

    #[test]
    fn skewed_specs_interleave_heavy_and_light() {
        let specs = skewed_binning_specs(&tiny());
        assert_eq!(specs.len(), 4);
        let op_counts: Vec<usize> = specs.iter().map(|s| s.ops.len()).collect();
        assert_eq!(op_counts, vec![13, 1, 13, 1], "heavy and light instances alternate");
        assert!(specs.iter().all(|s| s.bounds.is_some()), "bounds are prescribed");
    }

    #[test]
    fn all_arms_deliver_bit_identical_results() {
        let cfg = tiny();
        let report = run_dag_bench(&cfg);
        let expected = cfg.steps as usize * cfg.instances();
        assert_eq!(report.inline_arm.results.len(), expected, "inline delivers every step");
        for arm in [&report.threaded, &report.dag[0], &report.dag[1], &report.dag[2]] {
            assert_eq!(arm.results.len(), expected, "{} delivers every step", arm.arm);
            assert!(
                report.bit_identical_to_inline(arm),
                "{} results must match the inline reference",
                arm.arm
            );
        }
        for arm in &report.dag {
            assert!(arm.sched.tasks > 0, "{} ran through the dataflow path", arm.arm);
            assert_eq!(arm.counters.faults.aborted, 0, "{} aborted nothing", arm.arm);
        }
        assert_eq!(report.threaded.sched, SchedulerSnapshot::default(), "threaded arm has no dag");
    }
}
