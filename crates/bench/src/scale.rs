//! Hierarchical vs flat collective scaling sweep (the paper's 128-node /
//! 512-GPU Perlmutter configuration, §4.1, shrunk to modeled time).
//!
//! Two sweeps over a list of rank counts, both running the same
//! deterministic packed-allreduce workload under the two
//! [`CollectiveMode`]s on one shared node grouping:
//!
//! * **weak scaling** — per-rank work held constant as ranks grow;
//! * **strong scaling** — total work held constant, divided over ranks.
//!
//! Per sweep point the harness runs a *flat* arm (all-to-root
//! collectives, the historical algorithms) and a *hierarchical* arm
//! (node-local reduce, binomial tree among node leaders, node-local
//! broadcast) and compares them on:
//!
//! * **bit identity** — both arms must produce the same `f64` bits on
//!   every rank at every count (both realise the topology's canonical
//!   merge order, see `minimpi::collectives`);
//! * **inter-node traffic** — the hierarchical arm must put fewer
//!   messages on the slow interconnect tier;
//! * **modeled total time** — modeled per-rank compute plus the summed
//!   per-rank network occupancy under [`NetworkParams`]; the tiered
//!   path must win at scale.
//!
//! A separate **check arm** runs the real fused [`BinningSuite`] on a
//! small multi-node world and verifies the PR-long invariant: one packed
//! allreduce per step per rank survives the tiered path, and the suite's
//! per-tier comm counters are populated.

use std::sync::Arc;
use std::time::{Duration, Instant};

use devsim::timemodel::host_duration;
use devsim::{HostParams, KernelCost, NetworkParams, SimNode};
use minimpi::{CollectiveMode, Segment, SegmentOp, TierSnapshot, World};
use parking_lot::Mutex;

use binning::{BinningSuite, ResultSink};
use sensei::{BackendControls, Bridge, CounterSnapshot, DeviceSpec};

use crate::case::bench_node_config;
use crate::dag::{skewed_binning_specs, DagBenchConfig, SkewTable};

/// Scale of the hierarchical-vs-flat sweep.
#[derive(Debug, Clone)]
pub struct ScaleBenchConfig {
    /// Rank counts to sweep, ascending (the paper's 4 → 64 → 512).
    pub rank_counts: Vec<usize>,
    /// Ranks per simulated node (the paper's 4 GPUs per Perlmutter node).
    pub ranks_per_node: usize,
    /// Grid resolution per axis; the packed payload is
    /// `4 * resolution^2` doubles (count, sum, min, max planes).
    pub resolution: usize,
    /// Steps per arm — one packed allreduce each.
    pub steps: u64,
    /// Modeled per-rank rows for the weak-scaling sweep (constant).
    pub rows_per_rank: usize,
    /// Modeled total rows for the strong-scaling sweep (divided).
    pub total_rows: usize,
    /// The two-tier network cost model both arms are charged against.
    pub net: NetworkParams,
}

impl Default for ScaleBenchConfig {
    fn default() -> Self {
        ScaleBenchConfig {
            rank_counts: vec![4, 64, 512],
            ranks_per_node: 4,
            resolution: 32,
            steps: 3,
            rows_per_rank: 200_000,
            total_rows: 800_000,
            net: NetworkParams::default(),
        }
    }
}

impl ScaleBenchConfig {
    /// Length of the packed payload in doubles.
    pub fn payload_len(&self) -> usize {
        4 * self.resolution * self.resolution
    }

    /// The payload's segment layout: count and mass-sum planes under
    /// `Sum`, then a `Min` and a `Max` plane (NaN identities exercise
    /// the tiered merge exactly like the binning suite's grids).
    pub fn segments(&self) -> Vec<Segment> {
        let nb = self.resolution * self.resolution;
        vec![
            Segment::new(SegmentOp::Sum, nb),
            Segment::new(SegmentOp::Sum, nb),
            Segment::new(SegmentOp::Min, nb),
            Segment::new(SegmentOp::Max, nb),
        ]
    }
}

/// One collective mode's outcome at one sweep point.
#[derive(Debug, Clone, Copy)]
pub struct ScaleArm {
    /// Tier counters summed over every rank (aggregate network
    /// occupancy, not critical path).
    pub comm: TierSnapshot,
    /// Modeled per-rank compute for the whole run (identical across
    /// arms; what the comm term is weighed against).
    pub compute: Duration,
    /// Wall time of the simulated run itself.
    pub wall: Duration,
}

impl ScaleArm {
    /// Modeled total: per-rank compute plus summed network occupancy.
    pub fn modeled_total(&self) -> Duration {
        self.compute + self.comm.modeled()
    }
}

/// Flat vs hierarchical at one rank count.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Ranks in the world.
    pub ranks: usize,
    /// Simulated nodes those ranks group into.
    pub nodes: usize,
    /// Modeled rows per rank at this point (sweep-dependent).
    pub rows_per_rank: usize,
    /// The all-to-root baseline.
    pub flat: ScaleArm,
    /// The tiered path.
    pub hier: ScaleArm,
    /// Every rank of both arms produced the same result bits.
    pub bit_identical: bool,
}

impl ScalePoint {
    /// The tiered path put fewer messages on the interconnect.
    pub fn hier_fewer_inter_messages(&self) -> bool {
        self.hier.comm.inter_messages < self.flat.comm.inter_messages
    }

    /// Modeled-total speedup of hierarchical over flat.
    pub fn speedup(&self) -> f64 {
        self.flat.modeled_total().as_secs_f64() / self.hier.modeled_total().as_secs_f64().max(1e-12)
    }
}

/// One sweep (weak or strong) over every rank count.
#[derive(Debug, Clone)]
pub struct ScaleSweep {
    /// `weak` or `strong`.
    pub kind: &'static str,
    /// One point per configured rank count, ascending.
    pub points: Vec<ScalePoint>,
}

/// The fused-suite check arm: the real [`BinningSuite`] on a small
/// multi-node world, proving the 1-packed-allreduce-per-step invariant
/// survives the tiered path and the tier counters reach the profiler.
#[derive(Debug, Clone)]
pub struct ScaleCheck {
    /// Ranks in the check world.
    pub ranks: usize,
    /// Ranks per node in the check world.
    pub ranks_per_node: usize,
    /// Steps the suite executed.
    pub steps: u64,
    /// Each rank's counter totals, in rank order.
    pub per_rank: Vec<CounterSnapshot>,
}

impl ScaleCheck {
    /// Every rank issued exactly one packed allreduce per step.
    pub fn one_allreduce_per_step(&self) -> bool {
        self.per_rank.iter().all(|c| c.allreduces == self.steps)
    }

    /// The suite's per-tier comm counters saw both tiers.
    pub fn tier_counters_populated(&self) -> bool {
        let mut total = TierSnapshot::default();
        for c in &self.per_rank {
            total.accumulate(&c.comm);
        }
        total.intra_messages > 0 && total.inter_messages > 0
    }
}

/// The full scale report: both sweeps plus the fused-suite check.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// The configuration that produced this report.
    pub config: ScaleBenchConfig,
    /// Per-rank work held constant.
    pub weak: ScaleSweep,
    /// Total work held constant.
    pub strong: ScaleSweep,
    /// The fused binning suite on a small multi-node world.
    pub check: ScaleCheck,
}

impl ScaleReport {
    /// Every point of both sweeps, labeled with its sweep kind.
    pub fn points(&self) -> Vec<(&'static str, &ScalePoint)> {
        self.weak
            .points
            .iter()
            .map(|p| ("weak", p))
            .chain(self.strong.points.iter().map(|p| ("strong", p)))
            .collect()
    }
}

/// SplitMix64: the sweep's deterministic value source.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic, rank/step/index-dependent value with deliberately
/// mixed magnitudes, so any re-parenthesisation of the `Sum` segments
/// would change the result bits.
fn synth_value(seed: u64, rank: usize, step: u64, i: usize) -> f64 {
    let z = splitmix64(splitmix64(splitmix64(seed ^ rank as u64) ^ step) ^ i as u64);
    let mant = ((z & 0xFFFF) as f64) / 32768.0 - 1.0;
    let mag = match (z >> 16) & 3 {
        0 => 1.0,
        1 => 1.0e8,
        2 => 1.0e-8,
        _ => 1.0e15,
    };
    mant * mag
}

/// Modeled per-rank compute for `rows` rows over the whole run: the
/// binning pass is ~30 flops/row/step on the host model. Identical for
/// both arms — the sweeps compare communication, not kernels.
fn modeled_compute(rows: usize, steps: u64) -> Duration {
    let per_step =
        host_duration(KernelCost::flops(rows as f64 * 30.0), &HostParams::default(), 1.0);
    per_step * steps as u32
}

/// Run one collective mode at one rank count and collect result bits
/// (per rank) plus the arm's aggregate tier counters.
fn run_mode(
    cfg: &ScaleBenchConfig,
    ranks: usize,
    rows_per_rank: usize,
    seed: u64,
    mode: CollectiveMode,
) -> (Vec<Vec<u64>>, ScaleArm) {
    let segments = cfg.segments();
    let len = cfg.payload_len();
    let steps = cfg.steps;
    let t0 = Instant::now();
    let out = World::new(ranks)
        .with_ranks_per_node(cfg.ranks_per_node)
        .with_net(cfg.net, 1.0)
        .with_collective_mode(mode)
        .run(move |c| {
            let mut last = Vec::new();
            for step in 0..steps {
                let data: Vec<f64> =
                    (0..len).map(|i| synth_value(seed, c.rank(), step, i)).collect();
                last = c.allreduce_packed(data, &segments).expect("packed allreduce");
            }
            assert_eq!(c.allreduce_count(), steps, "one packed round per step");
            (last.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(), c.tier_stats())
        });
    let wall = t0.elapsed();
    let mut comm = TierSnapshot::default();
    let mut bits = Vec::with_capacity(ranks);
    for (b, t) in out {
        bits.push(b);
        comm.accumulate(&t);
    }
    (bits, ScaleArm { comm, compute: modeled_compute(rows_per_rank, steps), wall })
}

/// One flat-vs-hierarchical comparison at one rank count.
fn run_point(cfg: &ScaleBenchConfig, ranks: usize, rows_per_rank: usize, seed: u64) -> ScalePoint {
    let (flat_bits, flat) = run_mode(cfg, ranks, rows_per_rank, seed, CollectiveMode::Flat);
    let (hier_bits, hier) = run_mode(cfg, ranks, rows_per_rank, seed, CollectiveMode::Hierarchical);
    let bit_identical = flat_bits == hier_bits
        && flat_bits.iter().all(|b| b == &flat_bits[0])
        && hier_bits.iter().all(|b| b == &hier_bits[0]);
    let nodes = ranks.div_ceil(cfg.ranks_per_node);
    ScalePoint { ranks, nodes, rows_per_rank, flat, hier, bit_identical }
}

/// The fused-suite check arm: lockstep [`BinningSuite`] on a 4-rank,
/// 2-per-node world.
fn run_check(steps: u64) -> ScaleCheck {
    let (ranks, ranks_per_node) = (4, 2);
    let dag_cfg = DagBenchConfig {
        rows: 2_000,
        steps,
        resolution: 8,
        num_devices: 1,
        time_scale: 0.0,
        queue_depth: 2,
        heavy_instances: 1,
        light_instances: 1,
    };
    let counters = World::new(ranks).with_ranks_per_node(ranks_per_node).run(move |comm| {
        let node = SimNode::new(bench_node_config(dag_cfg.num_devices, dag_cfg.time_scale));
        let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
        let controls = BackendControls { device: DeviceSpec::Explicit(0), ..Default::default() };
        let suite = BinningSuite::new(skewed_binning_specs(&dag_cfg))
            .expect("suite over skewed specs")
            .with_sink(sink)
            .with_controls(controls);
        let mut bridge = Bridge::new(node.clone());
        bridge.add_analysis(Box::new(suite), &comm).expect("attach suite");
        let mut sim = SkewTable::new(node, comm.rank(), dag_cfg.rows);
        for step in 0..steps {
            sim.step = step;
            bridge.execute(&sim, &comm, Duration::ZERO).expect("in situ execute");
        }
        bridge.finalize(&comm).expect("finalize").counters_total()
    });
    ScaleCheck { ranks, ranks_per_node, steps, per_rank: counters }
}

/// Run both sweeps and the check arm.
pub fn run_scale_bench(cfg: &ScaleBenchConfig) -> ScaleReport {
    let weak = ScaleSweep {
        kind: "weak",
        points: cfg
            .rank_counts
            .iter()
            .map(|&n| run_point(cfg, n, cfg.rows_per_rank, 0x5ca1e))
            .collect(),
    };
    let strong = ScaleSweep {
        kind: "strong",
        points: cfg
            .rank_counts
            .iter()
            .map(|&n| run_point(cfg, n, (cfg.total_rows / n).max(1), 0x5706))
            .collect(),
    };
    let check = run_check(cfg.steps.max(2));
    ScaleReport { config: cfg.clone(), weak, strong, check }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleBenchConfig {
        ScaleBenchConfig {
            rank_counts: vec![2, 6],
            ranks_per_node: 2,
            resolution: 4,
            steps: 2,
            rows_per_rank: 10_000,
            total_rows: 60_000,
            ..Default::default()
        }
    }

    #[test]
    fn sweeps_are_bit_identical_and_cut_inter_traffic() {
        let report = run_scale_bench(&tiny());
        for (kind, p) in report.points() {
            assert!(p.bit_identical, "{kind} @ {} ranks must be bit-identical", p.ranks);
            if p.nodes > 1 {
                assert!(
                    p.hier_fewer_inter_messages(),
                    "{kind} @ {} ranks: hier {} vs flat {} inter messages",
                    p.ranks,
                    p.hier.comm.inter_messages,
                    p.flat.comm.inter_messages
                );
                assert!(
                    p.hier.comm.modeled() < p.flat.comm.modeled(),
                    "{kind} @ {} ranks: tiered comm must cost less",
                    p.ranks
                );
            }
        }
    }

    #[test]
    fn strong_scaling_divides_the_rows() {
        let cfg = tiny();
        let report = run_scale_bench(&cfg);
        let rows: Vec<usize> = report.strong.points.iter().map(|p| p.rows_per_rank).collect();
        assert_eq!(rows, vec![30_000, 10_000]);
        let weak: Vec<usize> = report.weak.points.iter().map(|p| p.rows_per_rank).collect();
        assert_eq!(weak, vec![10_000, 10_000]);
    }

    #[test]
    fn check_arm_keeps_the_fused_invariant_on_the_tiered_path() {
        let check = run_check(2);
        assert_eq!(check.per_rank.len(), 4);
        assert!(check.one_allreduce_per_step(), "{:?}", check.per_rank);
        assert!(check.tier_counters_populated());
    }
}
