//! The paper's binning workload: "the data binning operator was applied
//! to 10 variables over 9 coordinate systems for a total of 90 binning
//! operations. Binning of each coordinate system was done sequentially in
//! a separate data binning operator instance" (§4.3).

use binning::{BinningSpec, VarOp};

/// The nine coordinate systems: spatial planes, velocity-space planes,
/// and mixed position-velocity phase planes (§4.2 notes momentum or
/// velocity axes are common besides spatial ones).
pub const COORDINATE_SYSTEMS: [(&str, &str); 9] = [
    ("x", "y"),
    ("x", "z"),
    ("y", "z"),
    ("vx", "vy"),
    ("vx", "vz"),
    ("vy", "vz"),
    ("x", "vx"),
    ("y", "vy"),
    ("z", "vz"),
];

/// The ten per-instance binning operations over the published variables.
pub const VARIABLE_OPS: [&str; 10] = [
    "count()",
    "sum(mass)",
    "sum(ke)",
    "sum(px)",
    "sum(py)",
    "sum(pz)",
    "min(vx)",
    "max(vy)",
    "avg(vz)",
    "avg(speed)",
];

/// Build the nine binning-operator instances (one per coordinate system,
/// each reducing all ten variables) at the given mesh resolution.
pub fn paper_binning_specs(resolution: usize) -> Vec<BinningSpec> {
    COORDINATE_SYSTEMS
        .iter()
        .map(|&(ax, ay)| {
            let ops: Vec<VarOp> =
                VARIABLE_OPS.iter().map(|s| VarOp::parse(s).expect("static op table")).collect();
            BinningSpec::new("bodies", (ax, ay), resolution, ops)
        })
        .collect()
}

/// The same nine instances with prescribed axis bounds instead of
/// on-the-fly min/max. With bounds fixed, a binning step needs **no**
/// pre-binning bounds collective — the fused path's single packed grid
/// allreduce is the only communication round of the step, which is what
/// the harness's fused-vs-per-op A/B measures and asserts on.
pub fn paper_binning_specs_bounded(resolution: usize) -> Vec<BinningSpec> {
    paper_binning_specs(resolution)
        .into_iter()
        .map(|mut s| {
            // Positions stay inside the solver's x_extent; velocities get
            // a generous symmetric range (out-of-range rows are dropped,
            // identically in both A/B arms).
            let axis = |name: &str| -> [f64; 2] {
                if name.starts_with('v') {
                    [-300.0, 300.0]
                } else {
                    [-2.0, 2.0]
                }
            };
            s.bounds = Some((axis(&s.axes.0), axis(&s.axes.1)));
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ninety_binning_operations() {
        let specs = paper_binning_specs(64);
        assert_eq!(specs.len(), 9);
        let total_ops: usize = specs.iter().map(|s| s.ops.len()).sum();
        assert_eq!(total_ops, 90, "10 variables x 9 coordinate systems");
    }

    #[test]
    fn specs_only_use_published_variables() {
        let published = newtonpp::NewtonAdaptor::VARIABLES;
        for spec in paper_binning_specs(16) {
            for var in spec.required_variables() {
                assert!(published.contains(&var), "variable '{var}' is not published");
            }
        }
    }

    #[test]
    fn bounded_specs_differ_only_in_bounds() {
        let auto = paper_binning_specs(32);
        let bounded = paper_binning_specs_bounded(32);
        assert_eq!(auto.len(), bounded.len());
        for (a, b) in auto.iter().zip(&bounded) {
            assert_eq!(a.axes, b.axes);
            assert_eq!(a.ops, b.ops);
            assert!(a.bounds.is_none());
            let (bx, by) = b.bounds.expect("bounded specs prescribe bounds");
            assert!(bx[0] < bx[1] && by[0] < by[1]);
        }
    }
}
