//! Layout A/B: the layout-polymorphic data model under the fused
//! binning workload.
//!
//! A synthetic particle producer publishes the same four-column table
//! under each candidate physical layout — dense scalar arrays, or one
//! interleaved backing block arranged AoS / SoA / AoSoA — and the fused
//! [`binning::BinningSuite`] consumes it lockstep, so the apparent in
//! situ cost *is* the modeled cost of the layout-aware fetch + kernels:
//!
//! * **host placement** — a grouped table is fetched zero-copy through
//!   its layout maps and binned by the lane-vectorized kernel, whose
//!   modeled cost drops with the lane width (`fused_bin_cost_layout`).
//!   The AoSoA arms must beat the scalar-array reference here.
//! * **device placement** — a grouped table pays an in-flight pack to
//!   dense on upload (charged, and surfaced as `relayout_bytes`), so
//!   dense scalar columns tend to win. Which layout wins is placement-
//!   dependent — exactly what the autopick is for.
//!
//! The autopick runs a short probe of every candidate per placement,
//! picks the one with the lowest measured apparent cost, and re-runs it
//! at full length; the report asserts the pick lands within tolerance
//! of the best static layout. Every arm's binned results must be
//! bit-identical to the scalar reference — relayout is never allowed to
//! perturb a value.

use std::sync::Arc;
use std::time::{Duration, Instant};

use devsim::{NodeConfig, SimNode};
use hamr::Layout;
use minimpi::World;
use parking_lot::Mutex;
use sensei::{
    ArrayMetadata, BackendControls, Bridge, CounterSnapshot, DataAdaptor, DeviceSpec,
    ExecutionMethod, MeshMetadata, SnapshotMode,
};
use svtk::{Allocator, DataObject, FieldAssociation, HamrStream, StreamMode, TableData};

use binning::{BinnedResult, BinningSpec, BinningSuite, ResultSink, VarOp};

use crate::case::bench_node_config;
use crate::chaos::results_bit_identical;

/// The layouts the sweep and the autopick consider. Scalar (dense
/// per-column allocations) is the reference arm and always first.
pub const CANDIDATE_LAYOUTS: [Layout; 5] = [
    Layout::Scalar,
    Layout::AoS,
    Layout::SoA,
    Layout::AoSoA { lane_width: 4 },
    Layout::AoSoA { lane_width: 8 },
];

/// Scale of the layout A/B workload.
#[derive(Debug, Clone, Copy)]
pub struct LayoutBenchConfig {
    /// Rows in the synthetic particle table.
    pub rows: usize,
    /// Steps per full arm.
    pub steps: u64,
    /// Steps per autopick probe run.
    pub probe_steps: u64,
    /// Binning mesh resolution per axis.
    pub resolution: usize,
    /// Multiplier on modeled durations.
    pub time_scale: f64,
}

impl Default for LayoutBenchConfig {
    fn default() -> Self {
        LayoutBenchConfig { rows: 16384, steps: 6, probe_steps: 2, resolution: 32, time_scale: 1.0 }
    }
}

/// Outcome of one (layout, placement) arm.
#[derive(Debug, Clone)]
pub struct LayoutArm {
    /// The physical layout the producer published.
    pub layout: Layout,
    /// Where the suite ran (`None` = host).
    pub device: Option<usize>,
    /// The sink: one [`BinnedResult`] per (step, spec).
    pub results: Vec<BinnedResult>,
    /// The suite's work counters, including `relayout_bytes`.
    pub counters: CounterSnapshot,
    /// Mean apparent in situ time per iteration.
    pub mean_insitu: Duration,
    /// Wall time for the whole arm.
    pub total: Duration,
}

/// One placement's full sweep plus its autopick.
#[derive(Debug, Clone)]
pub struct PlacementSweep {
    /// The placement (`None` = host).
    pub device: Option<usize>,
    /// Full-length arms, in [`CANDIDATE_LAYOUTS`] order.
    pub arms: Vec<LayoutArm>,
    /// The probe's measured apparent cost per candidate.
    pub probe_insitu: Vec<Duration>,
    /// The layout the probe picked.
    pub picked: Layout,
    /// A fresh full-length run of the picked layout.
    pub auto_arm: LayoutArm,
}

impl PlacementSweep {
    /// Human-readable placement name.
    pub fn placement_name(&self) -> String {
        match self.device {
            None => "host".into(),
            Some(d) => format!("device{d}"),
        }
    }

    /// The scalar reference arm.
    pub fn scalar(&self) -> &LayoutArm {
        &self.arms[0]
    }

    /// The full arm that ran `layout`.
    pub fn arm(&self, layout: Layout) -> &LayoutArm {
        self.arms.iter().find(|a| a.layout == layout).expect("candidate layout")
    }

    /// The full arm with the lowest apparent cost.
    pub fn best_static(&self) -> &LayoutArm {
        self.arms.iter().min_by(|a, b| a.mean_insitu.cmp(&b.mean_insitu)).expect("at least one arm")
    }

    /// True when every arm (and the autopicked run) matches the scalar
    /// reference bit for bit.
    pub fn bit_identical(&self) -> bool {
        let reference = &self.scalar().results;
        self.arms.iter().all(|a| results_bit_identical(reference, &a.results))
            && results_bit_identical(reference, &self.auto_arm.results)
    }

    /// True when the autopick landed within `tolerance` (fractional) of
    /// the best static layout. Picking the best static arm's own layout
    /// is optimal by construction — the configurations are identical, so
    /// any wall-clock delta between the two runs is scheduler noise, not
    /// a policy cost; the tolerance guards the cost of a *different*
    /// pick.
    pub fn autopick_within(&self, tolerance: f64) -> bool {
        let best = self.best_static();
        self.picked == best.layout
            || self.auto_arm.mean_insitu.as_secs_f64()
                <= best.mean_insitu.as_secs_f64() * (1.0 + tolerance)
    }
}

/// The layout A/B across both placements.
#[derive(Debug, Clone)]
pub struct LayoutReport {
    /// The configuration that produced this report.
    pub config: LayoutBenchConfig,
    /// The host-placed sweep.
    pub host: PlacementSweep,
    /// The device-placed sweep.
    pub device: PlacementSweep,
}

impl LayoutReport {
    /// Both sweeps in report order.
    pub fn sweeps(&self) -> [&PlacementSweep; 2] {
        [&self.host, &self.device]
    }

    /// The headline claim: the widest AoSoA arm beats the scalar-array
    /// reference on the host-vectorized fused path.
    pub fn aosoa_beats_scalar_host(&self) -> bool {
        let aosoa = self.host.arm(Layout::AoSoA { lane_width: 8 });
        aosoa.mean_insitu < self.host.scalar().mean_insitu
    }

    /// True when every sweep's arms are bit-identical to scalar.
    pub fn all_bit_identical(&self) -> bool {
        self.sweeps().iter().all(|s| s.bit_identical())
    }

    /// True when both sweeps' autopicks land within `tolerance`.
    pub fn autopick_within(&self, tolerance: f64) -> bool {
        self.sweeps().iter().all(|s| s.autopick_within(tolerance))
    }
}

/// The modeled node for the layout arms. Built from the bench node with
/// the host's per-task overhead shrunk and its memory bandwidth slowed:
/// the claim under test is about kernel *byte traffic* (the AoSoA lane
/// kernel halves the modeled bytes per fused pass), so the byte term
/// must dominate the fixed per-task overhead that would otherwise swamp
/// the layouts' differences.
fn layout_node_config(time_scale: f64) -> NodeConfig {
    let mut cfg = bench_node_config(1, time_scale);
    cfg.host.task_overhead = Duration::from_micros(20);
    cfg.host.bytes_per_sec = 2.5e9;
    cfg
}

/// The four columns of the synthetic particle table.
const FIELDS: [&str; 4] = ["x", "y", "m", "e"];

/// Deterministic per-(step, field, row) value — a splitmix64-style hash
/// so every layout arm publishes bit-identical data without sharing
/// state across runs.
fn field_value(step: u64, field: usize, i: usize) -> f64 {
    let mut z = step
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((field as u64) << 32)
        .wrapping_add(i as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let u = (z >> 11) as f64 / (1u64 << 53) as f64;
    match field {
        // Coordinates span the binned plane.
        0 | 1 => u * 4.0 - 2.0,
        // Mass.
        2 => 0.5 + u,
        // Energy.
        _ => u * 100.0,
    }
}

/// A simulation stand-in that republishes the particle table each step,
/// arranged in the arm's physical layout: dense scalar columns, or the
/// same columns regrouped into one interleaved block
/// ([`TableData::group_columns`]).
struct LayoutProducer {
    node: Arc<SimNode>,
    layout: Layout,
    rows: usize,
    step: u64,
    table: TableData,
}

impl LayoutProducer {
    fn new(node: Arc<SimNode>, layout: Layout, rows: usize) -> hamr::Result<Self> {
        let mut p = LayoutProducer { node, layout, rows, step: 0, table: TableData::new() };
        p.produce()?;
        Ok(p)
    }

    fn produce(&mut self) -> hamr::Result<()> {
        let mut table = TableData::new();
        for (f, name) in FIELDS.iter().enumerate() {
            let vals: Vec<f64> = (0..self.rows).map(|i| field_value(self.step, f, i)).collect();
            let arr = svtk::HamrDoubleArray::from_slice(
                *name,
                self.node.clone(),
                &vals,
                1,
                Allocator::Malloc,
                None,
                HamrStream::default_stream(),
                StreamMode::Sync,
            )?;
            table.set_column(arr.as_array_ref());
        }
        if self.layout != Layout::Scalar {
            table.group_columns(&FIELDS, self.layout, &self.node)?;
        }
        self.table = table;
        Ok(())
    }

    fn advance(&mut self) -> hamr::Result<()> {
        self.step += 1;
        self.produce()
    }
}

impl DataAdaptor for LayoutProducer {
    fn num_meshes(&self) -> usize {
        1
    }

    fn mesh_metadata(&self, _i: usize) -> sensei::Result<MeshMetadata> {
        Ok(MeshMetadata {
            name: "particles".into(),
            arrays: FIELDS
                .iter()
                .map(|&name| ArrayMetadata {
                    name: name.to_string(),
                    association: FieldAssociation::Point,
                    components: 1,
                    type_name: "double",
                    device: None,
                })
                .collect(),
        })
    }

    fn mesh(&self, name: &str) -> sensei::Result<DataObject> {
        if name != "particles" {
            return Err(sensei::Error::NoSuchMesh { name: name.to_string() });
        }
        Ok(DataObject::Table(self.table.clone()))
    }

    fn time(&self) -> f64 {
        self.step as f64
    }

    fn time_step(&self) -> u64 {
        self.step
    }
}

/// The workload: two fused multi-op instances over the particle axes.
fn layout_specs(resolution: usize) -> Vec<BinningSpec> {
    let parse = |s: &str| VarOp::parse(s).expect("valid op");
    vec![
        BinningSpec::new(
            "particles",
            ("x", "y"),
            resolution,
            vec![parse("count()"), parse("sum(m)"), parse("avg(e)")],
        ),
        BinningSpec::new(
            "particles",
            ("y", "x"),
            resolution,
            vec![parse("count()"), parse("min(m)"), parse("max(e)")],
        ),
    ]
}

fn run_arm_with(
    cfg: &LayoutBenchConfig,
    layout: Layout,
    device: Option<usize>,
    steps: u64,
    execution: ExecutionMethod,
    snapshot: SnapshotMode,
) -> LayoutArm {
    let node = SimNode::new(layout_node_config(cfg.time_scale));
    let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));

    let cfg = *cfg;
    let run_node = node.clone();
    let run_sink = sink.clone();
    let outcomes: Vec<(CounterSnapshot, Duration, Duration)> = World::new(1).run(move |comm| {
        let node = run_node.clone();
        let t0 = Instant::now();

        let controls = BackendControls {
            execution,
            device: match device {
                None => DeviceSpec::Host,
                Some(d) => DeviceSpec::Explicit(d),
            },
            queue_depth: steps.max(1) as usize,
            layout,
            ..Default::default()
        };
        let suite = BinningSuite::new(layout_specs(cfg.resolution))
            .expect("suite over layout specs")
            .with_controls(controls)
            .with_sink(run_sink.clone());
        let mut bridge = Bridge::new(node.clone());
        bridge.set_snapshot_mode(snapshot);
        bridge.add_analysis(Box::new(suite), &comm).expect("attach suite");

        let mut producer =
            LayoutProducer::new(node.clone(), layout, cfg.rows).expect("layout producer");
        for _ in 0..steps {
            // The producer's table rebuild stands in for the solver; a
            // fixed nominal solver time keeps the profiler's ratio
            // fields meaningful without modeling a solver.
            bridge.execute(&producer, &comm, Duration::from_millis(1)).expect("in situ execute");
            producer.advance().expect("producer step");
        }
        let profiler = bridge.finalize(&comm).expect("finalize");
        let summary = profiler.summary();
        (profiler.counters_total(), summary.mean_insitu, t0.elapsed())
    });

    let (counters, mean_insitu, total) = outcomes[0];
    let results = sink.lock().clone();
    LayoutArm { layout, device, results, counters, mean_insitu, total }
}

/// Run one full-length lockstep arm — the building block of the sweep,
/// also driven directly by the Criterion A/B.
pub fn run_layout_arm(
    cfg: &LayoutBenchConfig,
    layout: Layout,
    device: Option<usize>,
    steps: u64,
) -> LayoutArm {
    run_arm_with(cfg, layout, device, steps, ExecutionMethod::Lockstep, SnapshotMode::Deep)
}

fn run_sweep(cfg: &LayoutBenchConfig, device: Option<usize>) -> PlacementSweep {
    // Probe: short runs, pick the cheapest candidate by measured
    // first-window apparent cost.
    let probe_insitu: Vec<Duration> = CANDIDATE_LAYOUTS
        .iter()
        .map(|&l| run_layout_arm(cfg, l, device, cfg.probe_steps).mean_insitu)
        .collect();
    let picked = CANDIDATE_LAYOUTS[probe_insitu
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.cmp(b.1))
        .map(|(i, _)| i)
        .expect("at least one candidate")];

    // Full-length statics, then a fresh full run of the pick.
    let arms: Vec<LayoutArm> =
        CANDIDATE_LAYOUTS.iter().map(|&l| run_layout_arm(cfg, l, device, cfg.steps)).collect();
    let auto_arm = run_layout_arm(cfg, picked, device, cfg.steps);
    PlacementSweep { device, arms, probe_insitu, picked, auto_arm }
}

/// Run the full layout A/B: both placements' static sweeps plus their
/// probe-based autopicks.
pub fn run_layout_bench(cfg: &LayoutBenchConfig) -> LayoutReport {
    LayoutReport { config: *cfg, host: run_sweep(cfg, None), device: run_sweep(cfg, Some(0)) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LayoutBenchConfig {
        LayoutBenchConfig {
            // Not a lane-width multiple: every grouped arm carries a
            // ragged AoSoA tail through the bridge.
            rows: 197,
            steps: 3,
            probe_steps: 1,
            resolution: 8,
            time_scale: 0.0,
        }
    }

    #[test]
    fn grouped_tables_are_bit_identical_across_modes_and_placements() {
        let cfg = tiny();
        let reference = run_layout_arm(&cfg, Layout::Scalar, None, cfg.steps);
        assert_eq!(reference.results.len(), cfg.steps as usize * 2, "one result per (step, spec)");

        for layout in [
            Layout::AoS,
            Layout::SoA,
            Layout::AoSoA { lane_width: 1 },
            Layout::AoSoA { lane_width: 4 },
            Layout::AoSoA { lane_width: 8 },
        ] {
            // Lockstep feeds the live grouped table straight to the
            // lane kernels (host) or through the charged in-flight pack
            // (device); asynchronous modes densify through the snapshot
            // layer's deep/delta/cow captures. All must agree bit for
            // bit with the scalar lockstep reference.
            let cases = [
                (None, ExecutionMethod::Lockstep, SnapshotMode::Deep),
                (Some(0), ExecutionMethod::Lockstep, SnapshotMode::Deep),
                (None, ExecutionMethod::Asynchronous, SnapshotMode::Deep),
                (None, ExecutionMethod::Asynchronous, SnapshotMode::Delta),
                (None, ExecutionMethod::Asynchronous, SnapshotMode::Cow),
            ];
            for (device, execution, snapshot) in cases {
                let arm = run_arm_with(&cfg, layout, device, cfg.steps, execution, snapshot);
                assert!(
                    results_bit_identical(&reference.results, &arm.results),
                    "{} on {:?} under {}/{} must match the scalar reference",
                    layout.name(),
                    device,
                    execution.name(),
                    snapshot.name(),
                );
            }
        }
    }

    #[test]
    fn relayout_bytes_surface_on_the_device_placement_only() {
        let cfg = tiny();
        let host = run_layout_arm(&cfg, Layout::AoS, None, cfg.steps);
        let device = run_layout_arm(&cfg, Layout::AoS, Some(0), cfg.steps);
        assert_eq!(
            host.counters.relayout_bytes, 0,
            "host fetch of a grouped table is zero-copy through the maps"
        );
        assert!(
            device.counters.relayout_bytes > 0,
            "device fetch of a grouped table pays the charged in-flight pack"
        );
    }

    #[test]
    fn sweep_report_is_structurally_sound_and_bit_identical() {
        let cfg = tiny();
        let report = run_layout_bench(&cfg);
        for sweep in report.sweeps() {
            assert_eq!(sweep.arms.len(), CANDIDATE_LAYOUTS.len());
            assert_eq!(sweep.probe_insitu.len(), CANDIDATE_LAYOUTS.len());
            assert!(CANDIDATE_LAYOUTS.contains(&sweep.picked), "autopick must choose a candidate");
            assert!(
                sweep.bit_identical(),
                "{} sweep must be bit-identical",
                sweep.placement_name()
            );
            for arm in &sweep.arms {
                assert_eq!(arm.results.len(), cfg.steps as usize * 2);
            }
        }
    }
}
