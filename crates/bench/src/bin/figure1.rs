//! Figure 1: an n-body run with in situ data binning of the sum of mass
//! in the x-y and x-z planes.
//!
//! The paper's Figure 1 shows a 100k-body run on 64 GPUs with 256x256
//! binning; this binary reproduces the same pipeline at configurable
//! scale and writes the binned mass-sum grids as PGM images and CSVs.
//!
//! ```text
//! figure1 [--bodies N] [--steps N] [--resolution N] [--ranks N] [--out DIR]
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use bench::bench_node_config;
use binning::{BinOp, BinningAnalysis, BinningSpec, ResultSink, VarOp};
use devsim::SimNode;
use minimpi::World;
use newtonpp::{forces::Gravity, ic::UniformIc, IcKind, Newton, NewtonAdaptor, NewtonConfig};
use parking_lot::Mutex;
use sensei::{BackendControls, Bridge, DeviceSpec};

struct Args {
    bodies: usize,
    steps: u64,
    resolution: usize,
    ranks: usize,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut a = Args {
        bodies: 10_000,
        steps: 20,
        resolution: 256,
        ranks: 4,
        out: PathBuf::from("results/figure1"),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let next = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).unwrap_or_else(|| panic!("missing value after {}", args[*i - 1])).clone()
        };
        match args[i].as_str() {
            "--bodies" => a.bodies = next(&mut i).parse().expect("--bodies"),
            "--steps" => a.steps = next(&mut i).parse().expect("--steps"),
            "--resolution" => a.resolution = next(&mut i).parse().expect("--resolution"),
            "--ranks" => a.ranks = next(&mut i).parse().expect("--ranks"),
            "--out" => a.out = PathBuf::from(next(&mut i)),
            other => panic!("unknown argument '{other}'"),
        }
        i += 1;
    }
    a
}

fn main() {
    let a = parse_args();
    println!(
        "Figure 1 reproduction: {} bodies, {} steps, {}x{} bins, {} ranks",
        a.bodies, a.steps, a.resolution, a.resolution, a.ranks
    );
    // Functional run: the time model is irrelevant for image output.
    let node = SimNode::new(devsim::NodeConfig {
        time_scale: 0.0,
        ..bench_node_config(a.ranks.max(1), 0.0)
    });

    let xy_sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
    let xz_sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
    let (xy2, xz2) = (xy_sink.clone(), xz_sink.clone());
    let (bodies, steps, resolution, ranks) = (a.bodies, a.steps, a.resolution, a.ranks);
    let node2 = node.clone();

    World::new(ranks).run(move |comm| {
        let cfg = NewtonConfig {
            ic: IcKind::Uniform(UniformIc {
                n: bodies,
                seed: 20230817,
                half_width: 1.0,
                mass_range: (0.5, 1.5),
                velocity_scale: 0.1,
                central_mass: bodies as f64, // the massive body at the origin
            }),
            dt: 1e-4,
            grav: Gravity { g: 1.0, eps: 0.05 },
            x_extent: (-2.0, 2.0),
            repartition_every: None,
        };
        let device = comm.rank() % node2.num_devices();
        let mut sim = Newton::new(node2.clone(), &comm, device, cfg).expect("init");

        let mut bridge = Bridge::new(node2.clone());
        for (axes, sink) in [(("x", "y"), &xy2), (("x", "z"), &xz2)] {
            let spec = BinningSpec::new(
                "bodies",
                axes,
                resolution,
                vec![
                    VarOp { var: "mass".into(), op: BinOp::Sum },
                    VarOp { var: String::new(), op: BinOp::Count },
                ],
            );
            let analysis = BinningAnalysis::new(spec)
                .with_sink(sink.clone())
                .with_controls(BackendControls { device: DeviceSpec::Auto, ..Default::default() });
            bridge.add_analysis(Box::new(analysis), &comm).expect("attach");
        }

        for s in 0..steps {
            sim.step(&comm).expect("step");
            let adaptor = NewtonAdaptor::new(&sim);
            bridge.execute(&adaptor, &comm, std::time::Duration::ZERO).expect("in situ");
            if comm.rank() == 0 && (s + 1) % 5 == 0 {
                eprintln!("step {}/{}", s + 1, steps);
            }
        }
        bridge.finalize(&comm).expect("finalize");
    });

    std::fs::create_dir_all(&a.out).expect("output dir");
    for (name, sink) in [("xy", xy_sink), ("xz", xz_sink)] {
        let results = sink.lock();
        let last = results.last().expect("at least one result");
        let sum = last.array("sum_mass").expect("sum_mass output");
        let pgm = binning::io::to_pgm(last.grid.nx, last.grid.ny, sum, true);
        let path = a.out.join(format!("mass_sum_{name}.pgm"));
        std::fs::write(&path, pgm).expect("write pgm");
        std::fs::write(
            a.out.join(format!("mass_sum_{name}.csv")),
            binning::io::to_csv(last.grid.nx, last.grid.ny, sum),
        )
        .expect("write csv");
        let total: f64 = sum.iter().sum();
        println!(
            "{}: wrote {} (total binned mass {:.1}, grid {}x{})",
            name,
            path.display(),
            total,
            last.grid.nx,
            last.grid.ny
        );
    }
    println!("done; view the PGMs with any image viewer (cf. paper Figure 1, middle/right panels)");
}
