//! The experiment harness: regenerates Table 1, Figure 2, and Figure 3.
//!
//! ```text
//! harness [table1|figure2|figure3|binning|all] [--bodies N] [--steps N]
//!         [--resolution N] [--instances N] [--devices N] [--scale F]
//!         [--pool on|off] [--fused on|off] [--out DIR]
//! harness chaos [--seed N] [--out DIR]
//! harness dag [--steps N] [--devices N] [--scale F] [--out DIR]
//! harness snapshot [--bodies N] [--steps N] [--resolution N]
//!         [--instances N] [--scale F] [--out DIR]
//! harness scale [--rank-counts N,N,...] [--steps N] [--out DIR]
//! harness layout [--steps N] [--resolution N] [--scale F] [--out DIR]
//! harness serve [--sessions N,N,...] [--out DIR]
//! harness run-config <sensei.xml> [--bodies N] [--steps N] [--devices N]
//!         [--scale F]
//! ```
//!
//! `binning` runs the fused-vs-per-op A/B on the bounded 90-op workload
//! (lockstep for the apparent-cost comparison, asynchronous for the
//! collective/kernel counters), prints both arms' work counters, writes
//! `BENCH_binning.json` under `--out`, and exits non-zero if the fused
//! arm's apparent cost is not at or below the per-op arm's.
//!
//! `chaos` runs the bounded fused binning workload under a deterministic
//! fault schedule (see `bench::run_chaos`), hard-asserts the recovery
//! counters — retry must recover every injected fault with results
//! bit-identical to the fault-free baseline, skip_step must drop exactly
//! one step while the solver runs to completion — and writes
//! `BENCH_chaos.json` under `--out`.
//!
//! `dag` runs the dataflow-vs-threaded execution A/B on a skewed
//! mixed-cost binning workload (see `bench::run_dag_bench`): heavy
//! multi-op instances interleaved with count-only ones, a shallow
//! snapshot queue, and the dag arms' work-stealing scheduler spreading
//! kernel tasks across every device. Hard-asserts that every arm's
//! results are bit-identical to the inline reference, that the dag
//! stole at least one task without aborting any, and that the
//! deep-snapshot dag arm beats the threaded arm on both apparent in
//! situ cost and total wall time; writes `BENCH_dag.json` under
//! `--out`. The workload's rows/resolution/instance mix are fixed by
//! the A/B; `--steps`, `--devices`, and `--scale` apply.
//!
//! `snapshot` runs the deep-vs-delta-vs-cow snapshot A/B on the bounded
//! fused binning workload (see `bench::run_snapshot_bench`), prints the
//! snapshot-layer counters per arm, hard-asserts that the delta and cow
//! arms' binned results are bit-identical to the deep reference and that
//! the cow arm copies at least 70% fewer bytes per step, and writes
//! `BENCH_snapshot.json` under `--out`.
//!
//! `scale` sweeps the hierarchical-vs-flat collective A/B over a list of
//! rank counts (default 4, 64, 512 — the paper's Perlmutter span) in
//! weak- and strong-scaling configurations (see `bench::run_scale_bench`).
//! Hard-asserts bit identity at every count, fewer inter-node messages
//! on every multi-node point, a modeled-total win at the largest count,
//! and the fused suite's 1-allreduce-per-step invariant on the tiered
//! path; writes `BENCH_scale.json` under `--out`.
//!
//! `layout` runs the layout-polymorphic data-model A/B (see
//! `bench::run_layout_bench`): the same synthetic particle table
//! published as dense scalar columns vs one interleaved AoS / SoA /
//! AoSoA block, consumed lockstep by the fused binning suite on the
//! host and device placements, plus a probe-based per-placement
//! autopick. Hard-asserts bit identity of every arm against the scalar
//! reference, a host win for the lane-vectorized AoSoA arm, zero-copy
//! host fetches vs charged device packs (`relayout_bytes`), and the
//! autopick landing within 5% of the best static layout; writes
//! `BENCH_layout.json` under `--out`.
//!
//! `adaptive` closes the profiler loop: static (placement, layout)
//! grids plus bridge-resident `AdaptiveController` arms over a steady
//! and a drifting cost surface. Hard-asserts that the adaptive arm,
//! started from the *worst* static configuration, settles within the
//! step bound at a steady-state apparent cost within 10% of the best
//! static arm; that under drift it beats *every* static arm end-to-end;
//! that every arm is bit-identical to the static reference; and that no
//! dispatch aborted. Writes `BENCH_adaptive.json` under `--out`.
//!
//! `serve` runs the live result-serving sweep (see
//! `bench::run_serve_bench`): N concurrent client sessions — mixed fast
//! block-policy, slow drop-oldest, and continuously churning —
//! subscribe by (variable × coordinate system) while the fused binning
//! suite runs asynchronously under CoW snapshots, with each step's
//! results serialized once per coordinate system and fanned out as
//! refcounted views. Sweeps the session counts (default 64, 512, 4096),
//! hard-asserts that bytes serialized per step are *flat* across the
//! sweep, that no block-policy fast client missed a frame, that the
//! binned results are bit-identical whatever the audience, and that a
//! session-steered two-rank run (frequency, resolution, pause, resume)
//! matches a direct-reconfiguration replay bit for bit. Writes
//! `BENCH_serve.json` under `--out`.
//!
//! `run-config` runs Newton++ against a SENSEI XML configuration (the
//! files under `configs/sensei_xml/`), with back-end selection, placement,
//! and execution method all controlled by the XML, as in the paper's
//! appendix. An optional `<topology>` element groups the ranks into
//! simulated nodes and routes collectives hierarchically.
//!
//! `figure2`/`figure3` run the full 8-case matrix (4 placements × 2
//! execution methods) and print the paper-shaped bar charts plus CSV
//! files under `--out` (default `results/`).

use std::path::{Path, PathBuf};
use std::time::Instant;

use bench::{ascii_bars, ascii_stack, bench_node_config, run_case, AggregatedCase, CaseConfig};
use sensei::{ExecutionMethod, Placement};

fn parse_args() -> (String, CaseConfig, PathBuf, Option<PathBuf>, u64, Vec<usize>, Vec<usize>) {
    let mut mode = "all".to_string();
    let mut cfg = CaseConfig::small(Placement::Host, ExecutionMethod::Lockstep);
    let mut out = PathBuf::from("results");
    let mut xml = None;
    let mut chaos_seed = 7u64;
    let mut rank_counts = vec![4, 64, 512];
    let mut session_counts = vec![64, 512, 4096];
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let next = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).unwrap_or_else(|| panic!("missing value after {}", args[*i - 1])).clone()
        };
        match args[i].as_str() {
            "table1" | "figure2" | "figure3" | "binning" | "chaos" | "snapshot" | "dag"
            | "scale" | "layout" | "adaptive" | "serve" | "all" => mode = args[i].clone(),
            "run-config" => {
                mode = "run-config".into();
                xml = Some(PathBuf::from(next(&mut i)));
            }
            "--bodies" => cfg.bodies = next(&mut i).parse().expect("--bodies"),
            "--steps" => cfg.steps = next(&mut i).parse().expect("--steps"),
            "--resolution" => cfg.resolution = next(&mut i).parse().expect("--resolution"),
            "--instances" => cfg.instances = next(&mut i).parse().expect("--instances"),
            "--devices" => cfg.num_devices = next(&mut i).parse().expect("--devices"),
            "--scale" => cfg.time_scale = next(&mut i).parse().expect("--scale"),
            "--pool" => {
                cfg.pool = match next(&mut i).as_str() {
                    "on" => true,
                    "off" => false,
                    other => panic!("--pool takes 'on' or 'off', got '{other}'"),
                }
            }
            "--fused" => {
                cfg.fused = match next(&mut i).as_str() {
                    "on" => true,
                    "off" => false,
                    other => panic!("--fused takes 'on' or 'off', got '{other}'"),
                }
            }
            "--seed" => chaos_seed = next(&mut i).parse().expect("--seed"),
            "--rank-counts" => {
                rank_counts = next(&mut i)
                    .split(',')
                    .map(|s| s.trim().parse().expect("--rank-counts takes a comma list"))
                    .collect();
                assert!(!rank_counts.is_empty(), "--rank-counts needs at least one count");
            }
            "--sessions" => {
                session_counts = next(&mut i)
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sessions takes a comma list"))
                    .collect();
                assert!(!session_counts.is_empty(), "--sessions needs at least one count");
            }
            "--out" => out = PathBuf::from(next(&mut i)),
            other => panic!("unknown argument '{other}'"),
        }
        i += 1;
    }
    (mode, cfg, out, xml, chaos_seed, rank_counts, session_counts)
}

/// Run Newton++ against a SENSEI XML configuration: back-end selection,
/// placement, and execution method all come from the file.
fn run_config(xml_path: &PathBuf, base: &CaseConfig) {
    use devsim::SimNode;
    use minimpi::World;
    use newtonpp::{forces::Gravity, ic::UniformIc, IcKind, Newton, NewtonAdaptor, NewtonConfig};
    use sensei::{AnalysisRegistry, Bridge, ConfigurableAnalysis, CreateContext};

    let xml = std::fs::read_to_string(xml_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", xml_path.display()));
    let node = SimNode::new(bench_node_config(base.num_devices, base.time_scale));
    let ranks = base.num_devices;
    let (bodies, steps, seed) = (base.bodies, base.steps, base.seed);
    println!("running {} on {ranks} ranks, {bodies} bodies, {steps} steps", xml_path.display());

    // An optional <topology> element groups the ranks into simulated
    // nodes, selects the collective routing, and sets the two-tier
    // network cost model the world charges messages against.
    let mut world = World::new(ranks);
    if let Some(t) = ConfigurableAnalysis::from_xml(&xml).expect("parse XML").topology_config() {
        let topo = t.topology(ranks);
        println!(
            "topology: {} ranks on {} nodes ({} per node), {:?} collectives",
            ranks,
            topo.num_nodes(),
            t.ranks_per_node,
            t.mode
        );
        world = world.with_topology(topo).with_collective_mode(t.mode).with_net(t.net, 1.0);
    }

    let summaries = world.run(move |comm| {
        let node = node.clone();
        let mut registry = AnalysisRegistry::new();
        binning::register(&mut registry);
        binning::register_suite(&mut registry);
        analyses::register_all(&mut registry);
        let registry = std::sync::Arc::new(registry);
        let config = ConfigurableAnalysis::from_xml(&xml).expect("parse XML");
        let ctx = CreateContext { node: node.clone(), rank: comm.rank(), size: comm.size() };
        // An <adaptive> element hands the run-time knobs to the online
        // controller; its probes rebuild back-ends mid-run, so attach
        // them with factories instead of fixed adaptors.
        let adaptive = config.adaptive_config();
        let backends = if adaptive.is_some() {
            Vec::new()
        } else {
            config.instantiate(&registry, &ctx).expect("instantiate")
        };
        let reconfigurable = if adaptive.is_some() {
            config.instantiate_reconfigurable(&registry, &ctx).expect("instantiate")
        } else {
            Vec::new()
        };
        if comm.rank() == 0 {
            println!("instantiated {} back-ends", backends.len() + reconfigurable.len());
            for b in &backends {
                println!(
                    "  {}: {} on {:?}",
                    b.name(),
                    b.controls().execution.name(),
                    b.controls().device
                );
            }
            for (c, _) in &reconfigurable {
                println!("  (reconfigurable): {} on {:?}", c.execution.name(), c.device);
            }
        }

        let newton_cfg = NewtonConfig {
            ic: IcKind::Uniform(UniformIc {
                n: bodies,
                seed,
                half_width: 1.0,
                mass_range: (0.5, 1.5),
                velocity_scale: 0.1,
                central_mass: bodies as f64,
            }),
            dt: 1e-4,
            grav: Gravity { g: 1.0, eps: 0.05 },
            x_extent: (-2.0, 2.0),
            repartition_every: None,
        };
        let mut sim =
            Newton::new(node.clone(), &comm, comm.rank() % node.num_devices(), newton_cfg)
                .expect("init simulation");
        let mut bridge = Bridge::new(node);
        if let Some(mode) = config.snapshot_mode() {
            if comm.rank() == 0 {
                println!("snapshot mode: {}", mode.name());
            }
            bridge.set_snapshot_mode(mode);
        }
        for b in backends {
            bridge.add_analysis(b, &comm).expect("attach");
        }
        for (controls, factory) in reconfigurable {
            bridge.add_reconfigurable_analysis(controls, factory, &comm).expect("attach");
        }
        if let Some(a) = adaptive {
            if comm.rank() == 0 {
                println!(
                    "adaptive: window {} hysteresis {:.0}% probe budget {}",
                    a.window,
                    a.hysteresis * 100.0,
                    a.probe_budget
                );
            }
            bridge.enable_adaptive(a);
        }
        for _ in 0..steps {
            let solver = sim.step(&comm).expect("step");
            let adaptor = NewtonAdaptor::new(&sim);
            bridge.execute(&adaptor, &comm, solver).expect("in situ");
        }
        let profiler = bridge.finalize(&comm).expect("finalize");
        (profiler.summary(), profiler.backend_breakdown())
    });
    for (rank, (s, backends)) in summaries.iter().enumerate() {
        println!(
            "rank {rank}: {} iterations, mean solver {:.2} ms, apparent in situ {:.2} ms, total {:.3} s",
            s.iterations,
            s.mean_solver.as_secs_f64() * 1e3,
            s.mean_insitu.as_secs_f64() * 1e3,
            s.total_runtime.as_secs_f64()
        );
        for b in backends {
            println!(
                "    {:<24} {:>3} dispatches, mean apparent {:.3} ms",
                b.backend,
                b.dispatches,
                b.mean_apparent.as_secs_f64() * 1e3
            );
        }
    }
}

fn case_label(c: &CaseConfig) -> String {
    format!("{:<20} {}", c.placement.label(), c.execution.name())
}

fn print_table1(base: &CaseConfig) {
    println!("\nTable 1: runs made to investigate in situ placement");
    println!(
        "(paper: 128 nodes / 512 GPUs; here: 1 simulated node / {} devices)\n",
        base.num_devices
    );
    println!("  In-Situ    In-Situ       Ranks                 In-Situ");
    println!("  Method                   per node       Total  Location");
    for placement in Placement::paper_placements() {
        for execution in [ExecutionMethod::Lockstep, ExecutionMethod::Asynchronous] {
            let ranks = placement.ranks_per_node(base.num_devices);
            println!(
                "  {:<10} {:<13} {:<14} {:<6} {}",
                execution.name(),
                "",
                ranks,
                ranks, // single-node: total == per node
                placement.label()
            );
        }
    }
}

fn run_matrix(base: &CaseConfig) -> Vec<AggregatedCase> {
    let cases = CaseConfig::matrix(base);
    let mut results = Vec::with_capacity(cases.len());
    for (i, case) in cases.iter().enumerate() {
        let t0 = Instant::now();
        eprint!(
            "[{}/{}] {} / {} ... ",
            i + 1,
            cases.len(),
            case.placement.label(),
            case.execution.name()
        );
        let out = run_case(case);
        eprintln!("done in {:.2?} (total={:.3?})", t0.elapsed(), out.total);
        results.push(out);
    }
    results
}

fn write_csv(path: &PathBuf, results: &[AggregatedCase]) {
    let mut csv = String::from("placement,execution,ranks,total_s,mean_solver_s,mean_insitu_s\n");
    for r in results {
        csv.push_str(&format!(
            "{},{},{},{:.6},{:.6},{:.6}\n",
            r.config.placement.label().replace(' ', "_"),
            r.config.execution.name(),
            r.ranks,
            r.total.as_secs_f64(),
            r.mean_solver.as_secs_f64(),
            r.mean_insitu.as_secs_f64(),
        ));
    }
    std::fs::create_dir_all(path.parent().unwrap_or(&PathBuf::from("."))).ok();
    std::fs::write(path, csv).expect("write CSV");
    println!("wrote {}", path.display());
}

fn write_backend_csv(path: &PathBuf, results: &[AggregatedCase]) {
    let mut csv =
        String::from("placement,execution,backend,dispatches,mean_apparent_s,total_apparent_s\n");
    for r in results {
        for b in &r.backends {
            csv.push_str(&format!(
                "{},{},{},{},{:.9},{:.9}\n",
                r.config.placement.label().replace(' ', "_"),
                r.config.execution.name(),
                b.backend,
                b.dispatches,
                b.mean_apparent.as_secs_f64(),
                b.total_apparent.as_secs_f64(),
            ));
        }
    }
    std::fs::create_dir_all(path.parent().unwrap_or(&PathBuf::from("."))).ok();
    std::fs::write(path, csv).expect("write CSV");
    println!("wrote {}", path.display());
}

/// Machine-readable pool report: one JSON object per case with the
/// timings and the node-wide caching-pool counters. Hand-rolled — the
/// schema is flat and the repo carries no JSON dependency.
fn write_pool_json(path: &PathBuf, results: &[AggregatedCase]) {
    let mut json = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let t = r.pool_total();
        json.push_str(&format!(
            "  {{\"placement\": \"{}\", \"execution\": \"{}\", \"pool\": {}, \
             \"total_s\": {:.6}, \"mean_insitu_s\": {:.9}, \
             \"hit_rate\": {:.4}, \"hits\": {}, \"misses\": {}, \
             \"bytes_from_cache\": {}, \"raw_allocs\": {}, \"raw_alloc_bytes\": {}, \
             \"high_water_bytes\": {}}}{}\n",
            r.config.placement.label().replace(' ', "_"),
            r.config.execution.name(),
            r.config.pool,
            r.total.as_secs_f64(),
            r.mean_insitu.as_secs_f64(),
            t.hit_rate(),
            t.hits,
            t.misses,
            t.bytes_served_from_cache,
            t.raw_allocs,
            t.raw_alloc_bytes,
            t.high_water_bytes,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("]\n");
    std::fs::create_dir_all(path.parent().unwrap_or(&PathBuf::from("."))).ok();
    std::fs::write(path, json).expect("write JSON");
    println!("wrote {}", path.display());
}

/// Machine-readable fused-vs-per-op report: one JSON object per arm with
/// the timings and work counters. Hand-rolled like `write_pool_json`.
fn write_binning_json(path: &Path, results: &[AggregatedCase]) {
    let mut json = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let c = &r.counters;
        json.push_str(&format!(
            "  {{\"execution\": \"{}\", \"fused\": {}, \"ranks\": {}, \"steps\": {}, \
             \"instances\": {}, \"total_s\": {:.6}, \"mean_insitu_s\": {:.9}, \
             \"table_passes\": {}, \"kernel_launches\": {}, \"downloads\": {}, \
             \"allreduces\": {}, \"fetches\": {}}}{}\n",
            r.config.execution.name(),
            r.config.fused,
            r.ranks,
            r.config.steps,
            r.config.instances,
            r.total.as_secs_f64(),
            r.mean_insitu.as_secs_f64(),
            c.table_passes,
            c.kernel_launches,
            c.downloads,
            c.allreduces,
            c.fetches,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("]\n");
    std::fs::create_dir_all(path.parent().unwrap_or(&PathBuf::from("."))).ok();
    std::fs::write(path, json).expect("write JSON");
    println!("wrote {}", path.display());
}

/// The fused-vs-per-op A/B on the bounded workload: lockstep arms for the
/// apparent-cost comparison (apparent == actual modeled in situ time),
/// asynchronous arms for the per-step collective/kernel counters the
/// fused path guarantees. Exits non-zero if the fused arm costs more.
fn run_binning(base: &CaseConfig, out_dir: &Path) {
    let mk = |fused: bool, execution: ExecutionMethod| CaseConfig {
        fused,
        bounded: true,
        placement: Placement::SameDevice,
        execution,
        ..*base
    };
    println!(
        "\nFused vs per-op binning A/B: {} instances x {} ops, bounded axes, same-device placement",
        base.instances, VARIABLE_OPS_PER_INSTANCE
    );

    let mut results = Vec::new();
    for execution in [ExecutionMethod::Lockstep, ExecutionMethod::Asynchronous] {
        for fused in [true, false] {
            let cfg = mk(fused, execution);
            let t0 = Instant::now();
            eprint!("{} / {} ... ", execution.name(), if fused { "fused" } else { "per-op" });
            let out = run_case(&cfg);
            eprintln!("done in {:.2?}", t0.elapsed());
            results.push(out);
        }
    }

    println!(
        "\n  {:<14} {:<7} {:>12} {:>10} {:>10} {:>11} {:>9} {:>14}",
        "execution",
        "fused",
        "passes",
        "kernels",
        "downloads",
        "allreduces",
        "fetches",
        "insitu/iter"
    );
    for r in &results {
        let c = &r.counters;
        println!(
            "  {:<14} {:<7} {:>12} {:>10} {:>10} {:>11} {:>9} {:>11.3} ms",
            r.config.execution.name(),
            r.config.fused,
            c.table_passes,
            c.kernel_launches,
            c.downloads,
            c.allreduces,
            c.fetches,
            r.mean_insitu.as_secs_f64() * 1e3,
        );
    }

    // The fused path's per-step guarantees, on the asynchronous workload.
    let async_fused = results
        .iter()
        .find(|r| r.config.fused && r.config.execution == ExecutionMethod::Asynchronous)
        .expect("matrix is complete");
    let rank_steps = async_fused.ranks as u64 * base.steps;
    let per_block = base.instances as u64 * rank_steps;
    assert_eq!(
        async_fused.counters.allreduces, rank_steps,
        "fused path must issue exactly one allreduce per step per rank"
    );
    assert_eq!(
        async_fused.counters.kernel_launches, per_block,
        "fused path must launch one kernel per (coordinate system, block)"
    );
    assert_eq!(
        async_fused.counters.downloads, per_block,
        "fused path must make one packed download per (coordinate system, block)"
    );
    println!(
        "\n  verified: fused async arm did {} allreduces over {} rank-steps, \
         {} kernel launches / downloads over {} (system, block) pairs",
        async_fused.counters.allreduces,
        rank_steps,
        async_fused.counters.kernel_launches,
        per_block
    );

    write_binning_json(&out_dir.join("BENCH_binning.json"), &results);

    // The smoke assertion CI relies on: fusing must not cost more.
    let lock_fused = results
        .iter()
        .find(|r| r.config.fused && r.config.execution == ExecutionMethod::Lockstep)
        .expect("matrix is complete");
    let lock_perop = results
        .iter()
        .find(|r| !r.config.fused && r.config.execution == ExecutionMethod::Lockstep)
        .expect("matrix is complete");
    let ratio =
        lock_fused.mean_insitu.as_secs_f64() / lock_perop.mean_insitu.as_secs_f64().max(1e-12);
    println!(
        "  apparent in situ cost, lockstep: fused {:.3} ms vs per-op {:.3} ms (x{:.2})",
        lock_fused.mean_insitu.as_secs_f64() * 1e3,
        lock_perop.mean_insitu.as_secs_f64() * 1e3,
        ratio,
    );
    if lock_fused.mean_insitu > lock_perop.mean_insitu {
        eprintln!("FAIL: fused apparent cost exceeds the per-op reference");
        std::process::exit(1);
    }
    println!("  PASS: fused apparent cost <= per-op apparent cost");
}

/// Machine-readable chaos report: one JSON object per arm with the
/// recovery counters. Hand-rolled like `write_pool_json`.
fn write_chaos_json(path: &Path, report: &bench::ChaosReport) {
    let arms = [&report.baseline, &report.retry, &report.skip];
    let mut json = String::from("[\n");
    for (i, a) in arms.iter().enumerate() {
        let f = &a.faults;
        json.push_str(&format!(
            "  {{\"arm\": \"{}\", \"policy\": \"{}\", \"seed\": {}, \"ranks\": {}, \
             \"steps_completed\": {}, \"dispatch_errors\": {}, \"results\": {}, \
             \"faults_injected\": {}, \"faults_retried\": {}, \"faults_recovered\": {}, \
             \"faults_skipped\": {}, \"faults_aborted\": {}, \
             \"injector_errors\": {}, \"injector_delays\": {}, \
             \"bit_identical_to_baseline\": {}}}{}\n",
            a.arm,
            a.policy,
            report.config.seed,
            a.ranks,
            a.steps_completed,
            a.dispatch_errors,
            a.results.len(),
            f.injected,
            f.retried,
            f.recovered,
            f.skipped,
            f.aborted,
            a.injector_errors,
            a.injector_delays,
            bench::results_bit_identical(&report.baseline.results, &a.results),
            if i + 1 < arms.len() { "," } else { "" },
        ));
    }
    json.push_str("]\n");
    std::fs::create_dir_all(path.parent().unwrap_or(&PathBuf::from("."))).ok();
    std::fs::write(path, json).expect("write JSON");
    println!("wrote {}", path.display());
}

/// The chaos smoke: run the three arms, print the recovery counters, and
/// hard-assert the claims CI relies on — retry recovers every injected
/// fault bit-identically, skip_step degrades gracefully, and the solver
/// finishes every arm.
fn run_chaos_mode(seed: u64, out_dir: &Path) {
    let cfg = bench::ChaosConfig { seed, ..Default::default() };
    println!(
        "\nChaos: {} instances on {}^2 bins, {} steps, fault seed {}",
        cfg.instances, cfg.resolution, cfg.steps, cfg.seed
    );

    let t0 = Instant::now();
    let report = bench::run_chaos(&cfg);
    eprintln!("three arms done in {:.2?}", t0.elapsed());

    println!(
        "\n  {:<10} {:<10} {:>5} {:>6} {:>8} {:>9} {:>8} {:>10} {:>8} {:>8}",
        "arm",
        "policy",
        "ranks",
        "steps",
        "results",
        "injected",
        "retried",
        "recovered",
        "skipped",
        "aborted"
    );
    for a in [&report.baseline, &report.retry, &report.skip] {
        let f = &a.faults;
        println!(
            "  {:<10} {:<10} {:>5} {:>6} {:>8} {:>9} {:>8} {:>10} {:>8} {:>8}",
            a.arm,
            a.policy,
            a.ranks,
            a.steps_completed,
            a.results.len(),
            f.injected,
            f.retried,
            f.recovered,
            f.skipped,
            f.aborted,
        );
    }

    let steps = cfg.steps;
    let instances = cfg.instances;

    let b = &report.baseline;
    assert_eq!(b.faults, sensei::FaultSnapshot::default(), "baseline must inject nothing");
    assert_eq!(b.dispatch_errors, 0, "baseline must not error");
    assert_eq!(b.results.len(), steps as usize * instances, "baseline delivers every step");

    // Retry: every rank's dispatch fails twice and recovers on the third
    // attempt; the solver loop never sees an error and the recovered
    // results match the fault-free run bit for bit.
    let r = &report.retry;
    let ranks = r.ranks as u64;
    assert_eq!(r.steps_completed, steps, "retry arm solver must finish");
    assert_eq!(r.dispatch_errors, 0, "recovery must hide injected faults from the solver");
    assert_eq!(r.faults.injected, ranks, "one injected dispatch per rank");
    assert_eq!(r.faults.retried, 2 * ranks, "two retry attempts per rank");
    assert_eq!(r.faults.recovered, ranks, "every rank's dispatch recovers");
    assert_eq!(r.faults.aborted, 0, "nothing aborts under retry");
    assert!(r.injector_delays >= 1, "the slow-rank collective delay must fire");
    if !report.retry_bit_identical() {
        eprintln!("FAIL: retry arm results differ from the fault-free baseline");
        std::process::exit(1);
    }

    // Skip: the worker drops exactly the faulted step and keeps going;
    // the simulation still runs to completion.
    let s = &report.skip;
    assert_eq!(s.steps_completed, steps, "skip_step keeps the simulation running");
    assert_eq!(s.dispatch_errors, 0, "skip_step surfaces no dispatch errors");
    assert_eq!(s.faults.skipped, 1, "exactly one step is skipped");
    assert_eq!(s.faults.aborted, 0, "skip_step never aborts");
    assert_eq!(
        s.results.len(),
        (steps as usize - 1) * instances,
        "exactly one step's results are missing"
    );

    write_chaos_json(&out_dir.join("BENCH_chaos.json"), &report);
    println!(
        "  PASS: retry recovered {} faulted dispatches bit-identically; \
         skip_step dropped 1 of {} steps and finished",
        r.faults.recovered, steps
    );
}

/// Machine-readable snapshot report: one JSON object per arm with the
/// snapshot-layer counters. Hand-rolled like `write_pool_json`.
fn write_snapshot_json(path: &Path, report: &bench::SnapshotReport) {
    let steps = report.config.steps;
    let arms = report.arms();
    let mut json = String::from("[\n");
    for (i, a) in arms.iter().enumerate() {
        let c = &a.counters;
        json.push_str(&format!(
            "  {{\"mode\": \"{}\", \"steps\": {}, \"instances\": {}, \"results\": {}, \
             \"arrays_shared\": {}, \"arrays_copied\": {}, \"bytes_copied\": {}, \
             \"bytes_per_step\": {:.1}, \"cow_faults\": {}, \"copy_overlap_ns\": {}, \
             \"mean_insitu_s\": {:.9}, \"total_s\": {:.6}, \
             \"bit_identical_to_deep\": {}}}{}\n",
            a.mode.name(),
            steps,
            report.config.instances,
            a.results.len(),
            c.arrays_shared,
            c.arrays_copied,
            c.bytes_copied,
            a.bytes_per_step(steps),
            c.cow_faults,
            c.copy_overlap_ns,
            a.mean_insitu.as_secs_f64(),
            a.total.as_secs_f64(),
            report.bit_identical_to_deep(a),
            if i + 1 < arms.len() { "," } else { "" },
        ));
    }
    json.push_str("]\n");
    std::fs::create_dir_all(path.parent().unwrap_or(&PathBuf::from("."))).ok();
    std::fs::write(path, json).expect("write JSON");
    println!("wrote {}", path.display());
}

/// The snapshot A/B smoke: run the deep, delta, and cow arms, print the
/// snapshot-layer counters, and hard-assert the deterministic claims CI
/// relies on — every arm's binned results are bit-identical to the deep
/// reference, cow captures eager-copy nothing, and cow fault traffic
/// never exceeds the deep reference. The headline ≥70% byte reduction
/// depends on OS scheduling (the consumer must release its shares
/// within the modeled kernel-launch gap), so a shortfall only warns.
fn run_snapshot_mode(base: &CaseConfig, out_dir: &Path) {
    let cfg = bench::SnapshotBenchConfig {
        bodies: base.bodies,
        steps: base.steps,
        resolution: base.resolution.min(32),
        instances: base.instances,
        time_scale: base.time_scale,
    };
    println!(
        "\nSnapshot capture A/B: deep vs delta vs cow, {} bodies, {} steps, \
         {} instances on {}^2 bins, async host-placed suite",
        cfg.bodies, cfg.steps, cfg.instances, cfg.resolution
    );

    let t0 = Instant::now();
    let report = bench::run_snapshot_bench(&cfg);
    eprintln!("three arms done in {:.2?}", t0.elapsed());

    println!(
        "\n  {:<7} {:>8} {:>8} {:>12} {:>12} {:>7} {:>12} {:>12}",
        "mode", "shared", "copied", "bytes", "bytes/step", "faults", "overlap_ms", "insitu/iter"
    );
    for a in report.arms() {
        let c = &a.counters;
        println!(
            "  {:<7} {:>8} {:>8} {:>12} {:>12.0} {:>7} {:>12.3} {:>9.3} ms",
            a.mode.name(),
            c.arrays_shared,
            c.arrays_copied,
            c.bytes_copied,
            a.bytes_per_step(cfg.steps),
            c.cow_faults,
            c.copy_overlap_ns as f64 / 1e6,
            a.mean_insitu.as_secs_f64() * 1e3,
        );
    }

    // The deep reference behaves like the pre-CoW bridge.
    let d = &report.deep;
    assert_eq!(d.results.len(), cfg.steps as usize * cfg.instances, "deep delivers every step");
    assert_eq!(d.counters.arrays_shared, 0, "deep mode never shares");
    assert_eq!(d.counters.cow_faults, 0, "deep mode never takes a CoW fault");
    assert!(d.counters.bytes_copied > 0, "deep mode copies every capture");

    // Correctness before savings: sharing must never leak post-capture
    // writes into a capture.
    for a in [&report.delta, &report.cow] {
        assert_eq!(a.results.len(), d.results.len(), "{} delivers every step", a.mode.name());
        if !report.bit_identical_to_deep(a) {
            eprintln!("FAIL: {} arm results differ from the deep reference", a.mode.name());
            std::process::exit(1);
        }
    }

    // Delta savings are bounded (Newton++ rewrites all but mass each
    // step) but must exist; cow sharing must dominate it.
    assert!(report.delta.counters.arrays_shared > 0, "delta shares unmodified arrays");
    assert!(report.delta.counters.bytes_copied < d.counters.bytes_copied);
    assert!(report.cow.counters.arrays_shared > report.delta.counters.arrays_shared);

    // Deterministic cow invariants, independent of how the OS schedules
    // the consumer worker: a cow capture itself never copies (all of its
    // bytes come from CoW faults), and a fault copies a pinned array at
    // most once per capture — so cow traffic can never exceed deep's,
    // which copies every selected array every capture.
    assert_eq!(report.cow.counters.arrays_copied, 0, "cow captures eager-copy nothing");
    assert!(
        report.cow.counters.bytes_copied <= d.counters.bytes_copied,
        "cow fault traffic is bounded by the deep reference"
    );

    write_snapshot_json(&out_dir.join("BENCH_snapshot.json"), &report);

    // The headline reduction relies on the consumer worker fetching and
    // releasing its shares within the modeled kernel-launch gap. On a
    // loaded runner a delayed worker faults more arrays, so a shortfall
    // is scheduling noise, not a correctness failure — correctness is
    // gated bit-identically above. Warn instead of failing.
    let reduction = report.cow_bytes_reduction();
    println!(
        "  copy traffic: deep {:.0} B/step vs cow {:.0} B/step ({:.1}% reduction)",
        d.bytes_per_step(cfg.steps),
        report.cow.bytes_per_step(cfg.steps),
        reduction * 100.0,
    );
    if reduction < 0.70 {
        eprintln!(
            "WARN: cow copied only {:.1}% fewer bytes than deep (steady-state target 70%); \
             a loaded runner can delay the consumer's share release",
            reduction * 100.0
        );
    }
    println!(
        "  PASS: all arms bit-identical; cow eager-copied nothing ({:.1}% fewer bytes than deep)",
        reduction * 100.0
    );
}

/// Machine-readable dag A/B report: one JSON object per arm with the
/// timings, work counters, and scheduler counters. Hand-rolled like
/// `write_pool_json`.
fn write_dag_json(path: &Path, report: &bench::DagBenchReport) {
    let arms = report.arms();
    let mut json = String::from("[\n");
    for (i, a) in arms.iter().enumerate() {
        let s = &a.sched;
        let c = &a.counters;
        json.push_str(&format!(
            "  {{\"arm\": \"{}\", \"execution\": \"{}\", \"snapshot\": \"{}\", \
             \"steps\": {}, \"instances\": {}, \"total_s\": {:.6}, \
             \"mean_insitu_s\": {:.9}, \"tasks\": {}, \"steals\": {}, \
             \"idle_ns\": {}, \"critical_path_ns\": {}, \"kernel_launches\": {}, \
             \"downloads\": {}, \"allreduces\": {}, \"faults_aborted\": {}, \
             \"bit_identical_to_inline\": {}}}{}\n",
            a.arm,
            a.execution.name(),
            a.snapshot.name(),
            report.config.steps,
            report.config.instances(),
            a.total.as_secs_f64(),
            a.mean_insitu.as_secs_f64(),
            s.tasks,
            s.steals,
            s.idle_ns,
            s.critical_path_ns,
            c.kernel_launches,
            c.downloads,
            c.allreduces,
            c.faults.aborted,
            report.bit_identical_to_inline(a),
            if i + 1 < arms.len() { "," } else { "" },
        ));
    }
    json.push_str("]\n");
    std::fs::create_dir_all(path.parent().unwrap_or(&PathBuf::from("."))).ok();
    std::fs::write(path, json).expect("write JSON");
    println!("wrote {}", path.display());
}

/// The dag smoke: run the five arms on the skewed mixed-cost workload,
/// print the timings and scheduler counters, and hard-assert the claims
/// CI relies on — every arm bit-identical to the inline reference, the
/// dag stealing at least one task and aborting none, and the
/// deep-snapshot dag arm beating the threaded arm on both apparent cost
/// and total wall time.
fn run_dag_mode(base: &CaseConfig, out_dir: &Path) {
    let cfg = bench::DagBenchConfig {
        steps: base.steps,
        num_devices: base.num_devices.max(2),
        // `--scale` multiplies the dag workload's own (deliberately
        // high) default time scale; the A/B must stay kernel-bound in
        // modeled time for device overlap to be measurable.
        time_scale: base.time_scale * bench::DagBenchConfig::default().time_scale,
        ..Default::default()
    };
    println!(
        "\nDag vs threaded A/B: {} heavy (13-op) + {} light (1-op) instances over {} rows \
         on {}^2 bins, {} devices, queue depth {}",
        cfg.heavy_instances,
        cfg.light_instances,
        cfg.rows,
        cfg.resolution,
        cfg.num_devices,
        cfg.queue_depth
    );

    let t0 = Instant::now();
    let report = bench::run_dag_bench(&cfg);
    eprintln!("five arms done in {:.2?}", t0.elapsed());

    println!(
        "\n  {:<12} {:<9} {:>9} {:>12} {:>7} {:>7} {:>10} {:>13}",
        "arm", "snapshot", "total", "insitu/iter", "tasks", "steals", "idle_ms", "crit_path_ms"
    );
    for a in report.arms() {
        println!(
            "  {:<12} {:<9} {:>8.2?} {:>9.3} ms {:>7} {:>7} {:>10.3} {:>13.3}",
            a.arm,
            a.snapshot.name(),
            a.total,
            a.mean_insitu.as_secs_f64() * 1e3,
            a.sched.tasks,
            a.sched.steals,
            a.sched.idle_ns as f64 / 1e6,
            a.sched.critical_path_ns as f64 / 1e6,
        );
    }

    // Correctness before speed: stealing across devices must not perturb
    // a single bit of any arm's published grids.
    for a in report.arms() {
        if !report.bit_identical_to_inline(a) {
            eprintln!("FAIL: {} arm results differ from the inline reference", a.arm);
            std::process::exit(1);
        }
    }
    for a in &report.dag {
        assert!(a.sched.tasks > 0, "{} must run through the dataflow path", a.arm);
        assert_eq!(a.counters.faults.aborted, 0, "{} must abort nothing", a.arm);
    }

    // The structural claims: with every kernel task homed on the primary
    // device and multi-millisecond modeled kernels, the other device
    // workers must steal; and the stolen parallelism plus by-construction
    // download overlap must beat the single-device threaded worker on
    // both throughput measures.
    let dag = report.dag_deep();
    let threaded = &report.threaded;
    assert!(dag.sched.steals > 0, "idle device workers must steal ready kernel tasks");
    println!(
        "\n  dag/deep: {} tasks, {} steals, critical path {:.3} ms",
        dag.sched.tasks,
        dag.sched.steals,
        dag.sched.critical_path_ns as f64 / 1e6
    );
    println!(
        "  total: dag {:.2?} vs threaded {:.2?}; apparent/iter: dag {:.3} ms vs threaded {:.3} ms",
        dag.total,
        threaded.total,
        dag.mean_insitu.as_secs_f64() * 1e3,
        threaded.mean_insitu.as_secs_f64() * 1e3,
    );

    write_dag_json(&out_dir.join("BENCH_dag.json"), &report);

    if dag.total >= threaded.total {
        eprintln!("FAIL: dag total wall time does not beat the threaded arm");
        std::process::exit(1);
    }
    if dag.mean_insitu >= threaded.mean_insitu {
        eprintln!("FAIL: dag apparent in situ cost does not beat the threaded arm");
        std::process::exit(1);
    }
    println!(
        "  PASS: all arms bit-identical; dag beat threaded with {} steals and 0 aborts",
        dag.sched.steals
    );
}

/// Machine-readable scale report: one JSON object per (sweep, rank
/// count) with both arms' tier counters and modeled totals, plus the
/// fused-suite check. Hand-rolled like `write_pool_json`; the boolean
/// fields are what CI greps.
fn write_scale_json(path: &Path, report: &bench::ScaleReport) {
    let points = report.points();
    let mut json = String::from("{\n  \"sweeps\": [\n");
    for (i, (kind, p)) in points.iter().enumerate() {
        let arm = |a: &bench::ScaleArm| {
            format!(
                "{{\"intra_messages\": {}, \"intra_bytes\": {}, \"inter_messages\": {}, \
                 \"inter_bytes\": {}, \"comm_modeled_s\": {:.9}, \"compute_modeled_s\": {:.9}, \
                 \"modeled_total_s\": {:.9}}}",
                a.comm.intra_messages,
                a.comm.intra_bytes,
                a.comm.inter_messages,
                a.comm.inter_bytes,
                a.comm.modeled().as_secs_f64(),
                a.compute.as_secs_f64(),
                a.modeled_total().as_secs_f64(),
            )
        };
        json.push_str(&format!(
            "    {{\"sweep\": \"{}\", \"ranks\": {}, \"nodes\": {}, \"ranks_per_node\": {}, \
             \"rows_per_rank\": {}, \"steps\": {}, \"payload_doubles\": {}, \
             \"flat\": {}, \"hier\": {}, \
             \"speedup_modeled\": {:.4}, \"bit_identical\": {}, \
             \"hier_fewer_inter_messages\": {}}}{}\n",
            kind,
            p.ranks,
            p.nodes,
            report.config.ranks_per_node,
            p.rows_per_rank,
            report.config.steps,
            report.config.payload_len(),
            arm(&p.flat),
            arm(&p.hier),
            p.speedup(),
            p.bit_identical,
            p.hier_fewer_inter_messages(),
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    let c = &report.check;
    let mut check_comm = minimpi::TierSnapshot::default();
    for r in &c.per_rank {
        check_comm.accumulate(&r.comm);
    }
    json.push_str(&format!(
        "  ],\n  \"check\": {{\"ranks\": {}, \"ranks_per_node\": {}, \"steps\": {}, \
         \"fused_one_allreduce_per_step\": {}, \"tier_counters_populated\": {}, \
         \"intra_messages\": {}, \"inter_messages\": {}}}\n}}\n",
        c.ranks,
        c.ranks_per_node,
        c.steps,
        c.one_allreduce_per_step(),
        c.tier_counters_populated(),
        check_comm.intra_messages,
        check_comm.inter_messages,
    ));
    std::fs::create_dir_all(path.parent().unwrap_or(&PathBuf::from("."))).ok();
    std::fs::write(path, json).expect("write JSON");
    println!("wrote {}", path.display());
}

/// The scale smoke: sweep the rank counts in weak- and strong-scaling
/// configurations, print both arms' tier traffic and modeled totals,
/// and hard-assert the claims CI relies on — bit identity at every
/// count, fewer inter-node messages on every multi-node point, a
/// modeled win at the largest count, and the fused suite's
/// 1-allreduce-per-step invariant on the tiered path.
fn run_scale_mode(base: &CaseConfig, rank_counts: &[usize], out_dir: &Path) {
    let cfg = bench::ScaleBenchConfig {
        rank_counts: rank_counts.to_vec(),
        steps: base.steps.max(2),
        ..Default::default()
    };
    println!(
        "\nHierarchical vs flat collective scaling: ranks {:?}, {} per node, \
         {} packed doubles x {} steps",
        cfg.rank_counts,
        cfg.ranks_per_node,
        cfg.payload_len(),
        cfg.steps
    );

    let t0 = Instant::now();
    let report = bench::run_scale_bench(&cfg);
    eprintln!("both sweeps done in {:.2?}", t0.elapsed());

    println!(
        "\n  {:<7} {:>6} {:>6} {:>11} {:>11} {:>12} {:>12} {:>8} {:>5}",
        "sweep",
        "ranks",
        "nodes",
        "flat inter",
        "hier inter",
        "flat tot ms",
        "hier tot ms",
        "speedup",
        "bits"
    );
    for (kind, p) in report.points() {
        println!(
            "  {:<7} {:>6} {:>6} {:>11} {:>11} {:>12.3} {:>12.3} {:>7.2}x {:>5}",
            kind,
            p.ranks,
            p.nodes,
            p.flat.comm.inter_messages,
            p.hier.comm.inter_messages,
            p.flat.modeled_total().as_secs_f64() * 1e3,
            p.hier.modeled_total().as_secs_f64() * 1e3,
            p.speedup(),
            if p.bit_identical { "ok" } else { "DIFF" },
        );
    }

    // Correctness before speed: the tiered path must never perturb a bit.
    for (kind, p) in report.points() {
        if !p.bit_identical {
            eprintln!("FAIL: {kind} sweep at {} ranks is not bit-identical", p.ranks);
            std::process::exit(1);
        }
        if p.nodes > 1 && !p.hier_fewer_inter_messages() {
            eprintln!(
                "FAIL: {kind} sweep at {} ranks: hierarchical issued {} inter-node messages \
                 vs flat's {}",
                p.ranks, p.hier.comm.inter_messages, p.flat.comm.inter_messages
            );
            std::process::exit(1);
        }
    }

    // The headline: the tiered path must win on modeled total time at
    // the largest count of both sweeps.
    for sweep in [&report.weak, &report.strong] {
        let last = sweep.points.last().expect("at least one rank count");
        if last.nodes > 1 && last.hier.modeled_total() >= last.flat.modeled_total() {
            eprintln!(
                "FAIL: {} sweep at {} ranks: hierarchical modeled total {:.3} ms does not \
                 beat flat's {:.3} ms",
                sweep.kind,
                last.ranks,
                last.hier.modeled_total().as_secs_f64() * 1e3,
                last.flat.modeled_total().as_secs_f64() * 1e3
            );
            std::process::exit(1);
        }
    }

    // The fused-suite invariant on the tiered path.
    let c = &report.check;
    assert!(
        c.one_allreduce_per_step(),
        "fused suite must issue exactly one packed allreduce per step on the tiered path"
    );
    assert!(c.tier_counters_populated(), "suite tier counters must reach the profiler");

    write_scale_json(&out_dir.join("BENCH_scale.json"), &report);

    let last = report.weak.points.last().expect("at least one point");
    println!(
        "  PASS: bit-identical at every count; {}-rank hierarchical beat flat x{:.2} on \
         modeled total time; fused suite kept 1 allreduce/step across {} ranks",
        last.ranks,
        last.speedup(),
        c.ranks
    );
}

/// Machine-readable layout report: one JSON object per (placement,
/// layout) arm plus an autopick object per placement. Hand-rolled like
/// `write_pool_json`; the boolean fields are what CI greps.
fn write_layout_json(path: &Path, report: &bench::LayoutReport) {
    let mut json = String::from("{\n  \"arms\": [\n");
    let sweeps = report.sweeps();
    for (si, sweep) in sweeps.iter().enumerate() {
        let reference = &sweep.scalar().results;
        for (ai, a) in sweep.arms.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"placement\": \"{}\", \"layout\": \"{}\", \"lanes\": {}, \
                 \"steps\": {}, \"results\": {}, \"mean_insitu_s\": {:.9}, \
                 \"total_s\": {:.6}, \"relayout_bytes\": {}, \
                 \"bit_identical_to_scalar\": {}}}{}\n",
                sweep.placement_name(),
                a.layout.name(),
                a.layout.lane_width(),
                report.config.steps,
                a.results.len(),
                a.mean_insitu.as_secs_f64(),
                a.total.as_secs_f64(),
                a.counters.relayout_bytes,
                bench::results_bit_identical(reference, &a.results),
                if si + 1 < sweeps.len() || ai + 1 < sweep.arms.len() { "," } else { "" },
            ));
        }
    }
    json.push_str("  ],\n  \"autopick\": [\n");
    for (si, sweep) in sweeps.iter().enumerate() {
        let best = sweep.best_static();
        json.push_str(&format!(
            "    {{\"placement\": \"{}\", \"picked\": \"{}\", \"auto_mean_insitu_s\": {:.9}, \
             \"best_static\": \"{}\", \"best_static_mean_insitu_s\": {:.9}, \
             \"within_tolerance\": {}}}{}\n",
            sweep.placement_name(),
            sweep.picked.name(),
            sweep.auto_arm.mean_insitu.as_secs_f64(),
            best.layout.name(),
            best.mean_insitu.as_secs_f64(),
            sweep.autopick_within(LAYOUT_PICK_TOLERANCE),
            if si + 1 < sweeps.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"all_bit_identical\": {},\n  \"aosoa_beats_scalar_host\": {},\n  \
         \"autopick_within_tolerance\": {}\n}}\n",
        report.all_bit_identical(),
        report.aosoa_beats_scalar_host(),
        report.autopick_within(LAYOUT_PICK_TOLERANCE),
    ));
    std::fs::create_dir_all(path.parent().unwrap_or(&PathBuf::from("."))).ok();
    std::fs::write(path, json).expect("write JSON");
    println!("wrote {}", path.display());
}

/// The autopicked configuration must land within 5% of the best static
/// layout per placement (the acceptance bar for the probe heuristic).
const LAYOUT_PICK_TOLERANCE: f64 = 0.05;

/// The layout smoke: sweep the candidate layouts over both placements,
/// print the apparent costs and relayout traffic, and hard-assert the
/// claims CI relies on — every arm bit-identical to the scalar
/// reference, the AoSoA host arm beating the scalar-array host arm on
/// apparent cost, and both placements' autopicks within tolerance of
/// their best static layout.
fn run_layout_mode(base: &CaseConfig, out_dir: &Path) {
    let cfg = bench::LayoutBenchConfig {
        steps: base.steps.max(2),
        resolution: base.resolution.min(32),
        time_scale: base.time_scale,
        ..Default::default()
    };
    println!(
        "\nLayout A/B: {:?} over {} rows x {} steps ({}-step probe), {}^2 bins, \
         lockstep fused suite on host and device placements",
        bench::CANDIDATE_LAYOUTS.iter().map(|l| l.name()).collect::<Vec<_>>(),
        cfg.rows,
        cfg.steps,
        cfg.probe_steps,
        cfg.resolution
    );

    let t0 = Instant::now();
    let report = bench::run_layout_bench(&cfg);
    eprintln!("both sweeps done in {:.2?}", t0.elapsed());

    println!(
        "\n  {:<9} {:<8} {:>13} {:>15} {:>5}",
        "placement", "layout", "insitu/iter", "relayout bytes", "bits"
    );
    for sweep in report.sweeps() {
        let reference = &sweep.scalar().results;
        for a in &sweep.arms {
            println!(
                "  {:<9} {:<8} {:>10.3} ms {:>15} {:>5}",
                sweep.placement_name(),
                a.layout.name(),
                a.mean_insitu.as_secs_f64() * 1e3,
                a.counters.relayout_bytes,
                if bench::results_bit_identical(reference, &a.results) { "ok" } else { "DIFF" },
            );
        }
        let best = sweep.best_static();
        println!(
            "  {:<9} autopick: {} (probe) -> {:.3} ms full; best static {} at {:.3} ms",
            sweep.placement_name(),
            sweep.picked.name(),
            sweep.auto_arm.mean_insitu.as_secs_f64() * 1e3,
            best.layout.name(),
            best.mean_insitu.as_secs_f64() * 1e3,
        );
    }

    // Correctness before speed: relayout must never perturb a bit, on
    // either placement, under any candidate layout.
    for sweep in report.sweeps() {
        if !sweep.bit_identical() {
            eprintln!(
                "FAIL: {} sweep has arms that differ from the scalar reference",
                sweep.placement_name()
            );
            std::process::exit(1);
        }
    }

    // The relayout accounting: zero-copy on the host (grouped tables are
    // consumed through their maps), charged and surfaced on the device
    // (grouped tables pack dense in flight on upload).
    let host_grouped = report.host.arm(hamr::Layout::AoS);
    let device_grouped = report.device.arm(hamr::Layout::AoS);
    assert_eq!(
        host_grouped.counters.relayout_bytes, 0,
        "host fetch of a grouped table must be zero-copy"
    );
    assert!(
        device_grouped.counters.relayout_bytes > 0,
        "device fetch of a grouped table must surface its in-flight pack"
    );

    write_layout_json(&out_dir.join("BENCH_layout.json"), &report);

    // The headline: lane vectorization must pay off on the host arm.
    let scalar = report.host.scalar();
    let aosoa = report.host.arm(hamr::Layout::AoSoA { lane_width: 8 });
    println!(
        "  apparent in situ cost, host: aosoa8 {:.3} ms vs scalar {:.3} ms (x{:.2})",
        aosoa.mean_insitu.as_secs_f64() * 1e3,
        scalar.mean_insitu.as_secs_f64() * 1e3,
        aosoa.mean_insitu.as_secs_f64() / scalar.mean_insitu.as_secs_f64().max(1e-12),
    );
    if !report.aosoa_beats_scalar_host() {
        eprintln!("FAIL: the AoSoA host arm does not beat the scalar-array host arm");
        std::process::exit(1);
    }
    for sweep in report.sweeps() {
        if !sweep.autopick_within(LAYOUT_PICK_TOLERANCE) {
            eprintln!(
                "FAIL: {} autopick ({}) is not within {:.0}% of the best static layout ({})",
                sweep.placement_name(),
                sweep.picked.name(),
                LAYOUT_PICK_TOLERANCE * 100.0,
                sweep.best_static().layout.name(),
            );
            std::process::exit(1);
        }
    }
    println!(
        "  PASS: all arms bit-identical; aosoa8 beat scalar on the host; \
         autopicks ({} host, {} device) within {:.0}% of best static",
        report.host.picked.name(),
        report.device.picked.name(),
        LAYOUT_PICK_TOLERANCE * 100.0,
    );
}

/// Machine-readable adaptive report: one JSON object per arm in both
/// sweeps plus the headline booleans CI greps. Hand-rolled like
/// `write_layout_json`.
fn write_adaptive_json(path: &Path, report: &bench::AdaptiveBenchReport) {
    let mut json = String::from("{\n  \"arms\": [\n");
    let sweeps = [("steady", &report.steady), ("drift", &report.drift)];
    for (si, (wname, sweep)) in sweeps.iter().enumerate() {
        let reference = &sweep.statics[0].results;
        let arms: Vec<&bench::AdaptiveArm> =
            sweep.statics.iter().chain(std::iter::once(&sweep.adaptive)).collect();
        for (ai, a) in arms.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"workload\": \"{}\", \"arm\": \"{}\", \"start\": \"{}\", \
                 \"final\": \"{}\", \"steps\": {}, \"results\": {}, \
                 \"total_apparent_s\": {:.9}, \"steady_mean_s\": {:.9}, \
                 \"converged_by_step\": {}, \"decisions\": {}, \"probes_used\": {}, \
                 \"aborted\": {}, \"bit_identical_to_reference\": {}}}{}\n",
                wname,
                a.label,
                bench::controls_label(&a.start),
                bench::controls_label(&a.final_controls),
                a.apparent_s.len(),
                a.results.len(),
                a.total_apparent(),
                a.steady_mean(),
                a.converged_by.map_or("null".to_string(), |s| s.to_string()),
                a.decisions,
                a.probes_used,
                a.aborted,
                bench::results_bit_identical(reference, &a.results),
                if si + 1 < sweeps.len() || ai + 1 < arms.len() { "," } else { "" },
            ));
        }
    }
    json.push_str(&format!(
        "  ],\n  \"tolerance\": {:.2},\n  \"converge_within_steps\": {},\n  \
         \"converged_within_tolerance\": {},\n  \"drift_adaptive_beats_all_statics\": {},\n  \
         \"all_bit_identical\": {},\n  \"zero_aborts\": {}\n}}\n",
        bench::ADAPTIVE_TOLERANCE,
        report.config.converge_within,
        report.converged_within(bench::ADAPTIVE_TOLERANCE),
        report.drift_adaptive_wins(),
        report.all_bit_identical(),
        report.zero_aborts(),
    ));
    std::fs::create_dir_all(path.parent().unwrap_or(&PathBuf::from("."))).ok();
    std::fs::write(path, json).expect("write JSON");
    println!("wrote {}", path.display());
}

/// The adaptive smoke: static (placement, layout) grids plus the
/// closed-loop arms over the steady and drifting workloads, with the
/// issue's acceptance bars hard-asserted — the steady adaptive arm
/// starts from the worst static configuration and must settle within
/// the step bound at a steady-state apparent cost within 10% of the
/// best static arm; the drift adaptive arm must beat every static arm
/// end-to-end; every arm bit-identical; zero aborted dispatches.
fn run_adaptive_mode(base: &CaseConfig, out_dir: &Path) {
    let cfg =
        bench::AdaptiveBenchConfig { num_devices: base.num_devices.max(1), ..Default::default() };
    println!(
        "\nAdaptive autotuning: {} static arms/workload over {} rows, steady {} steps, \
         drift {} steps (surface inverts at {}), closed loop from the worst static corner",
        bench::STATIC_ARMS.len(),
        cfg.rows,
        cfg.steady_steps,
        cfg.drift_steps,
        cfg.drift_at,
    );

    let t0 = Instant::now();
    let report = bench::run_adaptive_bench(&cfg);
    eprintln!("both sweeps done in {:.2?}", t0.elapsed());

    for (wname, sweep) in [("steady", &report.steady), ("drift", &report.drift)] {
        println!("\n  {:<28} {:>12} {:>14} {:>10}", wname, "total", "steady/iter", "converged");
        for a in sweep.statics.iter().chain(std::iter::once(&sweep.adaptive)) {
            println!(
                "  {:<28} {:>9.3} ms {:>11.3} ms {:>10}",
                a.label,
                a.total_apparent() * 1e3,
                a.steady_mean() * 1e3,
                a.converged_by.map_or("-".to_string(), |s| format!("step {s}")),
            );
        }
    }

    write_adaptive_json(&out_dir.join("BENCH_adaptive.json"), &report);

    if !report.all_bit_identical() {
        eprintln!("FAIL: an arm's results differ from the static reference");
        std::process::exit(1);
    }
    if !report.zero_aborts() {
        eprintln!("FAIL: an arm aborted a dispatch");
        std::process::exit(1);
    }
    if !report.converged_within(bench::ADAPTIVE_TOLERANCE) {
        eprintln!(
            "FAIL: steady adaptive arm (from {}) did not settle within {} steps at <= {:.0}% \
             over the best static arm ({}: {:.3} ms/iter)",
            bench::controls_label(&report.steady.adaptive.start),
            report.config.converge_within,
            bench::ADAPTIVE_TOLERANCE * 100.0,
            report.steady.best_static().label,
            report.steady.best_static().steady_mean() * 1e3,
        );
        std::process::exit(1);
    }
    if !report.drift_adaptive_wins() {
        eprintln!(
            "FAIL: drift adaptive arm ({:.3} ms) lost to a static arm (best {}: {:.3} ms)",
            report.drift.adaptive.total_apparent() * 1e3,
            report.drift.best_static().label,
            report.drift.best_static().total_apparent() * 1e3,
        );
        std::process::exit(1);
    }
    println!(
        "  PASS: steady adaptive settled by step {} within {:.0}% of best static; drift \
         adaptive ({:.1} ms) beat every static arm (best {:.1} ms); all arms bit-identical, \
         zero aborts",
        report.steady.adaptive.converged_by.unwrap_or(0),
        bench::ADAPTIVE_TOLERANCE * 100.0,
        report.drift.adaptive.total_apparent() * 1e3,
        report.drift.best_static().total_apparent() * 1e3,
    );
}

/// Machine-readable serving report: one JSON object per fan-out arm
/// plus the steering outcome and the headline booleans CI greps.
/// Hand-rolled like `write_adaptive_json`.
fn write_serve_json(path: &Path, report: &bench::ServeBenchReport) {
    let mut json = String::from("{\n  \"arms\": [\n");
    for (i, a) in report.arms.iter().enumerate() {
        let bytes: Vec<String> = a.bytes_per_step.iter().map(|b| b.to_string()).collect();
        json.push_str(&format!(
            "    {{\"sessions\": {}, \"fast\": {}, \"slow\": {}, \"churned\": {}, \
             \"delivered\": {}, \"dropped\": {}, \"fast_missing\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"bytes_per_step\": [{}], \
             \"wall_s\": {:.6}}}{}\n",
            a.sessions,
            a.fast,
            a.slow,
            a.churned,
            a.delivered,
            a.dropped,
            a.fast_missing,
            a.p50_ns,
            a.p99_ns,
            bytes.join(", "),
            a.wall.as_secs_f64(),
            if i + 1 < report.arms.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"steering\": {{\"steers_applied\": {}, \"steered_results\": {}, \
         \"replayed_results\": {}, \"bit_identical\": {}}},\n  \
         \"flat_bytes_across_sessions\": {},\n  \"zero_fast_drops\": {},\n  \
         \"results_identical_across_arms\": {},\n  \"steering_bit_identical\": {}\n}}\n",
        report.steering.steers_applied,
        report.steering.steered.len(),
        report.steering.replayed.len(),
        report.steering.bit_identical(),
        report.flat_bytes(),
        report.zero_fast_drops(),
        report.results_identical_across_arms(),
        report.steering_bit_identical(),
    ));
    std::fs::create_dir_all(path.parent().unwrap_or(&PathBuf::from("."))).ok();
    std::fs::write(path, json).expect("write JSON");
    println!("wrote {}", path.display());
}

/// The serving smoke: the fan-out sweep over the session counts plus
/// the two-rank steering pair, with the issue's acceptance bars
/// hard-asserted — bytes serialized per step flat across session
/// counts, zero missed frames for block-policy fast clients, binned
/// results independent of the audience, and steered == replayed bit
/// for bit.
fn run_serve_mode(session_counts: &[usize], out_dir: &Path) {
    let cfg =
        bench::ServeBenchConfig { session_counts: session_counts.to_vec(), ..Default::default() };
    println!(
        "\nLive result serving: {} bodies, {} steps, {} instances on {}^2 bins, \
         sessions {:?} (~80% fast block / ~15% slow drop-oldest / rest churning)",
        cfg.bodies, cfg.steps, cfg.instances, cfg.resolution, cfg.session_counts,
    );

    let t0 = Instant::now();
    let report = bench::run_serve_bench(&cfg);
    eprintln!("sweep + steering pair done in {:.2?}", t0.elapsed());

    println!(
        "\n  {:>9} {:>10} {:>9} {:>9} {:>11} {:>11} {:>13}",
        "sessions", "delivered", "dropped", "churned", "p50", "p99", "bytes/step"
    );
    for a in &report.arms {
        println!(
            "  {:>9} {:>10} {:>9} {:>9} {:>8.2} us {:>8.2} us {:>13}",
            a.sessions,
            a.delivered,
            a.dropped,
            a.churned,
            a.p50_ns as f64 / 1e3,
            a.p99_ns as f64 / 1e3,
            a.bytes_per_step.first().copied().unwrap_or(0),
        );
    }
    println!(
        "  steering: {} commands applied, {} results steered vs {} replayed",
        report.steering.steers_applied,
        report.steering.steered.len(),
        report.steering.replayed.len(),
    );

    write_serve_json(&out_dir.join("BENCH_serve.json"), &report);

    if !report.flat_bytes() {
        eprintln!(
            "FAIL: bytes serialized per step scale with the session count: {:?}",
            report.arms.iter().map(|a| (a.sessions, a.bytes_per_step.clone())).collect::<Vec<_>>(),
        );
        std::process::exit(1);
    }
    if !report.zero_fast_drops() {
        eprintln!("FAIL: a block-policy fast client missed a frame");
        std::process::exit(1);
    }
    if !report.results_identical_across_arms() {
        eprintln!("FAIL: binned results changed with the session count");
        std::process::exit(1);
    }
    if !report.steering_bit_identical() {
        eprintln!("FAIL: the steered run diverged from the direct-reconfiguration replay");
        std::process::exit(1);
    }
    println!(
        "  PASS: bytes/step flat across {:?} sessions, zero fast-client losses, results \
         audience-independent, steering bit-identical to its replay ({} commands)",
        report.arms.iter().map(|a| a.sessions).collect::<Vec<_>>(),
        report.steering.steers_applied,
    );
}

/// Ops per binning instance in the paper workload (10: count + 9 more).
const VARIABLE_OPS_PER_INSTANCE: usize = bench::VARIABLE_OPS.len();

fn main() {
    let (mode, base, out_dir, xml, chaos_seed, rank_counts, session_counts) = parse_args();
    if mode == "run-config" {
        run_config(&xml.expect("run-config needs an XML path"), &base);
        return;
    }
    if mode == "binning" {
        run_binning(&base, &out_dir);
        return;
    }
    if mode == "chaos" {
        run_chaos_mode(chaos_seed, &out_dir);
        return;
    }
    if mode == "snapshot" {
        run_snapshot_mode(&base, &out_dir);
        return;
    }
    if mode == "dag" {
        run_dag_mode(&base, &out_dir);
        return;
    }
    if mode == "scale" {
        run_scale_mode(&base, &rank_counts, &out_dir);
        return;
    }
    if mode == "layout" {
        run_layout_mode(&base, &out_dir);
        return;
    }
    if mode == "adaptive" {
        run_adaptive_mode(&base, &out_dir);
        return;
    }
    if mode == "serve" {
        run_serve_mode(&session_counts, &out_dir);
        return;
    }
    let node_cfg = bench_node_config(base.num_devices, base.time_scale);
    println!("== SENSEI heterogeneous-extensions experiment harness ==");
    println!(
        "workload: {} bodies, {} steps, {} binning instances x 10 ops on {}^2 bins",
        base.bodies, base.steps, base.instances, base.resolution
    );
    println!(
        "time model: device {:.1e} F/s {:.1e} B/s, host {} slots x {:.1e} F/s, scale {}",
        node_cfg.device.flops_per_sec,
        node_cfg.device.bytes_per_sec,
        node_cfg.host.slots,
        node_cfg.host.flops_per_sec,
        node_cfg.time_scale
    );

    if mode == "table1" || mode == "all" {
        print_table1(&base);
    }
    if mode == "figure2" || mode == "figure3" || mode == "all" {
        let results = run_matrix(&base);

        // Figure 2: total run time per case, grouped by placement.
        let rows: Vec<(String, std::time::Duration)> =
            results.iter().map(|r| (case_label(&r.config), r.total)).collect();
        println!(
            "\n{}",
            ascii_bars("Figure 2: total run time (lockstep vs asynchronous)", &rows, 50)
        );

        // Figure 3: mean per-iteration solver + in situ stacks.
        let stacks: Vec<(String, std::time::Duration, std::time::Duration)> =
            results.iter().map(|r| (case_label(&r.config), r.mean_solver, r.mean_insitu)).collect();
        println!(
            "{}",
            ascii_stack(
                "Figure 3: average time per iteration (solver + apparent in situ)",
                &stacks,
                50
            )
        );

        write_csv(&out_dir.join("figure2_figure3.csv"), &results);

        // Per-backend apparent-cost breakdown (what each attached
        // instance cost the simulation per dispatch, averaged over ranks).
        println!("\nPer-backend apparent-cost breakdown:");
        for r in &results {
            println!("  {}", case_label(&r.config));
            for b in &r.backends {
                println!(
                    "    {:<24} {:>4} dispatches, mean apparent {:.3} ms, total {:.3} s",
                    b.backend,
                    b.dispatches,
                    b.mean_apparent.as_secs_f64() * 1e3,
                    b.total_apparent.as_secs_f64()
                );
            }
        }
        write_backend_csv(&out_dir.join("backend_breakdown.csv"), &results);

        // Caching-pool effectiveness per case.
        println!(
            "\nMemory pool ({}):",
            if base.pool { "on" } else { "off — run with --pool on to compare" }
        );
        for r in &results {
            let t = r.pool_total();
            println!(
                "  {}  hit rate {:.1}% ({} hits / {} misses), {} raw allocs, high water {} MiB",
                case_label(&r.config),
                t.hit_rate() * 100.0,
                t.hits,
                t.misses,
                t.raw_allocs,
                t.high_water_bytes >> 20,
            );
        }
        write_pool_json(&out_dir.join("BENCH_pool.json"), &results);

        // The qualitative findings of §4.4, checked on this run.
        println!("\n§4.4 shape checks:");
        for placement in Placement::paper_placements() {
            let find = |m: ExecutionMethod| {
                results
                    .iter()
                    .find(|r| r.config.placement == placement && r.config.execution == m)
                    .expect("matrix is complete")
            };
            let lock = find(ExecutionMethod::Lockstep);
            let asyn = find(ExecutionMethod::Asynchronous);
            println!(
                "  {:<22} async/lockstep total = {:.2}  (async {} lockstep); solver slowdown x{:.2}; apparent insitu {:.1} ms",
                placement.label(),
                asyn.total.as_secs_f64() / lock.total.as_secs_f64(),
                if asyn.total < lock.total { "beats" } else { "does NOT beat" },
                asyn.mean_solver.as_secs_f64() / lock.mean_solver.as_secs_f64().max(1e-12),
                asyn.mean_insitu.as_secs_f64() * 1e3,
            );
        }
    }
}
