//! A local stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of parking_lot's API it actually uses:
//! [`Mutex`], [`RwLock`], and [`Condvar`] with parking_lot's ergonomics —
//! `lock()`/`read()`/`write()` return guards directly (a poisoned lock
//! panics, which is also what unwrapping std's `LockResult` would do),
//! and `Condvar::wait` takes the guard by `&mut` reference.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// A mutual exclusion primitive (std-backed, panics on poison).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; the lock is released on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // (std's wait consumes the guard and returns a new one).
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { guard: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { guard: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_deref_mut().expect("guard present outside Condvar::wait")
    }
}

/// A reader-writer lock (std-backed, panics on poison).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`]/[`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    // std::sync::Condvar::new() is const, but keeping a flag mirrors
    // parking_lot's no-spurious-wakeup-after-notify guarantee loosely;
    // callers already loop on their predicate.
    _used: AtomicBool,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new(), _used: AtomicBool::new(false) }
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self._used.store(true, Ordering::Relaxed);
        let g = guard.guard.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(g);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        self.wait_for(guard, timeout)
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present");
        let (g, res) = self.inner.wait_timeout(g, timeout).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
