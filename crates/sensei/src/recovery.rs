//! Failure-recovery policies for analysis back-ends.
//!
//! An in situ fault — an injected device error, a transient allocation
//! failure, a panicking analysis — should not be forced to take the whole
//! simulation down. Each back-end carries a [`RecoveryPolicy`] in its
//! [`crate::BackendControls`] choosing what the owning execution engine
//! does when one dispatch of that back-end fails:
//!
//! * [`RecoveryPolicy::Abort`] (the default) propagates the error, which
//!   preserves the pre-existing contract that analysis failures surface at
//!   `Bridge::finalize`.
//! * [`RecoveryPolicy::SkipStep`] drops the failed iteration and keeps the
//!   solver running — graceful degradation: the analysis output has a hole,
//!   the simulation does not.
//! * [`RecoveryPolicy::Retry`] re-runs the failed dispatch with capped
//!   exponential backoff, falling back to abort once the budget is spent.
//!
//! Every outcome is recorded in the back-end's
//! [`FaultCounters`](crate::FaultCounters) so harnesses can assert recovery
//! behaviour instead of trusting it.

use std::time::Duration;

use crate::counters::AnalysisCounters;
use crate::error::{Error, Result};

/// Longest single backoff sleep `Retry` will take; keeps exhausted retry
/// budgets from stalling the worker for seconds.
const MAX_BACKOFF_MS: u64 = 250;

/// What an execution engine does when one dispatch of a back-end fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Propagate the failure (surfaces at `Bridge::finalize`).
    #[default]
    Abort,
    /// Drop the failed iteration and keep going.
    SkipStep,
    /// Re-run the dispatch up to `max_retries` times with capped
    /// exponential backoff starting at `backoff_ms`.
    Retry {
        /// Additional attempts after the first failure.
        max_retries: u32,
        /// Initial backoff; doubles per attempt, capped at 250 ms.
        backoff_ms: u64,
    },
}

impl RecoveryPolicy {
    /// The XML spelling used in run-time configuration.
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryPolicy::Abort => "abort",
            RecoveryPolicy::SkipStep => "skip_step",
            RecoveryPolicy::Retry { .. } => "retry",
        }
    }

    /// Parse the XML spelling (a few aliases accepted). `retry` gets a
    /// default budget of 3 attempts / 10 ms; configuration attributes can
    /// override the fields afterwards.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "abort" | "fail" => Some(RecoveryPolicy::Abort),
            "skip_step" | "skip-step" | "skip" => Some(RecoveryPolicy::SkipStep),
            "retry" => Some(RecoveryPolicy::Retry { max_retries: 3, backoff_ms: 10 }),
            _ => None,
        }
    }
}

/// Run one dispatch attempt under `policy`, updating the fault counters on
/// `counters` with every outcome.
///
/// `attempt` returns the back-end's `proceed` flag on success. The first
/// failure counts as `injected`; what happens next depends on the policy —
/// see the module docs. `SkipStep` reports `Ok(true)`: a dropped analysis
/// iteration is not a reason to stop the simulation.
pub fn run_with_recovery<F>(
    policy: RecoveryPolicy,
    counters: &AnalysisCounters,
    backend: &str,
    mut attempt: F,
) -> Result<bool>
where
    F: FnMut() -> Result<bool>,
{
    let first_err = match attempt() {
        Ok(proceed) => return Ok(proceed),
        Err(err) => err,
    };
    counters.faults().add_injected(1);
    match policy {
        RecoveryPolicy::Abort => {
            counters.faults().add_aborted(1);
            Err(first_err)
        }
        RecoveryPolicy::SkipStep => {
            counters.faults().add_skipped(1);
            Ok(true)
        }
        RecoveryPolicy::Retry { max_retries, backoff_ms } => {
            let mut last_err = first_err;
            for attempt_no in 0..max_retries {
                let delay =
                    backoff_ms.saturating_mul(1u64 << attempt_no.min(16)).min(MAX_BACKOFF_MS);
                if delay > 0 {
                    std::thread::sleep(Duration::from_millis(delay));
                }
                counters.faults().add_retried(1);
                match attempt() {
                    Ok(proceed) => {
                        counters.faults().add_recovered(1);
                        return Ok(proceed);
                    }
                    Err(err) => last_err = err,
                }
            }
            counters.faults().add_aborted(1);
            Err(Error::Analysis(format!(
                "analysis '{backend}' failed after {max_retries} retries: {last_err}"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn failing_n_times(n: u32) -> impl FnMut() -> Result<bool> {
        let mut left = n;
        move || {
            if left > 0 {
                left -= 1;
                Err(Error::Analysis("boom".into()))
            } else {
                Ok(true)
            }
        }
    }

    #[test]
    fn names_roundtrip_and_aliases_parse() {
        for p in [
            RecoveryPolicy::Abort,
            RecoveryPolicy::SkipStep,
            RecoveryPolicy::Retry { max_retries: 3, backoff_ms: 10 },
        ] {
            assert_eq!(RecoveryPolicy::parse(p.name()).map(|q| q.name()), Some(p.name()));
        }
        assert_eq!(RecoveryPolicy::parse("skip"), Some(RecoveryPolicy::SkipStep));
        assert_eq!(RecoveryPolicy::parse("nope"), None);
    }

    #[test]
    fn success_touches_no_fault_counters() {
        let c = AnalysisCounters::new();
        let out = run_with_recovery(RecoveryPolicy::Abort, &c, "b", || Ok(false));
        assert!(!out.unwrap());
        assert_eq!(c.snapshot().faults, crate::FaultSnapshot::default());
    }

    #[test]
    fn abort_counts_and_propagates() {
        let c = AnalysisCounters::new();
        let out = run_with_recovery(RecoveryPolicy::Abort, &c, "b", failing_n_times(1));
        assert!(out.is_err());
        let f = c.snapshot().faults;
        assert_eq!((f.injected, f.aborted, f.retried, f.recovered, f.skipped), (1, 1, 0, 0, 0));
    }

    #[test]
    fn skip_step_swallows_the_failure_and_proceeds() {
        let c = AnalysisCounters::new();
        let out = run_with_recovery(RecoveryPolicy::SkipStep, &c, "b", failing_n_times(5));
        assert!(out.unwrap(), "skipped step still lets the solver continue");
        let f = c.snapshot().faults;
        assert_eq!((f.injected, f.skipped, f.aborted), (1, 1, 0));
    }

    #[test]
    fn retry_recovers_within_budget() {
        let c = AnalysisCounters::new();
        let policy = RecoveryPolicy::Retry { max_retries: 3, backoff_ms: 0 };
        let out = run_with_recovery(policy, &c, "b", failing_n_times(2));
        assert!(out.unwrap());
        let f = c.snapshot().faults;
        assert_eq!((f.injected, f.retried, f.recovered, f.aborted), (1, 2, 1, 0));
    }

    #[test]
    fn retry_exhaustion_aborts_with_context() {
        let c = AnalysisCounters::new();
        let policy = RecoveryPolicy::Retry { max_retries: 2, backoff_ms: 0 };
        let err = run_with_recovery(policy, &c, "binning", failing_n_times(10)).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("binning") && msg.contains("2 retries"), "got: {msg}");
        let f = c.snapshot().faults;
        assert_eq!((f.injected, f.retried, f.recovered, f.aborted), (1, 2, 0, 1));
    }

    #[test]
    fn backoff_is_capped() {
        // 1 << 20 ms would sleep ~17 minutes if uncapped; with the cap the
        // whole retry run stays well under a second.
        let c = AnalysisCounters::new();
        let policy = RecoveryPolicy::Retry { max_retries: 2, backoff_ms: 200 };
        let t0 = std::time::Instant::now();
        let _ = run_with_recovery(policy, &c, "b", failing_n_times(10));
        assert!(t0.elapsed() < Duration::from_secs(2));
    }
}
