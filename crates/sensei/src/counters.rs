//! Work counters for analysis back-ends: how many data passes, kernel
//! launches, result downloads, and allreduce rounds a back-end actually
//! performed.
//!
//! A fused execution path claims to collapse N per-op passes into one;
//! these counters make that claim checkable. A back-end increments its
//! [`AnalysisCounters`] as it works (they are shared atomics, so a worker
//! thread owning the back-end and the simulation thread reading the totals
//! never race), the owning engine exposes them, and the bridge snapshots
//! them into the profiler at finalize so harnesses can assert on
//! communication and launch counts instead of trusting the implementation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use devsim::PinStats;
use minimpi::TierSnapshot;

/// Shared, thread-safe work counters one analysis back-end increments.
#[derive(Debug, Default)]
pub struct AnalysisCounters {
    table_passes: AtomicU64,
    kernel_launches: AtomicU64,
    downloads: AtomicU64,
    allreduces: AtomicU64,
    fetches: AtomicU64,
    relayout_bytes: AtomicU64,
    faults: FaultCounters,
    comm: CommCounters,
}

/// Per-tier communication counters: traffic the back-end's collectives put
/// on the intra-node fabric vs the inter-node interconnect, captured as
/// [`minimpi::Comm::tier_stats`] deltas around each collective phase.
#[derive(Debug, Default)]
pub struct CommCounters {
    intra_messages: AtomicU64,
    intra_bytes: AtomicU64,
    intra_modeled_ns: AtomicU64,
    inter_messages: AtomicU64,
    inter_bytes: AtomicU64,
    inter_modeled_ns: AtomicU64,
}

impl CommCounters {
    /// Fold a tier-counter delta into the totals.
    pub fn add(&self, d: &TierSnapshot) {
        self.intra_messages.fetch_add(d.intra_messages, Ordering::Relaxed);
        self.intra_bytes.fetch_add(d.intra_bytes, Ordering::Relaxed);
        self.intra_modeled_ns.fetch_add(d.intra_modeled_ns, Ordering::Relaxed);
        self.inter_messages.fetch_add(d.inter_messages, Ordering::Relaxed);
        self.inter_bytes.fetch_add(d.inter_bytes, Ordering::Relaxed);
        self.inter_modeled_ns.fetch_add(d.inter_modeled_ns, Ordering::Relaxed);
    }

    /// A plain-value copy of the current totals.
    pub fn snapshot(&self) -> TierSnapshot {
        TierSnapshot {
            intra_messages: self.intra_messages.load(Ordering::Relaxed),
            intra_bytes: self.intra_bytes.load(Ordering::Relaxed),
            intra_modeled_ns: self.intra_modeled_ns.load(Ordering::Relaxed),
            inter_messages: self.inter_messages.load(Ordering::Relaxed),
            inter_bytes: self.inter_bytes.load(Ordering::Relaxed),
            inter_modeled_ns: self.inter_modeled_ns.load(Ordering::Relaxed),
        }
    }
}

/// Failure/recovery outcome counters, kept by the execution engines as
/// they apply a back-end's [`crate::RecoveryPolicy`]. Shared atomics like
/// the work counters: the worker thread increments, the bridge and the
/// harness read.
#[derive(Debug, Default)]
pub struct FaultCounters {
    injected: AtomicU64,
    retried: AtomicU64,
    recovered: AtomicU64,
    skipped: AtomicU64,
    aborted: AtomicU64,
}

impl FaultCounters {
    /// Count `n` dispatches whose first attempt failed (an injected or
    /// organic fault was observed).
    pub fn add_injected(&self, n: u64) {
        self.injected.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` retry attempts made under `RecoveryPolicy::Retry`.
    pub fn add_retried(&self, n: u64) {
        self.retried.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` failed dispatches that eventually succeeded on retry.
    pub fn add_recovered(&self, n: u64) {
        self.recovered.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` in situ iterations dropped by `RecoveryPolicy::SkipStep`.
    pub fn add_skipped(&self, n: u64) {
        self.skipped.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` failures propagated to the caller (policy `Abort`, or a
    /// retry budget exhausted).
    pub fn add_aborted(&self, n: u64) {
        self.aborted.fetch_add(n, Ordering::Relaxed);
    }

    /// A plain-value copy of the current totals.
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            injected: self.injected.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value copy of [`FaultCounters`] at one point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// Dispatches whose first attempt failed.
    pub injected: u64,
    /// Retry attempts made.
    pub retried: u64,
    /// Failures that recovered on retry.
    pub recovered: u64,
    /// Iterations dropped by skip-step degradation.
    pub skipped: u64,
    /// Failures propagated to the caller.
    pub aborted: u64,
}

impl FaultSnapshot {
    /// Add `other`'s totals into `self`.
    pub fn accumulate(&mut self, other: &FaultSnapshot) {
        self.injected += other.injected;
        self.retried += other.retried;
        self.recovered += other.recovered;
        self.skipped += other.skipped;
        self.aborted += other.aborted;
    }
}

/// Counters for the live serving layer ([`crate::serve`]): session
/// churn, frames fanned out vs dropped, steering commands applied, and
/// the bytes each step's publication actually serialized — counted once
/// per step, *not* per session, which is the zero-copy fan-out claim
/// made checkable. Shared atomics: delivery threads increment, the
/// bridge and harness read.
#[derive(Debug, Default)]
pub struct ServeCounters {
    subscribed: AtomicU64,
    unsubscribed: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    steers: AtomicU64,
    payload_bytes: AtomicU64,
}

impl ServeCounters {
    /// Fresh zeroed counters behind an `Arc` (the hub keeps one handle,
    /// the bridge/profiler another).
    pub fn new() -> Arc<Self> {
        Arc::new(ServeCounters::default())
    }

    /// Count `n` sessions subscribed.
    pub fn add_subscribed(&self, n: u64) {
        self.subscribed.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` sessions unsubscribed (explicitly or by a dead client).
    pub fn add_unsubscribed(&self, n: u64) {
        self.unsubscribed.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` frames delivered into session queues.
    pub fn add_delivered(&self, n: u64) {
        self.delivered.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` frames dropped (drop-oldest evictions or error-policy
    /// rejections).
    pub fn add_dropped(&self, n: u64) {
        self.dropped.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` steering commands applied at a step boundary.
    pub fn add_steers(&self, n: u64) {
        self.steers.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` bytes serialized at publication (once per step/topic,
    /// independent of how many sessions receive views of them).
    pub fn add_payload_bytes(&self, n: u64) {
        self.payload_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// A plain-value copy of the current totals.
    pub fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            subscribed: self.subscribed.load(Ordering::Relaxed),
            unsubscribed: self.unsubscribed.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            steers: self.steers.load(Ordering::Relaxed),
            payload_bytes: self.payload_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value copy of [`ServeCounters`] at one point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSnapshot {
    /// Sessions subscribed over the run.
    pub subscribed: u64,
    /// Sessions unsubscribed (explicitly or by disconnect).
    pub unsubscribed: u64,
    /// Frames delivered into session queues.
    pub delivered: u64,
    /// Frames dropped (evictions + rejections).
    pub dropped: u64,
    /// Steering commands applied at step boundaries.
    pub steers: u64,
    /// Bytes serialized at publication (once per step/topic).
    pub payload_bytes: u64,
}

impl ServeSnapshot {
    /// Add `other`'s totals into `self`.
    pub fn accumulate(&mut self, other: &ServeSnapshot) {
        self.subscribed += other.subscribed;
        self.unsubscribed += other.unsubscribed;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.steers += other.steers;
        self.payload_bytes += other.payload_bytes;
    }
}

impl AnalysisCounters {
    /// Fresh zeroed counters behind an `Arc` (the back-end keeps one
    /// handle, the engine another).
    pub fn new() -> Arc<Self> {
        Arc::new(AnalysisCounters::default())
    }

    /// Count `n` full traversals of fetched rows (one per-op pass = 1;
    /// one fused pass covering many ops = 1).
    pub fn add_table_passes(&self, n: u64) {
        self.table_passes.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` device kernel launches.
    pub fn add_kernel_launches(&self, n: u64) {
        self.kernel_launches.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` device-to-host result downloads (a packed download of
    /// many grids = 1).
    pub fn add_downloads(&self, n: u64) {
        self.downloads.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` allreduce rounds (a packed allreduce = 1).
    pub fn add_allreduces(&self, n: u64) {
        self.allreduces.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` per-variable fetch/move requests into the execution space.
    pub fn add_fetches(&self, n: u64) {
        self.fetches.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` bytes moved by in-flight layout changes (AoS/SoA/AoSoA
    /// packing on placement moves or fetch-side gathers). Reads and
    /// writes both count, matching the modeled kernel cost.
    pub fn add_relayout_bytes(&self, n: u64) {
        self.relayout_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// The failure/recovery counters the owning engine updates.
    pub fn faults(&self) -> &FaultCounters {
        &self.faults
    }

    /// Fold a per-tier communication delta into the comm counters (the
    /// engine captures [`minimpi::Comm::tier_stats`] around a collective
    /// phase and reports the difference here).
    pub fn add_comm(&self, delta: &TierSnapshot) {
        self.comm.add(delta);
    }

    /// A consistent-enough copy of the current totals (exact once the
    /// back-end has been finalized).
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            table_passes: self.table_passes.load(Ordering::Relaxed),
            kernel_launches: self.kernel_launches.load(Ordering::Relaxed),
            downloads: self.downloads.load(Ordering::Relaxed),
            allreduces: self.allreduces.load(Ordering::Relaxed),
            fetches: self.fetches.load(Ordering::Relaxed),
            relayout_bytes: self.relayout_bytes.load(Ordering::Relaxed),
            faults: self.faults.snapshot(),
            comm: self.comm.snapshot(),
            serve: ServeSnapshot::default(),
        }
    }
}

/// A plain-value copy of [`AnalysisCounters`] at one point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Full traversals of fetched rows.
    pub table_passes: u64,
    /// Device kernel launches.
    pub kernel_launches: u64,
    /// Device-to-host result downloads.
    pub downloads: u64,
    /// Allreduce rounds issued.
    pub allreduces: u64,
    /// Per-variable fetch/move requests.
    pub fetches: u64,
    /// Bytes moved by in-flight layout changes (relayout packs/gathers).
    pub relayout_bytes: u64,
    /// Failure/recovery outcomes.
    pub faults: FaultSnapshot,
    /// Per-tier communication traffic (intra- vs inter-node).
    pub comm: TierSnapshot,
    /// Live-serving fan-out totals (nonzero only on the bridge-wide
    /// "serve" record; ordinary back-ends don't serve).
    pub serve: ServeSnapshot,
}

impl CounterSnapshot {
    /// Add `other`'s totals into `self` (for summing across back-ends or
    /// ranks).
    pub fn accumulate(&mut self, other: &CounterSnapshot) {
        self.table_passes += other.table_passes;
        self.kernel_launches += other.kernel_launches;
        self.downloads += other.downloads;
        self.allreduces += other.allreduces;
        self.fetches += other.fetches;
        self.relayout_bytes += other.relayout_bytes;
        self.faults.accumulate(&other.faults);
        self.comm.accumulate(&other.comm);
        self.serve.accumulate(&other.serve);
    }
}

/// Counters for the copy-on-write delta snapshot layer: how many arrays
/// each capture shared zero-copy vs copied, the bytes those copies (and
/// any lazy CoW fault copies) materialized, and how long the issued
/// asynchronous copies got to overlap the solver.
///
/// The fault half lives in a [`devsim::PinStats`] handle so the memory
/// layer can report faults without knowing about sensei; `snapshot()`
/// folds both halves into one plain-value view.
#[derive(Debug)]
pub struct SnapshotCounters {
    arrays_shared: AtomicU64,
    arrays_copied: AtomicU64,
    /// Bytes materialized by *eager* capture-time copies (deep and delta
    /// modes); lazy CoW fault bytes are tracked in `pin_stats`.
    bytes_copied: AtomicU64,
    copy_overlap_ns: AtomicU64,
    pin_stats: Arc<PinStats>,
}

impl Default for SnapshotCounters {
    fn default() -> Self {
        SnapshotCounters {
            arrays_shared: AtomicU64::new(0),
            arrays_copied: AtomicU64::new(0),
            bytes_copied: AtomicU64::new(0),
            copy_overlap_ns: AtomicU64::new(0),
            pin_stats: PinStats::new_shared(),
        }
    }
}

impl SnapshotCounters {
    /// Fresh zeroed counters behind an `Arc` (the pipeline keeps one
    /// handle, the bridge/profiler another).
    pub fn new() -> Arc<Self> {
        Arc::new(SnapshotCounters::default())
    }

    /// Count `n` arrays taken zero-copy (shared, possibly CoW-pinned).
    pub fn add_shared(&self, n: u64) {
        self.arrays_shared.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` arrays copied eagerly at capture time, totalling `bytes`.
    pub fn add_copied(&self, n: u64, bytes: u64) {
        self.arrays_copied.fetch_add(n, Ordering::Relaxed);
        self.bytes_copied.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record `ns` nanoseconds an asynchronous capture's copies had to
    /// overlap the solver before the consumer needed them.
    pub fn add_overlap_ns(&self, ns: u64) {
        self.copy_overlap_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// The fault-copy counters the devsim write path reports into when a
    /// solver write hits a still-pinned array.
    pub fn pin_stats(&self) -> &Arc<PinStats> {
        &self.pin_stats
    }

    /// A plain-value copy of the totals, folding eager-copy and lazy
    /// CoW-fault bytes together (`bytes_copied` is the honest total cost).
    pub fn snapshot(&self) -> SnapshotCounterSnapshot {
        SnapshotCounterSnapshot {
            arrays_shared: self.arrays_shared.load(Ordering::Relaxed),
            arrays_copied: self.arrays_copied.load(Ordering::Relaxed),
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed) + self.pin_stats.bytes(),
            cow_faults: self.pin_stats.faults(),
            copy_overlap_ns: self.copy_overlap_ns.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value copy of [`SnapshotCounters`] at one point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotCounterSnapshot {
    /// Arrays taken zero-copy across all captures.
    pub arrays_shared: u64,
    /// Arrays copied (eagerly at capture time).
    pub arrays_copied: u64,
    /// Total bytes materialized: eager capture copies plus lazy CoW
    /// fault copies.
    pub bytes_copied: u64,
    /// Lazy pre-write copies triggered by solver writes to pinned arrays.
    pub cow_faults: u64,
    /// Nanoseconds asynchronous capture copies overlapped the solver.
    pub copy_overlap_ns: u64,
}

impl SnapshotCounterSnapshot {
    /// Add `other`'s totals into `self` (for summing across ranks).
    pub fn accumulate(&mut self, other: &SnapshotCounterSnapshot) {
        self.arrays_shared += other.arrays_shared;
        self.arrays_copied += other.arrays_copied;
        self.bytes_copied += other.bytes_copied;
        self.cow_faults += other.cow_faults;
        self.copy_overlap_ns += other.copy_overlap_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = AnalysisCounters::new();
        c.add_table_passes(2);
        c.add_kernel_launches(9);
        c.add_downloads(9);
        c.add_allreduces(1);
        c.add_fetches(11);
        c.add_relayout_bytes(640);
        let s = c.snapshot();
        assert_eq!(
            s,
            CounterSnapshot {
                table_passes: 2,
                kernel_launches: 9,
                downloads: 9,
                allreduces: 1,
                fetches: 11,
                relayout_bytes: 640,
                faults: FaultSnapshot::default(),
                comm: TierSnapshot::default(),
                serve: ServeSnapshot::default(),
            }
        );
        let mut total = CounterSnapshot::default();
        total.accumulate(&s);
        total.accumulate(&s);
        assert_eq!(total.allreduces, 2);
        assert_eq!(total.kernel_launches, 18);
    }

    #[test]
    fn comm_deltas_fold_into_tier_totals() {
        let c = AnalysisCounters::new();
        c.add_comm(&TierSnapshot {
            intra_messages: 3,
            intra_bytes: 96,
            intra_modeled_ns: 10,
            inter_messages: 1,
            inter_bytes: 32,
            inter_modeled_ns: 40,
        });
        c.add_comm(&TierSnapshot { intra_messages: 1, intra_bytes: 8, ..Default::default() });
        let s = c.snapshot().comm;
        assert_eq!((s.intra_messages, s.intra_bytes), (4, 104));
        assert_eq!((s.inter_messages, s.inter_bytes), (1, 32));
        assert_eq!(s.messages(), 5);
        assert_eq!(s.bytes(), 136);
    }

    #[test]
    fn serve_counters_accumulate_and_snapshot() {
        let c = ServeCounters::new();
        c.add_subscribed(64);
        c.add_unsubscribed(3);
        c.add_delivered(640);
        c.add_dropped(2);
        c.add_steers(1);
        c.add_payload_bytes(4096);
        let s = c.snapshot();
        assert_eq!(
            s,
            ServeSnapshot {
                subscribed: 64,
                unsubscribed: 3,
                delivered: 640,
                dropped: 2,
                steers: 1,
                payload_bytes: 4096,
            }
        );
        let mut total = CounterSnapshot::default();
        total.accumulate(&CounterSnapshot { serve: s, ..Default::default() });
        total.accumulate(&CounterSnapshot { serve: s, ..Default::default() });
        assert_eq!(total.serve.delivered, 1280);
        assert_eq!(total.serve.payload_bytes, 8192);
    }

    #[test]
    fn counters_are_shared_across_threads() {
        let c = AnalysisCounters::new();
        let c2 = c.clone();
        let h = std::thread::spawn(move || {
            for _ in 0..100 {
                c2.add_allreduces(1);
            }
        });
        h.join().unwrap();
        assert_eq!(c.snapshot().allreduces, 100);
    }
}
