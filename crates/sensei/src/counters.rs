//! Work counters for analysis back-ends: how many data passes, kernel
//! launches, result downloads, and allreduce rounds a back-end actually
//! performed.
//!
//! A fused execution path claims to collapse N per-op passes into one;
//! these counters make that claim checkable. A back-end increments its
//! [`AnalysisCounters`] as it works (they are shared atomics, so a worker
//! thread owning the back-end and the simulation thread reading the totals
//! never race), the owning engine exposes them, and the bridge snapshots
//! them into the profiler at finalize so harnesses can assert on
//! communication and launch counts instead of trusting the implementation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe work counters one analysis back-end increments.
#[derive(Debug, Default)]
pub struct AnalysisCounters {
    table_passes: AtomicU64,
    kernel_launches: AtomicU64,
    downloads: AtomicU64,
    allreduces: AtomicU64,
    fetches: AtomicU64,
}

impl AnalysisCounters {
    /// Fresh zeroed counters behind an `Arc` (the back-end keeps one
    /// handle, the engine another).
    pub fn new() -> Arc<Self> {
        Arc::new(AnalysisCounters::default())
    }

    /// Count `n` full traversals of fetched rows (one per-op pass = 1;
    /// one fused pass covering many ops = 1).
    pub fn add_table_passes(&self, n: u64) {
        self.table_passes.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` device kernel launches.
    pub fn add_kernel_launches(&self, n: u64) {
        self.kernel_launches.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` device-to-host result downloads (a packed download of
    /// many grids = 1).
    pub fn add_downloads(&self, n: u64) {
        self.downloads.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` allreduce rounds (a packed allreduce = 1).
    pub fn add_allreduces(&self, n: u64) {
        self.allreduces.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` per-variable fetch/move requests into the execution space.
    pub fn add_fetches(&self, n: u64) {
        self.fetches.fetch_add(n, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the current totals (exact once the
    /// back-end has been finalized).
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            table_passes: self.table_passes.load(Ordering::Relaxed),
            kernel_launches: self.kernel_launches.load(Ordering::Relaxed),
            downloads: self.downloads.load(Ordering::Relaxed),
            allreduces: self.allreduces.load(Ordering::Relaxed),
            fetches: self.fetches.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value copy of [`AnalysisCounters`] at one point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Full traversals of fetched rows.
    pub table_passes: u64,
    /// Device kernel launches.
    pub kernel_launches: u64,
    /// Device-to-host result downloads.
    pub downloads: u64,
    /// Allreduce rounds issued.
    pub allreduces: u64,
    /// Per-variable fetch/move requests.
    pub fetches: u64,
}

impl CounterSnapshot {
    /// Add `other`'s totals into `self` (for summing across back-ends or
    /// ranks).
    pub fn accumulate(&mut self, other: &CounterSnapshot) {
        self.table_passes += other.table_passes;
        self.kernel_launches += other.kernel_launches;
        self.downloads += other.downloads;
        self.allreduces += other.allreduces;
        self.fetches += other.fetches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = AnalysisCounters::new();
        c.add_table_passes(2);
        c.add_kernel_launches(9);
        c.add_downloads(9);
        c.add_allreduces(1);
        c.add_fetches(11);
        let s = c.snapshot();
        assert_eq!(
            s,
            CounterSnapshot {
                table_passes: 2,
                kernel_launches: 9,
                downloads: 9,
                allreduces: 1,
                fetches: 11,
            }
        );
        let mut total = CounterSnapshot::default();
        total.accumulate(&s);
        total.accumulate(&s);
        assert_eq!(total.allreduces, 2);
        assert_eq!(total.kernel_launches, 18);
    }

    #[test]
    fn counters_are_shared_across_threads() {
        let c = AnalysisCounters::new();
        let c2 = c.clone();
        let h = std::thread::spawn(move || {
            for _ in 0..100 {
                c2.add_allreduces(1);
            }
        });
        h.join().unwrap();
        assert_eq!(c.snapshot().allreduces, 100);
    }
}
