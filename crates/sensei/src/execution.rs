//! Execution methods (§3): lockstep and asynchronous.

/// How an analysis back-end executes relative to the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMethod {
    /// The simulation and the in situ code take turns: the simulation
    /// waits for the analysis to complete before proceeding. Zero-copy
    /// data access is possible because the simulation's arrays are
    /// guaranteed not to change during the analysis.
    #[default]
    Lockstep,
    /// The in situ code deep-copies the data it needs, is handed to a
    /// separate thread, and the call returns immediately; simulation and
    /// analysis proceed concurrently.
    Asynchronous,
    /// Asynchronous, but each step executes as a dataflow task graph
    /// (`Fetch → Kernel → Download → Reduce → Publish`) under a
    /// work-stealing scheduler spanning every device slot and stream.
    /// Back-ends that do not plan task graphs fall back to the plain
    /// asynchronous dispatch on the same engine.
    Dag,
}

impl ExecutionMethod {
    /// The XML spelling used in run-time configuration.
    pub fn name(&self) -> &'static str {
        match self {
            ExecutionMethod::Lockstep => "lockstep",
            ExecutionMethod::Asynchronous => "asynchronous",
            ExecutionMethod::Dag => "dag",
        }
    }

    /// Parse the XML spelling (a few aliases accepted).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "lockstep" | "sync" | "synchronous" => Some(ExecutionMethod::Lockstep),
            "asynchronous" | "async" | "threaded" => Some(ExecutionMethod::Asynchronous),
            "dag" | "dataflow" => Some(ExecutionMethod::Dag),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for m in [ExecutionMethod::Lockstep, ExecutionMethod::Asynchronous, ExecutionMethod::Dag] {
            assert_eq!(ExecutionMethod::parse(m.name()), Some(m));
        }
    }

    #[test]
    fn aliases_parse() {
        assert_eq!(ExecutionMethod::parse("ASYNC"), Some(ExecutionMethod::Asynchronous));
        assert_eq!(ExecutionMethod::parse("sync"), Some(ExecutionMethod::Lockstep));
        assert_eq!(ExecutionMethod::parse("dataflow"), Some(ExecutionMethod::Dag));
        assert_eq!(ExecutionMethod::parse("bogus"), None);
    }
}
