//! Online adaptive placement and autotuning: the profiler loop, closed.
//!
//! PRs 2–8 built every signal needed to answer the paper's central
//! question — *where should an analysis run on a heterogeneous node* —
//! but answered it statically from XML. [`AdaptiveController`] answers it
//! online: it samples a sliding window of profiler observations
//! (per-backend apparent cost, snapshot bytes, CoW faults, relayout
//! traffic, queue occupancy, pool hit rate, per-array write generations)
//! and at step boundaries re-places analyses (host ↔ device ↔ dedicated
//! device), flips lockstep ↔ asynchronous ↔ dag, re-picks the snapshot
//! mode from observed write rates, and re-picks the layout per placement.
//!
//! Decisions are *measured*, not modeled: the controller probes one
//! candidate at a time (coordinate descent over placement → execution →
//! layout per back-end, then the bridge-wide snapshot mode), compares the
//! candidate's windowed mean apparent cost against the incumbent's, and
//! commits only when the candidate wins by more than the hysteresis
//! margin. A shared probe budget bounds total exploration so the
//! controller cannot oscillate; once the budget is spent every dimension
//! commits its incumbent and the controller settles into drift
//! monitoring. Samples from steps where retry recovery slept a backoff
//! (nonzero retried/recovered deltas) arrive flagged *tainted* and are
//! skipped — one injected fault must not trigger a spurious re-placement.
//!
//! The controller itself is pure decision logic: it never touches an
//! engine. The bridge applies [`AdaptiveDecision`]s through the same
//! reconfiguration path PR 4's recovery proved safe, and on multi-rank
//! runs rank 0 decides and broadcasts so every rank reconfigures
//! identically (engine rebuilds are collective).

use crate::controls::{BackendControls, DeviceSpec};
use crate::execution::ExecutionMethod;
use crate::snapshot::SnapshotMode;

/// Tuning knobs for the [`AdaptiveController`], settable from XML via the
/// `<adaptive>` element of [`crate::ConfigurableAnalysis`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Samples per measurement window (per candidate / incumbent).
    pub window: usize,
    /// Untainted samples discarded after every reconfiguration before the
    /// window starts filling (engine rebuild transients).
    pub warmup: usize,
    /// A candidate must beat the incumbent's windowed mean by this
    /// fraction to be committed (0.10 = must be >10% cheaper).
    pub hysteresis: f64,
    /// Total candidate probes the controller may spend, across all
    /// dimensions and drift re-probes. Exhausted ⇒ commit incumbents and
    /// settle.
    pub probe_budget: u32,
    /// Steps to sit out after each dimension commits, before the next
    /// dimension starts measuring.
    pub cooldown: u64,
    /// Once settled, a windowed mean exceeding the settled baseline by
    /// this fraction re-opens probing (workload drift).
    pub drift_margin: f64,
    /// Tune per-backend placement (host / device / dedicated device).
    pub tune_placement: bool,
    /// Tune per-backend execution mode (lockstep / asynchronous / dag).
    pub tune_execution: bool,
    /// Tune per-backend data layout for the current placement.
    pub tune_layout: bool,
    /// Tune the bridge-wide snapshot mode (deep / delta / cow).
    pub tune_snapshot: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window: 4,
            warmup: 1,
            hysteresis: 0.10,
            probe_budget: 24,
            cooldown: 2,
            drift_margin: 0.5,
            tune_placement: true,
            tune_execution: true,
            tune_layout: true,
            tune_snapshot: true,
        }
    }
}

/// What the controller wants changed. Carried whole (not as a diff) so a
/// follower rank can apply a broadcast decision without any local state.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptiveAction {
    /// Rebuild back-end `backend` under `controls`.
    Reconfigure {
        /// Index of the back-end (bridge attach order).
        backend: usize,
        /// The full control block to rebuild under.
        controls: BackendControls,
    },
    /// Switch the bridge-wide snapshot capture mode.
    SetSnapshotMode {
        /// The mode to capture under from the next step on.
        mode: SnapshotMode,
    },
}

/// One decision the bridge must apply at a step boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveDecision {
    /// The step whose boundary the decision was taken at.
    pub step: u64,
    /// The change to apply before the next dispatch.
    pub action: AdaptiveAction,
    /// Why: `probe` (exploration), `commit` (candidate won), `revert`
    /// (incumbent kept after a losing probe), `drift` (re-probe opener).
    pub cause: &'static str,
}

/// Per-backend observation for one step, fed by the bridge.
#[derive(Debug, Clone, Copy)]
pub struct BackendObservation {
    /// Apparent in situ cost of this back-end's dispatch, seconds.
    pub apparent_s: f64,
    /// True when retry recovery slept a backoff inside this sample
    /// (nonzero retried/recovered counter delta) — the window skips it.
    pub tainted: bool,
    /// Snapshots waiting in the engine's queue, if it has one.
    pub queue_occupancy: Option<usize>,
}

/// Bridge-wide observation for one step.
#[derive(Debug, Clone, Copy)]
pub struct StepObservation {
    /// The step just executed.
    pub step: u64,
    /// Total apparent in situ cost of the step (capture + dispatches).
    pub insitu_s: f64,
    /// Share of arrays whose write generation advanced at the last
    /// capture ([`crate::SnapshotPipeline::written_fraction`]).
    pub written_fraction: f64,
    /// Snapshot bytes copied this step (eager + CoW fault), delta.
    pub snapshot_bytes: u64,
    /// CoW faults this step, delta.
    pub cow_faults: u64,
    /// Relayout bytes this step across back-ends, delta.
    pub relayout_bytes: u64,
    /// Allocation-pool hit rate over the run so far, 0..=1.
    pub pool_hit_rate: f64,
}

/// What the controller may touch, described by the bridge each step.
pub struct AdaptiveEnv<'a> {
    /// Devices on the node (0 ⇒ host-only placement).
    pub num_devices: usize,
    /// Currently applied controls, per back-end (attach order).
    pub controls: &'a [BackendControls],
    /// Back-ends the bridge can rebuild (attached with a factory).
    pub reconfigurable: &'a [bool],
    /// Currently active snapshot mode.
    pub snapshot_mode: SnapshotMode,
    /// True when at least one engine consumes snapshots.
    pub snapshot_consumers: bool,
    /// Execution-mode names the registry can build.
    pub available_modes: &'a [&'a str],
}

/// One tunable dimension of one target.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Dim {
    Placement,
    Execution,
    Layout,
    Snapshot,
}

#[derive(Debug, Clone, Copy)]
struct Stage {
    /// `Some(i)` for per-backend dims, `None` for the snapshot dim.
    backend: Option<usize>,
    dim: Dim,
}

/// A concrete configuration under measurement.
#[derive(Debug, Clone, PartialEq)]
enum Candidate {
    Controls(usize, BackendControls),
    Snapshot(SnapshotMode),
}

impl Candidate {
    fn decision(&self, step: u64, cause: &'static str) -> AdaptiveDecision {
        let action = match self {
            Candidate::Controls(b, c) => AdaptiveAction::Reconfigure { backend: *b, controls: *c },
            Candidate::Snapshot(m) => AdaptiveAction::SetSnapshotMode { mode: *m },
        };
        AdaptiveDecision { step, action, cause }
    }
}

/// Sliding window of untainted cost samples.
#[derive(Debug, Default)]
struct Window {
    cap: usize,
    samples: std::collections::VecDeque<f64>,
}

impl Window {
    fn new(cap: usize) -> Self {
        Window { cap: cap.max(1), samples: std::collections::VecDeque::new() }
    }

    fn push(&mut self, x: f64) {
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples.push_back(x);
    }

    fn full(&self) -> bool {
        self.samples.len() == self.cap
    }

    fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    fn clear(&mut self) {
        self.samples.clear();
    }
}

#[derive(Debug)]
enum Phase {
    /// Measuring the incumbent of the current stage.
    Baseline,
    /// Measuring probe candidates of the current stage.
    Probing,
    /// Sitting out after a commit before the next stage measures.
    Cooldown { until: u64 },
    /// Every stage committed; watching the total for drift.
    Settled,
}

/// The measurement-driven autotuner. Feed it one [`StepObservation`] per
/// step via [`AdaptiveController::observe_and_decide`]; apply the
/// decisions it returns before the next dispatch.
pub struct AdaptiveController {
    config: AdaptiveConfig,
    stages: Vec<Stage>,
    stage_idx: usize,
    phase: Phase,
    window: Window,
    warmup_left: usize,
    probes_used: u32,
    /// Probe state for the current stage.
    incumbent: Option<Candidate>,
    incumbent_cost: f64,
    candidates: Vec<Candidate>,
    cand_idx: usize,
    cand_costs: Vec<f64>,
    /// Settled-state drift baseline (windowed mean total insitu cost).
    settled_baseline: Option<f64>,
    /// Consecutive elevated drift windows seen while settled.
    drift_strikes: u32,
    /// Tainted samples dropped so far (observability).
    tainted_skipped: u64,
}

/// Consecutive elevated (tumbling) windows required before a settled
/// controller re-opens probing: one elevated window is routinely noise.
const DRIFT_STRIKES: u32 = 2;

impl AdaptiveController {
    /// A controller with `config`'s knobs; stages are derived from the
    /// environment on the first observation.
    pub fn new(config: AdaptiveConfig) -> Self {
        AdaptiveController {
            window: Window::new(config.window),
            config,
            stages: Vec::new(),
            stage_idx: 0,
            phase: Phase::Baseline,
            warmup_left: 0,
            probes_used: 0,
            incumbent: None,
            incumbent_cost: 0.0,
            candidates: Vec::new(),
            cand_idx: 0,
            cand_costs: Vec::new(),
            settled_baseline: None,
            drift_strikes: 0,
            tainted_skipped: 0,
        }
    }

    /// The knobs this controller runs under.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Probes spent so far (≤ `probe_budget`).
    pub fn probes_used(&self) -> u32 {
        self.probes_used
    }

    /// Tainted samples the window skipped so far.
    pub fn tainted_skipped(&self) -> u64 {
        self.tainted_skipped
    }

    /// True once every dimension has committed and the controller is only
    /// watching for drift.
    pub fn settled(&self) -> bool {
        matches!(self.phase, Phase::Settled)
    }

    fn build_stages(&mut self, env: &AdaptiveEnv) {
        for (b, _) in env.controls.iter().enumerate() {
            if !env.reconfigurable.get(b).copied().unwrap_or(false) {
                continue;
            }
            if self.config.tune_placement && env.num_devices > 0 {
                self.stages.push(Stage { backend: Some(b), dim: Dim::Placement });
            }
            if self.config.tune_execution && env.available_modes.len() > 1 {
                self.stages.push(Stage { backend: Some(b), dim: Dim::Execution });
            }
            if self.config.tune_layout {
                self.stages.push(Stage { backend: Some(b), dim: Dim::Layout });
            }
        }
        if self.config.tune_snapshot && env.snapshot_consumers {
            self.stages.push(Stage { backend: None, dim: Dim::Snapshot });
        }
    }

    /// The stage's cost sample for this step, plus its taint flag.
    fn stage_cost(
        stage: &Stage,
        obs: &StepObservation,
        backends: &[BackendObservation],
    ) -> (f64, bool) {
        match stage.backend {
            Some(b) => match backends.get(b) {
                Some(s) => (s.apparent_s, s.tainted),
                None => (obs.insitu_s, false),
            },
            // The snapshot mode shifts cost between capture and CoW
            // faults billed to dispatches, so its objective is the whole
            // step; any backend's backoff pollutes that total.
            None => (obs.insitu_s, backends.iter().any(|s| s.tainted)),
        }
    }

    /// The currently applied configuration of `stage`.
    fn applied(stage: &Stage, env: &AdaptiveEnv) -> Candidate {
        match stage.backend {
            Some(b) => Candidate::Controls(b, env.controls[b]),
            None => Candidate::Snapshot(env.snapshot_mode),
        }
    }

    /// Candidates for `stage`, excluding the incumbent configuration.
    fn build_candidates(
        &self,
        stage: &Stage,
        env: &AdaptiveEnv,
        obs: &StepObservation,
    ) -> Vec<Candidate> {
        match (stage.backend, stage.dim) {
            (Some(b), Dim::Placement) => {
                let cur = env.controls[b];
                let mut specs = vec![DeviceSpec::Host, DeviceSpec::Explicit(0)];
                if env.num_devices > 1 {
                    // "Dedicated device": the highest-numbered device, by
                    // convention away from device 0 where producers and
                    // auto-placed peers land.
                    specs.push(DeviceSpec::Explicit(env.num_devices - 1));
                }
                specs
                    .into_iter()
                    .filter(|d| *d != cur.device)
                    .map(|device| Candidate::Controls(b, BackendControls { device, ..cur }))
                    .collect()
            }
            (Some(b), Dim::Execution) => {
                let cur = env.controls[b];
                [ExecutionMethod::Lockstep, ExecutionMethod::Asynchronous, ExecutionMethod::Dag]
                    .into_iter()
                    .filter(|m| *m != cur.execution && env.available_modes.contains(&m.name()))
                    .map(|execution| Candidate::Controls(b, BackendControls { execution, ..cur }))
                    .collect()
            }
            (Some(b), Dim::Layout) => {
                let cur = env.controls[b];
                // Layout candidates depend on the committed placement:
                // host consumers vectorize over grouped layouts, device
                // consumers pay the relayout on upload and prefer dense.
                let layouts: &[hamr::Layout] = if cur.device == DeviceSpec::Host {
                    &[
                        hamr::Layout::Scalar,
                        hamr::Layout::SoA,
                        hamr::Layout::AoSoA { lane_width: 4 },
                        hamr::Layout::AoSoA { lane_width: 8 },
                    ]
                } else {
                    &[hamr::Layout::Scalar, hamr::Layout::AoS]
                };
                layouts
                    .iter()
                    .filter(|l| **l != cur.layout)
                    .map(|&layout| Candidate::Controls(b, BackendControls { layout, ..cur }))
                    .collect()
            }
            (None, Dim::Snapshot) | (_, Dim::Snapshot) => {
                let wf = obs.written_fraction;
                [SnapshotMode::Deep, SnapshotMode::Delta, SnapshotMode::Cow]
                    .into_iter()
                    .filter(|m| *m != env.snapshot_mode)
                    // The write-generation signal prunes deep when most
                    // arrays are stale: delta copies a strict subset of
                    // what deep copies, so probing deep wastes budget.
                    .filter(|m| !(matches!(m, SnapshotMode::Deep) && wf < 0.5))
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(Candidate::Snapshot)
                    .collect()
            }
            (None, _) => Vec::new(),
        }
    }

    fn enter_cooldown(&mut self, step: u64) {
        self.stage_idx += 1;
        self.phase = Phase::Cooldown { until: step + self.config.cooldown };
        self.window.clear();
        self.incumbent = None;
        self.candidates.clear();
        self.cand_costs.clear();
        self.cand_idx = 0;
    }

    /// Feed the step's observations; returns the decisions to apply
    /// before the next dispatch (at most one per call).
    pub fn observe_and_decide(
        &mut self,
        env: &AdaptiveEnv,
        obs: &StepObservation,
        backends: &[BackendObservation],
    ) -> Vec<AdaptiveDecision> {
        if self.stages.is_empty() && self.stage_idx == 0 && !self.settled() {
            self.build_stages(env);
            if self.stages.is_empty() {
                self.phase = Phase::Settled;
            }
        }

        match self.phase {
            Phase::Cooldown { until } => {
                if obs.step >= until {
                    if self.stage_idx < self.stages.len() {
                        self.phase = Phase::Baseline;
                    } else {
                        self.phase = Phase::Settled;
                        self.settled_baseline = None;
                        self.drift_strikes = 0;
                    }
                    self.window.clear();
                    self.warmup_left = 0;
                }
                Vec::new()
            }
            Phase::Settled => self.watch_drift(obs, backends),
            Phase::Baseline => self.measure_baseline(env, obs, backends),
            Phase::Probing => self.measure_probe(env, obs, backends),
        }
    }

    fn measure_baseline(
        &mut self,
        env: &AdaptiveEnv,
        obs: &StepObservation,
        backends: &[BackendObservation],
    ) -> Vec<AdaptiveDecision> {
        let stage = self.stages[self.stage_idx];
        let (cost, tainted) = Self::stage_cost(&stage, obs, backends);
        if tainted {
            self.tainted_skipped += 1;
            return Vec::new();
        }
        if self.warmup_left > 0 {
            self.warmup_left -= 1;
            return Vec::new();
        }
        self.window.push(cost);
        if !self.window.full() {
            return Vec::new();
        }
        self.incumbent = Some(Self::applied(&stage, env));
        self.incumbent_cost = self.window.mean();
        self.candidates = self.build_candidates(&stage, env, obs);
        if self.candidates.is_empty() || self.probes_used >= self.config.probe_budget {
            self.enter_cooldown(obs.step);
            return Vec::new();
        }
        self.cand_idx = 0;
        self.cand_costs.clear();
        self.probes_used += 1;
        self.window.clear();
        self.warmup_left = self.config.warmup;
        self.phase = Phase::Probing;
        vec![self.candidates[0].decision(obs.step, "probe")]
    }

    fn measure_probe(
        &mut self,
        env: &AdaptiveEnv,
        obs: &StepObservation,
        backends: &[BackendObservation],
    ) -> Vec<AdaptiveDecision> {
        let stage = self.stages[self.stage_idx];
        let (cost, tainted) = Self::stage_cost(&stage, obs, backends);
        if tainted {
            self.tainted_skipped += 1;
            return Vec::new();
        }
        if self.warmup_left > 0 {
            self.warmup_left -= 1;
            return Vec::new();
        }
        self.window.push(cost);
        if !self.window.full() {
            return Vec::new();
        }
        self.cand_costs.push(self.window.mean());
        self.cand_idx += 1;
        if self.cand_idx < self.candidates.len() && self.probes_used < self.config.probe_budget {
            self.probes_used += 1;
            self.window.clear();
            self.warmup_left = self.config.warmup;
            return vec![self.candidates[self.cand_idx].decision(obs.step, "probe")];
        }

        // All candidates measured (or budget dry): pick the winner.
        let _ = env;
        let mut best_i = 0;
        for (i, c) in self.cand_costs.iter().enumerate() {
            if *c < self.cand_costs[best_i] {
                best_i = i;
            }
        }
        let threshold = self.incumbent_cost * (1.0 - self.config.hysteresis);
        let last_applied = self.candidates[self.cand_idx - 1].clone();
        let (winner, cause) = if self.cand_costs[best_i] < threshold {
            (self.candidates[best_i].clone(), "commit")
        } else {
            (self.incumbent.clone().expect("incumbent recorded at baseline"), "revert")
        };
        let step = obs.step;
        let decision =
            if winner != last_applied { Some(winner.decision(step, cause)) } else { None };
        self.enter_cooldown(step);
        decision.into_iter().collect()
    }

    fn watch_drift(
        &mut self,
        obs: &StepObservation,
        backends: &[BackendObservation],
    ) -> Vec<AdaptiveDecision> {
        if backends.iter().any(|s| s.tainted) {
            self.tainted_skipped += 1;
            return Vec::new();
        }
        self.window.push(obs.insitu_s);
        if !self.window.full() {
            return Vec::new();
        }
        // Tumbling windows: each verdict consumes a fresh batch of
        // samples, so one slow step cannot keep re-tripping the check
        // as it slides through overlapping windows.
        let mean = self.window.mean();
        self.window.clear();
        match self.settled_baseline {
            None => {
                self.settled_baseline = Some(mean);
                Vec::new()
            }
            Some(base) => {
                if mean > base * (1.0 + self.config.drift_margin) {
                    // One elevated window is routinely scheduler noise;
                    // demand consecutive confirmations before spending
                    // probe budget. A spurious re-probe is worse than a
                    // late one — re-settling mid-shift captures the
                    // drifted cost as the new baseline.
                    self.drift_strikes += 1;
                    if self.drift_strikes >= DRIFT_STRIKES
                        && self.probes_used < self.config.probe_budget
                    {
                        // The workload moved out from under the
                        // committed configuration: re-open probing from
                        // the first stage, budget permitting.
                        self.stage_idx = 0;
                        self.phase = Phase::Baseline;
                        self.warmup_left = 0;
                        self.settled_baseline = None;
                        self.drift_strikes = 0;
                    }
                } else {
                    self.drift_strikes = 0;
                }
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny synthetic world: cost is a pure function of the applied
    /// configuration, so the controller's convergence is deterministic.
    struct Sim {
        controls: Vec<BackendControls>,
        snapshot_mode: SnapshotMode,
        cost: fn(&BackendControls, SnapshotMode) -> f64,
    }

    impl Sim {
        fn apply(&mut self, d: &AdaptiveDecision) {
            match &d.action {
                AdaptiveAction::Reconfigure { backend, controls } => {
                    self.controls[*backend] = *controls;
                }
                AdaptiveAction::SetSnapshotMode { mode } => self.snapshot_mode = *mode,
            }
        }

        fn run(
            &mut self,
            ctrl: &mut AdaptiveController,
            steps: u64,
            written_fraction: f64,
            tainted_at: &[u64],
        ) -> Vec<AdaptiveDecision> {
            let mut log = Vec::new();
            for step in 0..steps {
                let c = (self.cost)(&self.controls[0], self.snapshot_mode);
                let tainted = tainted_at.contains(&step);
                let obs = StepObservation {
                    step,
                    insitu_s: c,
                    written_fraction,
                    snapshot_bytes: 0,
                    cow_faults: 0,
                    relayout_bytes: 0,
                    pool_hit_rate: 1.0,
                };
                let backends =
                    [BackendObservation { apparent_s: c, tainted, queue_occupancy: None }];
                let reconf = [true];
                let controls = self.controls.clone();
                let env = AdaptiveEnv {
                    num_devices: 2,
                    controls: &controls,
                    reconfigurable: &reconf,
                    snapshot_mode: self.snapshot_mode,
                    snapshot_consumers: true,
                    available_modes: &["lockstep", "asynchronous", "dag"],
                };
                for d in ctrl.observe_and_decide(&env, &obs, &backends) {
                    self.apply(&d);
                    log.push(d);
                }
            }
            log
        }
    }

    fn placement_cost(c: &BackendControls, _m: SnapshotMode) -> f64 {
        match c.device {
            DeviceSpec::Explicit(1) => 0.001,
            DeviceSpec::Explicit(_) => 0.004,
            _ => 0.010,
        }
    }

    fn placement_only() -> AdaptiveConfig {
        AdaptiveConfig {
            window: 2,
            warmup: 0,
            cooldown: 1,
            tune_execution: false,
            tune_layout: false,
            tune_snapshot: false,
            ..Default::default()
        }
    }

    #[test]
    fn converges_to_the_cheapest_placement_and_settles() {
        let mut sim = Sim {
            controls: vec![BackendControls { device: DeviceSpec::Host, ..Default::default() }],
            snapshot_mode: SnapshotMode::Deep,
            cost: placement_cost,
        };
        let mut ctrl = AdaptiveController::new(placement_only());
        let log = sim.run(&mut ctrl, 40, 1.0, &[]);
        assert_eq!(sim.controls[0].device, DeviceSpec::Explicit(1), "picked the dedicated GPU");
        assert!(ctrl.settled(), "probing ends");
        // The winner was the last-probed candidate, so it is already
        // applied and no redundant commit decision is emitted.
        assert!(log.iter().filter(|d| d.cause == "probe").count() >= 2);
        // Settled ⇒ no further decisions even over a long tail.
        let tail = sim.run(&mut ctrl, 40, 1.0, &[]);
        assert!(tail.is_empty(), "no oscillation after settling: {tail:?}");
    }

    #[test]
    fn hysteresis_keeps_the_incumbent_on_marginal_wins() {
        // Device is only 5% cheaper than host — inside the 10% band.
        fn cost(c: &BackendControls, _m: SnapshotMode) -> f64 {
            match c.device {
                DeviceSpec::Host => 0.0100,
                _ => 0.0095,
            }
        }
        let mut sim = Sim {
            controls: vec![BackendControls { device: DeviceSpec::Host, ..Default::default() }],
            snapshot_mode: SnapshotMode::Deep,
            cost,
        };
        let mut ctrl = AdaptiveController::new(placement_only());
        let log = sim.run(&mut ctrl, 40, 1.0, &[]);
        assert_eq!(sim.controls[0].device, DeviceSpec::Host, "marginal probe reverted");
        assert!(log.iter().all(|d| d.cause != "commit"));
        assert!(ctrl.settled());
    }

    #[test]
    fn tainted_samples_never_reach_the_window() {
        let mut sim = Sim {
            controls: vec![BackendControls { device: DeviceSpec::Host, ..Default::default() }],
            snapshot_mode: SnapshotMode::Deep,
            cost: placement_cost,
        };
        let mut ctrl = AdaptiveController::new(placement_only());
        // Every step tainted: the controller must sit in baseline forever.
        let all: Vec<u64> = (0..30).collect();
        let log = sim.run(&mut ctrl, 30, 1.0, &all);
        assert!(log.is_empty(), "no decisions from polluted samples");
        assert!(!ctrl.settled());
        assert_eq!(ctrl.tainted_skipped(), 30);
    }

    #[test]
    fn probe_budget_bounds_exploration() {
        let cfg = AdaptiveConfig { probe_budget: 1, ..placement_only() };
        let mut sim = Sim {
            controls: vec![BackendControls { device: DeviceSpec::Host, ..Default::default() }],
            snapshot_mode: SnapshotMode::Deep,
            cost: placement_cost,
        };
        let mut ctrl = AdaptiveController::new(cfg);
        let log = sim.run(&mut ctrl, 60, 1.0, &[]);
        assert!(ctrl.settled());
        assert_eq!(ctrl.probes_used(), 1);
        let probes = log.iter().filter(|d| d.cause == "probe").count();
        assert_eq!(probes, 1, "budget of one probe respected: {log:?}");
    }

    #[test]
    fn drift_reopens_probing_when_budget_remains() {
        // Host starts cheapest; after the flip the device wins by 10x.
        use std::sync::atomic::{AtomicBool, Ordering};
        static FLIPPED: AtomicBool = AtomicBool::new(false);
        fn cost(c: &BackendControls, _m: SnapshotMode) -> f64 {
            let flipped = FLIPPED.load(Ordering::Relaxed);
            match (c.device, flipped) {
                (DeviceSpec::Host, false) => 0.001,
                (DeviceSpec::Host, true) => 0.020,
                (_, false) => 0.004,
                (_, true) => 0.002,
            }
        }
        FLIPPED.store(false, Ordering::Relaxed);
        let mut sim = Sim {
            controls: vec![BackendControls { device: DeviceSpec::Host, ..Default::default() }],
            snapshot_mode: SnapshotMode::Deep,
            cost,
        };
        let mut ctrl = AdaptiveController::new(placement_only());
        sim.run(&mut ctrl, 40, 1.0, &[]);
        assert_eq!(sim.controls[0].device, DeviceSpec::Host, "host wins pre-drift");
        assert!(ctrl.settled());
        FLIPPED.store(true, Ordering::Relaxed);
        sim.run(&mut ctrl, 60, 1.0, &[]);
        assert_ne!(sim.controls[0].device, DeviceSpec::Host, "drift re-probe re-placed");
    }

    #[test]
    fn write_rate_prunes_deep_from_snapshot_candidates() {
        let cfg = AdaptiveConfig {
            window: 2,
            warmup: 0,
            cooldown: 1,
            tune_placement: false,
            tune_execution: false,
            tune_layout: false,
            ..Default::default()
        };
        // Cow is cheapest; deep would be probed only if wf allowed it.
        fn cost(_c: &BackendControls, m: SnapshotMode) -> f64 {
            match m {
                SnapshotMode::Deep => 0.010,
                SnapshotMode::Delta => 0.004,
                SnapshotMode::Cow => 0.001,
            }
        }
        let mut sim = Sim {
            controls: vec![BackendControls::default()],
            snapshot_mode: SnapshotMode::Delta,
            cost,
        };
        let mut ctrl = AdaptiveController::new(cfg);
        // Written fraction 0.2: deep must not be probed.
        let log = sim.run(&mut ctrl, 40, 0.2, &[]);
        assert_eq!(sim.snapshot_mode, SnapshotMode::Cow);
        for d in &log {
            if let AdaptiveAction::SetSnapshotMode { mode } = &d.action {
                assert_ne!(*mode, SnapshotMode::Deep, "deep pruned by write rate");
            }
        }
    }

    #[test]
    fn no_stages_means_immediately_settled() {
        let cfg = AdaptiveConfig {
            tune_placement: false,
            tune_execution: false,
            tune_layout: false,
            tune_snapshot: false,
            ..Default::default()
        };
        let mut sim = Sim {
            controls: vec![BackendControls::default()],
            snapshot_mode: SnapshotMode::Deep,
            cost: placement_cost,
        };
        let mut ctrl = AdaptiveController::new(cfg);
        let log = sim.run(&mut ctrl, 10, 1.0, &[]);
        assert!(log.is_empty());
        assert!(ctrl.settled());
    }
}
