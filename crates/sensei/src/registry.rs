//! The analysis back-end registry.
//!
//! SENSEI's run-time configuration names back-ends by type
//! (`<analysis type="data_binning" .../>`); the registry maps those names
//! to factory functions so the set of available back-ends is open — any
//! crate can register one.

use std::collections::HashMap;
use std::sync::Arc;

use devsim::SimNode;
use xmlcfg::Element;

use crate::adaptor::AnalysisAdaptor;
use crate::error::{Error, Result};

/// Context available to back-end factories.
#[derive(Clone)]
pub struct CreateContext {
    /// The heterogeneous node the rank runs on.
    pub node: Arc<SimNode>,
    /// This process's MPI rank.
    pub rank: usize,
    /// Communicator size.
    pub size: usize,
}

/// A factory building one analysis back-end from its XML element.
pub type AnalysisFactory =
    Box<dyn Fn(&Element, &CreateContext) -> Result<Box<dyn AnalysisAdaptor>> + Send + Sync>;

/// Maps XML `type` names to back-end factories.
#[derive(Default)]
pub struct AnalysisRegistry {
    factories: HashMap<String, AnalysisFactory>,
}

impl AnalysisRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        AnalysisRegistry::default()
    }

    /// Register (or replace) a factory for `type_name`.
    pub fn register(
        &mut self,
        type_name: impl Into<String>,
        factory: impl Fn(&Element, &CreateContext) -> Result<Box<dyn AnalysisAdaptor>>
            + Send
            + Sync
            + 'static,
    ) {
        self.factories.insert(type_name.into(), Box::new(factory));
    }

    /// True when a factory is registered for `type_name`.
    pub fn contains(&self, type_name: &str) -> bool {
        self.factories.contains_key(type_name)
    }

    /// Registered type names, sorted.
    pub fn type_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.factories.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Build a back-end for `type_name` from its XML element.
    pub fn create(
        &self,
        type_name: &str,
        element: &Element,
        ctx: &CreateContext,
    ) -> Result<Box<dyn AnalysisAdaptor>> {
        let factory = self
            .factories
            .get(type_name)
            .ok_or_else(|| Error::UnknownAnalysisType { type_name: type_name.to_string() })?;
        factory(element, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptor::{DataAdaptor, ExecContext};
    use crate::controls::BackendControls;
    use devsim::NodeConfig;

    struct NoopAnalysis {
        controls: BackendControls,
        label: String,
    }

    impl AnalysisAdaptor for NoopAnalysis {
        fn name(&self) -> &str {
            &self.label
        }
        fn controls(&self) -> &BackendControls {
            &self.controls
        }
        fn controls_mut(&mut self) -> &mut BackendControls {
            &mut self.controls
        }
        fn execute(&mut self, _d: &dyn DataAdaptor, _c: &ExecContext<'_>) -> Result<bool> {
            Ok(true)
        }
    }

    fn ctx() -> CreateContext {
        CreateContext { node: SimNode::new(NodeConfig::fast_test(1)), rank: 0, size: 1 }
    }

    #[test]
    fn register_and_create() {
        let mut reg = AnalysisRegistry::new();
        reg.register("noop", |el, _ctx| {
            Ok(Box::new(NoopAnalysis {
                controls: BackendControls::default(),
                label: el.attr_or("label", "noop").to_string(),
            }))
        });
        assert!(reg.contains("noop"));
        assert_eq!(reg.type_names(), vec!["noop"]);

        let el = Element::new("analysis").with_attr("label", "my-noop");
        let backend = reg.create("noop", &el, &ctx()).unwrap();
        assert_eq!(backend.name(), "my-noop");
    }

    #[test]
    fn unknown_type_is_an_error() {
        let reg = AnalysisRegistry::new();
        let el = Element::new("analysis");
        assert!(matches!(
            reg.create("mystery", &el, &ctx()),
            Err(Error::UnknownAnalysisType { .. })
        ));
    }

    #[test]
    fn factory_errors_propagate() {
        let mut reg = AnalysisRegistry::new();
        reg.register("fails", |_, _| Err(Error::Config("bad params".into())));
        let el = Element::new("analysis");
        assert!(matches!(reg.create("fails", &el, &ctx()), Err(Error::Config(_))));
    }
}
