//! The two adaptor interfaces SENSEI mediates between.
//!
//! A simulation exposes its state through a [`DataAdaptor`]; a back-end
//! consumes it through an [`AnalysisAdaptor`]. The bridge connects the
//! two, applying the execution-model extensions (placement, lockstep vs
//! asynchronous execution).

use std::sync::Arc;

use devsim::SimNode;
use minimpi::Comm;
use svtk::{DataObject, FieldAssociation};

use crate::controls::BackendControls;
use crate::counters::AnalysisCounters;
use crate::error::Result;
use crate::requirements::DataRequirements;

/// Description of one array available on a mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayMetadata {
    /// Array name.
    pub name: String,
    /// Centering.
    pub association: FieldAssociation,
    /// Components per tuple.
    pub components: usize,
    /// Element type name ("double", ...).
    pub type_name: &'static str,
    /// Current residency (`None` = host).
    pub device: Option<usize>,
}

/// Description of one mesh a simulation publishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshMetadata {
    /// Mesh name (how analyses request it).
    pub name: String,
    /// Arrays attached to the mesh.
    pub arrays: Vec<ArrayMetadata>,
}

/// The simulation side of the coupling: read-only access to the
/// simulation's current state in data-model form.
pub trait DataAdaptor: Send {
    /// Number of meshes the simulation publishes.
    fn num_meshes(&self) -> usize;

    /// Metadata for mesh `i`.
    fn mesh_metadata(&self, i: usize) -> Result<MeshMetadata>;

    /// The named mesh with its data arrays attached. Implementations
    /// should return zero-copy handles to the simulation's own arrays
    /// (the consuming back-end decides whether it needs a deep copy).
    fn mesh(&self, name: &str) -> Result<DataObject>;

    /// Current simulated time.
    fn time(&self) -> f64;

    /// Current time step.
    fn time_step(&self) -> u64;

    /// Hint that the caller is done *reading* array data through this
    /// adaptor. Snapshot adaptors holding copy-on-write shares release
    /// their pins here so later producer writes skip the fault copy;
    /// back-ends should call it as soon as they have materialized what
    /// they need. The default does nothing.
    fn release_shared(&self) {}
}

/// Per-invocation context handed to analysis back-ends.
pub struct ExecContext<'a> {
    /// The communicator the back-end should use for cross-rank reduction.
    /// Under asynchronous execution this is a dedicated duplicate owned by
    /// the in situ thread, so analysis traffic cannot interfere with the
    /// simulation's communication.
    pub comm: &'a Comm,
    /// The heterogeneous node the rank runs on.
    pub node: &'a Arc<SimNode>,
}

impl<'a> ExecContext<'a> {
    /// Construct a context.
    pub fn new(comm: &'a Comm, node: &'a Arc<SimNode>) -> Self {
        ExecContext { comm, node }
    }
}

/// The back-end side of the coupling.
///
/// Implementations embed a [`BackendControls`] (the paper defines these
/// controls in the back-end base class so every back-end inherits them)
/// and expose it through [`controls`](Self::controls) /
/// [`controls_mut`](Self::controls_mut).
pub trait AnalysisAdaptor: Send {
    /// The back-end's type name (matches the XML `type` attribute).
    fn name(&self) -> &str;

    /// The shared execution-model controls.
    fn controls(&self) -> &BackendControls;

    /// Mutable access to the controls (used by the bridge and the
    /// run-time configuration).
    fn controls_mut(&mut self) -> &mut BackendControls;

    /// The arrays this back-end reads, used to limit what asynchronous
    /// execution deep-copies into its snapshot. The default — everything —
    /// is always correct; back-ends that know their inputs should narrow
    /// it so snapshots copy (and hold) only what is used.
    fn required_arrays(&self) -> DataRequirements {
        DataRequirements::All
    }

    /// The back-end's work counters, if it keeps any. Back-ends that
    /// return a handle here get their pass/launch/download/allreduce
    /// totals recorded into the profiler at finalize, which is how fused
    /// and per-op execution paths are compared quantitatively.
    fn counters(&self) -> Option<Arc<AnalysisCounters>> {
        None
    }

    /// Process the simulation's current state. Returns `Ok(true)` to
    /// continue, `Ok(false)` to request the simulation stop.
    fn execute(&mut self, data: &dyn DataAdaptor, ctx: &ExecContext<'_>) -> Result<bool>;

    /// True when this back-end can plan its step as a task graph for
    /// [`execute_dag`](Self::execute_dag). The `dag` execution engine
    /// falls back to plain [`execute`](Self::execute) dispatch otherwise.
    fn supports_dag(&self) -> bool {
        false
    }

    /// Dataflow variant of [`execute`](Self::execute): plan the step as a
    /// [`crate::TaskGraph`] and hand it to `sched` (typically via
    /// [`crate::DagScheduler::run`]). Recovery applies per task node
    /// inside the scheduler, so the engine does not re-wrap this call in
    /// [`crate::run_with_recovery`]. The default ignores the scheduler
    /// and delegates to the monolithic path.
    fn execute_dag(
        &mut self,
        data: &dyn DataAdaptor,
        ctx: &ExecContext<'_>,
        sched: &mut crate::scheduler::DagScheduler,
    ) -> Result<bool> {
        let _ = sched;
        self.execute(data, ctx)
    }

    /// Called once after the last `execute`; flush outputs here.
    fn finalize(&mut self, _ctx: &ExecContext<'_>) -> Result<()> {
        Ok(())
    }
}
