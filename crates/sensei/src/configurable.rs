//! `ConfigurableAnalysis`: back-end selection from run-time XML.
//!
//! The paper's experiments are "orchestrated by SENSEI using its XML
//! configuration feature" (§4.3) — the 90 binning operations are 9
//! sequential `data_binning` instances configured from one file. The
//! execution-model extensions surface in the XML as the `mode`
//! (lockstep/asynchronous), `device` / `n_use` / `stride` / `offset`,
//! `queue_depth` / `overflow` (asynchronous backpressure), and
//! `on_error` / `max_retries` / `retry_backoff_ms` (failure recovery)
//! attributes, available on *every* analysis element.
//!
//! ```xml
//! <sensei>
//!   <memory_pool enabled="1" granularity="64" trim_threshold="1048576"/>
//!   <faults seed="7">
//!     <fault site="stream.launch" probability="0.05" max="3"/>
//!     <fault site="mpi.collective" delay_ms="5" rank="0"/>
//!   </faults>
//!   <analysis type="data_binning" enabled="1"
//!             mode="asynchronous" device="-2" n_use="1" offset="3"
//!             queue_depth="4" overflow="block"
//!             on_error="retry" max_retries="3" retry_backoff_ms="10">
//!     ...back-end specific content...
//!   </analysis>
//! </sensei>
//! ```
//!
//! The optional `<memory_pool>` element tunes the node-wide stream-aware
//! caching allocator: `enabled` is the master switch, `granularity` the
//! size-class width in 64-bit cells, and `trim_threshold` a per-space
//! ceiling (bytes) on cached free-list memory (absent = unbounded).
//!
//! The optional `<faults>` element installs a deterministic fault
//! schedule on the node's [`devsim::FaultInjector`] at instantiate time:
//! `seed` fixes the sampling sequence; each `<fault>` child names an
//! injection site (`site`), fires with `probability` per armed occurrence
//! (default 1), optionally stalls for `delay_ms` instead of erroring,
//! skips the first `after` occurrences, stops after `max` injections, and
//! can be pinned to one `rank`.

use std::sync::Arc;
use std::time::Duration;

use devsim::{FaultConfig, FaultKind, FaultRule, NetworkParams, PoolConfig};
use minimpi::{CollectiveMode, Topology};
use xmlcfg::Element;

use crate::adaptive::AdaptiveConfig;
use crate::adaptor::AnalysisAdaptor;
use crate::controls::{BackendControls, DeviceSpec};
use crate::device_select::DeviceSelector;
use crate::error::{Error, Result};
use crate::execution::ExecutionMethod;
use crate::queue::OverflowPolicy;
use crate::recovery::RecoveryPolicy;
use crate::registry::{AnalysisRegistry, CreateContext};
use crate::serve::ServeConfig;
use crate::snapshot::SnapshotMode;

/// One `<analysis>` entry of a configuration.
pub struct BackendConfig {
    /// The back-end type name.
    pub type_name: String,
    /// Whether the entry is enabled.
    pub enabled: bool,
    /// Execution-model controls parsed from the element's attributes.
    pub controls: BackendControls,
    /// The full element, for back-end specific parameters.
    pub element: Element,
}

impl BackendConfig {
    /// Rebuild the `<analysis>` element: back-end specific children are
    /// preserved from the source document, while every execution-model
    /// control is written back as an attribute (so
    /// parse → [`ConfigurableAnalysis::to_xml`] → parse round-trips).
    pub fn to_element(&self) -> Element {
        let mut el = self.element.clone();
        let set = |el: &mut Element, key: &str, value: String| {
            el.attributes.retain(|(k, _)| k != key);
            el.attributes.push((key.to_string(), value));
        };
        set(&mut el, "type", self.type_name.clone());
        set(&mut el, "enabled", (self.enabled as u8).to_string());
        let c = &self.controls;
        set(&mut el, "mode", c.execution.name().to_string());
        set(&mut el, "device", c.device.code().to_string());
        match c.selector.n_use {
            Some(n) => set(&mut el, "n_use", n.to_string()),
            None => el.attributes.retain(|(k, _)| k != "n_use"),
        }
        set(&mut el, "stride", c.selector.stride.to_string());
        set(&mut el, "offset", c.selector.offset.to_string());
        set(&mut el, "frequency", c.frequency.to_string());
        set(&mut el, "queue_depth", c.queue_depth.to_string());
        set(&mut el, "overflow", c.overflow.name().to_string());
        set(&mut el, "on_error", c.recovery.name().to_string());
        match c.recovery {
            RecoveryPolicy::Retry { max_retries, backoff_ms } => {
                set(&mut el, "max_retries", max_retries.to_string());
                set(&mut el, "retry_backoff_ms", backoff_ms.to_string());
            }
            _ => {
                el.attributes.retain(|(k, _)| k != "max_retries" && k != "retry_backoff_ms");
            }
        }
        // The layout rides as a child element, not an attribute; replace
        // any source <layout> child with the normalized form and omit the
        // scalar default entirely.
        el.children.retain(|n| !matches!(n, xmlcfg::Node::Element(ce) if ce.name == "layout"));
        if c.layout != hamr::Layout::Scalar {
            el.children
                .push(xmlcfg::Node::Element(Element::new("layout").with_text(c.layout.name())));
        }
        el
    }
}

/// Parsed `<topology>` element: how ranks group into simulated nodes and
/// the two-tier network cost model their messages are charged against.
///
/// ```xml
/// <topology ranks_per_node="4" mode="hierarchical"
///           intra_gbps="200" inter_gbps="25"
///           intra_latency_ns="1000" inter_latency_ns="5000"/>
/// ```
///
/// `mode="flat"` keeps the node grouping and cost model but routes
/// collectives over the all-to-root algorithms — the A/B baseline the
/// scale harness compares against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologyConfig {
    /// Ranks per simulated node (consecutive fill, last node partial).
    pub ranks_per_node: usize,
    /// How collectives route their traffic.
    pub mode: CollectiveMode,
    /// The intra-/inter-node cost model.
    pub net: NetworkParams,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            ranks_per_node: 4,
            mode: CollectiveMode::default(),
            net: NetworkParams::default(),
        }
    }
}

impl TopologyConfig {
    /// The rank → node grouping for a world of `n` ranks.
    pub fn topology(&self, n: usize) -> Topology {
        Topology::grouped(n, self.ranks_per_node)
    }
}

/// A parsed SENSEI run-time configuration.
pub struct ConfigurableAnalysis {
    configs: Vec<BackendConfig>,
    pool: Option<PoolConfig>,
    faults: Option<FaultConfig>,
    snapshot: Option<SnapshotMode>,
    topology: Option<TopologyConfig>,
    adaptive: Option<AdaptiveConfig>,
    serve: Option<ServeConfig>,
}

impl ConfigurableAnalysis {
    /// Parse a configuration document.
    pub fn from_xml(xml: &str) -> Result<Self> {
        let root = xmlcfg::parse(xml)?;
        Self::from_element(&root)
    }

    /// Parse from an already-built DOM.
    pub fn from_element(root: &Element) -> Result<Self> {
        if root.name != "sensei" {
            return Err(Error::Config(format!("expected <sensei> root, found <{}>", root.name)));
        }
        let pool = match root.find_child("memory_pool") {
            None => None,
            Some(el) => {
                let defaults = PoolConfig::default();
                let enabled = el.parse_attr_or::<u8>("enabled", 1).map_err(Error::Xml)? != 0;
                let granularity = el
                    .parse_attr_or::<usize>("granularity", defaults.granularity)
                    .map_err(Error::Xml)?;
                if granularity == 0 {
                    return Err(Error::Config("memory_pool granularity must be at least 1".into()));
                }
                let trim_threshold = el
                    .parse_attr_or::<usize>("trim_threshold", defaults.trim_threshold)
                    .map_err(Error::Xml)?;
                Some(PoolConfig { enabled, granularity, trim_threshold })
            }
        };
        let faults = match root.find_child("faults") {
            None => None,
            Some(el) => {
                let seed = el.parse_attr_or::<u64>("seed", 0).map_err(Error::Xml)?;
                let mut schedule = FaultConfig::seeded(seed);
                for f in el.find_all("fault") {
                    let site = f.req_attr("site").map_err(Error::Xml)?;
                    let mut rule = match f.parse_attr::<u64>("delay_ms").map_err(Error::Xml)? {
                        Some(ms) => FaultRule::delay(site, Duration::from_millis(ms)),
                        None => FaultRule::error(site),
                    };
                    let p = f.parse_attr_or::<f64>("probability", 1.0).map_err(Error::Xml)?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(Error::Config(format!("fault probability {p} outside [0, 1]")));
                    }
                    rule = rule.with_probability(p);
                    rule = rule.with_after(f.parse_attr_or::<u64>("after", 0).map_err(Error::Xml)?);
                    if let Some(max) = f.parse_attr::<u64>("max").map_err(Error::Xml)? {
                        rule = rule.with_max_injections(max);
                    }
                    if let Some(rank) = f.parse_attr::<usize>("rank").map_err(Error::Xml)? {
                        rule = rule.for_rank(rank);
                    }
                    schedule = schedule.with_rule(rule);
                }
                Some(schedule)
            }
        };
        let snapshot = match root.find_child("snapshot") {
            None => None,
            Some(el) => {
                let mode = el.attr_or("mode", "deep");
                Some(SnapshotMode::parse(mode).ok_or_else(|| {
                    Error::Config(format!(
                        "bad snapshot mode '{mode}' (expected deep, delta, or cow)"
                    ))
                })?)
            }
        };
        let topology = match root.find_child("topology") {
            None => None,
            Some(el) => {
                let d = TopologyConfig::default();
                let ranks_per_node = el
                    .parse_attr_or::<usize>("ranks_per_node", d.ranks_per_node)
                    .map_err(Error::Xml)?;
                if ranks_per_node == 0 {
                    return Err(Error::Config("topology ranks_per_node must be at least 1".into()));
                }
                let mode = match el.attr_or("mode", "hierarchical") {
                    "hierarchical" => CollectiveMode::Hierarchical,
                    "flat" => CollectiveMode::Flat,
                    s => {
                        return Err(Error::Config(format!(
                            "bad topology mode '{s}' (expected hierarchical or flat)"
                        )))
                    }
                };
                let gbps = |attr: &str, default: f64| -> Result<f64> {
                    let v = el.parse_attr_or::<f64>(attr, default / 1e9).map_err(Error::Xml)? * 1e9;
                    if v <= 0.0 {
                        return Err(Error::Config(format!("topology {attr} must be positive")));
                    }
                    Ok(v)
                };
                let latency = |attr: &str, default: Duration| -> Result<Duration> {
                    let ns = el
                        .parse_attr_or::<u64>(attr, default.as_nanos() as u64)
                        .map_err(Error::Xml)?;
                    Ok(Duration::from_nanos(ns))
                };
                let net = NetworkParams {
                    intra_bytes_per_sec: gbps("intra_gbps", d.net.intra_bytes_per_sec)?,
                    inter_bytes_per_sec: gbps("inter_gbps", d.net.inter_bytes_per_sec)?,
                    intra_latency: latency("intra_latency_ns", d.net.intra_latency)?,
                    inter_latency: latency("inter_latency_ns", d.net.inter_latency)?,
                };
                Some(TopologyConfig { ranks_per_node, mode, net })
            }
        };
        let adaptive = match root.find_child("adaptive") {
            None => None,
            Some(el) => {
                if el.parse_attr_or::<u8>("enabled", 1).map_err(Error::Xml)? == 0 {
                    None
                } else {
                    let d = AdaptiveConfig::default();
                    let window =
                        el.parse_attr_or::<usize>("window", d.window).map_err(Error::Xml)?;
                    if window == 0 {
                        return Err(Error::Config("adaptive window must be at least 1".into()));
                    }
                    let hysteresis =
                        el.parse_attr_or::<f64>("hysteresis", d.hysteresis).map_err(Error::Xml)?;
                    if !(0.0..1.0).contains(&hysteresis) {
                        return Err(Error::Config(format!(
                            "adaptive hysteresis {hysteresis} outside [0, 1)"
                        )));
                    }
                    let drift_margin = el
                        .parse_attr_or::<f64>("drift_margin", d.drift_margin)
                        .map_err(Error::Xml)?;
                    if drift_margin <= 0.0 {
                        return Err(Error::Config("adaptive drift_margin must be positive".into()));
                    }
                    let flag = |attr: &str, default: bool| -> Result<bool> {
                        Ok(el.parse_attr_or::<u8>(attr, default as u8).map_err(Error::Xml)? != 0)
                    };
                    Some(AdaptiveConfig {
                        window,
                        warmup: el
                            .parse_attr_or::<usize>("warmup", d.warmup)
                            .map_err(Error::Xml)?,
                        hysteresis,
                        probe_budget: el
                            .parse_attr_or::<u32>("probe_budget", d.probe_budget)
                            .map_err(Error::Xml)?,
                        cooldown: el
                            .parse_attr_or::<u64>("cooldown", d.cooldown)
                            .map_err(Error::Xml)?,
                        drift_margin,
                        tune_placement: flag("tune_placement", d.tune_placement)?,
                        tune_execution: flag("tune_execution", d.tune_execution)?,
                        tune_layout: flag("tune_layout", d.tune_layout)?,
                        tune_snapshot: flag("tune_snapshot", d.tune_snapshot)?,
                    })
                }
            }
        };
        let serve = match root.find_child("serve") {
            None => None,
            Some(el) => {
                if el.parse_attr_or::<u8>("enabled", 1).map_err(Error::Xml)? == 0 {
                    None
                } else {
                    let d = ServeConfig::default();
                    let sessions =
                        el.parse_attr_or::<usize>("sessions", d.sessions).map_err(Error::Xml)?;
                    if sessions == 0 {
                        return Err(Error::Config("serve sessions must be at least 1".into()));
                    }
                    let queue_depth = el
                        .parse_attr_or::<usize>("queue_depth", d.queue_depth)
                        .map_err(Error::Xml)?;
                    if queue_depth == 0 {
                        return Err(Error::Config("serve queue_depth must be at least 1".into()));
                    }
                    let overflow = match el.attr("overflow") {
                        None => d.overflow,
                        Some(s) => OverflowPolicy::parse(s).ok_or_else(|| {
                            Error::Config(format!(
                                "bad serve overflow '{s}' (expected block, drop_oldest, or error)"
                            ))
                        })?,
                    };
                    let steering =
                        el.parse_attr_or::<u8>("steering", d.steering as u8).map_err(Error::Xml)?
                            != 0;
                    Some(ServeConfig { sessions, queue_depth, overflow, steering })
                }
            }
        };
        let mut configs = Vec::new();
        for el in root.find_all("analysis") {
            let type_name = el.req_attr("type").map_err(Error::Xml)?.to_string();
            let enabled = el.parse_attr_or::<u8>("enabled", 1).map_err(Error::Xml)? != 0;
            let execution = match el.attr("mode") {
                None => ExecutionMethod::Lockstep,
                Some(s) => ExecutionMethod::parse(s)
                    .ok_or_else(|| Error::Config(format!("bad mode '{s}'")))?,
            };
            let device_code = el.parse_attr_or::<i64>("device", -2).map_err(Error::Xml)?;
            let device = DeviceSpec::from_code(device_code)
                .ok_or_else(|| Error::Config(format!("bad device code {device_code}")))?;
            let selector = DeviceSelector {
                n_use: el.parse_attr::<usize>("n_use").map_err(Error::Xml)?,
                stride: el.parse_attr_or::<usize>("stride", 1).map_err(Error::Xml)?,
                offset: el.parse_attr_or::<usize>("offset", 0).map_err(Error::Xml)?,
            };
            let frequency = el.parse_attr_or::<u64>("frequency", 1).map_err(Error::Xml)?;
            let defaults = BackendControls::default();
            let queue_depth = el
                .parse_attr_or::<usize>("queue_depth", defaults.queue_depth)
                .map_err(Error::Xml)?;
            if queue_depth == 0 {
                return Err(Error::Config("queue_depth must be at least 1".into()));
            }
            let overflow = match el.attr("overflow") {
                None => defaults.overflow,
                Some(s) => OverflowPolicy::parse(s)
                    .ok_or_else(|| Error::Config(format!("bad overflow policy '{s}'")))?,
            };
            let layout = match el.find_child("layout") {
                None => defaults.layout,
                Some(le) => {
                    let text = le.text();
                    let name = if text.is_empty() { "scalar" } else { text.as_str() };
                    let mut layout = hamr::Layout::parse(name).ok_or_else(|| {
                        Error::Config(format!(
                            "bad layout '{name}' (expected scalar, aos, soa, or aosoa<N>)"
                        ))
                    })?;
                    if let Some(lanes) = le.parse_attr::<usize>("lanes").map_err(Error::Xml)? {
                        if lanes == 0 {
                            return Err(Error::Config("layout lanes must be at least 1".into()));
                        }
                        if let hamr::Layout::AoSoA { .. } = layout {
                            layout = hamr::Layout::AoSoA { lane_width: lanes };
                        }
                    }
                    layout
                }
            };
            let recovery = match el.attr("on_error") {
                None => defaults.recovery,
                Some(s) => {
                    let base = RecoveryPolicy::parse(s)
                        .ok_or_else(|| Error::Config(format!("bad on_error policy '{s}'")))?;
                    match base {
                        RecoveryPolicy::Retry { max_retries, backoff_ms } => {
                            RecoveryPolicy::Retry {
                                max_retries: el
                                    .parse_attr_or::<u32>("max_retries", max_retries)
                                    .map_err(Error::Xml)?,
                                backoff_ms: el
                                    .parse_attr_or::<u64>("retry_backoff_ms", backoff_ms)
                                    .map_err(Error::Xml)?,
                            }
                        }
                        other => other,
                    }
                }
            };
            configs.push(BackendConfig {
                type_name,
                enabled,
                controls: BackendControls {
                    execution,
                    device,
                    selector,
                    frequency,
                    queue_depth,
                    overflow,
                    recovery,
                    layout,
                },
                element: el.clone(),
            });
        }
        Ok(ConfigurableAnalysis { configs, pool, faults, snapshot, topology, adaptive, serve })
    }

    /// All entries (including disabled ones).
    pub fn configs(&self) -> &[BackendConfig] {
        &self.configs
    }

    /// The `<memory_pool>` settings, if the document carries the element.
    pub fn pool_config(&self) -> Option<PoolConfig> {
        self.pool
    }

    /// The `<faults>` schedule, if the document carries the element.
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.faults.as_ref()
    }

    /// The `<snapshot mode="deep|delta|cow">` selection, if the document
    /// carries the element. The caller applies it with
    /// [`crate::Bridge::set_snapshot_mode`]; absent means the deep-copy
    /// default.
    pub fn snapshot_mode(&self) -> Option<SnapshotMode> {
        self.snapshot
    }

    /// The `<topology>` settings, if the document carries the element.
    /// The harness applies them when it builds the [`minimpi::World`]
    /// (node grouping, collective mode, and network cost model); absent
    /// means the single-node default.
    pub fn topology_config(&self) -> Option<TopologyConfig> {
        self.topology
    }

    /// The `<adaptive>` controller knobs, if the document carries the
    /// element (and it is not `enabled="0"`). The caller applies them
    /// with [`crate::Bridge::enable_adaptive`]; absent means static
    /// configuration throughout the run.
    pub fn adaptive_config(&self) -> Option<AdaptiveConfig> {
        self.adaptive
    }

    /// The `<serve>` session settings, if the document carries the
    /// element (and it is not `enabled="0"`). The harness uses them to
    /// size the live-serving traffic generator; absent means no serving
    /// layer is attached.
    pub fn serve_config(&self) -> Option<ServeConfig> {
        self.serve
    }

    /// Serialize back to XML text. Parsing the result yields the same
    /// entries and controls (attributes are normalized: defaults are
    /// written out explicitly).
    pub fn to_xml(&self) -> String {
        let mut root = Element::new("sensei");
        if let Some(p) = self.pool {
            let mut el = Element::new("memory_pool");
            el.attributes.push(("enabled".to_string(), (p.enabled as u8).to_string()));
            el.attributes.push(("granularity".to_string(), p.granularity.to_string()));
            if p.trim_threshold != usize::MAX {
                el.attributes.push(("trim_threshold".to_string(), p.trim_threshold.to_string()));
            }
            root.children.push(xmlcfg::Node::Element(el));
        }
        if let Some(mode) = self.snapshot {
            let mut el = Element::new("snapshot");
            el.attributes.push(("mode".to_string(), mode.name().to_string()));
            root.children.push(xmlcfg::Node::Element(el));
        }
        if let Some(a) = self.adaptive {
            let mut el = Element::new("adaptive");
            let mut push = |k: &str, v: String| el.attributes.push((k.to_string(), v));
            push("enabled", "1".to_string());
            push("window", a.window.to_string());
            push("warmup", a.warmup.to_string());
            push("hysteresis", a.hysteresis.to_string());
            push("probe_budget", a.probe_budget.to_string());
            push("cooldown", a.cooldown.to_string());
            push("drift_margin", a.drift_margin.to_string());
            push("tune_placement", (a.tune_placement as u8).to_string());
            push("tune_execution", (a.tune_execution as u8).to_string());
            push("tune_layout", (a.tune_layout as u8).to_string());
            push("tune_snapshot", (a.tune_snapshot as u8).to_string());
            root.children.push(xmlcfg::Node::Element(el));
        }
        if let Some(s) = self.serve {
            let mut el = Element::new("serve");
            el.attributes.push(("enabled".to_string(), "1".to_string()));
            el.attributes.push(("sessions".to_string(), s.sessions.to_string()));
            el.attributes.push(("queue_depth".to_string(), s.queue_depth.to_string()));
            el.attributes.push(("overflow".to_string(), s.overflow.name().to_string()));
            el.attributes.push(("steering".to_string(), (s.steering as u8).to_string()));
            root.children.push(xmlcfg::Node::Element(el));
        }
        if let Some(t) = self.topology {
            let mut el = Element::new("topology");
            let mode = match t.mode {
                CollectiveMode::Hierarchical => "hierarchical",
                CollectiveMode::Flat => "flat",
            };
            el.attributes.push(("ranks_per_node".to_string(), t.ranks_per_node.to_string()));
            el.attributes.push(("mode".to_string(), mode.to_string()));
            el.attributes
                .push(("intra_gbps".to_string(), (t.net.intra_bytes_per_sec / 1e9).to_string()));
            el.attributes
                .push(("inter_gbps".to_string(), (t.net.inter_bytes_per_sec / 1e9).to_string()));
            el.attributes
                .push(("intra_latency_ns".to_string(), t.net.intra_latency.as_nanos().to_string()));
            el.attributes
                .push(("inter_latency_ns".to_string(), t.net.inter_latency.as_nanos().to_string()));
            root.children.push(xmlcfg::Node::Element(el));
        }
        if let Some(f) = &self.faults {
            let mut el = Element::new("faults");
            el.attributes.push(("seed".to_string(), f.seed.to_string()));
            for r in &f.rules {
                let mut fe = Element::new("fault");
                fe.attributes.push(("site".to_string(), r.site.clone()));
                if let FaultKind::Delay(d) = r.kind {
                    fe.attributes.push(("delay_ms".to_string(), d.as_millis().to_string()));
                }
                fe.attributes.push(("probability".to_string(), r.probability.to_string()));
                if r.after != 0 {
                    fe.attributes.push(("after".to_string(), r.after.to_string()));
                }
                if r.max_injections != u64::MAX {
                    fe.attributes.push(("max".to_string(), r.max_injections.to_string()));
                }
                if let Some(rank) = r.rank {
                    fe.attributes.push(("rank".to_string(), rank.to_string()));
                }
                el.children.push(xmlcfg::Node::Element(fe));
            }
            root.children.push(xmlcfg::Node::Element(el));
        }
        for cfg in &self.configs {
            root.children.push(xmlcfg::Node::Element(cfg.to_element()));
        }
        xmlcfg::write(&root)
    }

    /// Instantiate every enabled back-end via `registry`, with the parsed
    /// execution-model controls applied.
    pub fn instantiate(
        &self,
        registry: &AnalysisRegistry,
        ctx: &CreateContext,
    ) -> Result<Vec<Box<dyn AnalysisAdaptor>>> {
        if let Some(p) = self.pool {
            ctx.node.pool().configure(p);
        }
        if let Some(f) = &self.faults {
            ctx.node.fault().configure(f.clone());
        }
        let mut backends = Vec::new();
        for cfg in self.configs.iter().filter(|c| c.enabled) {
            let mut backend = registry.create(&cfg.type_name, &cfg.element, ctx)?;
            *backend.controls_mut() = cfg.controls;
            backends.push(backend);
        }
        Ok(backends)
    }

    /// Like [`ConfigurableAnalysis::instantiate`], but returns each
    /// enabled back-end as (initial controls, rebuild factory) for
    /// [`crate::Bridge::add_reconfigurable_analysis`] — the attachment
    /// the adaptive controller (and any other mid-run reconfiguration)
    /// needs. The factory re-creates the back-end from its XML element
    /// under whatever controls the caller passes; the registry is shared
    /// because each factory may fire arbitrarily many times over the run.
    pub fn instantiate_reconfigurable(
        &self,
        registry: &Arc<AnalysisRegistry>,
        ctx: &CreateContext,
    ) -> Result<Vec<(BackendControls, crate::AdaptorFactory)>> {
        if let Some(p) = self.pool {
            ctx.node.pool().configure(p);
        }
        if let Some(f) = &self.faults {
            ctx.node.fault().configure(f.clone());
        }
        let mut backends = Vec::new();
        for cfg in self.configs.iter().filter(|c| c.enabled) {
            let registry = registry.clone();
            let type_name = cfg.type_name.clone();
            let element = cfg.element.clone();
            let ctx = ctx.clone();
            let factory: crate::AdaptorFactory = Box::new(move |controls: &BackendControls| {
                let mut backend = registry.create(&type_name, &element, &ctx)?;
                *backend.controls_mut() = *controls;
                Ok(backend)
            });
            backends.push((cfg.controls, factory));
        }
        Ok(backends)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptor::{DataAdaptor, ExecContext};
    use devsim::{NodeConfig, SimNode};

    const XML: &str = r#"
        <sensei>
          <memory_pool enabled="1" granularity="128" trim_threshold="65536"/>
          <faults seed="7">
            <fault site="stream.launch" probability="0.25" after="2" max="3"/>
            <fault site="mpi.collective" delay_ms="5" rank="1"/>
          </faults>
          <analysis type="binning" mode="asynchronous" device="-2"
                    n_use="1" offset="3" stride="1"
                    queue_depth="8" overflow="drop_oldest"
                    on_error="retry" max_retries="5" retry_backoff_ms="2">
            <axes>x,y</axes>
          </analysis>
          <analysis type="binning" enabled="0"/>
          <analysis type="writer" device="-1" overflow="error" on_error="skip_step"/>
          <analysis type="probe" device="2"/>
        </sensei>"#;

    #[test]
    fn parses_all_entries_and_controls() {
        let cfg = ConfigurableAnalysis::from_xml(XML).unwrap();
        assert_eq!(cfg.configs().len(), 4);

        let b = &cfg.configs()[0];
        assert_eq!(b.type_name, "binning");
        assert!(b.enabled);
        assert_eq!(b.controls.execution, ExecutionMethod::Asynchronous);
        assert_eq!(b.controls.device, DeviceSpec::Auto);
        assert_eq!(b.controls.selector, DeviceSelector { n_use: Some(1), stride: 1, offset: 3 });
        assert_eq!(b.controls.queue_depth, 8);
        assert_eq!(b.controls.overflow, OverflowPolicy::DropOldest);
        assert_eq!(b.element.find_child("axes").unwrap().text(), "x,y");

        assert_eq!(b.controls.recovery, RecoveryPolicy::Retry { max_retries: 5, backoff_ms: 2 });

        assert!(!cfg.configs()[1].enabled);
        assert_eq!(cfg.configs()[1].controls.queue_depth, 4, "queue_depth defaults to 4");
        assert_eq!(cfg.configs()[1].controls.recovery, RecoveryPolicy::Abort, "default");
        assert_eq!(cfg.configs()[2].controls.device, DeviceSpec::Host);
        assert_eq!(cfg.configs()[2].controls.overflow, OverflowPolicy::Error);
        assert_eq!(cfg.configs()[2].controls.recovery, RecoveryPolicy::SkipStep);
        assert_eq!(cfg.configs()[3].controls.device, DeviceSpec::Explicit(2));
        assert_eq!(cfg.configs()[3].controls.execution, ExecutionMethod::Lockstep);
        assert_eq!(cfg.configs()[3].controls.overflow, OverflowPolicy::Block);
    }

    #[test]
    fn faults_element_parses_and_round_trips() {
        use devsim::FaultKind;

        let cfg = ConfigurableAnalysis::from_xml(XML).unwrap();
        let f = cfg.fault_config().expect("faults element present");
        assert_eq!(f.seed, 7);
        assert_eq!(f.rules.len(), 2);
        let r0 = &f.rules[0];
        assert_eq!(r0.site, "stream.launch");
        assert_eq!(r0.kind, FaultKind::Error);
        assert_eq!(r0.probability, 0.25);
        assert_eq!((r0.after, r0.max_injections, r0.rank), (2, 3, None));
        let r1 = &f.rules[1];
        assert_eq!(r1.kind, FaultKind::Delay(Duration::from_millis(5)));
        assert_eq!(r1.rank, Some(1));

        let text = cfg.to_xml();
        let again = ConfigurableAnalysis::from_xml(&text).unwrap();
        let g = again.fault_config().unwrap();
        assert_eq!(g.seed, f.seed);
        assert_eq!(g.rules.len(), 2);
        assert_eq!(g.rules[0].probability, 0.25);
        assert_eq!(g.rules[1].kind, FaultKind::Delay(Duration::from_millis(5)));

        // Absent element -> no schedule.
        assert!(ConfigurableAnalysis::from_xml("<sensei/>").unwrap().fault_config().is_none());
    }

    #[test]
    fn bad_fault_and_recovery_values_are_rejected() {
        assert!(matches!(
            ConfigurableAnalysis::from_xml(
                r#"<sensei><faults><fault site="x" probability="1.5"/></faults></sensei>"#
            ),
            Err(Error::Config(_))
        ));
        assert!(matches!(
            ConfigurableAnalysis::from_xml(r#"<sensei><faults><fault/></faults></sensei>"#),
            Err(Error::Xml(_))
        ));
        assert!(matches!(
            ConfigurableAnalysis::from_xml(
                r#"<sensei><analysis type="x" on_error="explode"/></sensei>"#
            ),
            Err(Error::Config(_))
        ));
    }

    #[test]
    fn instantiate_installs_the_fault_schedule() {
        let cfg = ConfigurableAnalysis::from_xml(
            r#"<sensei><faults seed="3"><fault site="pool.alloc"/></faults></sensei>"#,
        )
        .unwrap();
        let reg = AnalysisRegistry::new();
        let ctx = CreateContext { node: SimNode::new(NodeConfig::fast_test(1)), rank: 0, size: 1 };
        assert!(!ctx.node.fault().is_enabled());
        cfg.instantiate(&reg, &ctx).unwrap();
        assert!(ctx.node.fault().is_enabled(), "schedule applied to the node's injector");
    }

    #[test]
    fn memory_pool_element_parses_and_round_trips() {
        let cfg = ConfigurableAnalysis::from_xml(XML).unwrap();
        let pool = cfg.pool_config().unwrap();
        assert!(pool.enabled);
        assert_eq!(pool.granularity, 128);
        assert_eq!(pool.trim_threshold, 65536);

        let text = cfg.to_xml();
        assert!(
            text.contains(r#"<memory_pool enabled="1" granularity="128" trim_threshold="65536"/>"#)
        );
        let again = ConfigurableAnalysis::from_xml(&text).unwrap();
        assert_eq!(again.pool_config(), Some(pool));

        // Absent element -> no pool override; unbounded threshold stays
        // implicit on the way back out.
        let none = ConfigurableAnalysis::from_xml("<sensei/>").unwrap();
        assert_eq!(none.pool_config(), None);
        let sparse =
            ConfigurableAnalysis::from_xml(r#"<sensei><memory_pool enabled="0"/></sensei>"#)
                .unwrap();
        let p = sparse.pool_config().unwrap();
        assert!(!p.enabled);
        assert_eq!(p.granularity, PoolConfig::default().granularity);
        assert_eq!(p.trim_threshold, usize::MAX);
        assert!(!sparse.to_xml().contains("trim_threshold"));

        assert!(matches!(
            ConfigurableAnalysis::from_xml(r#"<sensei><memory_pool granularity="0"/></sensei>"#),
            Err(Error::Config(_))
        ));
    }

    #[test]
    fn instantiate_applies_memory_pool_to_the_node() {
        let cfg = ConfigurableAnalysis::from_xml(
            r#"<sensei><memory_pool enabled="0" granularity="16"/></sensei>"#,
        )
        .unwrap();
        let reg = AnalysisRegistry::new();
        let ctx = CreateContext { node: SimNode::new(NodeConfig::fast_test(1)), rank: 0, size: 1 };
        cfg.instantiate(&reg, &ctx).unwrap();
        let applied = ctx.node.pool().config();
        assert!(!applied.enabled);
        assert_eq!(applied.granularity, 16);
    }

    #[test]
    fn snapshot_element_parses_and_round_trips() {
        let cfg =
            ConfigurableAnalysis::from_xml(r#"<sensei><snapshot mode="cow"/></sensei>"#).unwrap();
        assert_eq!(cfg.snapshot_mode(), Some(SnapshotMode::Cow));
        let text = cfg.to_xml();
        assert!(text.contains(r#"<snapshot mode="cow"/>"#));
        let again = ConfigurableAnalysis::from_xml(&text).unwrap();
        assert_eq!(again.snapshot_mode(), Some(SnapshotMode::Cow));

        // A bare element means the deep default; an absent one means no
        // override at all.
        let bare = ConfigurableAnalysis::from_xml("<sensei><snapshot/></sensei>").unwrap();
        assert_eq!(bare.snapshot_mode(), Some(SnapshotMode::Deep));
        assert_eq!(ConfigurableAnalysis::from_xml("<sensei/>").unwrap().snapshot_mode(), None);

        assert!(matches!(
            ConfigurableAnalysis::from_xml(r#"<sensei><snapshot mode="shallow"/></sensei>"#),
            Err(Error::Config(_))
        ));
    }

    #[test]
    fn topology_element_parses_and_round_trips() {
        let cfg = ConfigurableAnalysis::from_xml(
            r#"<sensei>
                 <topology ranks_per_node="8" mode="flat"
                           intra_gbps="100" inter_gbps="12.5"
                           intra_latency_ns="500" inter_latency_ns="7000"/>
               </sensei>"#,
        )
        .unwrap();
        let t = cfg.topology_config().expect("topology element present");
        assert_eq!(t.ranks_per_node, 8);
        assert_eq!(t.mode, CollectiveMode::Flat);
        assert_eq!(t.net.intra_bytes_per_sec, 100e9);
        assert_eq!(t.net.inter_bytes_per_sec, 12.5e9);
        assert_eq!(t.net.intra_latency, Duration::from_nanos(500));
        assert_eq!(t.net.inter_latency, Duration::from_micros(7));
        let topo = t.topology(10);
        assert_eq!(topo.num_nodes(), 2);
        assert!(topo.same_node(0, 7) && !topo.same_node(7, 8));

        let again = ConfigurableAnalysis::from_xml(&cfg.to_xml()).unwrap();
        assert_eq!(again.topology_config(), Some(t));

        // A bare element means the defaults (hierarchical, 4 per node,
        // Perlmutter-shaped network); an absent one means single-node.
        let bare = ConfigurableAnalysis::from_xml("<sensei><topology/></sensei>").unwrap();
        assert_eq!(bare.topology_config(), Some(TopologyConfig::default()));
        assert_eq!(bare.topology_config().unwrap().mode, CollectiveMode::Hierarchical);
        assert_eq!(ConfigurableAnalysis::from_xml("<sensei/>").unwrap().topology_config(), None);
    }

    #[test]
    fn adaptive_element_parses_and_round_trips() {
        let cfg = ConfigurableAnalysis::from_xml(
            r#"<sensei>
                 <adaptive window="6" warmup="2" hysteresis="0.15" probe_budget="12"
                           cooldown="3" drift_margin="0.4"
                           tune_execution="0" tune_snapshot="0"/>
               </sensei>"#,
        )
        .unwrap();
        let a = cfg.adaptive_config().expect("adaptive element present");
        assert_eq!(a.window, 6);
        assert_eq!(a.warmup, 2);
        assert_eq!(a.hysteresis, 0.15);
        assert_eq!(a.probe_budget, 12);
        assert_eq!(a.cooldown, 3);
        assert_eq!(a.drift_margin, 0.4);
        assert!(a.tune_placement && a.tune_layout, "unset flags default on");
        assert!(!a.tune_execution && !a.tune_snapshot);

        let again = ConfigurableAnalysis::from_xml(&cfg.to_xml()).unwrap();
        assert_eq!(again.adaptive_config(), Some(a));

        // A bare element means the defaults; an absent or disabled one
        // means static configuration.
        let bare = ConfigurableAnalysis::from_xml("<sensei><adaptive/></sensei>").unwrap();
        assert_eq!(bare.adaptive_config(), Some(AdaptiveConfig::default()));
        assert_eq!(ConfigurableAnalysis::from_xml("<sensei/>").unwrap().adaptive_config(), None);
        let off =
            ConfigurableAnalysis::from_xml(r#"<sensei><adaptive enabled="0"/></sensei>"#).unwrap();
        assert_eq!(off.adaptive_config(), None);
    }

    #[test]
    fn bad_adaptive_values_are_rejected() {
        for xml in [
            r#"<sensei><adaptive window="0"/></sensei>"#,
            r#"<sensei><adaptive hysteresis="1.5"/></sensei>"#,
            r#"<sensei><adaptive hysteresis="-0.1"/></sensei>"#,
            r#"<sensei><adaptive drift_margin="0"/></sensei>"#,
        ] {
            assert!(matches!(ConfigurableAnalysis::from_xml(xml), Err(Error::Config(_))), "{xml}");
        }
    }

    #[test]
    fn serve_element_parses_and_round_trips() {
        let cfg = ConfigurableAnalysis::from_xml(
            r#"<sensei>
                 <serve sessions="512" queue_depth="8" overflow="drop_oldest" steering="0"/>
               </sensei>"#,
        )
        .unwrap();
        let s = cfg.serve_config().expect("serve element present");
        assert_eq!(s.sessions, 512);
        assert_eq!(s.queue_depth, 8);
        assert_eq!(s.overflow, OverflowPolicy::DropOldest);
        assert!(!s.steering);

        let again = ConfigurableAnalysis::from_xml(&cfg.to_xml()).unwrap();
        assert_eq!(again.serve_config(), Some(s));

        // A bare element means the defaults (64 sessions, depth 4,
        // block, steering on); an absent or disabled one means no
        // serving layer.
        let bare = ConfigurableAnalysis::from_xml("<sensei><serve/></sensei>").unwrap();
        assert_eq!(bare.serve_config(), Some(ServeConfig::default()));
        assert_eq!(ConfigurableAnalysis::from_xml("<sensei/>").unwrap().serve_config(), None);
        let off =
            ConfigurableAnalysis::from_xml(r#"<sensei><serve enabled="0"/></sensei>"#).unwrap();
        assert_eq!(off.serve_config(), None);
    }

    #[test]
    fn bad_serve_values_are_rejected() {
        for xml in [
            r#"<sensei><serve sessions="0"/></sensei>"#,
            r#"<sensei><serve queue_depth="0"/></sensei>"#,
            r#"<sensei><serve overflow="spill"/></sensei>"#,
        ] {
            assert!(matches!(ConfigurableAnalysis::from_xml(xml), Err(Error::Config(_))), "{xml}");
        }
    }

    #[test]
    fn bad_topology_values_are_rejected() {
        for xml in [
            r#"<sensei><topology ranks_per_node="0"/></sensei>"#,
            r#"<sensei><topology mode="diagonal"/></sensei>"#,
            r#"<sensei><topology inter_gbps="-3"/></sensei>"#,
        ] {
            assert!(matches!(ConfigurableAnalysis::from_xml(xml), Err(Error::Config(_))), "{xml}");
        }
    }

    #[test]
    fn layout_element_parses_and_round_trips() {
        let cfg = ConfigurableAnalysis::from_xml(
            r#"<sensei>
                 <analysis type="binning"><layout>aosoa4</layout></analysis>
                 <analysis type="binning"><layout lanes="16">aosoa</layout></analysis>
                 <analysis type="binning"><layout>soa</layout></analysis>
                 <analysis type="binning"/>
               </sensei>"#,
        )
        .unwrap();
        assert_eq!(cfg.configs()[0].controls.layout, hamr::Layout::AoSoA { lane_width: 4 });
        assert_eq!(cfg.configs()[1].controls.layout, hamr::Layout::AoSoA { lane_width: 16 });
        assert_eq!(cfg.configs()[2].controls.layout, hamr::Layout::SoA);
        assert_eq!(cfg.configs()[3].controls.layout, hamr::Layout::Scalar, "default");

        let text = cfg.to_xml();
        assert!(text.contains("<layout>aosoa4</layout>"));
        assert!(text.contains("<layout>aosoa16</layout>"), "lanes attr normalized into the name");
        let again = ConfigurableAnalysis::from_xml(&text).unwrap();
        for (a, b) in cfg.configs().iter().zip(again.configs()) {
            assert_eq!(a.controls.layout, b.controls.layout);
        }

        assert!(matches!(
            ConfigurableAnalysis::from_xml(
                r#"<sensei><analysis type="x"><layout>diagonal</layout></analysis></sensei>"#
            ),
            Err(Error::Config(_))
        ));
        assert!(matches!(
            ConfigurableAnalysis::from_xml(
                r#"<sensei><analysis type="x"><layout lanes="0">aosoa</layout></analysis></sensei>"#
            ),
            Err(Error::Config(_))
        ));
    }

    #[test]
    fn bad_queue_depth_and_overflow_are_rejected() {
        assert!(matches!(
            ConfigurableAnalysis::from_xml(
                r#"<sensei><analysis type="x" queue_depth="0"/></sensei>"#
            ),
            Err(Error::Config(_))
        ));
        assert!(matches!(
            ConfigurableAnalysis::from_xml(
                r#"<sensei><analysis type="x" overflow="discard"/></sensei>"#
            ),
            Err(Error::Config(_))
        ));
    }

    #[test]
    fn xml_round_trips_through_to_xml() {
        let cfg = ConfigurableAnalysis::from_xml(XML).unwrap();
        let text = cfg.to_xml();
        let again = ConfigurableAnalysis::from_xml(&text).unwrap();
        assert_eq!(again.configs().len(), cfg.configs().len());
        for (a, b) in cfg.configs().iter().zip(again.configs()) {
            assert_eq!(a.type_name, b.type_name);
            assert_eq!(a.enabled, b.enabled);
            assert_eq!(a.controls, b.controls);
        }
        // Back-end specific children survive the round trip.
        assert_eq!(again.configs()[0].element.find_child("axes").unwrap().text(), "x,y");
        // And the controls are normalized into explicit attributes.
        assert!(text.contains(r#"queue_depth="8""#));
        assert!(text.contains(r#"overflow="drop_oldest""#));
        assert!(text.contains(r#"overflow="block""#), "defaults written explicitly");
    }

    #[test]
    fn bad_root_mode_and_device_are_rejected() {
        assert!(matches!(ConfigurableAnalysis::from_xml("<nope/>"), Err(Error::Config(_))));
        assert!(matches!(
            ConfigurableAnalysis::from_xml(r#"<sensei><analysis type="x" mode="weird"/></sensei>"#),
            Err(Error::Config(_))
        ));
        assert!(matches!(
            ConfigurableAnalysis::from_xml(r#"<sensei><analysis type="x" device="-9"/></sensei>"#),
            Err(Error::Config(_))
        ));
        assert!(matches!(
            ConfigurableAnalysis::from_xml(r#"<sensei><analysis/></sensei>"#),
            Err(Error::Xml(_))
        ));
    }

    struct Probe {
        controls: BackendControls,
        label: String,
    }

    impl AnalysisAdaptor for Probe {
        fn name(&self) -> &str {
            &self.label
        }
        fn controls(&self) -> &BackendControls {
            &self.controls
        }
        fn controls_mut(&mut self) -> &mut BackendControls {
            &mut self.controls
        }
        fn execute(&mut self, _d: &dyn DataAdaptor, _c: &ExecContext<'_>) -> Result<bool> {
            Ok(true)
        }
    }

    #[test]
    fn instantiate_applies_controls_and_skips_disabled() {
        let cfg = ConfigurableAnalysis::from_xml(XML).unwrap();
        let mut reg = AnalysisRegistry::new();
        for t in ["binning", "writer", "probe"] {
            reg.register(t, move |el, _| {
                Ok(Box::new(Probe {
                    controls: BackendControls::default(),
                    label: el.attr_or("type", "?").to_string(),
                }) as Box<dyn AnalysisAdaptor>)
            });
        }
        let ctx = CreateContext { node: SimNode::new(NodeConfig::fast_test(4)), rank: 0, size: 1 };
        let backends = cfg.instantiate(&reg, &ctx).unwrap();
        assert_eq!(backends.len(), 3, "the disabled entry is skipped");
        assert_eq!(backends[0].controls().execution, ExecutionMethod::Asynchronous);
        assert_eq!(backends[0].controls().selector.offset, 3);
        assert_eq!(backends[1].controls().device, DeviceSpec::Host);
    }

    #[test]
    fn instantiate_reconfigurable_factories_honor_new_controls() {
        let cfg = ConfigurableAnalysis::from_xml(XML).unwrap();
        let mut reg = AnalysisRegistry::new();
        for t in ["binning", "writer", "probe"] {
            reg.register(t, move |el, _| {
                Ok(Box::new(Probe {
                    controls: BackendControls::default(),
                    label: el.attr_or("type", "?").to_string(),
                }) as Box<dyn AnalysisAdaptor>)
            });
        }
        let reg = std::sync::Arc::new(reg);
        let ctx = CreateContext { node: SimNode::new(NodeConfig::fast_test(4)), rank: 0, size: 1 };
        let backends = cfg.instantiate_reconfigurable(&reg, &ctx).unwrap();
        assert_eq!(backends.len(), 3, "the disabled entry is skipped");
        // The parsed controls come back as the initial controls...
        assert_eq!(backends[0].0.execution, ExecutionMethod::Asynchronous);
        assert_eq!(backends[0].0.selector.offset, 3);
        assert_eq!(backends[1].0.device, DeviceSpec::Host);
        // ...and the factory rebuilds the same back-end under whatever
        // controls a reconfiguration (or adaptive probe) asks for.
        let (initial, factory) = &backends[0];
        let rebuilt = factory(initial).unwrap();
        assert_eq!(rebuilt.name(), "binning");
        assert_eq!(rebuilt.controls(), initial);
        let moved = BackendControls { device: DeviceSpec::Explicit(2), ..*initial };
        let rebuilt = factory(&moved).unwrap();
        assert_eq!(rebuilt.controls().device, DeviceSpec::Explicit(2));
    }
}
