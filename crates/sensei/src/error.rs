//! Error type for the mediation layer.

use std::fmt;

/// Result alias for sensei operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the SENSEI core.
#[derive(Debug, Clone)]
pub enum Error {
    /// A requested mesh does not exist on the data adaptor.
    NoSuchMesh { name: String },
    /// A requested array does not exist on a mesh.
    NoSuchArray { mesh: String, array: String },
    /// The data model or memory resource failed.
    Hamr(hamr::Error),
    /// The simulated runtime failed.
    Device(devsim::Error),
    /// Run-time configuration problems.
    Config(String),
    /// XML parse failure in the run-time configuration.
    Xml(xmlcfg::Error),
    /// No factory registered for an analysis type.
    UnknownAnalysisType { type_name: String },
    /// The analysis back-end failed.
    Analysis(String),
    /// An operation was attempted on a finalized bridge or runner.
    Finalized,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoSuchMesh { name } => write!(f, "no mesh named '{name}'"),
            Error::NoSuchArray { mesh, array } => {
                write!(f, "mesh '{mesh}' has no array named '{array}'")
            }
            Error::Hamr(e) => write!(f, "memory resource error: {e}"),
            Error::Device(e) => write!(f, "device error: {e}"),
            Error::Config(m) => write!(f, "configuration error: {m}"),
            Error::Xml(e) => write!(f, "XML error: {e}"),
            Error::UnknownAnalysisType { type_name } => {
                write!(f, "no analysis back-end registered for type '{type_name}'")
            }
            Error::Analysis(m) => write!(f, "analysis error: {m}"),
            Error::Finalized => write!(f, "operation on a finalized object"),
        }
    }
}

impl std::error::Error for Error {}

impl From<hamr::Error> for Error {
    fn from(e: hamr::Error) -> Self {
        Error::Hamr(e)
    }
}

impl From<devsim::Error> for Error {
    fn from(e: devsim::Error) -> Self {
        Error::Device(e)
    }
}

impl From<xmlcfg::Error> for Error {
    fn from(e: xmlcfg::Error) -> Self {
        Error::Xml(e)
    }
}
