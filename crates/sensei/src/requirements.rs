//! Data requirements: what a back-end needs copied into its snapshot.
//!
//! The asynchronous execution method deep-copies the simulation's
//! published state (§4.3). Copying *everything* is correct but wasteful
//! when a back-end only reads a few arrays — the deep copy's memory
//! footprint and transfer time scale with what is copied, not with what
//! is used. [`DataRequirements`] lets a back-end declare the meshes,
//! associations, and array names it actually reads; the bridge takes the
//! union over the back-ends due this iteration and captures a snapshot
//! containing exactly that.

use std::collections::{BTreeMap, BTreeSet};

use svtk::FieldAssociation;

/// Mesh-name key matching every published mesh (back-ends like the
/// histogram operate on "the first mesh" and cannot name it statically).
pub const ANY_MESH: &str = "*";

/// Which arrays of one association a back-end needs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ArraySelection {
    /// Every array of the association.
    #[default]
    All,
    /// Only the named arrays.
    Named(BTreeSet<String>),
}

impl ArraySelection {
    /// True when `name` is selected.
    pub fn contains(&self, name: &str) -> bool {
        match self {
            ArraySelection::All => true,
            ArraySelection::Named(names) => names.contains(name),
        }
    }

    /// Widen `self` to also cover everything `other` selects.
    fn union_with(&mut self, other: &ArraySelection) {
        match (&mut *self, other) {
            (ArraySelection::All, _) => {}
            (_, ArraySelection::All) => *self = ArraySelection::All,
            (ArraySelection::Named(mine), ArraySelection::Named(theirs)) => {
                mine.extend(theirs.iter().cloned());
            }
        }
    }
}

/// Per-mesh requirements: an optional selection per association
/// (`None` = no arrays of that association are needed).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MeshRequirements {
    point: Option<ArraySelection>,
    cell: Option<ArraySelection>,
    field: Option<ArraySelection>,
}

impl MeshRequirements {
    /// Everything on the mesh.
    pub fn all() -> Self {
        MeshRequirements {
            point: Some(ArraySelection::All),
            cell: Some(ArraySelection::All),
            field: Some(ArraySelection::All),
        }
    }

    /// The selection for `assoc`, if any arrays of it are needed at all.
    pub fn selection(&self, assoc: FieldAssociation) -> Option<&ArraySelection> {
        match assoc {
            FieldAssociation::Point => self.point.as_ref(),
            FieldAssociation::Cell => self.cell.as_ref(),
            FieldAssociation::Field => self.field.as_ref(),
        }
    }

    /// True when the array `name` with association `assoc` is needed.
    pub fn wants(&self, assoc: FieldAssociation, name: &str) -> bool {
        self.selection(assoc).is_some_and(|s| s.contains(name))
    }

    fn slot(&mut self, assoc: FieldAssociation) -> &mut Option<ArraySelection> {
        match assoc {
            FieldAssociation::Point => &mut self.point,
            FieldAssociation::Cell => &mut self.cell,
            FieldAssociation::Field => &mut self.field,
        }
    }

    fn add_named(&mut self, assoc: FieldAssociation, names: impl IntoIterator<Item = String>) {
        let addition = ArraySelection::Named(names.into_iter().collect());
        match self.slot(assoc) {
            Some(sel) => sel.union_with(&addition),
            slot @ None => *slot = Some(addition),
        }
    }

    fn union_with(&mut self, other: &MeshRequirements) {
        for assoc in [FieldAssociation::Point, FieldAssociation::Cell, FieldAssociation::Field] {
            if let Some(theirs) = other.selection(assoc) {
                match self.slot(assoc) {
                    Some(mine) => mine.union_with(theirs),
                    slot @ None => *slot = Some(theirs.clone()),
                }
            }
        }
    }
}

/// What a back-end needs from the simulation's published state:
/// everything (the safe default), or a subset keyed by mesh name
/// (the key [`ANY_MESH`] applies to every mesh).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DataRequirements {
    /// Every array of every mesh — the behaviour of a plain deep copy.
    #[default]
    All,
    /// Only the listed meshes/arrays. Meshes absent from the map are not
    /// captured at all; an empty map means no data is needed.
    Subset(BTreeMap<String, MeshRequirements>),
}

impl DataRequirements {
    /// Everything (a full deep copy).
    pub fn all() -> Self {
        DataRequirements::All
    }

    /// Nothing — build the subset up with [`with_arrays`](Self::with_arrays)
    /// / [`with_mesh`](Self::with_mesh).
    pub fn none() -> Self {
        DataRequirements::Subset(BTreeMap::new())
    }

    /// Also require the named `arrays` with association `assoc` on `mesh`
    /// (or on every mesh, if `mesh` is [`ANY_MESH`]). No-op on
    /// [`All`](Self::All), which already covers them.
    pub fn with_arrays<S: Into<String>>(
        mut self,
        mesh: &str,
        assoc: FieldAssociation,
        arrays: impl IntoIterator<Item = S>,
    ) -> Self {
        if let DataRequirements::Subset(meshes) = &mut self {
            meshes
                .entry(mesh.to_string())
                .or_default()
                .add_named(assoc, arrays.into_iter().map(Into::into));
        }
        self
    }

    /// Also require the named `arrays` whatever their association — for
    /// back-ends that look an array up by name across point and cell data.
    pub fn with_named<S: Into<String> + Clone>(
        self,
        mesh: &str,
        arrays: impl IntoIterator<Item = S>,
    ) -> Self {
        let names: Vec<String> = arrays.into_iter().map(Into::into).collect();
        self.with_arrays(mesh, FieldAssociation::Point, names.iter().cloned()).with_arrays(
            mesh,
            FieldAssociation::Cell,
            names,
        )
    }

    /// Also require every array of `mesh`.
    pub fn with_mesh(mut self, mesh: &str) -> Self {
        if let DataRequirements::Subset(meshes) = &mut self {
            meshes.insert(mesh.to_string(), MeshRequirements::all());
        }
        self
    }

    /// The effective requirements for the mesh named `name`, folding in
    /// an [`ANY_MESH`] entry; `None` when the mesh is not needed.
    pub fn mesh_requirements(&self, name: &str) -> Option<MeshRequirements> {
        match self {
            DataRequirements::All => Some(MeshRequirements::all()),
            DataRequirements::Subset(meshes) => {
                let named = meshes.get(name);
                let any = meshes.get(ANY_MESH);
                match (named, any) {
                    (None, None) => None,
                    (Some(m), None) | (None, Some(m)) => Some(m.clone()),
                    (Some(m), Some(a)) => {
                        let mut merged = m.clone();
                        merged.union_with(a);
                        Some(merged)
                    }
                }
            }
        }
    }

    /// Widen `self` to also cover everything `other` requires. The bridge
    /// uses this to capture one snapshot serving every due back-end.
    pub fn union_with(&mut self, other: &DataRequirements) {
        match (&mut *self, other) {
            (DataRequirements::All, _) => {}
            (_, DataRequirements::All) => *self = DataRequirements::All,
            (DataRequirements::Subset(mine), DataRequirements::Subset(theirs)) => {
                for (mesh, req) in theirs {
                    match mine.get_mut(mesh) {
                        Some(m) => m.union_with(req),
                        None => {
                            mine.insert(mesh.clone(), req.clone());
                        }
                    }
                }
            }
        }
    }

    /// True when nothing at all is required (no snapshot needed).
    pub fn is_empty(&self) -> bool {
        matches!(self, DataRequirements::Subset(m) if m.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_requires_everything() {
        let req = DataRequirements::default();
        let m = req.mesh_requirements("anything").unwrap();
        assert!(m.wants(FieldAssociation::Point, "x"));
        assert!(m.wants(FieldAssociation::Cell, "density"));
        assert!(!req.is_empty());
    }

    #[test]
    fn subset_selects_exactly_the_named_arrays() {
        let req =
            DataRequirements::none().with_arrays("bodies", FieldAssociation::Point, ["x", "y"]);
        let m = req.mesh_requirements("bodies").unwrap();
        assert!(m.wants(FieldAssociation::Point, "x"));
        assert!(!m.wants(FieldAssociation::Point, "mass"));
        assert!(!m.wants(FieldAssociation::Cell, "x"), "cell data not requested");
        assert!(req.mesh_requirements("grid").is_none(), "unlisted mesh skipped");
    }

    #[test]
    fn any_mesh_applies_everywhere_and_merges_with_named() {
        let req = DataRequirements::none().with_named(ANY_MESH, ["mass"]).with_arrays(
            "bodies",
            FieldAssociation::Point,
            ["x"],
        );
        let grid = req.mesh_requirements("grid").unwrap();
        assert!(grid.wants(FieldAssociation::Point, "mass"));
        assert!(grid.wants(FieldAssociation::Cell, "mass"));
        assert!(!grid.wants(FieldAssociation::Point, "x"));
        let bodies = req.mesh_requirements("bodies").unwrap();
        assert!(bodies.wants(FieldAssociation::Point, "x"));
        assert!(bodies.wants(FieldAssociation::Point, "mass"));
    }

    #[test]
    fn union_widens_and_all_absorbs() {
        let mut a = DataRequirements::none().with_arrays("m", FieldAssociation::Point, ["x"]);
        let b = DataRequirements::none().with_arrays("m", FieldAssociation::Point, ["y"]);
        a.union_with(&b);
        let m = a.mesh_requirements("m").unwrap();
        assert!(m.wants(FieldAssociation::Point, "x") && m.wants(FieldAssociation::Point, "y"));

        a.union_with(&DataRequirements::All);
        assert_eq!(a, DataRequirements::All);

        let mut c = DataRequirements::All;
        c.union_with(&DataRequirements::none());
        assert_eq!(c, DataRequirements::All);
    }

    #[test]
    fn whole_mesh_requirement_covers_every_association() {
        let req = DataRequirements::none().with_mesh("grid");
        let m = req.mesh_requirements("grid").unwrap();
        assert!(m.wants(FieldAssociation::Point, "anything"));
        assert!(m.wants(FieldAssociation::Cell, "anything"));
        assert!(req.mesh_requirements("other").is_none());
    }

    #[test]
    fn none_is_empty_until_something_is_added() {
        assert!(DataRequirements::none().is_empty());
        assert!(!DataRequirements::none().with_mesh("m").is_empty());
    }
}
