//! A bounded hand-off queue with configurable overflow behaviour.
//!
//! The original asynchronous runner used an unbounded channel: a solver
//! that outruns its in situ consumer accumulates snapshots without limit,
//! and each queued snapshot holds a full deep copy of the published
//! arrays — exactly the memory-footprint growth §2 warns about. The
//! bounded queue caps the number of in-flight snapshots
//! (`queue_depth` in [`crate::BackendControls`]) and lets the user choose
//! what submission does when the cap is reached.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// What [`BoundedSender::send`] does when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Block the producer until the consumer frees a slot. Backpressure:
    /// the simulation slows down rather than growing the footprint.
    #[default]
    Block,
    /// Evict the oldest queued item to make room. The consumer always
    /// sees the freshest data; intermediate snapshots may be skipped.
    DropOldest,
    /// Fail the submission with [`SendError::Full`].
    Error,
}

impl OverflowPolicy {
    /// The XML spelling used in run-time configuration.
    pub fn name(&self) -> &'static str {
        match self {
            OverflowPolicy::Block => "block",
            OverflowPolicy::DropOldest => "drop_oldest",
            OverflowPolicy::Error => "error",
        }
    }

    /// Parse the XML spelling (a few aliases accepted).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "block" | "backpressure" => Some(OverflowPolicy::Block),
            "drop_oldest" | "drop-oldest" | "drop" => Some(OverflowPolicy::DropOldest),
            "error" | "fail" => Some(OverflowPolicy::Error),
            _ => None,
        }
    }
}

/// Why a send failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The queue is full and the policy is [`OverflowPolicy::Error`].
    Full,
    /// The receiver is gone (the worker exited or panicked).
    Disconnected,
    /// The queue was closed (bridge finalize) — including out from under
    /// a producer blocked under [`OverflowPolicy::Block`].
    Closed,
}

/// A successful send.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SendOk {
    /// Items evicted to make room (only under
    /// [`OverflowPolicy::DropOldest`]).
    pub evicted: u64,
}

struct State<T> {
    buf: VecDeque<T>,
    /// Producer closed the queue: the consumer drains and exits.
    closed: bool,
    /// Consumer is gone: sends fail immediately.
    receiver_dead: bool,
    /// Total items evicted over the queue's lifetime.
    evicted: u64,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    policy: OverflowPolicy,
    not_full: Condvar,
    not_empty: Condvar,
}

/// Producer half of the queue. Cloneable: a second handle can observe or
/// close the queue (e.g. a finalizer) while another producer is blocked
/// in [`BoundedSender::send`].
pub struct BoundedSender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for BoundedSender<T> {
    fn clone(&self) -> Self {
        BoundedSender { shared: self.shared.clone() }
    }
}

/// Consumer half of the queue. Dropping it (including by a panicking
/// worker thread unwinding) wakes and fails any blocked or future sends.
pub struct BoundedReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a queue holding at most `capacity` items (minimum 1).
pub fn bounded<T>(
    capacity: usize,
    policy: OverflowPolicy,
) -> (BoundedSender<T>, BoundedReceiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            buf: VecDeque::new(),
            closed: false,
            receiver_dead: false,
            evicted: 0,
        }),
        capacity: capacity.max(1),
        policy,
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (BoundedSender { shared: shared.clone() }, BoundedReceiver { shared })
}

impl<T> BoundedSender<T> {
    /// Enqueue `item`, applying the overflow policy when full.
    pub fn send(&self, item: T) -> Result<SendOk, SendError> {
        let mut st = self.shared.state.lock();
        loop {
            if st.receiver_dead {
                return Err(SendError::Disconnected);
            }
            // A closed queue rejects new items — critically, a producer
            // parked in the Block arm below must re-check this on wake-up,
            // or a close() racing a blocked send leaves the producer
            // waiting on a condvar nobody will ever signal again.
            if st.closed {
                return Err(SendError::Closed);
            }
            if st.buf.len() < self.shared.capacity {
                st.buf.push_back(item);
                self.shared.not_empty.notify_one();
                return Ok(SendOk::default());
            }
            match self.shared.policy {
                OverflowPolicy::Block => self.shared.not_full.wait(&mut st),
                OverflowPolicy::DropOldest => {
                    st.buf.pop_front();
                    st.evicted += 1;
                    st.buf.push_back(item);
                    self.shared.not_empty.notify_one();
                    return Ok(SendOk { evicted: 1 });
                }
                OverflowPolicy::Error => return Err(SendError::Full),
            }
        }
    }

    /// Close the queue: the consumer drains what is buffered, then
    /// `recv` returns `None`. Future sends — and sends currently blocked
    /// on a full queue — fail with [`SendError::Closed`].
    pub fn close(&self) {
        self.shared.state.lock().closed = true;
        self.shared.not_empty.notify_all();
        // Producers blocked in send() wait on not_full; without this they
        // would sleep through the close and hang bridge finalize.
        self.shared.not_full.notify_all();
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.shared.state.lock().buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total items evicted by [`OverflowPolicy::DropOldest`].
    pub fn evicted(&self) -> u64 {
        self.shared.state.lock().evicted
    }
}

impl<T> BoundedReceiver<T> {
    /// Dequeue the next item, blocking while the queue is open and empty;
    /// `None` once the queue is closed and drained.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.shared.state.lock();
        loop {
            if let Some(item) = st.buf.pop_front() {
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            self.shared.not_empty.wait(&mut st);
        }
    }

    /// Dequeue the next item without blocking: `Some(item)` when one is
    /// buffered, `None` when the queue is currently empty (open *or*
    /// closed — poll loops should stop on [`BoundedReceiver::is_closed`]).
    /// Lets one thread multiplex many queues (e.g. the serve layer's
    /// client pool polling thousands of sessions).
    pub fn try_recv(&self) -> Option<T> {
        let mut st = self.shared.state.lock();
        let item = st.buf.pop_front();
        if item.is_some() {
            self.shared.not_full.notify_one();
        }
        item
    }

    /// True once the queue is closed *and* fully drained — the poll-loop
    /// termination condition matching `recv() == None`.
    pub fn is_closed(&self) -> bool {
        let st = self.shared.state.lock();
        st.closed && st.buf.is_empty()
    }
}

impl<T> Drop for BoundedReceiver<T> {
    fn drop(&mut self) {
        self.shared.state.lock().receiver_dead = true;
        // Blocked producers must observe the death, not wait forever.
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn policy_names_roundtrip_and_aliases_parse() {
        for p in [OverflowPolicy::Block, OverflowPolicy::DropOldest, OverflowPolicy::Error] {
            assert_eq!(OverflowPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(OverflowPolicy::parse("DROP"), Some(OverflowPolicy::DropOldest));
        assert_eq!(OverflowPolicy::parse("fail"), Some(OverflowPolicy::Error));
        assert_eq!(OverflowPolicy::parse("yolo"), None);
    }

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = bounded(4, OverflowPolicy::Error);
        for i in 0..3 {
            tx.send(i).unwrap();
        }
        tx.close();
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None, "closed and drained");
    }

    #[test]
    fn error_policy_rejects_when_full() {
        let (tx, _rx) = bounded(2, OverflowPolicy::Error);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.send(3), Err(SendError::Full));
        assert_eq!(tx.len(), 2);
    }

    #[test]
    fn drop_oldest_evicts_the_head() {
        let (tx, rx) = bounded(2, OverflowPolicy::DropOldest);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.send(3), Ok(SendOk { evicted: 1 }));
        assert_eq!(tx.evicted(), 1);
        tx.close();
        assert_eq!(rx.recv(), Some(2), "1 was evicted");
        assert_eq!(rx.recv(), Some(3));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn block_policy_waits_for_the_consumer() {
        let (tx, rx) = bounded(1, OverflowPolicy::Block);
        tx.send(1).unwrap();
        let consumer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            let first = rx.recv();
            let second = rx.recv();
            (first, second, rx)
        });
        let t0 = std::time::Instant::now();
        tx.send(2).unwrap(); // must wait for the recv above
        assert!(t0.elapsed() >= Duration::from_millis(20), "send blocked until a slot freed");
        tx.close();
        let (first, second, _rx) = consumer.join().unwrap();
        assert_eq!((first, second), (Some(1), Some(2)));
    }

    #[test]
    fn close_wakes_and_fails_a_blocked_send() {
        // Regression: a producer parked in send() under Block used to
        // sleep through close() (only not_empty was notified and only
        // receiver_dead was re-checked), hanging bridge finalize.
        let (tx, rx) = bounded(1, OverflowPolicy::Block);
        tx.send(1).unwrap();
        let closer = tx.clone();
        let closer_thread = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            closer.close();
        });
        let t0 = std::time::Instant::now();
        assert_eq!(tx.send(2), Err(SendError::Closed), "blocked send must wake on close");
        assert!(t0.elapsed() >= Duration::from_millis(20), "send was actually blocked");
        closer_thread.join().unwrap();
        // The consumer still drains what was buffered before the close.
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn try_recv_never_blocks_and_tracks_close() {
        let (tx, rx) = bounded(2, OverflowPolicy::Block);
        assert_eq!(rx.try_recv(), None, "empty queue returns immediately");
        assert!(!rx.is_closed(), "open queue is not closed");
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Some(1));
        // try_recv frees a slot: a Block producer no longer waits.
        tx.send(3).unwrap();
        tx.close();
        assert!(!rx.is_closed(), "closed but not yet drained");
        assert_eq!(rx.try_recv(), Some(2));
        assert_eq!(rx.try_recv(), Some(3));
        assert_eq!(rx.try_recv(), None);
        assert!(rx.is_closed(), "closed and drained");
    }

    #[test]
    fn send_after_close_is_rejected() {
        let (tx, rx) = bounded(4, OverflowPolicy::Block);
        tx.send(1).unwrap();
        tx.close();
        assert_eq!(tx.send(2), Err(SendError::Closed), "closed queue takes no new items");
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn dead_receiver_fails_blocked_and_future_sends() {
        let (tx, rx) = bounded(1, OverflowPolicy::Block);
        tx.send(1).unwrap();
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            drop(rx);
        });
        assert_eq!(tx.send(2), Err(SendError::Disconnected), "blocked send wakes on death");
        assert_eq!(tx.send(3), Err(SendError::Disconnected));
        killer.join().unwrap();
    }
}
