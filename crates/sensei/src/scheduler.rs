//! Work-stealing executor for [`TaskGraph`]s (DESIGN.md §13).
//!
//! [`DagScheduler::run`] executes one step's task graph over every device
//! slot and stream of the node:
//!
//! * one worker thread per participating device (all devices whenever the
//!   graph contains an [`TaskSite::AnyDevice`] task — that is what makes
//!   stealing across devices possible), plus host workers when host tasks
//!   are present;
//! * each worker owns a deque; ready tasks are routed to their home /
//!   pinned / least-loaded worker, and an idle worker steals stealable
//!   tasks (`AnyDevice`, `Host`) from the *back* of other deques;
//! * coordinator tasks (collectives, `!Sync` planner state) run FIFO on
//!   the calling thread, which also polls [`devsim::Event`] gates and
//!   [`devsim::Stream::query`] for asynchronous stream errors;
//! * recovery policies apply **per task node**: `Retry` re-runs just the
//!   failed node, `SkipStep` cancels the remainder of the graph and
//!   reports [`DagOutcome::Skipped`], `Abort` fails the run.
//!
//! [`SchedulerCounters`] record tasks executed, steals, worker idle time
//! and the critical path (longest dependency chain of measured task
//! durations) so harnesses can assert the scheduler actually overlapped
//! work instead of trusting it.

use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use devsim::{Event, SimNode};
use parking_lot::{Condvar, Mutex};

use crate::counters::AnalysisCounters;
use crate::dag::{
    CoordRun, DeviceStreams, TaskBody, TaskCtx, TaskGraph, TaskId, TaskKind, TaskSite, WorkerRun,
};
use crate::error::{Error, Result};
use crate::recovery::{run_with_recovery, RecoveryPolicy};

/// How long an idle worker parks before re-checking the deques; also the
/// coordinator's event/stream polling period.
const IDLE_PARK: Duration = Duration::from_micros(200);

/// Cumulative counters of one scheduler (shared, lock-free).
#[derive(Debug, Default)]
pub struct SchedulerCounters {
    tasks: AtomicU64,
    steals: AtomicU64,
    idle_ns: AtomicU64,
    critical_path_ns: AtomicU64,
}

impl SchedulerCounters {
    /// Fresh zeroed counters behind an `Arc`.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn add_tasks(&self, n: u64) {
        self.tasks.fetch_add(n, Ordering::Relaxed);
    }

    fn add_steals(&self, n: u64) {
        self.steals.fetch_add(n, Ordering::Relaxed);
    }

    fn add_idle_ns(&self, n: u64) {
        self.idle_ns.fetch_add(n, Ordering::Relaxed);
    }

    fn add_critical_path_ns(&self, n: u64) {
        self.critical_path_ns.fetch_add(n, Ordering::Relaxed);
    }

    /// Consistent-enough point-in-time copy of all counters.
    pub fn snapshot(&self) -> SchedulerSnapshot {
        SchedulerSnapshot {
            tasks: self.tasks.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            idle_ns: self.idle_ns.load(Ordering::Relaxed),
            critical_path_ns: self.critical_path_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of [`SchedulerCounters`]; flows through profiler
/// CSVs and harness JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerSnapshot {
    /// Task nodes executed (all kinds, successful attempts only count 1).
    pub tasks: u64,
    /// Tasks taken from another worker's deque.
    pub steals: u64,
    /// Total worker time spent parked with no runnable task.
    pub idle_ns: u64,
    /// Sum over steps of the longest dependency chain of task durations.
    pub critical_path_ns: u64,
}

impl SchedulerSnapshot {
    /// Fold `other` into `self` (summing all fields).
    pub fn accumulate(&mut self, other: &SchedulerSnapshot) {
        self.tasks += other.tasks;
        self.steals += other.steals;
        self.idle_ns += other.idle_ns;
        self.critical_path_ns += other.critical_path_ns;
    }
}

/// How a graph run ended (errors are reported through `Result` instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DagOutcome {
    /// Every task executed.
    Completed,
    /// A `SkipStep` task node failed: the rest of the graph was cancelled
    /// and the step's outputs were dropped.
    Skipped,
}

/// Send + Sync metadata of one task, split off the (possibly `!Send`)
/// bodies so worker threads can share it.
struct Meta {
    kind: TaskKind,
    label: String,
    site: TaskSite,
    home: Option<usize>,
    cost: f64,
    policy: RecoveryPolicy,
    deps: Vec<TaskId>,
    wait_events: Vec<Event>,
}

/// Shared mutable run state.
struct RunState {
    pending: Vec<AtomicUsize>,
    dependents: Vec<Vec<TaskId>>,
    /// One deque per worker thread.
    queues: Vec<Mutex<VecDeque<TaskId>>>,
    /// Ready coordinator tasks (FIFO keeps collective order deterministic
    /// across ranks).
    coord_queue: Mutex<VecDeque<TaskId>>,
    /// Dep-satisfied tasks still waiting on event gates.
    gated: Mutex<Vec<TaskId>>,
    /// Accumulated routed cost per worker (fixed-point, for least-loaded).
    loads: Vec<AtomicU64>,
    dur_ns: Vec<AtomicU64>,
    done: AtomicUsize,
    cancelled: AtomicBool,
    skipped: AtomicBool,
    shutdown: AtomicBool,
    failed: Mutex<Option<Error>>,
    sleep: Mutex<()>,
    wake: Condvar,
}

impl RunState {
    fn fail(&self, err: Error) {
        self.failed.lock().get_or_insert(err);
        self.cancelled.store(true, Ordering::Release);
        self.wake.notify_all();
    }
}

/// Everything a worker thread needs, shared by reference.
struct Exec<'a, 's> {
    metas: &'a [Meta],
    bodies: &'a [Mutex<Option<WorkerRun<'s>>>],
    state: &'a RunState,
    /// Worker index -> owned device (`None` = host worker).
    workers: &'a [Option<usize>],
    /// Device id -> worker index.
    device_worker: &'a [Option<usize>],
    streams: &'a [Option<DeviceStreams>],
    acounters: &'a Arc<AnalysisCounters>,
    scounters: &'a Arc<SchedulerCounters>,
    backend: &'a str,
    rank: usize,
}

impl<'a, 's> Exec<'a, 's> {
    /// Can tasks at `site` be *stolen* by `thief`? (Pinned sites cannot.)
    fn stealable_by(&self, thief: usize, site: TaskSite) -> bool {
        matches!(
            (self.workers[thief], site),
            (Some(_), TaskSite::AnyDevice) | (None, TaskSite::Host)
        )
    }

    fn least_loaded(&self, device_class: bool) -> Option<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_some() == device_class)
            .min_by_key(|(w, _)| self.state.loads[*w].load(Ordering::Relaxed))
            .map(|(w, _)| w)
    }

    fn push_worker(&self, worker: usize, t: TaskId) {
        let cost = (self.metas[t].cost * 1000.0) as u64 + 1;
        self.state.loads[worker].fetch_add(cost, Ordering::Relaxed);
        self.state.queues[worker].lock().push_back(t);
    }

    /// Route a task whose deps and event gates are all satisfied.
    fn dispatch(&self, t: TaskId) {
        let m = &self.metas[t];
        match m.site {
            TaskSite::Coordinator => self.state.coord_queue.lock().push_back(t),
            TaskSite::Device(d) => match self.device_worker.get(d).copied().flatten() {
                Some(w) => self.push_worker(w, t),
                None => {
                    self.state.fail(Error::Analysis(format!(
                        "task '{}' pinned to unavailable device {d}",
                        m.label
                    )));
                    return;
                }
            },
            TaskSite::AnyDevice => {
                let w = m
                    .home
                    .and_then(|d| self.device_worker.get(d).copied().flatten())
                    .or_else(|| self.least_loaded(true));
                match w {
                    Some(w) => self.push_worker(w, t),
                    None => {
                        self.state.fail(Error::Analysis(format!(
                            "task '{}' needs a device worker but none exist",
                            m.label
                        )));
                        return;
                    }
                }
            }
            TaskSite::Host => match self.least_loaded(false) {
                Some(w) => self.push_worker(w, t),
                None => {
                    self.state.fail(Error::Analysis(format!(
                        "task '{}' needs a host worker but none exist",
                        m.label
                    )));
                    return;
                }
            },
        }
        self.state.wake.notify_all();
    }

    /// A task's dependencies are met: dispatch now or hold on event gates.
    fn on_ready(&self, t: TaskId) {
        if self.metas[t].wait_events.iter().all(|e| e.is_signaled()) {
            self.dispatch(t);
        } else {
            self.state.gated.lock().push(t);
        }
    }

    /// Promote event-gated tasks whose gates have signaled (coordinator).
    fn promote_gated(&self) {
        let mut promoted = Vec::new();
        {
            let mut g = self.state.gated.lock();
            let mut i = 0;
            while i < g.len() {
                if self.metas[g[i]].wait_events.iter().all(|e| e.is_signaled()) {
                    promoted.push(g.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        for t in promoted {
            self.dispatch(t);
        }
    }

    /// Poll provisioned streams for sticky asynchronous errors without
    /// blocking (coordinator, every parking period).
    fn poll_streams(&self) {
        for ds in self.streams.iter().flatten() {
            for stream in [&ds.compute, &ds.copy] {
                if let Err(e) = stream.query() {
                    self.state.fail(Error::Device(e));
                }
            }
        }
    }

    fn complete(&self, t: TaskId) {
        for &d in &self.state.dependents[t] {
            if self.state.pending[d].fetch_sub(1, Ordering::AcqRel) == 1
                && !self.state.cancelled.load(Ordering::Acquire)
            {
                self.on_ready(d);
            }
        }
        if self.state.done.fetch_add(1, Ordering::AcqRel) + 1 == self.metas.len() {
            self.state.wake.notify_all();
        }
    }

    /// Execute one task body under the node's recovery policy.
    fn execute(&self, t: TaskId, ctx: &TaskCtx, body: &mut dyn FnMut(&TaskCtx) -> Result<()>) {
        let m = &self.metas[t];
        let t0 = Instant::now();
        let outcome = match m.policy {
            RecoveryPolicy::SkipStep => match body(ctx) {
                Ok(()) => Ok(()),
                Err(_) => {
                    // The node failed but the policy degrades gracefully:
                    // drop the rest of the step, keep the solver running.
                    self.acounters.faults().add_injected(1);
                    self.acounters.faults().add_skipped(1);
                    self.state.skipped.store(true, Ordering::Release);
                    self.state.cancelled.store(true, Ordering::Release);
                    self.state.wake.notify_all();
                    Ok(())
                }
            },
            policy => {
                let label = format!("{}/{}:{}", self.backend, m.kind.name(), m.label);
                run_with_recovery(policy, self.acounters, &label, || body(ctx).map(|()| true))
                    .map(|_| ())
            }
        };
        self.state.dur_ns[t].store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.scounters.add_tasks(1);
        match outcome {
            Ok(()) => self.complete(t),
            Err(e) => self.state.fail(e),
        }
    }

    fn run_worker_task(&self, worker: usize, t: TaskId) {
        let ctx = TaskCtx { device: self.workers[worker], streams: self.streams };
        let mut body = self.bodies[t].lock().take().expect("worker task body present");
        self.execute(t, &ctx, &mut *body);
    }

    /// Can `worker` admit a kernel task right now? Kernel bodies only
    /// *submit* — they return long before the modeled kernel drains from
    /// the device — so admission is throttled on the worker's compute
    /// stream: while it is still busy, queued kernels stay in the deques
    /// where genuinely idle devices can steal them. Without this the home
    /// worker would enqueue the whole step onto one device in
    /// microseconds and stealing could never rebalance modeled time.
    fn admits_kernel(&self, worker: usize) -> bool {
        match self.workers[worker] {
            // Host kernel bodies run synchronously, self-throttling.
            None => true,
            Some(d) => {
                self.streams.get(d).and_then(|s| s.as_ref()).is_none_or(|ds| ds.compute.is_idle())
            }
        }
    }

    /// Pop the next runnable task for `worker`: own deque first, then
    /// steal from the back of other deques. Kernel tasks are skipped
    /// while the worker's own compute stream is saturated (see
    /// [`Exec::admits_kernel`]); non-kernel tasks (downloads on copy
    /// streams, fast coordinator-adjacent work) always flow.
    fn next_task(&self, worker: usize) -> Option<TaskId> {
        let admit = self.admits_kernel(worker);
        {
            let mut q = self.state.queues[worker].lock();
            for i in 0..q.len() {
                if admit || self.metas[q[i]].kind != TaskKind::Kernel {
                    return q.remove(i);
                }
            }
        }
        let n = self.state.queues.len();
        for off in 1..n {
            let victim = (worker + off) % n;
            let mut q = self.state.queues[victim].lock();
            for i in (0..q.len()).rev() {
                let m = &self.metas[q[i]];
                if self.stealable_by(worker, m.site) && (admit || m.kind != TaskKind::Kernel) {
                    let t = q.remove(i).expect("index in range");
                    self.scounters.add_steals(1);
                    return Some(t);
                }
            }
        }
        None
    }

    fn worker_loop(&self, worker: usize) {
        // Worker threads inherit the owning rank's fault-injection arming
        // so injected device faults target them like any analysis thread.
        let _arm = devsim::fault::arm(self.rank);
        loop {
            if self.state.shutdown.load(Ordering::Acquire)
                || self.state.cancelled.load(Ordering::Acquire)
            {
                return;
            }
            match self.next_task(worker) {
                Some(t) => self.run_worker_task(worker, t),
                None => {
                    let t0 = Instant::now();
                    let mut g = self.state.sleep.lock();
                    self.state.wake.wait_for(&mut g, IDLE_PARK);
                    drop(g);
                    self.scounters.add_idle_ns(t0.elapsed().as_nanos() as u64);
                }
            }
        }
    }
}

/// Work-stealing executor bound to one node and one rank.
///
/// The scheduler owns a lazily provisioned per-device stream pair
/// (compute + copy) reused across steps, and cumulative
/// [`SchedulerCounters`] shared with whoever created it (typically a
/// `DagEngine`, which surfaces them through the profiler).
pub struct DagScheduler {
    node: Arc<SimNode>,
    rank: usize,
    counters: Arc<SchedulerCounters>,
    device_streams: Vec<Option<DeviceStreams>>,
}

impl DagScheduler {
    /// A scheduler for `rank` on `node`, reporting into `counters`.
    pub fn new(node: Arc<SimNode>, rank: usize, counters: Arc<SchedulerCounters>) -> Self {
        let n = node.num_devices();
        DagScheduler { node, rank, counters, device_streams: vec![None; n] }
    }

    /// The counters this scheduler reports into.
    pub fn counters(&self) -> &Arc<SchedulerCounters> {
        &self.counters
    }

    /// The node this scheduler executes on.
    pub fn node(&self) -> &Arc<SimNode> {
        &self.node
    }

    /// The MPI rank this scheduler serves (fault-injection arming).
    pub fn rank(&self) -> usize {
        self.rank
    }

    fn ensure_streams(&mut self, device: usize) -> Result<()> {
        if self.device_streams.get(device).is_none() {
            return Err(Error::Analysis(format!("no such device {device} on this node")));
        }
        if self.device_streams[device].is_none() {
            let dev = self.node.device(device).map_err(Error::Device)?;
            self.device_streams[device] =
                Some(DeviceStreams { compute: dev.create_stream(), copy: dev.create_stream() });
        }
        Ok(())
    }

    /// Execute `graph` to completion, skip, or failure.
    pub fn run(&mut self, graph: TaskGraph<'_>) -> Result<DagOutcome> {
        let n = graph.len();
        if n == 0 {
            return Ok(DagOutcome::Completed);
        }
        let acounters = graph.counters().clone();
        let backend = graph.backend().to_string();

        // Split Send+Sync metadata off the bodies.
        let mut metas: Vec<Meta> = Vec::with_capacity(n);
        let mut coord_bodies: Vec<Option<CoordRun<'_>>> = Vec::with_capacity(n);
        let mut worker_bodies: Vec<Mutex<Option<WorkerRun<'_>>>> = Vec::with_capacity(n);
        for task in graph.tasks {
            let (coord, worker) = match task.body {
                Some(TaskBody::Coordinator(b)) => (Some(b), None),
                Some(TaskBody::Worker(b)) => (None, Some(b)),
                None => (None, None),
            };
            coord_bodies.push(coord);
            worker_bodies.push(Mutex::new(worker));
            metas.push(Meta {
                kind: task.kind,
                label: task.label,
                site: task.site,
                home: task.home,
                cost: task.cost,
                policy: task.policy,
                deps: task.deps,
                wait_events: task.wait_events,
            });
        }

        // Which devices participate? Any `AnyDevice` task recruits every
        // device on the node — that is what enables cross-device stealing.
        let mut devices: BTreeSet<usize> = BTreeSet::new();
        let mut any_device = false;
        let mut host_tasks = 0usize;
        for m in &metas {
            match m.site {
                TaskSite::Device(d) => {
                    devices.insert(d);
                }
                TaskSite::AnyDevice => {
                    any_device = true;
                    if let Some(h) = m.home {
                        devices.insert(h);
                    }
                }
                TaskSite::Host => host_tasks += 1,
                TaskSite::Coordinator => {}
            }
        }
        if any_device {
            for d in 0..self.node.num_devices() {
                devices.insert(d);
            }
        }
        for &d in &devices {
            self.ensure_streams(d)?;
        }

        // Worker layout: device workers first, then host workers.
        let mut workers: Vec<Option<usize>> = devices.iter().map(|&d| Some(d)).collect();
        let host_workers = host_tasks.min(2);
        workers.extend(std::iter::repeat_n(None, host_workers));
        let mut device_worker: Vec<Option<usize>> = vec![None; self.node.num_devices()];
        for (w, d) in devices.iter().enumerate() {
            device_worker[*d] = Some(w);
        }

        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (t, m) in metas.iter().enumerate() {
            for &d in &m.deps {
                dependents[d].push(t);
            }
        }
        let state = RunState {
            pending: metas.iter().map(|m| AtomicUsize::new(m.deps.len())).collect(),
            dependents,
            queues: workers.iter().map(|_| Mutex::new(VecDeque::new())).collect(),
            coord_queue: Mutex::new(VecDeque::new()),
            gated: Mutex::new(Vec::new()),
            loads: workers.iter().map(|_| AtomicU64::new(0)).collect(),
            dur_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
            done: AtomicUsize::new(0),
            cancelled: AtomicBool::new(false),
            skipped: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            failed: Mutex::new(None),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        };

        let exec = Exec {
            metas: &metas,
            bodies: &worker_bodies,
            state: &state,
            workers: &workers,
            device_worker: &device_worker,
            streams: &self.device_streams,
            acounters: &acounters,
            scounters: &self.counters,
            backend: &backend,
            rank: self.rank,
        };

        std::thread::scope(|scope| {
            for (w, owned) in workers.iter().enumerate() {
                let exec = &exec;
                std::thread::Builder::new()
                    .name(match owned {
                        Some(d) => format!("sensei-dag-d{d}"),
                        None => format!("sensei-dag-h{w}"),
                    })
                    .spawn_scoped(scope, move || exec.worker_loop(w))
                    .expect("spawn dag worker");
            }

            // Seed the roots, then run the coordinator loop on this thread.
            for (t, m) in metas.iter().enumerate() {
                if m.deps.is_empty() {
                    exec.on_ready(t);
                }
            }
            loop {
                if state.done.load(Ordering::Acquire) == n
                    || state.cancelled.load(Ordering::Acquire)
                {
                    break;
                }
                exec.promote_gated();
                exec.poll_streams();
                let next = state.coord_queue.lock().pop_front();
                match next {
                    Some(t) => {
                        let ctx = TaskCtx { device: None, streams: &self.device_streams };
                        let mut body =
                            coord_bodies[t].take().expect("coordinator task body present");
                        exec.execute(t, &ctx, &mut *body);
                    }
                    None => {
                        let mut g = state.sleep.lock();
                        state.wake.wait_for(&mut g, IDLE_PARK);
                    }
                }
            }
            state.shutdown.store(true, Ordering::Release);
            state.wake.notify_all();
        });

        // Quiesce + harvest: a blocking synchronize on every provisioned
        // stream both drains in-flight work and takes sticky errors.
        let mut sync_err: Option<Error> = None;
        for ds in self.device_streams.iter().flatten() {
            for stream in [&ds.compute, &ds.copy] {
                if let Err(e) = stream.synchronize() {
                    sync_err.get_or_insert(Error::Device(e));
                }
            }
        }

        if let Some(err) = state.failed.into_inner() {
            return Err(err);
        }
        if state.skipped.load(Ordering::Acquire) {
            // The step was dropped; stream errors from its cancelled tail
            // were harvested above and die with it.
            return Ok(DagOutcome::Skipped);
        }
        if let Some(err) = sync_err {
            return Err(err);
        }

        // Critical path: longest chain of measured task durations along
        // dependency edges (ids are topological, so one forward pass).
        let mut cp = vec![0u64; n];
        for t in 0..n {
            let longest_dep = metas[t].deps.iter().map(|&d| cp[d]).max().unwrap_or(0);
            cp[t] = longest_dep + state.dur_ns[t].load(Ordering::Relaxed);
        }
        self.counters.add_critical_path_ns(cp.into_iter().max().unwrap_or(0));
        Ok(DagOutcome::Completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::TaskGraph;
    use devsim::NodeConfig;
    use std::sync::atomic::AtomicU32;

    fn sched_on(devices: usize) -> DagScheduler {
        let node = SimNode::new(NodeConfig::fast_test(devices.max(1)));
        DagScheduler::new(node, 0, SchedulerCounters::new())
    }

    fn graph() -> TaskGraph<'static> {
        TaskGraph::new("test", AnalysisCounters::new(), RecoveryPolicy::Abort)
    }

    #[test]
    fn empty_graph_completes_immediately() {
        let mut s = sched_on(1);
        assert_eq!(s.run(graph()).unwrap(), DagOutcome::Completed);
        assert_eq!(s.counters().snapshot().tasks, 0);
    }

    #[test]
    fn dependency_order_is_respected_across_sites() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut s = sched_on(2);
        let mut g = graph();
        let mark = |order: &Arc<Mutex<Vec<u32>>>, v: u32| {
            let order = order.clone();
            move |_: &TaskCtx<'_>| {
                order.lock().push(v);
                Ok(())
            }
        };
        let a = g.add_coordinator_task(TaskKind::Fetch, "a", mark(&order, 0));
        let b = g.add_worker_task(TaskKind::Kernel, "b", TaskSite::AnyDevice, mark(&order, 1));
        let c = g.add_worker_task(TaskKind::Kernel, "c", TaskSite::AnyDevice, mark(&order, 2));
        let d = g.add_coordinator_task(TaskKind::Reduce, "d", mark(&order, 3));
        g.add_dep(b, a);
        g.add_dep(c, a);
        g.add_dep(d, b);
        g.add_dep(d, c);
        assert_eq!(s.run(g).unwrap(), DagOutcome::Completed);
        let seen = order.lock().clone();
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0], 0);
        assert_eq!(seen[3], 3);
        assert_eq!(s.counters().snapshot().tasks, 4);
        assert!(s.counters().snapshot().critical_path_ns > 0);
    }

    #[test]
    fn idle_workers_steal_ready_tasks_from_loaded_deques() {
        // All kernels homed on device 0 of a 4-device node; each body
        // parks ~2 ms so device 0 cannot drain them alone before the
        // other workers wake up and steal.
        let mut s = sched_on(4);
        let mut g = graph();
        let seen_devices = Arc::new(Mutex::new(BTreeSet::new()));
        let root = g.add_coordinator_task(TaskKind::Fetch, "root", |_| Ok(()));
        for i in 0..16 {
            let seen = seen_devices.clone();
            let k = g.add_worker_task(
                TaskKind::Kernel,
                format!("k{i}"),
                TaskSite::AnyDevice,
                move |ctx| {
                    seen.lock().insert(ctx.device().expect("device worker"));
                    std::thread::sleep(Duration::from_millis(2));
                    Ok(())
                },
            );
            g.set_home(k, 0);
            g.add_dep(k, root);
        }
        assert_eq!(s.run(g).unwrap(), DagOutcome::Completed);
        let snap = s.counters().snapshot();
        assert_eq!(snap.tasks, 17);
        assert!(snap.steals > 0, "expected cross-device steals, got {snap:?}");
        assert!(seen_devices.lock().len() > 1, "work should spread past device 0");
        assert!(snap.idle_ns > 0, "some worker must have parked");
    }

    #[test]
    fn pinned_device_tasks_are_never_stolen() {
        let mut s = sched_on(3);
        let mut g = graph();
        let ok = Arc::new(AtomicBool::new(true));
        for i in 0..9 {
            let pin = i % 3;
            let ok = ok.clone();
            g.add_worker_task(
                TaskKind::Kernel,
                format!("p{i}"),
                TaskSite::Device(pin),
                move |ctx| {
                    if ctx.device() != Some(pin) {
                        ok.store(false, Ordering::Relaxed);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                    Ok(())
                },
            );
        }
        assert_eq!(s.run(g).unwrap(), DagOutcome::Completed);
        assert!(ok.load(Ordering::Relaxed), "a pinned task ran on the wrong device");
        assert_eq!(s.counters().snapshot().steals, 0);
    }

    #[test]
    fn event_gates_hold_tasks_until_signaled() {
        let mut s = sched_on(1);
        let mut g = graph();
        let gate = Event::new();
        let fired = Arc::new(AtomicBool::new(false));
        let root = {
            let gate = gate.clone();
            g.add_worker_task(TaskKind::Kernel, "signaler", TaskSite::AnyDevice, move |_| {
                std::thread::sleep(Duration::from_millis(2));
                gate.signal();
                Ok(())
            })
        };
        let gated = {
            let fired = fired.clone();
            let gate = gate.clone();
            g.add_coordinator_task(TaskKind::Reduce, "gated", move |_| {
                assert!(gate.is_signaled(), "gate must be signaled before the task runs");
                fired.store(true, Ordering::Relaxed);
                Ok(())
            })
        };
        let _ = root;
        g.gate_on_event(gated, gate.clone());
        assert_eq!(s.run(g).unwrap(), DagOutcome::Completed);
        assert!(fired.load(Ordering::Relaxed));
    }

    #[test]
    fn abort_policy_fails_the_run_and_cancels_the_tail() {
        let mut s = sched_on(1);
        let counters = AnalysisCounters::new();
        let mut g = TaskGraph::new("t", counters.clone(), RecoveryPolicy::Abort);
        let ran_tail = Arc::new(AtomicBool::new(false));
        let bad = g.add_worker_task(TaskKind::Kernel, "bad", TaskSite::AnyDevice, |_| {
            Err(Error::Analysis("boom".into()))
        });
        let tail = {
            let ran = ran_tail.clone();
            g.add_coordinator_task(TaskKind::Publish, "tail", move |_| {
                ran.store(true, Ordering::Relaxed);
                Ok(())
            })
        };
        g.add_dep(tail, bad);
        assert!(s.run(g).is_err());
        assert!(!ran_tail.load(Ordering::Relaxed), "dependents of a failed node must not run");
        let f = counters.snapshot().faults;
        assert_eq!((f.injected, f.aborted), (1, 1));
    }

    #[test]
    fn skip_step_cancels_the_graph_but_reports_skipped() {
        let mut s = sched_on(1);
        let counters = AnalysisCounters::new();
        let mut g = TaskGraph::new("t", counters.clone(), RecoveryPolicy::SkipStep);
        let ran_tail = Arc::new(AtomicBool::new(false));
        let bad = g.add_worker_task(TaskKind::Kernel, "bad", TaskSite::AnyDevice, |_| {
            Err(Error::Analysis("boom".into()))
        });
        let tail = {
            let ran = ran_tail.clone();
            g.add_coordinator_task(TaskKind::Publish, "tail", move |_| {
                ran.store(true, Ordering::Relaxed);
                Ok(())
            })
        };
        g.add_dep(tail, bad);
        assert_eq!(s.run(g).unwrap(), DagOutcome::Skipped);
        assert!(!ran_tail.load(Ordering::Relaxed), "skipped steps drop their tail");
        let f = counters.snapshot().faults;
        assert_eq!((f.injected, f.skipped, f.aborted), (1, 1, 0));
    }

    #[test]
    fn retry_policy_reruns_only_the_failed_node() {
        let mut s = sched_on(1);
        let counters = AnalysisCounters::new();
        let mut g = TaskGraph::new(
            "t",
            counters.clone(),
            RecoveryPolicy::Retry { max_retries: 3, backoff_ms: 0 },
        );
        let attempts = Arc::new(AtomicU32::new(0));
        let sibling_runs = Arc::new(AtomicU32::new(0));
        {
            let attempts = attempts.clone();
            g.add_worker_task(TaskKind::Kernel, "flaky", TaskSite::AnyDevice, move |_| {
                if attempts.fetch_add(1, Ordering::Relaxed) < 2 {
                    Err(Error::Analysis("flaky".into()))
                } else {
                    Ok(())
                }
            });
        }
        {
            let runs = sibling_runs.clone();
            g.add_worker_task(TaskKind::Kernel, "solid", TaskSite::AnyDevice, move |_| {
                runs.fetch_add(1, Ordering::Relaxed);
                Ok(())
            });
        }
        assert_eq!(s.run(g).unwrap(), DagOutcome::Completed);
        assert_eq!(attempts.load(Ordering::Relaxed), 3, "two failures + the recovery");
        assert_eq!(sibling_runs.load(Ordering::Relaxed), 1, "siblings run exactly once");
        let f = counters.snapshot().faults;
        assert_eq!((f.injected, f.retried, f.recovered), (1, 2, 1));
    }

    #[test]
    fn host_tasks_run_on_host_workers() {
        let mut s = sched_on(1);
        let mut g = graph();
        let ok = Arc::new(AtomicBool::new(false));
        {
            let ok = ok.clone();
            g.add_worker_task(TaskKind::Kernel, "host-pass", TaskSite::Host, move |ctx| {
                if ctx.device().is_none() {
                    ok.store(true, Ordering::Relaxed);
                }
                Ok(())
            });
        }
        assert_eq!(s.run(g).unwrap(), DagOutcome::Completed);
        assert!(ok.load(Ordering::Relaxed), "host task must see no owned device");
    }
}
