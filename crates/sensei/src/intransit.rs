//! In-transit execution: M simulation ranks forward their data to N
//! dedicated analysis ranks for processing.
//!
//! Besides running analyses *in situ* (sharing the simulation's
//! resources), SENSEI supports *in transit* processing, where data moves
//! off the simulation's ranks to a separate set of endpoints (the
//! M-to-N redistribution of Loring et al., EGPGV 2020 — reference \[13\]
//! of the paper). This module provides the minimal, faithful version of
//! that capability on top of `minimpi`:
//!
//! * [`partition`] splits the world into a simulation group and an
//!   analysis group (the paper's placement question, taken off-node);
//! * [`TransitSender`] is an [`AnalysisAdaptor`] attached to the
//!   simulation-side bridge: each execute serializes the published mesh
//!   and ships it to the owning analysis rank (producer `p` feeds
//!   consumer `p mod N`);
//! * [`serve_analysis`] is the analysis-rank event loop: it assembles
//!   each step's blocks from its producers, exposes them through a
//!   [`DataAdaptor`], and drives ordinary back-ends — the same
//!   back-ends that run in situ run in transit unchanged.

use std::collections::BTreeMap;
use std::sync::Arc;

use devsim::SimNode;
use minimpi::Comm;
use svtk::{DataObject, MultiBlock};

use crate::adaptor::{AnalysisAdaptor, ArrayMetadata, DataAdaptor, ExecContext, MeshMetadata};
use crate::controls::BackendControls;
use crate::error::{Error, Result};
use crate::payload::StepPayload;

/// Message tag reserved for in-transit traffic.
const TRANSIT_TAG: u64 = 0x5e4e5e1;

/// One rank's role after [`partition`].
pub enum Role {
    /// A simulation rank, with the simulation sub-communicator.
    Simulation(Comm),
    /// An analysis rank, with the analysis sub-communicator.
    Analysis(Comm),
}

/// Split the world: the last `analysis_ranks` ranks become analysis
/// endpoints, the rest run the simulation. Collective.
///
/// # Panics
/// Panics unless `0 < analysis_ranks < world.size()`.
pub fn partition(world: &Comm, analysis_ranks: usize) -> Role {
    assert!(
        analysis_ranks > 0 && analysis_ranks < world.size(),
        "need at least one simulation and one analysis rank"
    );
    let sim_ranks = world.size() - analysis_ranks;
    let is_analysis = world.rank() >= sim_ranks;
    let sub = world.split(u64::from(is_analysis), world.rank() as u64);
    if is_analysis {
        Role::Analysis(sub)
    } else {
        Role::Simulation(sub)
    }
}

/// The analysis world-rank that consumes data from simulation world-rank
/// `producer` (the M-to-N mapping `p -> sim_ranks + (p mod N)`).
pub fn consumer_of(producer: usize, sim_ranks: usize, analysis_ranks: usize) -> usize {
    sim_ranks + producer % analysis_ranks
}

/// The simulation world-ranks feeding analysis world-rank `consumer`.
pub fn producers_of(consumer: usize, sim_ranks: usize, analysis_ranks: usize) -> Vec<usize> {
    (0..sim_ranks).filter(|&p| consumer_of(p, sim_ranks, analysis_ranks) == consumer).collect()
}

enum TransitMsg {
    Step(StepPayload),
    Done,
}

/// The simulation-side forwarder: an analysis back-end whose "analysis"
/// is shipping the data to an analysis rank.
///
/// Attach it to the bridge like any back-end; it honours the shared
/// [`BackendControls`] (e.g. `frequency`). Data is downloaded to the
/// host before sending — in transit always pays the movement the paper's
/// zero-copy in situ path avoids, which is exactly the trade-off between
/// the two modes.
pub struct TransitSender {
    controls: BackendControls,
    world: Comm,
    mesh: String,
    consumer: usize,
}

impl TransitSender {
    /// A sender forwarding `mesh`. `world` is the world communicator (or
    /// a duplicate); `sim_ranks`/`analysis_ranks` describe the partition.
    pub fn new(world: Comm, mesh: impl Into<String>, analysis_ranks: usize) -> Self {
        let sim_ranks = world.size() - analysis_ranks;
        let consumer = consumer_of(world.rank(), sim_ranks, analysis_ranks);
        TransitSender { controls: BackendControls::default(), world, mesh: mesh.into(), consumer }
    }

    fn serialize(&self, data: &dyn DataAdaptor) -> Result<StepPayload> {
        StepPayload::from_data(data, &self.mesh)
    }
}

impl AnalysisAdaptor for TransitSender {
    fn name(&self) -> &str {
        "in_transit_sender"
    }

    fn controls(&self) -> &BackendControls {
        &self.controls
    }

    fn controls_mut(&mut self) -> &mut BackendControls {
        &mut self.controls
    }

    fn execute(&mut self, data: &dyn DataAdaptor, _ctx: &ExecContext<'_>) -> Result<bool> {
        let payload = self.serialize(data)?;
        self.world
            .send(self.consumer, TRANSIT_TAG, TransitMsg::Step(payload))
            .map_err(|e| Error::Analysis(format!("in transit send: {e}")))?;
        Ok(true)
    }

    fn finalize(&mut self, _ctx: &ExecContext<'_>) -> Result<()> {
        self.world
            .send(self.consumer, TRANSIT_TAG, TransitMsg::Done)
            .map_err(|e| Error::Analysis(format!("in transit shutdown: {e}")))
    }
}

/// A [`DataAdaptor`] over the blocks one analysis rank assembled for one
/// step.
struct ReceivedAdaptor {
    mesh: String,
    blocks: MultiBlock,
    step: u64,
    time: f64,
}

impl DataAdaptor for ReceivedAdaptor {
    fn num_meshes(&self) -> usize {
        1
    }

    fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
        let arrays = self
            .blocks
            .local_blocks()
            .next()
            .and_then(|(_, b)| b.as_table().cloned())
            .map(|t| {
                t.columns()
                    .iter()
                    .map(|c| ArrayMetadata {
                        name: c.name().to_string(),
                        association: svtk::FieldAssociation::Point,
                        components: c.num_components(),
                        type_name: c.type_name(),
                        device: c.device(),
                    })
                    .collect()
            })
            .unwrap_or_default();
        Ok(MeshMetadata { name: self.mesh.clone(), arrays })
    }

    fn mesh(&self, name: &str) -> Result<DataObject> {
        if name == self.mesh {
            Ok(DataObject::Multi(self.blocks.clone()))
        } else {
            Err(Error::NoSuchMesh { name: name.to_string() })
        }
    }

    fn time(&self) -> f64 {
        self.time
    }

    fn time_step(&self) -> u64 {
        self.step
    }
}

/// The analysis-rank event loop: receive step data from every producer
/// feeding this rank, run the back-ends once per fully assembled step,
/// and finalize when every producer has shut down. Returns the number of
/// steps processed.
///
/// Back-ends see an [`ExecContext`] whose communicator is the *analysis*
/// sub-communicator, so their cross-rank reductions span the analysis
/// group — every analysis rank must therefore observe the same sequence
/// of steps (guaranteed when all producers forward every step).
pub fn serve_analysis(
    world: &Comm,
    analysis_comm: &Comm,
    node: &Arc<SimNode>,
    mesh: impl Into<String>,
    mut backends: Vec<Box<dyn AnalysisAdaptor>>,
) -> Result<u64> {
    let mesh = mesh.into();
    let analysis_ranks = analysis_comm.size();
    let sim_ranks = world.size() - analysis_ranks;
    let producers = producers_of(world.rank(), sim_ranks, analysis_ranks);
    let total_blocks = sim_ranks;

    // step -> (producer world-rank -> payload)
    let mut pending: BTreeMap<u64, BTreeMap<usize, StepPayload>> = BTreeMap::new();
    let mut live = producers.len();
    let mut steps_done = 0u64;
    let ctx_comm = analysis_comm;

    while live > 0 {
        let (src, msg): (usize, TransitMsg) = world
            .recv_any(TRANSIT_TAG)
            .map_err(|e| Error::Analysis(format!("in transit recv: {e}")))?;
        match msg {
            TransitMsg::Done => live -= 1,
            TransitMsg::Step(payload) => {
                let step = payload.step;
                let entry = pending.entry(step).or_default();
                entry.insert(src, payload);
                if entry.len() == producers.len() {
                    let parts = pending.remove(&step).expect("entry exists");
                    let time = parts.values().next().expect("nonempty").time;
                    let mut blocks = MultiBlock::new(total_blocks);
                    for (producer, payload) in parts {
                        let table = payload.to_table(node)?;
                        blocks.set_block(producer, DataObject::Table(table));
                    }
                    let adaptor = ReceivedAdaptor { mesh: mesh.clone(), blocks, step, time };
                    let ctx = ExecContext::new(ctx_comm, node);
                    for b in &mut backends {
                        if b.controls().due_at(step) {
                            b.execute(&adaptor, &ctx)?;
                        }
                    }
                    steps_done += 1;
                }
            }
        }
    }
    if !pending.is_empty() {
        return Err(Error::Analysis(format!(
            "{} step(s) left partially assembled at shutdown",
            pending.len()
        )));
    }
    let ctx = ExecContext::new(ctx_comm, node);
    for b in &mut backends {
        b.finalize(&ctx)?;
    }
    Ok(steps_done)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m_to_n_mapping_covers_all_producers() {
        for (m, n) in [(4, 2), (5, 2), (3, 1), (6, 3)] {
            // Every producer has exactly one consumer in the analysis range.
            for p in 0..m {
                let c = consumer_of(p, m, n);
                assert!(c >= m && c < m + n, "consumer {c} out of range");
                assert!(producers_of(c, m, n).contains(&p));
            }
            // Consumers partition the producers.
            let total: usize = (m..m + n).map(|c| producers_of(c, m, n).len()).sum();
            assert_eq!(total, m);
        }
    }
}
