//! Simulation snapshots for asynchronous execution: deep-copied,
//! generation-tracked delta, or copy-on-write.
//!
//! The asynchronous execution method (§3/§4.3) "deep copies the relevant
//! data, launches a thread for in situ processing, and returns
//! immediately to the simulation". [`SnapshotAdaptor::capture`] is that
//! deep copy. The [`SnapshotPipeline`] generalizes it into three
//! strategies selected per bridge:
//!
//! * **deep** — the baseline: every selected array is deep-copied every
//!   capture and the capture synchronizes before returning.
//! * **delta** — arrays whose backing allocation's write generation has
//!   not advanced since the previous capture are shared zero-copy
//!   (CoW-pinned, so a later producer write faults a lazy copy); changed
//!   arrays are copied asynchronously on a dedicated per-device copy
//!   stream, double-buffered by a [`CopyFence`] that makes the producer's
//!   *next* write wait for the in-flight copy instead of the producer
//!   waiting at capture.
//! * **cow** — nothing is copied at capture: every array is shared
//!   zero-copy behind a CoW pin, and only the arrays the producer
//!   actually overwrites while the snapshot is alive pay a fault copy.
//!
//! All three strategies capture the same stream-ordered contents a deep
//! copy would (shares drain the producer stream before pinning), so the
//! analysis results are bit-identical across modes; only the bytes moved
//! and where the waiting happens differ.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use devsim::{CopyFence, Event, SimNode, Stream};
use hamr::HamrStream;
use svtk::{ArrayRef, DataArray, DataObject, FieldAssociation, MultiBlock, TableData};

use crate::adaptor::{ArrayMetadata, DataAdaptor, MeshMetadata};
use crate::counters::SnapshotCounters;
use crate::error::Result;
use crate::requirements::{DataRequirements, MeshRequirements};

/// How a bridge's snapshot layer captures the simulation's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotMode {
    /// Deep-copy every selected array on every capture (the baseline).
    #[default]
    Deep,
    /// Copy generation-advanced arrays asynchronously on a dedicated
    /// copy stream; share unchanged arrays zero-copy behind a CoW pin.
    Delta,
    /// Share every array zero-copy behind a CoW pin; copies happen
    /// lazily, only when the producer overwrites a pinned array.
    Cow,
}

impl SnapshotMode {
    /// The XML attribute value for this mode.
    pub fn name(&self) -> &'static str {
        match self {
            SnapshotMode::Deep => "deep",
            SnapshotMode::Delta => "delta",
            SnapshotMode::Cow => "cow",
        }
    }

    /// Parse an XML attribute value (`deep`, `delta`, `cow`).
    pub fn parse(s: &str) -> Option<SnapshotMode> {
        match s {
            "deep" => Some(SnapshotMode::Deep),
            "delta" => Some(SnapshotMode::Delta),
            "cow" => Some(SnapshotMode::Cow),
            _ => None,
        }
    }
}

/// The bridge-owned snapshot strategy: mode, counters, the generation
/// table delta captures diff against, and the dedicated per-device copy
/// streams asynchronous copies and CoW-share fetches ride.
pub struct SnapshotPipeline {
    mode: SnapshotMode,
    counters: Arc<SnapshotCounters>,
    /// Last captured `(allocation_id, write_generation)` per array key
    /// (`mesh/block-path/association/name`). Sampled under *every* mode
    /// (delta uses it to skip copies; deep and cow sample it purely as a
    /// write-rate observation), so the adaptive controller can read the
    /// workload's write rate regardless of the active mode.
    last: HashMap<String, (u64, u64)>,
    /// Arrays written / arrays seen at the capture in progress.
    cap_written: u64,
    cap_seen: u64,
    /// Arrays written / arrays seen at the last completed capture.
    last_written: (u64, u64),
    /// One dedicated copy stream per device, created lazily. Keeping
    /// capture traffic off the producer's streams is what lets the
    /// copies overlap the next solver step.
    copy_streams: HashMap<usize, Arc<Stream>>,
}

impl SnapshotPipeline {
    /// A pipeline capturing with `mode`.
    pub fn new(mode: SnapshotMode) -> Self {
        SnapshotPipeline {
            mode,
            counters: SnapshotCounters::new(),
            last: HashMap::new(),
            cap_written: 0,
            cap_seen: 0,
            last_written: (0, 0),
            copy_streams: HashMap::new(),
        }
    }

    /// The active capture mode.
    pub fn mode(&self) -> SnapshotMode {
        self.mode
    }

    /// Switch capture modes. The generation table is cleared so the next
    /// delta capture conservatively copies everything once.
    pub fn set_mode(&mut self, mode: SnapshotMode) {
        if mode != self.mode {
            self.last.clear();
        }
        self.mode = mode;
    }

    /// The pipeline's snapshot counters (shared with every capture).
    pub fn counters(&self) -> &Arc<SnapshotCounters> {
        &self.counters
    }

    /// The share of arrays whose write generation advanced at the last
    /// capture, observed from the per-array generations the pipeline
    /// samples under every mode. `1.0` when nothing has been captured
    /// yet or no generations were visible (conservative: assume every
    /// array is rewritten every step). The first capture after a
    /// [`SnapshotPipeline::set_mode`] also reads `1.0` — the generation
    /// table is cleared on a mode switch.
    pub fn written_fraction(&self) -> f64 {
        let (w, n) = self.last_written;
        if n == 0 {
            1.0
        } else {
            w as f64 / n as f64
        }
    }

    /// Diff `identity` against the generation table, updating it, and
    /// count the array into the capture's write-rate observation.
    /// Untracked arrays (no generation) are conservatively "written".
    fn note_generation(&mut self, key: String, identity: Option<(u64, u64)>) -> bool {
        let changed = match identity {
            Some(id) => self.last.get(&key) != Some(&id),
            None => true,
        };
        if let Some(id) = identity {
            self.last.insert(key, id);
        }
        self.cap_seen += 1;
        self.cap_written += changed as u64;
        changed
    }

    fn copy_stream(&mut self, node: &Arc<SimNode>, device: usize) -> Result<Arc<Stream>> {
        if let Some(s) = self.copy_streams.get(&device) {
            return Ok(s.clone());
        }
        let s = node.device(device)?.create_stream();
        self.copy_streams.insert(device, s.clone());
        Ok(s)
    }

    /// Capture the state `requirements` selects from `src` under the
    /// active mode. Deep captures synchronize before returning; delta
    /// captures return with copies still in flight (the consumer calls
    /// [`SnapshotAdaptor::wait_copies`]); cow captures move no data.
    pub fn capture(
        &mut self,
        src: &dyn DataAdaptor,
        requirements: &DataRequirements,
        node: &Arc<SimNode>,
    ) -> Result<SnapshotAdaptor> {
        let captured_at = Instant::now();
        self.cap_written = 0;
        self.cap_seen = 0;
        let mut shared = Vec::new();
        let mut fences = Vec::new();
        let mut pending: HashMap<usize, (Arc<Stream>, Event)> = HashMap::new();

        let mut meshes = Vec::with_capacity(src.num_meshes());
        for i in 0..src.num_meshes() {
            let md = src.mesh_metadata(i)?;
            let Some(mesh_req) = requirements.mesh_requirements(&md.name) else {
                continue;
            };
            let obj = src.mesh(&md.name)?;
            let copied = partial_copy(&obj, &mesh_req, &md.name, &mut |key, arr| {
                self.capture_array(key, arr, node, &mut shared, &mut fences, &mut pending)
            })?;
            meshes.push((md.name, copied));
        }

        // Record one event per copy stream used: stream execution is
        // FIFO, so each event signals once all of this capture's copies
        // on that stream have landed.
        let mut copy_events = Vec::with_capacity(pending.len());
        for (stream, event) in pending.into_values() {
            stream.record(&event)?;
            copy_events.push(event);
        }

        if self.mode == SnapshotMode::Deep {
            for (_, obj) in &meshes {
                synchronize_object(obj)?;
            }
        }
        self.last_written = (self.cap_written, self.cap_seen);

        Ok(SnapshotAdaptor {
            meshes,
            time: src.time(),
            step: src.time_step(),
            shared,
            consumers: AtomicUsize::new(0),
            _fences: fences,
            copy_events,
            captured_at: Some(captured_at),
            counters: Some(self.counters.clone()),
        })
    }

    fn capture_array(
        &mut self,
        key: String,
        arr: &ArrayRef,
        node: &Arc<SimNode>,
        shared: &mut Vec<ArrayRef>,
        fences: &mut Vec<CopyFence>,
        pending: &mut HashMap<usize, (Arc<Stream>, Event)>,
    ) -> Result<ArrayRef> {
        let bytes = (arr.len() * 8) as u64;
        match self.mode {
            SnapshotMode::Deep => {
                // The generation sample is a pure observation here (the
                // copy is unconditional): no drain first, so an enqueued
                // producer kernel may read one step stale — acceptable
                // for a write-rate signal, free for the capture.
                self.note_generation(key, arr.generation_erased());
                self.counters.add_copied(1, bytes);
                Ok(arr.deep_copy_erased()?)
            }
            SnapshotMode::Cow => {
                self.note_generation(key, arr.generation_erased());
                self.share_or_copy(arr, node, shared, bytes)
            }
            SnapshotMode::Delta => {
                // Drain the producer stream *before* sampling the write
                // generation: a producer kernel still queued here bumps
                // the generation only when it executes, so sampling
                // first would record a stale value into `last` and the
                // next capture would re-copy the untouched array. The
                // drain also guarantees any copy below reads the same
                // stream-ordered contents a deep copy enqueued behind
                // the producer's kernels would.
                arr.synchronize_erased()?;
                let changed = self.note_generation(key, arr.generation_erased());
                if !changed {
                    return self.share_or_copy(arr, node, shared, bytes);
                }
                let Some(device) = arr.device() else {
                    // Host arrays copy synchronously; there is no stream
                    // to pipeline the transfer on.
                    self.counters.add_copied(1, bytes);
                    return Ok(arr.deep_copy_erased()?);
                };
                let copy_stream = self.copy_stream(node, device)?;
                let (stream, event) = match pending.entry(device) {
                    Entry::Occupied(e) => e.into_mut(),
                    Entry::Vacant(v) => v.insert((copy_stream, Event::new())),
                };
                let copy = arr.deep_copy_async_erased(stream)?;
                // Double-buffering: the producer's *next* write to this
                // array waits on the fence (i.e. on the in-flight copy),
                // not the producer at capture time.
                if let Some(cells) = arr.cells_erased() {
                    fences.push(cells.copy_fence(event));
                }
                self.counters.add_copied(1, bytes);
                Ok(copy)
            }
        }
    }

    fn share_or_copy(
        &mut self,
        arr: &ArrayRef,
        node: &Arc<SimNode>,
        shared: &mut Vec<ArrayRef>,
        bytes: u64,
    ) -> Result<ArrayRef> {
        // The pin freezes the array's current cells, so in-flight
        // producer kernel writes must land first for the share to hold
        // the same stream-ordered contents a deep copy would capture.
        arr.synchronize_erased()?;
        let stream = match arr.device() {
            Some(d) => HamrStream::new(self.copy_stream(node, d)?),
            None => HamrStream::default_stream(),
        };
        match arr.cow_share_erased(self.counters.pin_stats(), stream) {
            Some(share) => {
                self.counters.add_shared(1);
                shared.push(share.clone());
                Ok(share)
            }
            None => {
                // Array type without CoW support: fall back to an eager
                // stream-ordered deep copy (already synchronized above).
                self.counters.add_copied(1, bytes);
                Ok(arr.deep_copy_erased()?)
            }
        }
    }
}

/// A [`DataAdaptor`] over a captured copy (deep, delta, or CoW-shared)
/// of another adaptor's state, safe to hand to an in situ thread while
/// the simulation overwrites its own arrays.
pub struct SnapshotAdaptor {
    meshes: Vec<(String, DataObject)>,
    time: f64,
    step: u64,
    /// CoW-shared arrays; unpinned by the last consumer's
    /// [`SnapshotAdaptor::consumer_finished`] (or by a sole consumer's
    /// early [`DataAdaptor::release_shared`] hint), so later producer
    /// writes skip the fault copy.
    shared: Vec<ArrayRef>,
    /// Number of consumers (engines) still expected to read this
    /// snapshot; see [`SnapshotAdaptor::expect_consumers`]. Zero means
    /// no registration: a lone `release_shared` call unpins directly.
    consumers: AtomicUsize,
    /// Fences keeping the producer's next write to a delta-copied array
    /// behind the in-flight asynchronous copy. Held only for ownership:
    /// dropping the snapshot releases them.
    _fences: Vec<CopyFence>,
    /// One event per copy stream carrying this capture's async copies.
    copy_events: Vec<Event>,
    captured_at: Option<Instant>,
    counters: Option<Arc<SnapshotCounters>>,
}

impl SnapshotAdaptor {
    /// Deep-copy the state published by `src`.
    ///
    /// All array copies are enqueued stream-ordered and synchronized once
    /// at the end — one wait instead of one per array, which is what
    /// keeps the apparent per-iteration cost of asynchronous execution
    /// in the few-millisecond range the paper reports.
    pub fn capture(src: &dyn DataAdaptor) -> Result<Self> {
        Self::capture_with(src, &DataRequirements::All)
    }

    /// Deep-copy only the state `requirements` asks for: meshes absent
    /// from the requirements are skipped entirely, and within a copied
    /// mesh only the selected arrays are duplicated. The snapshot's
    /// memory footprint and copy time scale with what the due back-ends
    /// declared, not with everything the simulation publishes.
    pub fn capture_with(src: &dyn DataAdaptor, requirements: &DataRequirements) -> Result<Self> {
        let mut meshes = Vec::with_capacity(src.num_meshes());
        for i in 0..src.num_meshes() {
            let md = src.mesh_metadata(i)?;
            let Some(mesh_req) = requirements.mesh_requirements(&md.name) else {
                continue;
            };
            let obj = src.mesh(&md.name)?;
            let copied =
                partial_copy(&obj, &mesh_req, &md.name, &mut |_, arr| Ok(arr.deep_copy_erased()?))?;
            meshes.push((md.name, copied));
        }
        for (_, obj) in &meshes {
            synchronize_object(obj)?;
        }
        Ok(SnapshotAdaptor {
            meshes,
            time: src.time(),
            step: src.time_step(),
            shared: Vec::new(),
            consumers: AtomicUsize::new(0),
            _fences: Vec::new(),
            copy_events: Vec::new(),
            captured_at: None,
            counters: None,
        })
    }

    /// Block until this capture's asynchronous copies have landed. The
    /// consuming engine calls this before the first analysis touches the
    /// snapshot; the elapsed time since capture — the window the copies
    /// had to overlap the producer — is recorded into the counters.
    pub fn wait_copies(&self) {
        if self.copy_events.is_empty() {
            return;
        }
        if let (Some(at), Some(counters)) = (self.captured_at, &self.counters) {
            counters.add_overlap_ns(at.elapsed().as_nanos() as u64);
        }
        for event in &self.copy_events {
            event.wait();
        }
    }

    /// Number of arrays this capture holds as CoW shares.
    pub fn num_shared(&self) -> usize {
        self.shared.len()
    }

    /// Declare that `n` consumers (engines) will read this snapshot.
    /// The bridge calls this with the number of due snapshot-consuming
    /// engines before handing the snapshot out; each engine then calls
    /// [`SnapshotAdaptor::consumer_finished`] exactly once when it is
    /// done, and the *last* one drops the CoW pins. While more than one
    /// registered consumer remains, [`DataAdaptor::release_shared`] is
    /// ignored — an engine that materializes its fetches early must not
    /// expose the other engines sharing this snapshot to post-capture
    /// producer writes.
    pub fn expect_consumers(&self, n: usize) {
        self.consumers.store(n, Ordering::Release);
    }

    /// One registered consumer is done with this snapshot (its analysis
    /// ran, retries included, or failed terminally). The last consumer
    /// to finish releases the CoW pins so later producer writes skip
    /// the fault copy.
    pub fn consumer_finished(&self) {
        let mut remaining = self.consumers.load(Ordering::Acquire);
        while remaining > 0 {
            match self.consumers.compare_exchange_weak(
                remaining,
                remaining - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    if remaining == 1 {
                        self.release_pins();
                    }
                    return;
                }
                Err(seen) => remaining = seen,
            }
        }
    }

    fn release_pins(&self) {
        for arr in &self.shared {
            arr.release_cow_erased();
        }
    }

    fn metadata_of(&self, name: &str, obj: &DataObject) -> MeshMetadata {
        let mut arrays = Vec::new();
        match obj {
            DataObject::Table(t) => {
                for col in t.columns() {
                    arrays.push(array_md(col.as_ref(), FieldAssociation::Point));
                }
            }
            DataObject::Image(img) => {
                for assoc in [FieldAssociation::Point, FieldAssociation::Cell] {
                    for a in img.data(assoc).arrays() {
                        arrays.push(array_md(a.as_ref(), assoc));
                    }
                }
            }
            DataObject::Multi(mb) => {
                if let Some((_, first)) = mb.local_blocks().next() {
                    return self.metadata_of(name, first);
                }
            }
        }
        MeshMetadata { name: name.to_string(), arrays }
    }
}

fn assoc_key(assoc: FieldAssociation) -> &'static str {
    match assoc {
        FieldAssociation::Point => "point",
        FieldAssociation::Cell => "cell",
        FieldAssociation::Field => "field",
    }
}

/// Capture the arrays of `obj` that `req` selects, preserving the
/// dataset structure. Each selected array is passed to `capture` along
/// with a stable key (`mesh/block-path/association/name`) the delta
/// strategy diffs generations against. Table columns count as point
/// data.
fn partial_copy(
    obj: &DataObject,
    req: &MeshRequirements,
    path: &str,
    capture: &mut dyn FnMut(String, &ArrayRef) -> Result<ArrayRef>,
) -> Result<DataObject> {
    match obj {
        DataObject::Table(t) => {
            let mut copy = TableData::new();
            for col in t.columns() {
                if req.wants(FieldAssociation::Point, col.name()) {
                    copy.set_column(capture(format!("{path}/point/{}", col.name()), col)?);
                }
            }
            Ok(DataObject::Table(copy))
        }
        DataObject::Image(img) => {
            let mut copy = img.clone_structure();
            for assoc in [FieldAssociation::Point, FieldAssociation::Cell] {
                for arr in img.data(assoc).arrays() {
                    if req.wants(assoc, arr.name()) {
                        let key = format!("{path}/{}/{}", assoc_key(assoc), arr.name());
                        copy.data_mut(assoc).set_array(capture(key, arr)?);
                    }
                }
            }
            Ok(DataObject::Image(copy))
        }
        DataObject::Multi(mb) => {
            let mut copy = MultiBlock::new(mb.num_blocks());
            for (i, block) in mb.local_blocks() {
                copy.set_block(i, partial_copy(block, req, &format!("{path}/{i}"), capture)?);
            }
            Ok(DataObject::Multi(copy))
        }
    }
}

/// Wait for every in-flight copy feeding `obj`'s arrays. Streams that
/// are already idle return immediately, so after the first wait the rest
/// are free.
fn synchronize_object(obj: &DataObject) -> Result<()> {
    match obj {
        DataObject::Table(t) => {
            for col in t.columns() {
                col.synchronize_erased()?;
            }
        }
        DataObject::Image(img) => {
            for assoc in [FieldAssociation::Point, FieldAssociation::Cell] {
                for a in img.data(assoc).arrays() {
                    a.synchronize_erased()?;
                }
            }
        }
        DataObject::Multi(mb) => {
            for (_, block) in mb.local_blocks() {
                synchronize_object(block)?;
            }
        }
    }
    Ok(())
}

fn array_md(a: &dyn DataArray, association: FieldAssociation) -> ArrayMetadata {
    ArrayMetadata {
        name: a.name().to_string(),
        association,
        components: a.num_components(),
        type_name: a.type_name(),
        device: a.device(),
    }
}

impl DataAdaptor for SnapshotAdaptor {
    fn num_meshes(&self) -> usize {
        self.meshes.len()
    }

    fn mesh_metadata(&self, i: usize) -> Result<MeshMetadata> {
        let (name, obj) = &self.meshes[i];
        Ok(self.metadata_of(name, obj))
    }

    fn mesh(&self, name: &str) -> Result<DataObject> {
        self.meshes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, o)| o.clone())
            .ok_or_else(|| crate::Error::NoSuchMesh { name: name.to_string() })
    }

    fn time(&self) -> f64 {
        self.time
    }

    fn time_step(&self) -> u64 {
        self.step
    }

    fn release_shared(&self) {
        // An early-release *hint* from an analysis that has materialized
        // all of its reads. Honored only when this consumer is the
        // snapshot's sole remaining reader (or the snapshot was never
        // registered with the bridge): with other consumers outstanding,
        // unpinning here would silently route their still-pending reads
        // to the live, possibly overwritten cells. Ignored hints cost
        // nothing — the pins drop with the last `consumer_finished`.
        if self.consumers.load(Ordering::Acquire) <= 1 {
            self.release_pins();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devsim::{NodeConfig, SimNode};
    use std::sync::Arc;
    use svtk::{Allocator, HamrDataArray, HamrStream, StreamMode, TableData};

    /// A toy simulation-side adaptor for tests.
    struct ToySim {
        table: TableData,
        step: u64,
    }

    impl ToySim {
        fn new(node: Arc<SimNode>) -> Self {
            Self::on(node, Some(0))
        }

        /// `device: None` places the column on the host (writable from
        /// the test thread via host views); `Some(d)` on device `d`.
        fn on(node: Arc<SimNode>, device: Option<usize>) -> Self {
            let mut table = TableData::new();
            let x = HamrDataArray::<f64>::from_slice(
                "x",
                node.clone(),
                &[1.0, 2.0, 3.0],
                1,
                if device.is_some() { Allocator::Cuda } else { Allocator::Malloc },
                device,
                HamrStream::default_stream(),
                StreamMode::Sync,
            )
            .unwrap();
            table.set_column(x.as_array_ref());
            ToySim { table, step: 7 }
        }

        fn column(&self) -> ArrayRef {
            self.table.column("x").unwrap().clone()
        }

        /// Overwrite every element of the (host-resident) column.
        fn write_all(&self, v: f64) {
            let cells = svtk::downcast::<f64>(self.table.column("x").unwrap()).unwrap().data();
            let view = cells.host_f64().unwrap();
            for i in 0..view.len() {
                view.set(i, v);
            }
        }
    }

    fn values(arr: &ArrayRef) -> Vec<f64> {
        svtk::downcast::<f64>(arr).unwrap().to_vec().unwrap()
    }

    fn cells(arr: &ArrayRef) -> devsim::CellBuffer {
        svtk::downcast::<f64>(arr).unwrap().data()
    }

    fn snapshot_column(snap: &SnapshotAdaptor) -> ArrayRef {
        snap.mesh("bodies").unwrap().as_table().unwrap().column("x").unwrap().clone()
    }

    impl DataAdaptor for ToySim {
        fn num_meshes(&self) -> usize {
            1
        }
        fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
            Ok(MeshMetadata {
                name: "bodies".into(),
                arrays: self
                    .table
                    .columns()
                    .iter()
                    .map(|c| array_md(c.as_ref(), FieldAssociation::Point))
                    .collect(),
            })
        }
        fn mesh(&self, name: &str) -> Result<DataObject> {
            if name == "bodies" {
                Ok(DataObject::Table(self.table.clone()))
            } else {
                Err(crate::Error::NoSuchMesh { name: name.into() })
            }
        }
        fn time(&self) -> f64 {
            0.5
        }
        fn time_step(&self) -> u64 {
            self.step
        }
    }

    #[test]
    fn capture_deep_copies_every_array() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sim = ToySim::new(node);
        let snap = SnapshotAdaptor::capture(&sim).unwrap();
        assert_eq!(snap.num_meshes(), 1);
        assert_eq!(snap.time(), 0.5);
        assert_eq!(snap.time_step(), 7);

        let oh = sim.column();
        let ch = snapshot_column(&snap);
        assert!(!cells(&oh).same_allocation(&cells(&ch)), "snapshot must not alias");
        assert_eq!(values(&ch), vec![1.0, 2.0, 3.0]);
        // Placement preserved: copy stays on the same device.
        assert_eq!(ch.device(), Some(0));
    }

    #[test]
    fn snapshot_metadata_describes_the_copy() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sim = ToySim::new(node);
        let snap = SnapshotAdaptor::capture(&sim).unwrap();
        let md = snap.mesh_metadata(0).unwrap();
        assert_eq!(md.name, "bodies");
        assert_eq!(md.arrays.len(), 1);
        assert_eq!(md.arrays[0].name, "x");
        assert_eq!(md.arrays[0].type_name, "double");
        assert_eq!(md.arrays[0].device, Some(0));
    }

    #[test]
    fn capture_with_skips_unrequested_meshes_and_arrays() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sim = ToySim::new(node);

        // Mesh not in the requirements: skipped entirely.
        let none = DataRequirements::none();
        let snap = SnapshotAdaptor::capture_with(&sim, &none).unwrap();
        assert_eq!(snap.num_meshes(), 0);
        assert_eq!(snap.time_step(), 7, "time/step still captured");

        // Mesh requested but with a different column name: structure
        // copied, array left out.
        let other =
            DataRequirements::none().with_arrays("bodies", FieldAssociation::Point, ["nope"]);
        let snap = SnapshotAdaptor::capture_with(&sim, &other).unwrap();
        assert_eq!(snap.num_meshes(), 1);
        assert_eq!(snap.mesh_metadata(0).unwrap().arrays.len(), 0);

        // The requested column is a real deep copy.
        let x_only = DataRequirements::none().with_arrays("bodies", FieldAssociation::Point, ["x"]);
        let snap = SnapshotAdaptor::capture_with(&sim, &x_only).unwrap();
        assert_eq!(values(&snapshot_column(&snap)), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn unknown_mesh_is_an_error() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let snap = SnapshotAdaptor::capture(&ToySim::new(node)).unwrap();
        assert!(matches!(snap.mesh("nope"), Err(crate::Error::NoSuchMesh { .. })));
    }

    #[test]
    fn mode_names_round_trip() {
        for mode in [SnapshotMode::Deep, SnapshotMode::Delta, SnapshotMode::Cow] {
            assert_eq!(SnapshotMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(SnapshotMode::parse("shallow"), None);
        assert_eq!(SnapshotMode::default(), SnapshotMode::Deep);
    }

    #[test]
    fn cow_capture_shares_then_faults_on_producer_write() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sim = ToySim::on(node.clone(), None);
        let mut pipeline = SnapshotPipeline::new(SnapshotMode::Cow);
        let snap = pipeline.capture(&sim, &DataRequirements::All, &node).unwrap();

        let oh = sim.column();
        let ch = snapshot_column(&snap);
        assert!(cells(&oh).same_allocation(&cells(&ch)), "cow share must alias");
        assert_eq!(snap.num_shared(), 1);
        let c = pipeline.counters().snapshot();
        assert_eq!((c.arrays_shared, c.arrays_copied, c.cow_faults), (1, 0, 0));
        assert_eq!(c.bytes_copied, 0, "a cow capture moves no bytes");

        // Producer overwrites the pinned array: lazy fault copy, the
        // snapshot keeps reading the pinned contents.
        sim.write_all(9.0);
        assert_eq!(values(&ch), vec![1.0, 2.0, 3.0]);
        assert_eq!(values(&oh), vec![9.0, 9.0, 9.0]);
        let c = pipeline.counters().snapshot();
        assert_eq!(c.cow_faults, 1);
        assert_eq!(c.bytes_copied, 24, "the fault copied one 3-element array");
    }

    #[test]
    fn shared_snapshot_stays_pinned_until_last_consumer_releases() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sim = ToySim::on(node.clone(), None);
        let mut pipeline = SnapshotPipeline::new(SnapshotMode::Cow);
        let snap = pipeline.capture(&sim, &DataRequirements::All, &node).unwrap();
        snap.expect_consumers(2);
        let ch = snapshot_column(&snap);

        // The first consumer's early-release hint must be ignored and
        // its finish must keep the pins: a producer write still takes
        // the fault copy, and the second consumer keeps reading the
        // pinned (pre-write) contents.
        snap.release_shared();
        snap.consumer_finished();
        sim.write_all(9.0);
        assert_eq!(values(&ch), vec![1.0, 2.0, 3.0], "second consumer sees the pinned state");
        assert_eq!(pipeline.counters().snapshot().cow_faults, 1);
    }

    #[test]
    fn shared_snapshot_unpins_after_every_consumer_finishes() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sim = ToySim::on(node.clone(), None);
        let mut pipeline = SnapshotPipeline::new(SnapshotMode::Cow);
        let snap = pipeline.capture(&sim, &DataRequirements::All, &node).unwrap();
        snap.expect_consumers(2);
        snap.consumer_finished();
        snap.consumer_finished();
        sim.write_all(9.0);
        assert_eq!(pipeline.counters().snapshot().cow_faults, 0, "fully released: no fault");
    }

    #[test]
    fn sole_consumer_early_release_still_skips_the_fault() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sim = ToySim::on(node.clone(), None);
        let mut pipeline = SnapshotPipeline::new(SnapshotMode::Cow);
        let snap = pipeline.capture(&sim, &DataRequirements::All, &node).unwrap();
        snap.expect_consumers(1);
        // With a single registered consumer the hint is safe and keeps
        // the benchmark's steady-state fault set small.
        snap.release_shared();
        sim.write_all(9.0);
        assert_eq!(pipeline.counters().snapshot().cow_faults, 0);
        snap.consumer_finished();
    }

    #[test]
    fn released_cow_share_skips_the_fault_copy() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sim = ToySim::on(node.clone(), None);
        let mut pipeline = SnapshotPipeline::new(SnapshotMode::Cow);
        let snap = pipeline.capture(&sim, &DataRequirements::All, &node).unwrap();
        snap.release_shared();
        sim.write_all(9.0);
        assert_eq!(pipeline.counters().snapshot().cow_faults, 0);
    }

    #[test]
    fn delta_capture_copies_changed_then_shares_unchanged() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sim = ToySim::on(node.clone(), None);
        let mut pipeline = SnapshotPipeline::new(SnapshotMode::Delta);

        // First sight of the allocation: copied.
        let snap1 = pipeline.capture(&sim, &DataRequirements::All, &node).unwrap();
        snap1.wait_copies();
        let c = pipeline.counters().snapshot();
        assert_eq!((c.arrays_shared, c.arrays_copied), (0, 1));
        assert_eq!(c.bytes_copied, 24);
        let ch = snapshot_column(&snap1);
        assert!(!cells(&sim.column()).same_allocation(&cells(&ch)));
        assert_eq!(values(&ch), vec![1.0, 2.0, 3.0]);

        // Generation unchanged: the second capture shares zero-copy.
        let snap2 = pipeline.capture(&sim, &DataRequirements::All, &node).unwrap();
        snap2.wait_copies();
        let c = pipeline.counters().snapshot();
        assert_eq!((c.arrays_shared, c.arrays_copied), (1, 1));
        assert_eq!(c.bytes_copied, 24, "no new bytes for the shared capture");
        assert!(cells(&sim.column()).same_allocation(&cells(&snapshot_column(&snap2))));

        // Producer writes: the next capture copies again.
        drop(snap2);
        sim.write_all(4.0);
        let snap3 = pipeline.capture(&sim, &DataRequirements::All, &node).unwrap();
        snap3.wait_copies();
        let c = pipeline.counters().snapshot();
        assert_eq!((c.arrays_shared, c.arrays_copied), (1, 2));
        assert_eq!(values(&snapshot_column(&snap3)), vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn delta_device_copy_rides_the_copy_stream() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sim = ToySim::new(node.clone());
        let mut pipeline = SnapshotPipeline::new(SnapshotMode::Delta);

        // Device-resident changed array: copied asynchronously on the
        // dedicated copy stream, completed by wait_copies.
        let snap1 = pipeline.capture(&sim, &DataRequirements::All, &node).unwrap();
        snap1.wait_copies();
        let ch = snapshot_column(&snap1);
        assert!(!cells(&sim.column()).same_allocation(&cells(&ch)));
        assert_eq!(values(&ch), vec![1.0, 2.0, 3.0]);
        assert_eq!(ch.device(), Some(0), "placement preserved");

        // Overwrite the device array through a stream copy (a write
        // intent on its cells), then capture again: copied again, and
        // the snapshot sees the new stream-ordered contents.
        let nine = HamrDataArray::<f64>::from_slice(
            "nine",
            node.clone(),
            &[9.0, 9.0, 9.0],
            1,
            Allocator::Cuda,
            Some(0),
            HamrStream::default_stream(),
            StreamMode::Sync,
        )
        .unwrap();
        let stream = node.device(0).unwrap().default_stream();
        stream.copy(&nine.data(), &cells(&sim.column())).unwrap();
        let snap2 = pipeline.capture(&sim, &DataRequirements::All, &node).unwrap();
        snap2.wait_copies();
        assert_eq!(values(&snapshot_column(&snap2)), vec![9.0, 9.0, 9.0]);
        let c = pipeline.counters().snapshot();
        assert_eq!((c.arrays_shared, c.arrays_copied), (0, 2));
        assert!(c.copy_overlap_ns > 0, "overlap window recorded");
    }

    #[test]
    fn delta_settles_queued_writes_before_sampling_generation() {
        use std::time::Duration;

        // Real modeled time with a long launch overhead, so a queued
        // kernel is reliably still pending when the capture starts.
        let cfg = devsim::NodeConfig {
            num_devices: 1,
            time_scale: 1.0,
            device: devsim::DeviceParams {
                launch_overhead: Duration::from_millis(30),
                ..devsim::DeviceParams::default()
            },
            ..devsim::NodeConfig::default()
        };
        let node = SimNode::new(cfg);
        let sim = ToySim::new(node.clone());
        let mut pipeline = SnapshotPipeline::new(SnapshotMode::Delta);

        // First sight of the allocation: copied.
        pipeline.capture(&sim, &DataRequirements::All, &node).unwrap().wait_copies();

        // Queue a stall, then a producer write behind it: the write is
        // still pending when the next capture begins, so its generation
        // bump only happens during the capture's drain. Sampling before
        // the drain would store a stale generation into `last`.
        let stream = node.device(0).unwrap().default_stream();
        stream.launch("stall", devsim::KernelCost::ZERO, |_| Ok(())).unwrap();
        let target = cells(&sim.column());
        stream
            .launch("write", devsim::KernelCost::ZERO, move |scope| {
                target.f64_view(scope)?.fill(9.0);
                Ok(())
            })
            .unwrap();

        let snap2 = pipeline.capture(&sim, &DataRequirements::All, &node).unwrap();
        snap2.wait_copies();
        assert_eq!(values(&snapshot_column(&snap2)), vec![9.0, 9.0, 9.0]);

        // Nothing written since: the third capture must share, not
        // re-copy — the second capture recorded the settled generation.
        let snap3 = pipeline.capture(&sim, &DataRequirements::All, &node).unwrap();
        snap3.wait_copies();
        let c = pipeline.counters().snapshot();
        assert_eq!((c.arrays_shared, c.arrays_copied), (1, 2), "no spurious re-copy");
    }

    #[test]
    fn deep_pipeline_counts_every_copy() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sim = ToySim::new(node.clone());
        let mut pipeline = SnapshotPipeline::new(SnapshotMode::Deep);
        for _ in 0..3 {
            let snap = pipeline.capture(&sim, &DataRequirements::All, &node).unwrap();
            assert_eq!(values(&snapshot_column(&snap)), vec![1.0, 2.0, 3.0]);
        }
        let c = pipeline.counters().snapshot();
        assert_eq!((c.arrays_shared, c.arrays_copied), (0, 3));
        assert_eq!(c.bytes_copied, 72);
    }

    #[test]
    fn set_mode_clears_the_generation_table() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sim = ToySim::on(node.clone(), None);
        let mut pipeline = SnapshotPipeline::new(SnapshotMode::Delta);
        pipeline.capture(&sim, &DataRequirements::All, &node).unwrap();
        pipeline.set_mode(SnapshotMode::Deep);
        pipeline.set_mode(SnapshotMode::Delta);
        // After the round-trip the next delta capture copies again.
        pipeline.capture(&sim, &DataRequirements::All, &node).unwrap();
        assert_eq!(pipeline.counters().snapshot().arrays_copied, 2);
    }
}
