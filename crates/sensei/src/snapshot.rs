//! Deep-copied simulation snapshots for asynchronous execution.

use svtk::{DataArray, DataObject, FieldAssociation, MultiBlock, TableData};

use crate::adaptor::{ArrayMetadata, DataAdaptor, MeshMetadata};
use crate::error::Result;
use crate::requirements::{DataRequirements, MeshRequirements};

/// A [`DataAdaptor`] over a deep copy of another adaptor's state.
///
/// The asynchronous execution method (§3/§4.3) "deep copies the relevant
/// data, launches a thread for in situ processing, and returns
/// immediately to the simulation". `SnapshotAdaptor::capture` is that
/// deep copy: every array of every published mesh is copied into a fresh
/// allocation with the same placement, so the simulation may overwrite
/// its own arrays while the in situ thread works on the snapshot.
pub struct SnapshotAdaptor {
    meshes: Vec<(String, DataObject)>,
    time: f64,
    step: u64,
}

impl SnapshotAdaptor {
    /// Deep-copy the state published by `src`.
    ///
    /// All array copies are enqueued stream-ordered and synchronized once
    /// at the end — one wait instead of one per array, which is what
    /// keeps the apparent per-iteration cost of asynchronous execution
    /// in the few-millisecond range the paper reports.
    pub fn capture(src: &dyn DataAdaptor) -> Result<Self> {
        Self::capture_with(src, &DataRequirements::All)
    }

    /// Deep-copy only the state `requirements` asks for: meshes absent
    /// from the requirements are skipped entirely, and within a copied
    /// mesh only the selected arrays are duplicated. The snapshot's
    /// memory footprint and copy time scale with what the due back-ends
    /// declared, not with everything the simulation publishes.
    pub fn capture_with(src: &dyn DataAdaptor, requirements: &DataRequirements) -> Result<Self> {
        let mut meshes = Vec::with_capacity(src.num_meshes());
        for i in 0..src.num_meshes() {
            let md = src.mesh_metadata(i)?;
            let Some(mesh_req) = requirements.mesh_requirements(&md.name) else {
                continue;
            };
            let obj = src.mesh(&md.name)?;
            meshes.push((md.name, partial_copy(&obj, &mesh_req)?));
        }
        for (_, obj) in &meshes {
            synchronize_object(obj)?;
        }
        Ok(SnapshotAdaptor { meshes, time: src.time(), step: src.time_step() })
    }

    fn metadata_of(&self, name: &str, obj: &DataObject) -> MeshMetadata {
        let mut arrays = Vec::new();
        match obj {
            DataObject::Table(t) => {
                for col in t.columns() {
                    arrays.push(array_md(col.as_ref(), FieldAssociation::Point));
                }
            }
            DataObject::Image(img) => {
                for assoc in [FieldAssociation::Point, FieldAssociation::Cell] {
                    for a in img.data(assoc).arrays() {
                        arrays.push(array_md(a.as_ref(), assoc));
                    }
                }
            }
            DataObject::Multi(mb) => {
                if let Some((_, first)) = mb.local_blocks().next() {
                    return self.metadata_of(name, first);
                }
            }
        }
        MeshMetadata { name: name.to_string(), arrays }
    }
}

/// Deep-copy the arrays of `obj` that `req` selects, preserving the
/// dataset structure (copies are enqueued stream-ordered; the caller
/// synchronizes once at the end). Table columns count as point data.
fn partial_copy(obj: &DataObject, req: &MeshRequirements) -> Result<DataObject> {
    match obj {
        DataObject::Table(t) => {
            let mut copy = TableData::new();
            for col in t.columns() {
                if req.wants(FieldAssociation::Point, col.name()) {
                    copy.set_column(col.deep_copy_erased()?);
                }
            }
            Ok(DataObject::Table(copy))
        }
        DataObject::Image(img) => {
            let mut copy = img.clone_structure();
            for assoc in [FieldAssociation::Point, FieldAssociation::Cell] {
                for arr in img.data(assoc).arrays() {
                    if req.wants(assoc, arr.name()) {
                        copy.data_mut(assoc).set_array(arr.deep_copy_erased()?);
                    }
                }
            }
            Ok(DataObject::Image(copy))
        }
        DataObject::Multi(mb) => {
            let mut copy = MultiBlock::new(mb.num_blocks());
            for (i, block) in mb.local_blocks() {
                copy.set_block(i, partial_copy(block, req)?);
            }
            Ok(DataObject::Multi(copy))
        }
    }
}

/// Wait for every in-flight copy feeding `obj`'s arrays. Streams that
/// are already idle return immediately, so after the first wait the rest
/// are free.
fn synchronize_object(obj: &DataObject) -> Result<()> {
    match obj {
        DataObject::Table(t) => {
            for col in t.columns() {
                col.synchronize_erased()?;
            }
        }
        DataObject::Image(img) => {
            for assoc in [FieldAssociation::Point, FieldAssociation::Cell] {
                for a in img.data(assoc).arrays() {
                    a.synchronize_erased()?;
                }
            }
        }
        DataObject::Multi(mb) => {
            for (_, block) in mb.local_blocks() {
                synchronize_object(block)?;
            }
        }
    }
    Ok(())
}

fn array_md(a: &dyn DataArray, association: FieldAssociation) -> ArrayMetadata {
    ArrayMetadata {
        name: a.name().to_string(),
        association,
        components: a.num_components(),
        type_name: a.type_name(),
        device: a.device(),
    }
}

impl DataAdaptor for SnapshotAdaptor {
    fn num_meshes(&self) -> usize {
        self.meshes.len()
    }

    fn mesh_metadata(&self, i: usize) -> Result<MeshMetadata> {
        let (name, obj) = &self.meshes[i];
        Ok(self.metadata_of(name, obj))
    }

    fn mesh(&self, name: &str) -> Result<DataObject> {
        self.meshes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, o)| o.clone())
            .ok_or_else(|| crate::Error::NoSuchMesh { name: name.to_string() })
    }

    fn time(&self) -> f64 {
        self.time
    }

    fn time_step(&self) -> u64 {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devsim::{NodeConfig, SimNode};
    use std::sync::Arc;
    use svtk::{Allocator, HamrDataArray, HamrStream, StreamMode, TableData};

    /// A toy simulation-side adaptor for tests.
    struct ToySim {
        table: TableData,
        step: u64,
    }

    impl ToySim {
        fn new(node: Arc<SimNode>) -> Self {
            let mut table = TableData::new();
            let x = HamrDataArray::<f64>::from_slice(
                "x",
                node.clone(),
                &[1.0, 2.0, 3.0],
                1,
                Allocator::Cuda,
                Some(0),
                HamrStream::default_stream(),
                StreamMode::Sync,
            )
            .unwrap();
            table.set_column(x.as_array_ref());
            ToySim { table, step: 7 }
        }
    }

    impl DataAdaptor for ToySim {
        fn num_meshes(&self) -> usize {
            1
        }
        fn mesh_metadata(&self, _i: usize) -> Result<MeshMetadata> {
            Ok(MeshMetadata {
                name: "bodies".into(),
                arrays: self
                    .table
                    .columns()
                    .iter()
                    .map(|c| array_md(c.as_ref(), FieldAssociation::Point))
                    .collect(),
            })
        }
        fn mesh(&self, name: &str) -> Result<DataObject> {
            if name == "bodies" {
                Ok(DataObject::Table(self.table.clone()))
            } else {
                Err(crate::Error::NoSuchMesh { name: name.into() })
            }
        }
        fn time(&self) -> f64 {
            0.5
        }
        fn time_step(&self) -> u64 {
            self.step
        }
    }

    #[test]
    fn capture_deep_copies_every_array() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sim = ToySim::new(node);
        let snap = SnapshotAdaptor::capture(&sim).unwrap();
        assert_eq!(snap.num_meshes(), 1);
        assert_eq!(snap.time(), 0.5);
        assert_eq!(snap.time_step(), 7);

        let orig = sim.mesh("bodies").unwrap();
        let copy = snap.mesh("bodies").unwrap();
        let oc = orig.as_table().unwrap().column("x").unwrap().clone();
        let cc = copy.as_table().unwrap().column("x").unwrap().clone();
        let oh = svtk::downcast::<f64>(&oc).unwrap();
        let ch = svtk::downcast::<f64>(&cc).unwrap();
        assert!(!oh.data().same_allocation(&ch.data()), "snapshot must not alias");
        assert_eq!(ch.to_vec().unwrap(), vec![1.0, 2.0, 3.0]);
        // Placement preserved: copy stays on the same device.
        assert_eq!(ch.device(), Some(0));
    }

    #[test]
    fn snapshot_metadata_describes_the_copy() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sim = ToySim::new(node);
        let snap = SnapshotAdaptor::capture(&sim).unwrap();
        let md = snap.mesh_metadata(0).unwrap();
        assert_eq!(md.name, "bodies");
        assert_eq!(md.arrays.len(), 1);
        assert_eq!(md.arrays[0].name, "x");
        assert_eq!(md.arrays[0].type_name, "double");
        assert_eq!(md.arrays[0].device, Some(0));
    }

    #[test]
    fn capture_with_skips_unrequested_meshes_and_arrays() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let sim = ToySim::new(node);

        // Mesh not in the requirements: skipped entirely.
        let none = DataRequirements::none();
        let snap = SnapshotAdaptor::capture_with(&sim, &none).unwrap();
        assert_eq!(snap.num_meshes(), 0);
        assert_eq!(snap.time_step(), 7, "time/step still captured");

        // Mesh requested but with a different column name: structure
        // copied, array left out.
        let other =
            DataRequirements::none().with_arrays("bodies", FieldAssociation::Point, ["nope"]);
        let snap = SnapshotAdaptor::capture_with(&sim, &other).unwrap();
        assert_eq!(snap.num_meshes(), 1);
        assert_eq!(snap.mesh_metadata(0).unwrap().arrays.len(), 0);

        // The requested column is a real deep copy.
        let x_only = DataRequirements::none().with_arrays("bodies", FieldAssociation::Point, ["x"]);
        let snap = SnapshotAdaptor::capture_with(&sim, &x_only).unwrap();
        let copy = snap.mesh("bodies").unwrap();
        let cc = copy.as_table().unwrap().column("x").unwrap().clone();
        let ch = svtk::downcast::<f64>(&cc).unwrap();
        assert_eq!(ch.to_vec().unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn unknown_mesh_is_an_error() {
        let node = SimNode::new(NodeConfig::fast_test(1));
        let snap = SnapshotAdaptor::capture(&ToySim::new(node)).unwrap();
        assert!(matches!(snap.mesh("nope"), Err(crate::Error::NoSuchMesh { .. })));
    }
}
