//! Task-graph representation of one bridge step (DESIGN.md §13).
//!
//! Instead of dispatching an analysis as one opaque call bound to a single
//! worker thread, a back-end that supports dataflow execution *plans* its
//! step as a DAG of typed tasks — `Fetch → Kernel → Download → Reduce →
//! Publish` — with explicit dependency edges and optional [`Event`] gates.
//! The [`crate::DagScheduler`] then executes the graph with work-stealing
//! workers over every device slot and stream: downloads overlap kernels by
//! construction, idle devices steal ready kernel tasks, and the packed
//! allreduce is a single sync node placed last.
//!
//! Two body flavours keep the borrow story honest:
//!
//! * **worker tasks** (`FnMut(&TaskCtx) -> Result<()> + Send`) may run on
//!   any eligible scheduler worker thread and must only capture `Send`
//!   state (`Arc`s, indices, shared slots);
//! * **coordinator tasks** (no `Send` bound) run on the thread that built
//!   the graph — MPI collectives, host-side merges and anything touching
//!   the planner's `!Sync` state (e.g. cached `Arc<Stream>` pools) live
//!   here.
//!
//! Tasks must be pushed in a topological order (an edge may only point at
//! an already-added task); this keeps readiness tracking allocation-free
//! and makes cycles unrepresentable.

use std::sync::Arc;

use devsim::{Event, Stream};

use crate::counters::AnalysisCounters;
use crate::error::Result;
use crate::recovery::RecoveryPolicy;

/// Index of a task inside its [`TaskGraph`] (also its topological rank).
pub type TaskId = usize;

/// The typed phases of one in situ step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Pull arrays from the data adaptor / snapshot.
    Fetch,
    /// Run compute (device kernel or host table pass).
    Kernel,
    /// Move device partials back to host-visible memory.
    Download,
    /// Combine partials: local merge + the packed allreduce sync node.
    Reduce,
    /// Materialize results for consumers (sink, cached last-result).
    Publish,
}

impl TaskKind {
    /// Short lowercase name used in labels and profiler rows.
    pub fn name(&self) -> &'static str {
        match self {
            TaskKind::Fetch => "fetch",
            TaskKind::Kernel => "kernel",
            TaskKind::Download => "download",
            TaskKind::Reduce => "reduce",
            TaskKind::Publish => "publish",
        }
    }
}

/// Where a task is allowed to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskSite {
    /// On the planning thread (implied for coordinator-body tasks).
    Coordinator,
    /// On a host worker (host execution slots).
    Host,
    /// Pinned to the worker owning one device (not stealable).
    Device(usize),
    /// Any device worker; ready tasks start on their home device's deque
    /// and idle workers of *other* devices may steal them.
    AnyDevice,
}

/// Per-device stream pair the scheduler provisions: kernels go to
/// `compute`, downloads to `copy`, so a device's D2H traffic overlaps its
/// own kernel queue exactly as CUDA's dual-stream pattern does.
#[derive(Clone)]
pub struct DeviceStreams {
    /// Kernel launch queue (one per device worker, worker-exclusive).
    pub compute: Arc<Stream>,
    /// Transfer queue (downloads never serialize behind kernels).
    pub copy: Arc<Stream>,
}

/// Execution context handed to every task body.
pub struct TaskCtx<'a> {
    pub(crate) device: Option<usize>,
    pub(crate) streams: &'a [Option<DeviceStreams>],
}

impl TaskCtx<'_> {
    /// The device owned by the executing worker (`None` on host and
    /// coordinator workers).
    pub fn device(&self) -> Option<usize> {
        self.device
    }

    /// The executing worker's own compute stream, if it owns a device.
    pub fn stream(&self) -> Option<&Arc<Stream>> {
        self.device.and_then(|d| self.compute_stream(d))
    }

    /// Compute (kernel) stream of device `d`, if the scheduler provisioned
    /// one for this run.
    pub fn compute_stream(&self, d: usize) -> Option<&Arc<Stream>> {
        self.streams.get(d).and_then(|s| s.as_ref()).map(|s| &s.compute)
    }

    /// Copy (transfer) stream of device `d` — downloads issued here overlap
    /// the same device's kernel queue.
    pub fn copy_stream(&self, d: usize) -> Option<&Arc<Stream>> {
        self.streams.get(d).and_then(|s| s.as_ref()).map(|s| &s.copy)
    }
}

/// A task body that may run on any eligible worker thread.
pub(crate) type WorkerRun<'s> = Box<dyn FnMut(&TaskCtx) -> Result<()> + Send + 's>;

/// A task body pinned to the planning thread (no `Send` bound).
pub(crate) type CoordRun<'s> = Box<dyn FnMut(&TaskCtx) -> Result<()> + 's>;

pub(crate) enum TaskBody<'s> {
    Worker(WorkerRun<'s>),
    Coordinator(CoordRun<'s>),
}

pub(crate) struct Task<'s> {
    pub(crate) kind: TaskKind,
    pub(crate) label: String,
    pub(crate) site: TaskSite,
    /// Preferred device for `AnyDevice` tasks (locality hint; stealable).
    pub(crate) home: Option<usize>,
    /// Relative modeled cost used for least-loaded routing (arbitrary
    /// units, only compared against other tasks of the same graph).
    pub(crate) cost: f64,
    pub(crate) policy: RecoveryPolicy,
    pub(crate) deps: Vec<TaskId>,
    /// Event gates: the task is held back until every event is signaled
    /// (polled by the scheduler via [`Event::is_signaled`]).
    pub(crate) wait_events: Vec<Event>,
    pub(crate) body: Option<TaskBody<'s>>,
}

/// One bridge step as a DAG of typed tasks.
///
/// Built by an analysis adaptor inside
/// [`crate::AnalysisAdaptor::execute_dag`], then consumed by
/// [`crate::DagScheduler::run`]. Task ids are assigned in push order and
/// push order must be topological: [`TaskGraph::add_dep`] only accepts
/// edges pointing at already-added tasks.
pub struct TaskGraph<'s> {
    backend: String,
    counters: Arc<AnalysisCounters>,
    default_policy: RecoveryPolicy,
    pub(crate) tasks: Vec<Task<'s>>,
}

impl<'s> TaskGraph<'s> {
    /// Start an empty graph for back-end `backend`. Per-task recovery
    /// outcomes are recorded on `counters` (the back-end's own fault
    /// counters); `default_policy` seeds every added task and can be
    /// overridden per node with [`TaskGraph::set_policy`].
    pub fn new(
        backend: impl Into<String>,
        counters: Arc<AnalysisCounters>,
        default_policy: RecoveryPolicy,
    ) -> Self {
        TaskGraph { backend: backend.into(), counters, default_policy, tasks: Vec::new() }
    }

    /// The back-end name (used in recovery error messages).
    pub fn backend(&self) -> &str {
        &self.backend
    }

    pub(crate) fn counters(&self) -> &Arc<AnalysisCounters> {
        &self.counters
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no task has been added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    fn push(
        &mut self,
        kind: TaskKind,
        label: String,
        site: TaskSite,
        body: TaskBody<'s>,
    ) -> TaskId {
        let id = self.tasks.len();
        self.tasks.push(Task {
            kind,
            label,
            site,
            home: None,
            cost: 0.0,
            policy: self.default_policy,
            deps: Vec::new(),
            wait_events: Vec::new(),
            body: Some(body),
        });
        id
    }

    /// Add a task that may run on any eligible worker thread. The body
    /// must be `Send` and — when its node's policy is `Retry` — safe to
    /// re-run from scratch (publish side effects only after the last
    /// fallible operation).
    pub fn add_worker_task<F>(
        &mut self,
        kind: TaskKind,
        label: impl Into<String>,
        site: TaskSite,
        body: F,
    ) -> TaskId
    where
        F: FnMut(&TaskCtx) -> Result<()> + Send + 's,
    {
        assert!(site != TaskSite::Coordinator, "coordinator tasks use add_coordinator_task");
        self.push(kind, label.into(), site, TaskBody::Worker(Box::new(body)))
    }

    /// Add a task pinned to the planning thread (site is implicitly
    /// [`TaskSite::Coordinator`]). No `Send` bound: collectives and
    /// `!Sync` planner state are allowed here.
    pub fn add_coordinator_task<F>(
        &mut self,
        kind: TaskKind,
        label: impl Into<String>,
        body: F,
    ) -> TaskId
    where
        F: FnMut(&TaskCtx) -> Result<()> + 's,
    {
        self.push(kind, label.into(), TaskSite::Coordinator, TaskBody::Coordinator(Box::new(body)))
    }

    /// Make `task` wait for `dep`. Edges must point backwards in push
    /// order (the graph is built topologically), which also makes cycles
    /// unrepresentable.
    pub fn add_dep(&mut self, task: TaskId, dep: TaskId) {
        assert!(
            dep < task && task < self.tasks.len(),
            "dependency edges must point at earlier tasks (dep {dep} -> task {task})"
        );
        if !self.tasks[task].deps.contains(&dep) {
            self.tasks[task].deps.push(dep);
        }
    }

    /// Hold `task` back until `event` is signaled, in addition to its
    /// dependency edges. The scheduler polls the event; it never blocks a
    /// worker on it.
    pub fn gate_on_event(&mut self, task: TaskId, event: Event) {
        self.tasks[task].wait_events.push(event);
    }

    /// Record the relative modeled cost of `task` (least-loaded routing).
    pub fn set_cost(&mut self, task: TaskId, cost: f64) {
        self.tasks[task].cost = cost.max(0.0);
    }

    /// Prefer `device` for an `AnyDevice` task (locality; still stealable).
    pub fn set_home(&mut self, task: TaskId, device: usize) {
        self.tasks[task].home = Some(device);
    }

    /// Override the recovery policy of one task node.
    pub fn set_policy(&mut self, task: TaskId, policy: RecoveryPolicy) {
        self.tasks[task].policy = policy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> TaskGraph<'static> {
        TaskGraph::new("t", AnalysisCounters::new(), RecoveryPolicy::Abort)
    }

    #[test]
    fn push_order_assigns_sequential_topological_ids() {
        let mut g = graph();
        let a = g.add_coordinator_task(TaskKind::Fetch, "f", |_| Ok(()));
        let b = g.add_worker_task(TaskKind::Kernel, "k", TaskSite::AnyDevice, |_| Ok(()));
        let c = g.add_coordinator_task(TaskKind::Reduce, "r", |_| Ok(()));
        assert_eq!((a, b, c), (0, 1, 2));
        g.add_dep(b, a);
        g.add_dep(c, b);
        g.add_dep(c, b); // duplicate edges collapse
        assert_eq!(g.tasks[c].deps, vec![b]);
        assert_eq!(g.len(), 3);
    }

    #[test]
    #[should_panic(expected = "earlier tasks")]
    fn forward_edges_are_rejected() {
        let mut g = graph();
        let a = g.add_coordinator_task(TaskKind::Fetch, "f", |_| Ok(()));
        g.add_dep(a, a);
    }

    #[test]
    fn policy_cost_and_home_are_per_node() {
        let mut g = TaskGraph::new("t", AnalysisCounters::new(), RecoveryPolicy::SkipStep);
        let k = g.add_worker_task(TaskKind::Kernel, "k", TaskSite::AnyDevice, |_| Ok(()));
        assert_eq!(g.tasks[k].policy, RecoveryPolicy::SkipStep);
        g.set_policy(k, RecoveryPolicy::Abort);
        g.set_cost(k, 7.5);
        g.set_home(k, 1);
        assert_eq!(g.tasks[k].policy, RecoveryPolicy::Abort);
        assert_eq!(g.tasks[k].cost, 7.5);
        assert_eq!(g.tasks[k].home, Some(1));
    }

    #[test]
    fn kind_names_are_stable() {
        let names: Vec<_> = [
            TaskKind::Fetch,
            TaskKind::Kernel,
            TaskKind::Download,
            TaskKind::Reduce,
            TaskKind::Publish,
        ]
        .iter()
        .map(|k| k.name())
        .collect();
        assert_eq!(names, ["fetch", "kernel", "download", "reduce", "publish"]);
    }
}
