//! Shared step-result serialization: the host representation of one
//! step's tabular data, used by every path that ships results out of
//! the bridge.
//!
//! Both the in-transit forwarder ([`crate::intransit`]) and the live
//! serving layer ([`crate::serve`]) need the same thing: the published
//! mesh flattened to named double columns plus the step/time stamp.
//! Keeping one [`StepPayload`] type (and one column walker) means the
//! two paths cannot drift — a column type the sender accepts is a
//! column type the receiver can rebuild, and vice versa.

use std::sync::Arc;

use devsim::SimNode;
use svtk::{DataObject, TableData};

use crate::adaptor::DataAdaptor;
use crate::error::{Error, Result};

/// A serialized step result: one mesh's double columns on the host.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepPayload {
    /// Simulation step the data belongs to.
    pub step: u64,
    /// Simulation time at that step.
    pub time: f64,
    /// Named columns, in publication order.
    pub columns: Vec<(String, Vec<f64>)>,
}

impl StepPayload {
    /// Serialize `mesh` out of a data adaptor (downloads to host).
    pub fn from_data(data: &dyn DataAdaptor, mesh: &str) -> Result<StepPayload> {
        let obj = data.mesh(mesh)?;
        Self::from_object(&obj, data.time_step(), data.time())
    }

    /// Serialize an already-fetched data object.
    pub fn from_object(obj: &DataObject, step: u64, time: f64) -> Result<StepPayload> {
        let mut columns = Vec::new();
        collect_columns(obj, &mut columns)?;
        Ok(StepPayload { step, time, columns })
    }

    /// Payload size in bytes (the cost of one *copy* of this step).
    pub fn bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|(name, values)| name.len() + values.len() * std::mem::size_of::<f64>())
            .sum()
    }

    /// Rebuild a host-resident table from the columns (the receive side
    /// of the round trip; column order is preserved).
    pub fn to_table(&self, node: &Arc<SimNode>) -> Result<TableData> {
        let mut table = TableData::new();
        for (name, values) in &self.columns {
            let arr = svtk::HamrDataArray::<f64>::from_slice(
                name.clone(),
                node.clone(),
                values,
                1,
                svtk::Allocator::Malloc,
                None,
                svtk::HamrStream::default_stream(),
                svtk::StreamMode::Sync,
            )?;
            table.set_column(arr.as_array_ref());
        }
        Ok(table)
    }
}

/// Flatten a data object's double columns into `out` (tables directly,
/// multi-blocks recursively, anything else is an error — serialized
/// step results are tabular by contract).
pub fn collect_columns(obj: &DataObject, out: &mut Vec<(String, Vec<f64>)>) -> Result<()> {
    match obj {
        DataObject::Table(t) => {
            for col in t.columns() {
                let typed = svtk::downcast::<f64>(col).ok_or_else(|| {
                    Error::Analysis(format!(
                        "step payloads support double columns; '{}' is {}",
                        col.name(),
                        col.type_name()
                    ))
                })?;
                out.push((col.name().to_string(), typed.to_vec()?));
            }
        }
        DataObject::Multi(mb) => {
            for (_, block) in mb.local_blocks() {
                collect_columns(block, out)?;
            }
        }
        other => {
            return Err(Error::Analysis(format!(
                "step payloads carry tabular data, got {}",
                other.class_name()
            )))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use devsim::NodeConfig;

    fn node() -> Arc<SimNode> {
        SimNode::new(NodeConfig::default())
    }

    fn table(node: &Arc<SimNode>, cols: &[(&str, &[f64])]) -> TableData {
        let mut t = TableData::new();
        for (name, values) in cols {
            let arr = svtk::HamrDataArray::<f64>::from_slice(
                (*name).to_string(),
                node.clone(),
                values,
                1,
                svtk::Allocator::Malloc,
                None,
                svtk::HamrStream::default_stream(),
                svtk::StreamMode::Sync,
            )
            .expect("host array");
            t.set_column(arr.as_array_ref());
        }
        t
    }

    #[test]
    fn payload_round_trips_through_table() {
        let node = node();
        let src = table(&node, &[("x", &[1.0, 2.0, 3.0]), ("m", &[0.5, 0.25, 0.125])]);
        let p = StepPayload::from_object(&DataObject::Table(src), 7, 0.5).expect("serialize");
        assert_eq!(p.step, 7);
        assert_eq!(p.time, 0.5);
        assert_eq!(p.bytes(), (1 + 3 * 8) * 2, "name bytes + 3 doubles, per column");

        let rebuilt = p.to_table(&node).expect("rebuild");
        let back =
            StepPayload::from_object(&DataObject::Table(rebuilt), 7, 0.5).expect("reserialize");
        assert_eq!(p, back);
    }

    #[test]
    fn multi_block_columns_flatten_in_block_order() {
        let node = node();
        let mut mb = svtk::MultiBlock::new(2);
        mb.set_block(0, DataObject::Table(table(&node, &[("a", &[1.0])])));
        mb.set_block(1, DataObject::Table(table(&node, &[("b", &[2.0]), ("c", &[3.0])])));
        let p = StepPayload::from_object(&DataObject::Multi(mb), 0, 0.0).expect("serialize");
        let names: Vec<&str> = p.columns.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn non_tabular_objects_are_rejected() {
        let img = svtk::ImageData::from_bounds([1, 1, 1], [0.0; 3], [1.0; 3]);
        let err = StepPayload::from_object(&DataObject::Image(img), 0, 0.0).unwrap_err();
        assert!(err.to_string().contains("tabular"), "unexpected error: {err}");
    }
}
